"""Orchestrator benchmarks: cold vs warm cache vs parallel wall-clock.

Each test prints one ``BENCH {json}`` line so the numbers form a
trajectory comparable across PRs (grep the suite output for ``BENCH``).
The smoke profile (trace-level exhibits, the serving smokes and the
batched CES sweep) keeps the benchmark itself inside the suite budget;
the full-exhibit-set numbers are recorded in ROADMAP.md from manual
CLI runs.
"""

import json

import pytest

from repro.experiments import ArtifactCache, ExperimentOrchestrator, smoke_ids
from repro.experiments.common import clear_scenario_caches


def _emit(capsys, name: str, result, seconds: float) -> None:
    statuses = [r.status for r in result.reports]
    with capsys.disabled():
        print()
        print(
            "BENCH "
            + json.dumps(
                {
                    "bench": name,
                    "seconds": round(seconds, 4),
                    "jobs": result.jobs,
                    "exhibits": len(result.reports),
                    "computed": statuses.count("computed"),
                    "cached": statuses.count("cached"),
                },
                sort_keys=True,
            )
        )


@pytest.fixture(scope="module")
def populated_cache(tmp_path_factory):
    """One cold smoke run: its cache seeds the warm benchmark."""
    cache_dir = tmp_path_factory.mktemp("runner-cache")
    ExperimentOrchestrator(cache=ArtifactCache(cache_dir), jobs=1).run(smoke_ids())
    return cache_dir


def test_runner_cold_serial(benchmark, capsys, tmp_path):
    """Cold cache, no memoized traces, one worker: the baseline."""

    def cold():
        clear_scenario_caches()
        return ExperimentOrchestrator(
            cache=ArtifactCache(tmp_path / "cold"), jobs=1, force=True
        ).run(smoke_ids())

    result = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert all(r.status == "computed" for r in result.reports)
    _emit(capsys, "runner_cold_serial", result, benchmark.stats.stats.mean)


def test_runner_warm_cache(benchmark, capsys, populated_cache):
    """Every exhibit served from disk artifacts: should be milliseconds."""

    def warm():
        return ExperimentOrchestrator(
            cache=ArtifactCache(populated_cache), jobs=1
        ).run(smoke_ids())

    result = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert all(r.status == "cached" for r in result.reports)
    _emit(capsys, "runner_warm_cache", result, benchmark.stats.stats.mean)


def test_runner_parallel_jobs4(benchmark, capsys, tmp_path):
    """Forked 4-worker pool with precursor warming, cold memos.

    On a single-core host this measures orchestration overhead rather
    than speedup; the BENCH trajectory still catches regressions in the
    fork/warm/serialize path, and on multi-core hosts it shows the
    actual parallel win.
    """

    def parallel():
        clear_scenario_caches()
        return ExperimentOrchestrator(
            cache=ArtifactCache(tmp_path / "par"), jobs=4, force=True
        ).run(smoke_ids())

    result = benchmark.pedantic(parallel, rounds=1, iterations=1)
    assert all(r.status == "computed" for r in result.reports)
    _emit(capsys, "runner_parallel_jobs4", result, benchmark.stats.stats.mean)
