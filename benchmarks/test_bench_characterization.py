"""Benches regenerating the §3 exhibits (Tables 1-2, Figures 1-9).

Each test rebuilds one exhibit from the shared seeded workload and
asserts the paper's qualitative claim for that exhibit, so a green run
certifies the characterization shapes hold.
"""

import numpy as np


def test_table1(run_exhibit):
    payload = run_exhibit("table1")
    t = payload["table"]
    assert t["paper_gpus"].sum() == 6416  # Table 1 total
    assert len(t) == 4


def test_table2(run_exhibit):
    payload = run_exhibit("table2")
    rows = {r["metric"]: r for r in payload["table"].iter_rows()}
    # Helios has far more jobs; Philly has no CPU jobs and longer jobs.
    assert int(rows["jobs"]["helios"]) > 3 * int(rows["jobs"]["philly"])
    assert rows["cpu_jobs"]["philly"] == "0"
    assert float(rows["avg_duration_s"]["philly"]) > float(rows["avg_duration_s"]["helios"])


def test_fig1(run_exhibit):
    payload = run_exhibit("fig1")
    # Fig 1b: failed jobs waste over a third of Philly's GPU time vs ~9%
    # in Helios; Fig 1a: Philly durations stochastically dominate.
    assert payload["philly_status"]["failed"] > 2 * payload["helios_status"]["failed"]
    xs_h, ys_h = payload["helios_cdf"]
    xs_p, ys_p = payload["philly_cdf"]
    med_h = xs_h[np.searchsorted(ys_h, 0.5)]
    med_p = xs_p[np.searchsorted(ys_p, 0.5)]
    assert med_p > med_h


def test_fig2(run_exhibit):
    payload = run_exhibit("fig2")
    for cluster, prof in payload["utilization"].items():
        assert prof.mean() > 0.4
    for cluster, subs in payload["submissions"].items():
        night = subs[1:6].mean()
        day = subs[9:18].mean()
        assert night < day  # Fig 2b: submissions trough at night


def test_fig3(run_exhibit):
    payload = run_exhibit("fig3")
    for cluster, counts in payload["counts"].items():
        single = counts["single_gpu_jobs"].astype(float)
        multi = counts["multi_gpu_jobs"].astype(float)
        # Fig 3: single-GPU volumes fluctuate more than multi-GPU volumes
        cv_single = single.std() / max(single.mean(), 1)
        cv_multi = multi.std() / max(multi.mean(), 1)
        assert cv_single > 0.5 * cv_multi
    for cluster, util in payload["utilization"].items():
        # Fig 3 bottom: multi-GPU jobs dominate utilization everywhere
        # except single-GPU-heavy Earth.
        if cluster != "Earth":
            assert (
                util["multi_gpu_utilization"].mean()
                > util["single_gpu_utilization"].mean()
            )


def test_fig4(run_exhibit):
    payload = run_exhibit("fig4")
    stats = payload["vc_stats"]
    assert len(stats) >= 3
    assert np.all(stats["util_median"] <= 1.01)
    qd = payload["queue_duration"]
    assert np.all(qd["norm_queue_delay"] >= 0)


def test_fig5(run_exhibit):
    payload = run_exhibit("fig5")
    # GPU durations exceed CPU durations by ~an order of magnitude in
    # every cluster (§3.2.1).
    for cluster in ("Venus", "Earth", "Saturn", "Uranus"):
        xs_g, ys_g = payload["curves"][(cluster, "gpu")]
        xs_c, ys_c = payload["curves"][(cluster, "cpu")]
        med_g = xs_g[np.searchsorted(ys_g, 0.5)]
        med_c = xs_c[np.searchsorted(ys_c, 0.5)]
        assert med_g > 3 * med_c


def test_fig6(run_exhibit):
    payload = run_exhibit("fig6")
    for cluster, t in payload["tables"].items():
        rows = {int(r["size"]): r for r in t.iter_rows()}
        # >50% single-GPU jobs by count...
        assert rows[1]["job_fraction"] > 0.5
        # ...but large jobs hold the GPU time (Implication #4).
        if cluster != "Earth":
            assert rows[4]["gpu_time_fraction"] < 0.55


def test_fig7(run_exhibit):
    payload = run_exhibit("fig7")
    dist = {r["kind"]: r for r in payload["distribution"].iter_rows()}
    # Fig 7a: unsuccessful GPU jobs >> unsuccessful CPU jobs.
    assert (1 - dist["gpu"]["completed"]) > 2 * (1 - dist["cpu"]["completed"])
    bd = payload["by_demand"]
    assert bd["completed"][-1] < bd["completed"][0]  # Fig 7b decline


def test_fig8(run_exhibit):
    payload = run_exhibit("fig8")
    for cluster in ("Venus", "Earth", "Saturn", "Uranus"):
        _, g = payload["curves"][(cluster, "gpu")]
        # top 5% of users hold a large share of GPU time (45-60% paper)
        assert g[5] > 0.25


def test_fig9(run_exhibit):
    payload = run_exhibit("fig9")
    for cluster, (frac, share) in payload["queue_curves"].items():
        assert share[-1] == 1.0 or np.isclose(share[-1], 1.0)
        # queueing is concentrated on few users (Fig 9a)
        assert share[25] > 0.5
    for cluster, rates in payload["completion"].items():
        # Fig 9b: user completion rates are generally low / spread out
        assert np.median(rates["completion_rate"]) < 0.9
