"""Benchmark-suite configuration.

Each benchmark regenerates one paper exhibit (table or figure) exactly
once per run (``pedantic`` with a single round) — these are experiment
harnesses, not micro-benchmarks; see ``test_bench_micro.py`` for the
substrate micro-benchmarks.  Exhibit text is echoed so a benchmark run
doubles as the paper-reproduction report.
"""

import pytest


@pytest.fixture
def run_exhibit(benchmark, capsys):
    """Run an experiment once under the benchmark clock and print it."""

    def _run(exp_id: str):
        from repro.experiments import run_experiment

        payload = benchmark.pedantic(
            run_experiment, args=(exp_id,), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(payload.get("text", f"[{exp_id}] (no text)"))
        return payload

    return _run
