"""Batched-DRS benchmarks: fast grid engine vs the stepwise oracle.

``BENCH {json}`` lines (grep the suite output for ``BENCH``):

* ``drs_sweep`` — a σ/ξ/window parameter grid stepped over a synthetic
  month of demand through both engines; reports config×bin throughput
  each and the speedup.  The acceptance floor is a **5x** fast-vs-
  reference ratio (the struct-of-arrays walk typically lands ~10x),
  with byte-parity re-checked row by row on the same run.
* ``ces_table5`` — end-to-end wall time of the CES-funnel exhibit
  (``table5``: five clusters' forecast + control stages) — the batch
  engine's and the forecast split's effect on the ``run all`` critical
  path.
"""

import json
import time

import numpy as np
import pytest

from repro.energy import DRSCase, DRSParams, run_drs_batch

_N_BINS = 4032          # four weeks of 10-minute bins
_TOTAL_NODES = 120
_SIGMAS = (1, 2, 3, 5, 8, 12)
_XIS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)
_WINDOWS = (3, 6, 9, 12, 18, 24, 36, 72, 144, 288)


def _bench_line(payload: dict, capsys) -> None:
    with capsys.disabled():
        print()
        print("BENCH " + json.dumps(payload, sort_keys=True))


@pytest.fixture(scope="module")
def sweep_cases():
    """A demanding grid: 480 configs over a bursty synthetic month."""
    rng = np.random.default_rng(5)
    t = np.arange(_N_BINS)
    demand = np.round(
        np.clip(
            60
            + 25 * np.sin(2 * np.pi * t / 144.0)
            + 10 * np.sin(2 * np.pi * t / 1008.0)
            + rng.normal(0, 4, _N_BINS),
            0,
            _TOTAL_NODES,
        )
    )
    horizon = 18
    forecast = np.empty_like(demand)
    forecast[:-horizon] = demand[horizon:]
    forecast[-horizon:] = demand[-1]
    arrivals = rng.integers(0, 6, _N_BINS).astype(float)
    return [
        DRSCase(
            demand,
            forecast,
            _TOTAL_NODES,
            DRSParams(
                buffer_nodes=sigma,
                recent_window_bins=window,
                recent_threshold=xi,
                future_threshold=xi,
            ),
            arrivals,
        )
        for sigma in _SIGMAS
        for xi in _XIS
        for window in _WINDOWS
    ]


def test_sweep_throughput_floor(sweep_cases, capsys):
    """Fast grid engine >= 5x the stepwise oracle on the same sweep."""
    t0 = time.perf_counter()
    ref = run_drs_batch(sweep_cases, mode="reference")
    ref_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = run_drs_batch(sweep_cases)
    fast_wall = time.perf_counter() - t0

    config_bins = len(sweep_cases) * _N_BINS
    speedup = ref_wall / fast_wall
    _bench_line(
        {
            "bench": "drs_sweep",
            "configs": len(sweep_cases),
            "bins": _N_BINS,
            "config_bins": config_bins,
            "ref_wall_s": round(ref_wall, 3),
            "fast_wall_s": round(fast_wall, 3),
            "ref_config_bins_per_s": round(config_bins / ref_wall, 1),
            "fast_config_bins_per_s": round(config_bins / fast_wall, 1),
            "speedup": round(speedup, 2),
        },
        capsys,
    )
    # same run doubles as a sweep-scale parity check
    for f, r in zip(fast, ref):
        assert f.active.tobytes() == r.active.tobytes()
        assert f.wake_events == r.wake_events
        assert f.nodes_woken == r.nodes_woken
        assert f.affected_jobs == r.affected_jobs
    assert speedup >= 5.0, (
        f"fast grid engine only {speedup:.2f}x the stepwise oracle "
        f"({config_bins / fast_wall:.0f} vs {config_bins / ref_wall:.0f} "
        "config-bins/s); the acceptance floor is 5x"
    )


@pytest.mark.slow
def test_table5_end_to_end(capsys):
    """Wall time of the CES-funnel exhibit, split + batched engine."""
    from repro.experiments import run_experiment

    t0 = time.perf_counter()
    payload = run_experiment("table5")
    wall = time.perf_counter() - t0
    _bench_line(
        {"bench": "ces_table5", "wall_s": round(wall, 2)},
        capsys,
    )
    with capsys.disabled():
        print(payload.get("text", "(no text)"))
    assert "text" in payload
