"""Serving-runtime benchmarks: single-shard throughput and latency.

``BENCH {json}`` lines (grep the suite output for ``BENCH``):

* ``serve_shard`` — a job-only stream (submits + finishes) through the
  serving loop: end-to-end events/s plus p50/p99 QSSF decision latency.
  The acceptance floor is 10k events/s on the 1-core CI container; the
  assert enforces it.
* ``serve_mixed`` — jobs plus node-sample events: adds the per-bin CES
  forecast + DRS control step, reporting its p50/p99 alongside.
* ``serve_obs_overhead`` — the same job-only stream with tracing+metrics
  enabled vs disabled; the assert enforces the documented <=2% budget.
* ``serve_net_loopback`` — two real cluster shards through the socket
  control plane's loopback load generator at 1 vs 2 workers; on a
  multi-core host the 2-worker run must reach >= 1.7x the 1-worker
  events/s (the assert is gated on ``os.cpu_count() >= 2`` — a 1-core
  container serializes the workers and only reports the line).
* ``serve_net_overhead`` — the same shards via the socket router vs the
  direct fork-pool dispatch; the router's wall overhead must stay
  within 10% plus the host's measured A/A noise floor.
"""

import json
import os
import statistics
import time

import numpy as np
import pytest

from repro import obs
from repro.framework import fork_available
from repro.energy.forecaster import ForecastFeatures
from repro.frame import Table
from repro.ml.gbdt import GBDTParams
from repro.serve import EventStream, PredictionServer, ServeConfig

_USERS = 24
_NAMES = 40


def _make_trace(n_jobs: int, t0: float, span_s: float, seed: int) -> Table:
    """Synthetic recurring-job trace shaped like a busy cluster shard."""
    rng = np.random.default_rng(seed)
    submit = np.sort(t0 + rng.uniform(0.0, span_s, n_jobs))
    users = rng.integers(0, _USERS, n_jobs)
    names = rng.integers(0, _NAMES, n_jobs)
    gpus = rng.choice([1, 1, 2, 4, 8], n_jobs)
    duration = np.round(rng.lognormal(5.0, 1.2, n_jobs), 1)
    return Table(
        {
            "job_id": np.array([f"j{i}" for i in range(n_jobs)]),
            "cluster": np.full(n_jobs, "B"),
            "vc": np.array([f"vc{v}" for v in rng.integers(0, 4, n_jobs)]),
            "user": np.array([f"u{u}" for u in users]),
            "name": np.array([f"train_{nm}_v{r}" for nm, r in
                              zip(names, rng.integers(0, 9, n_jobs))]),
            "gpu_num": gpus.astype(np.int64),
            "cpu_num": (gpus * 6).astype(np.int64),
            "node_num": np.maximum(1, gpus // 8).astype(np.int64),
            "submit_time": submit,
            "duration": duration,
            "status": np.full(n_jobs, "completed"),
        }
    )


@pytest.fixture(scope="module")
def qssf_history():
    return _make_trace(3_000, 0.0, 5 * 86_400.0, seed=1)


def _bench_line(payload: dict, capsys) -> None:
    with capsys.disabled():
        print()
        print("BENCH " + json.dumps(payload, sort_keys=True))


def test_single_shard_throughput(qssf_history, capsys):
    """Job-only stream: the acceptance floor is >= 10k events/s."""
    day = 86_400.0
    window = _make_trace(10_000, 5 * day, day, seed=2)
    server = PredictionServer(ServeConfig(lam=1.0, batch_window_s=600.0))
    server.install_qssf(qssf_history)
    stream = EventStream.from_trace(window, "B", t0=5 * day, t1=6 * day)

    t0 = time.perf_counter()
    report = server.run(stream)
    wall = time.perf_counter() - t0

    _bench_line(
        {
            "bench": "serve_shard",
            "events": report.events,
            "wall_s": round(wall, 4),
            "events_per_s": round(report.events_per_s, 1),
            "qssf_batches": report.qssf_batches,
            "qssf_p50_ms": round(report.qssf_latency.p50_ms, 4),
            "qssf_p99_ms": round(report.qssf_latency.p99_ms, 4),
        },
        capsys,
    )
    assert report.events >= 15_000
    assert report.events_per_s >= 10_000, (
        f"single-shard throughput {report.events_per_s:.0f} ev/s "
        "below the 10k acceptance floor"
    )


def test_mixed_stream_with_ces(qssf_history, capsys):
    """Jobs + node samples: adds the CES forecast/control hot path."""
    day = 86_400.0
    window = _make_trace(4_000, 5 * day, day, seed=3)
    rng = np.random.default_rng(7)
    t = np.arange(6 * 144)
    series = np.round(40 + 12 * np.sin(2 * np.pi * t / 144.0)
                      + rng.normal(0, 1.5, t.size))
    config = ServeConfig(
        lam=1.0,
        bin_seconds=600,
        horizon_bins=6,
        ces_features=ForecastFeatures(
            bin_seconds=600, lags=(1, 2, 3, 6, 144), windows=(6, 36)
        ),
        ces_gbdt=GBDTParams(n_estimators=50, max_depth=5, min_samples_leaf=10),
        ces_update_every=36,
        batch_window_s=600.0,
    )
    server = PredictionServer(config)
    server.install_qssf(qssf_history)
    server.install_ces(series[: 5 * 144], total_nodes=64)
    stream = EventStream.from_trace(
        window, "B", t0=5 * day, t1=6 * day, bin_seconds=600,
        demand=series[5 * 144 :],
    )

    t0 = time.perf_counter()
    report = server.run(stream)
    wall = time.perf_counter() - t0

    _bench_line(
        {
            "bench": "serve_mixed",
            "events": report.events,
            "wall_s": round(wall, 4),
            "events_per_s": round(report.events_per_s, 1),
            "node_samples": report.node_samples,
            "ces_p50_ms": round(report.ces_latency.p50_ms, 4),
            "ces_p99_ms": round(report.ces_latency.p99_ms, 4),
            "forecaster_updates": report.ces_summary.get("forecaster_updates", 0),
        },
        capsys,
    )
    assert report.node_samples == 144
    assert report.events_per_s >= 2_000
    assert report.ces_latency.p99_ms < 100.0


def test_obs_overhead_within_budget(qssf_history, capsys):
    """Serving with obs enabled must stay within 2% of obs-off wall time.

    Shared CI containers show 5-10% run-to-run wall noise on identical
    work, so a naive A/B of two runs cannot resolve a 2% budget.  The
    harness therefore (a) runs the arms as adjacent pairs and takes the
    median paired ratio — adjacent runs see the same load/frequency
    drift, and the median sheds contention spikes — and (b) runs an A/A
    control (off vs the next round's off) to measure the host's own
    same-config noise.  The budget is enforced to within that measured
    resolution: on a quiet machine the tolerance collapses to ~2%; on a
    noisy one the BENCH line still reports both numbers so regressions
    show up in the history even when the assert must stay lenient.
    """
    import gc
    import statistics

    day = 86_400.0
    window = _make_trace(2_000, 5 * day, day, seed=4)
    pairs = 20

    def once(enabled: bool) -> float:
        obs.reset()
        if enabled:
            obs.enable()
        else:
            obs.disable()
        server = PredictionServer(ServeConfig(lam=1.0, batch_window_s=600.0))
        server.install_qssf(qssf_history)
        stream = EventStream.from_trace(window, "B", t0=5 * day, t1=6 * day)
        gc.collect()
        gc.disable()
        t0 = time.perf_counter()
        server.run(stream)
        wall = time.perf_counter() - t0
        gc.enable()
        return wall

    try:
        once(False)  # warm caches outside the timed comparison
        once(True)
        offs, ons = [], []
        for _ in range(pairs):
            offs.append(once(False))
            ons.append(once(True))
    finally:
        obs.reset()
        obs.disable()

    overhead = statistics.median(
        on / off - 1.0 for off, on in zip(offs, ons)
    )
    noise = statistics.median(
        abs(offs[i + 1] / offs[i] - 1.0) for i in range(pairs - 1)
    )
    _bench_line(
        {
            "bench": "serve_obs_overhead",
            "wall_off_s": round(statistics.median(offs), 4),
            "wall_on_s": round(statistics.median(ons), 4),
            "overhead_pct": round(overhead * 100.0, 2),
            "aa_noise_pct": round(noise * 100.0, 2),
        },
        capsys,
    )
    assert overhead <= 0.02 + noise, (
        f"obs-on overhead {overhead:+.1%} exceeds the 2% budget plus the "
        f"host's measured A/A noise floor ({noise:.1%})"
    )
    # Hard ceiling: even a hopelessly noisy host cannot excuse this.
    assert overhead <= 0.25, (
        f"obs-on overhead {overhead:+.1%} is far beyond the 2% budget"
    )


#: shard scenario for the control-plane benches: small enough that a
#: worker's model fit stays a fraction of the streamed window
_NET_CLUSTERS = ("Venus", "Earth")
_NET_TASK = dict(history_days=14, stream_days=2.0, max_jobs=800)

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires os.fork")


def _net_arm(workers: int, queue_bound: int = 32):
    """One timed serve_clusters_net run; returns (events/s, wall, stats)."""
    from repro.experiments.serving import smoke_serve_config
    from repro.serve import serve_clusters_net

    t0 = time.perf_counter()
    reports, stats = serve_clusters_net(
        _NET_CLUSTERS, smoke_serve_config(), workers=workers,
        queue_bound=queue_bound, **_NET_TASK,
    )
    wall = time.perf_counter() - t0
    return sum(r.events for r in reports) / wall, wall, stats


@needs_fork
def test_net_loopback_scaling(capsys):
    """Loopback load generator: 2 workers must beat 1 by >= 1.7x on a
    multi-core host (each shard hashes to its own worker, so the two
    streams serve concurrently; the router stays a single thread)."""
    from repro.experiments import common

    for c in _NET_CLUSTERS:
        common.cluster_gpu_trace(c)  # warm outside the timed arms

    eps1, wall1, _ = _net_arm(workers=1)
    eps2, wall2, stats2 = _net_arm(workers=2)
    scale = eps2 / eps1
    cores = os.cpu_count() or 1
    _bench_line(
        {
            "bench": "serve_net_loopback",
            "events_per_s_1w": round(eps1, 1),
            "events_per_s_2w": round(eps2, 1),
            "wall_1w_s": round(wall1, 4),
            "wall_2w_s": round(wall2, 4),
            "scale": round(scale, 3),
            "cores": cores,
            "max_queue_depth": stats2.max_queue_depth,
        },
        capsys,
    )
    # The backpressure contract holds at any worker count.
    assert stats2.max_queue_depth <= 32
    if cores >= 2:
        assert scale >= 1.7, (
            f"2-worker loopback throughput only {scale:.2f}x the 1-worker "
            f"run on a {cores}-core host (>= 1.7x required)"
        )


@needs_fork
def test_net_router_overhead(capsys):
    """Socket routing must cost <= 10% wall vs direct fork dispatch.

    Same paired-median + A/A-noise-floor harness as the obs-overhead
    bench: both arms fork workers and fit the same models; the delta
    under test is framing, socket hops, and the router event loop.

    The 10% budget presumes the router's serialization overlaps with
    worker compute.  On a single-core host nothing overlaps — every
    pickle and syscall is additive on the one critical path — so the
    budget relaxes to 20% there (same reasoning as the cores gate on
    the scaling assert above); the hard ceiling applies regardless.
    """
    from repro.experiments import common
    from repro.experiments.serving import smoke_serve_config
    from repro.serve import serve_clusters

    for c in _NET_CLUSTERS:
        common.cluster_gpu_trace(c)

    def direct() -> float:
        t0 = time.perf_counter()
        serve_clusters(
            _NET_CLUSTERS, config=smoke_serve_config(), jobs=2, **_NET_TASK
        )
        return time.perf_counter() - t0

    def routed() -> float:
        return _net_arm(workers=2)[1]

    pairs = 3
    direct()  # warm both dispatch paths outside the timed comparison
    routed()
    directs, routeds = [], []
    for _ in range(pairs):
        directs.append(direct())
        routeds.append(routed())

    overhead = statistics.median(
        net / base - 1.0 for base, net in zip(directs, routeds)
    )
    noise = statistics.median(
        abs(directs[i + 1] / directs[i] - 1.0) for i in range(pairs - 1)
    )
    _bench_line(
        {
            "bench": "serve_net_overhead",
            "wall_direct_s": round(statistics.median(directs), 4),
            "wall_routed_s": round(statistics.median(routeds), 4),
            "overhead_pct": round(overhead * 100.0, 2),
            "aa_noise_pct": round(noise * 100.0, 2),
        },
        capsys,
    )
    budget = 0.10 if (os.cpu_count() or 1) >= 2 else 0.20
    assert overhead <= budget + noise, (
        f"router overhead {overhead:+.1%} exceeds the {budget:.0%} budget "
        f"plus the host's measured A/A noise floor ({noise:.1%})"
    )
    # Hard ceiling: even a hopelessly noisy host cannot excuse this.
    assert overhead <= 0.50, (
        f"router overhead {overhead:+.1%} is far beyond the {budget:.0%} budget"
    )


@needs_fork
def test_net_replication_fit_savings(capsys):
    """Central replication trains each refit once for the whole replica
    group; local mode trains it once *per replica*.  With K replicas and
    V refit versions the fit counts are exactly V vs K·V — deterministic,
    so the assert is on counts; the measured fit seconds ride along in
    the BENCH line as the CPU-savings evidence.

    The config forces real model work (lam=0.5 + a GBDT, unlike the
    smoke config whose lam=1.0 skips the learned half) and a buffered-
    observation refit trigger small enough to fire several versions
    inside the streamed window.
    """
    from dataclasses import replace

    from repro.experiments import common
    from repro.experiments.serving import smoke_serve_config
    from repro.serve import NetConfig, ShardTask
    from repro.serve.net import FrontDoor

    replicas = 3
    cfg = replace(
        smoke_serve_config(),
        lam=0.5,
        qssf_gbdt=GBDTParams(n_estimators=30, max_depth=4, min_samples_leaf=5),
        update_max_buffered=120,
    )
    common.cluster_gpu_trace("Venus")  # warm outside the timed arms

    def arm(replicate: str):
        tasks = [
            ShardTask(cluster="Venus", config=replace(cfg, replicate=replicate),
                      replica_index=j, replica_count=replicas, **_NET_TASK)
            for j in range(replicas)
        ]
        door = FrontDoor(tasks, net=NetConfig(workers=2, queue_bound=32))
        t0 = time.perf_counter()
        reports, stats = door.run()
        wall = time.perf_counter() - t0
        return reports, stats, door.router.hub, wall

    local_reports, _, _, local_wall = arm("local")
    central_reports, central_stats, hub, central_wall = arm("central")

    local_fits = sum(r.fits["qssf"]["count"] for r in local_reports)
    local_fit_s = sum(r.fits["qssf"]["seconds"] for r in local_reports)
    worker_fits = sum(r.fits["qssf"]["count"] for r in central_reports)
    hub_fits = hub.fits_performed("Venus", "qssf")
    hub_fit_s = hub.fit_seconds("Venus", "qssf")
    versions = central_reports[0].refits["qssf"]["refits"]

    _bench_line(
        {
            "bench": "serve_net_replication",
            "replicas": replicas,
            "refit_versions": versions,
            "fits_local": local_fits,
            "fits_central": worker_fits + hub_fits,
            "fit_s_local": round(local_fit_s, 4),
            "fit_s_central": round(hub_fit_s, 4),
            "wall_local_s": round(local_wall, 4),
            "wall_central_s": round(central_wall, 4),
            "snapshot_bytes": central_stats.snapshot_bytes,
        },
        capsys,
    )
    assert versions >= 2, "refit policy never fired — bench is vacuous"
    # Local mode pays K fits per version; central pays exactly one.
    assert local_fits == replicas * versions
    assert worker_fits == 0, "delegated replicas must not fit locally"
    assert hub_fits == versions
    assert central_stats.model_syncs == versions
    assert hub_fits + worker_fits <= local_fits // replicas, (
        f"central mode performed {hub_fits + worker_fits} fits vs "
        f"{local_fits} across {replicas} local replicas — no savings"
    )
