"""Forecaster benchmarks: cold (scratch) vs warm (incremental) fold cost.

Each test prints ``BENCH {json}`` lines forming the cross-PR trajectory
(grep the suite output for ``BENCH``):

* ``forecaster_fold`` — per-model rolling-origin evaluation on a
  synthetic seasonal series, scratch re-fits vs the ``update()`` path,
  with the score drift between the two (the warm band the incremental
  engine promises);
* ``gbdt_fit_fast_vs_reference`` — one GBDT fit through the fused
  histogram engine vs the scratch per-feature oracle, asserting the
  ≥3x floor the batched model-fit engine promises (the two ensembles
  are byte-identical, so the ratio is pure engine speedup);
* ``ablation_forecaster_e2e`` (slow) — the real §4.3.2 exhibit
  end-to-end, the chain that dominated ``run all`` before the
  incremental engine (PR 1 baseline: ~154 s of model fitting on the
  1-core container; warm target: ≤ 28 s).
"""

import json
import time

import numpy as np
import pytest

from repro.energy import GBDTSeriesForecaster
from repro.energy.forecaster import ForecastFeatures
from repro.ml import (
    ARIMAForecaster,
    FourierForecaster,
    GBDTParams,
    GBDTRegressor,
    HoltWintersForecaster,
    LSTMForecaster,
    LSTMParams,
    evaluate_forecaster,
)

PERIOD = 24
EVAL = dict(initial=720, horizon=PERIOD, step=2 * PERIOD)

_SMALL_FEATURES = ForecastFeatures(
    bin_seconds=3600, lags=(1, 2, 3, 24, 48), windows=(6, 24)
)

#: Bench-scale model zoo — same families as the §4.3.2 exhibit, sized so
#: the cold path stays inside the suite budget.
MODELS = {
    "GBDT": lambda: GBDTSeriesForecaster(features=_SMALL_FEATURES),
    "ARIMA": lambda: ARIMAForecaster(p=2 * PERIOD, d=0),
    "Fourier": lambda: FourierForecaster(periods=(PERIOD, 7 * PERIOD)),
    "HoltWinters": lambda: HoltWintersForecaster(season_length=PERIOD),
    "LSTM": lambda: LSTMForecaster(
        LSTMParams(window=PERIOD, hidden=12, epochs=6, update_epochs=2)
    ),
}


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(7)
    t = np.arange(960)
    return (
        30.0
        + 8.0 * np.sin(2 * np.pi * t / PERIOD)
        + 2.0 * np.sin(2 * np.pi * t / (7 * PERIOD))
        + rng.normal(0, 0.8, size=t.size)
    )


@pytest.mark.parametrize("name", list(MODELS))
def test_fold_cost_cold_vs_warm(name, series, capsys):
    factory = MODELS[name]
    t0 = time.perf_counter()
    cold_score = evaluate_forecaster(factory, series, mode="scratch", **EVAL)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_score = evaluate_forecaster(factory, series, mode="auto", **EVAL)
    warm_s = time.perf_counter() - t0

    # correctness guard rails alongside the timing trajectory: the warm
    # path must stay in a tight band of the scratch oracle, and the
    # exact-protocol models must match it outright.
    if name in ("ARIMA", "Fourier", "HoltWinters"):
        assert warm_score == pytest.approx(cold_score, rel=0.05)
    else:
        assert abs(warm_score - cold_score) / cold_score < 0.30
    # warm may never meaningfully cost more than scratch (absolute slack
    # covers scheduler jitter on the sub-10 ms models)
    assert warm_s <= cold_s * 1.10 + 0.05

    with capsys.disabled():
        print()
        print(
            "BENCH "
            + json.dumps(
                {
                    "bench": "forecaster_fold",
                    "model": name,
                    "cold_s": round(cold_s, 4),
                    "warm_s": round(warm_s, 4),
                    "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
                    "cold_smape": round(cold_score, 4),
                    "warm_smape": round(warm_score, 4),
                },
                sort_keys=True,
            )
        )


def test_gbdt_fit_fast_vs_reference(capsys):
    """Fused-histogram GBDT fit vs the per-feature reference oracle.

    The shape mirrors the experiment-scale QSSF/CES fits (a few hundred
    rows, ~two dozen features, depth-6 trees): per-feature numpy call
    overhead dominates the reference there, which is exactly what the
    fused single-``bincount`` level pass plus frontier pruning removes.
    The ≥3x floor is the batched model-fit engine's acceptance bar; the
    byte-parity assert keeps the ratio honest (same trees, same floats).
    """
    rng = np.random.default_rng(7)
    X = rng.normal(size=(300, 24))
    y = rng.normal(size=300)
    params = GBDTParams(
        n_estimators=60, learning_rate=0.2, max_depth=6, min_samples_leaf=30
    )

    def best_of(factory, reps=3):
        times, model = [], None
        for _ in range(reps):
            t0 = time.perf_counter()
            model = factory().fit(X, y)
            times.append(time.perf_counter() - t0)
        return min(times), model

    ref_s, ref = best_of(lambda: GBDTRegressor(params, mode="reference"))
    fast_s, fast = best_of(lambda: GBDTRegressor(params, mode="fast"))
    np.testing.assert_array_equal(fast.predict(X), ref.predict(X))
    speedup = ref_s / fast_s
    with capsys.disabled():
        print()
        print(
            "BENCH "
            + json.dumps(
                {
                    "bench": "gbdt_fit_fast_vs_reference",
                    "reference_s": round(ref_s, 4),
                    "fast_s": round(fast_s, 4),
                    "speedup": round(speedup, 2),
                },
                sort_keys=True,
            )
        )
    assert speedup >= 3.0, f"fused fit engine below the 3x floor: {speedup:.2f}x"


@pytest.mark.slow
def test_ablation_forecaster_e2e(benchmark, capsys):
    """The §4.3.2 exhibit end-to-end through the incremental engine.

    PR 1 baseline on the 1-core container: ~154 s of model evaluation
    (GBDT ~75 s + LSTM ~75 s dominating).  The incremental engine's
    acceptance target is ≤ 28 s; the assert leaves headroom for slow CI
    hosts while still catching a regression to scratch re-fitting.
    """
    from repro.experiments import run_experiment
    from repro.experiments.common import full_replay

    full_replay("Earth")  # warm the precursor outside the clock
    payload = benchmark.pedantic(
        run_experiment, args=("ablation_forecaster",), rounds=1, iterations=1
    )
    seconds = benchmark.stats.stats.mean
    scores = payload["scores"]
    with capsys.disabled():
        print()
        print(payload.get("text", ""))
        print(
            "BENCH "
            + json.dumps(
                {
                    "bench": "ablation_forecaster_e2e",
                    "seconds": round(seconds, 2),
                    "scores": {k: round(v, 3) for k, v in sorted(scores.items())},
                },
                sort_keys=True,
            )
        )
    assert seconds < 60.0, "incremental engine regression: exhibit too slow"
    # §4.3.2 headline: GBDT is the strongest model class.
    assert scores["GBDT"] == min(scores.values()), scores