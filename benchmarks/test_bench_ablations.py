"""Ablation benches for the design choices DESIGN.md calls out."""


def test_lambda(run_exhibit):
    payload = run_exhibit("ablation_lambda")
    rows = {r["lambda"]: r for r in payload["table"].iter_rows()}
    # Every λ beats nothing being predicted — and no blend should be an
    # outlier: all λ land within a reasonable band of the best.
    best = min(r["avg_jct_s"] for r in rows.values())
    for lam, row in rows.items():
        assert row["avg_jct_s"] < 5.0 * best, f"λ={lam} pathological"


def test_forecaster_models(run_exhibit):
    payload = run_exhibit("ablation_forecaster")
    scores = payload["scores"]
    # §4.3.2: GBDT performed best among the model classes tried.  Allow
    # it to be edged out only by a small margin on a given seed.
    best = min(scores.values())
    assert scores["GBDT"] <= 1.5 * best, scores
    assert scores["GBDT"] < 25.0, scores


def test_ces_buffer(run_exhibit):
    payload = run_exhibit("ablation_buffer")
    rows = sorted(payload["table"].iter_rows(), key=lambda r: r["sigma_frac"])
    # Larger σ buffers park fewer nodes (monotone trade-off).
    parked = [r["avg_parked"] for r in rows]
    assert parked[0] >= parked[-1] - 1e-9


def test_oracle_gap(run_exhibit):
    payload = run_exhibit("ablation_oracle")
    rows = {r["policy"]: r for r in payload["table"].iter_rows()}
    # Predicted QSSF sits between FIFO and the oracle ranking.
    assert rows["QSSF(predicted)"]["avg_jct_s"] < rows["FIFO"]["avg_jct_s"]
    assert (
        rows["QSSF(oracle gpu-time)"]["avg_jct_s"]
        <= rows["QSSF(predicted)"]["avg_jct_s"] * 1.5
    )
