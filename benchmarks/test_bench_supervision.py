"""Supervision-overhead benchmark.

``BENCH {json}`` line ``supervision_overhead``: the same fault-free
fan-out run bare (:func:`run_forked`) and supervised
(:func:`run_supervised` — heartbeats, timeouts, retry accounting).
The acceptance ceiling is 5% wall-clock overhead: supervision must be
cheap enough to be the default for serving shards.
"""

import json
import time

import pytest

from repro.framework import Supervision, fork_available, run_forked, run_supervised

_ITEMS = [0.75, 0.75, 0.75, 0.75]
_JOBS = 4

SUP = Supervision(
    timeout_s=30.0, heartbeat_timeout_s=10.0, max_retries=0,
    backoff_base_s=0.001, poll_interval_s=0.01,
)


def _sleep_task(seconds):
    # sleep-dominated work: any supervision cost shows up as pure overhead
    time.sleep(seconds)
    return seconds


@pytest.mark.skipif(not fork_available(), reason="requires os.fork")
def test_supervision_overhead_within_5_percent(capsys):
    # warm both pools once so fork/import costs don't skew either side
    run_forked(_sleep_task, [0.0, 0.0], jobs=2)
    run_supervised(_sleep_task, [0.0, 0.0], jobs=2, supervision=SUP)

    t0 = time.perf_counter()
    bare = run_forked(_sleep_task, _ITEMS, jobs=_JOBS)
    t_forked = time.perf_counter() - t0

    t0 = time.perf_counter()
    supervised = run_supervised(_sleep_task, _ITEMS, jobs=_JOBS, supervision=SUP)
    t_sup = time.perf_counter() - t0

    assert supervised == bare == _ITEMS
    overhead = t_sup / t_forked - 1.0
    with capsys.disabled():
        print()
        print("BENCH " + json.dumps({
            "bench": "supervision_overhead",
            "items": len(_ITEMS),
            "jobs": _JOBS,
            "forked_s": round(t_forked, 4),
            "supervised_s": round(t_sup, 4),
            "overhead_pct": round(100.0 * overhead, 2),
        }, sort_keys=True))
    assert t_sup <= 1.05 * t_forked, (
        f"supervised fan-out took {t_sup:.3f}s vs {t_forked:.3f}s bare "
        f"({100 * overhead:.1f}% overhead, ceiling is 5%)"
    )
