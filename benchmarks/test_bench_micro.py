"""Micro-benchmarks of the substrates (hpc-parallel guide: measure!).

These use multi-round timing (unlike the exhibit benches) so regressions
in the hot paths — histogram split search, event loop, trace synthesis,
interval rasterization — show up as timing changes.
"""

import numpy as np
import pytest

from repro.ml import Binner, GBDTParams, GBDTRegressor, levenshtein
from repro.sched import SJFScheduler
from repro.sim import Simulator
from repro.stats import TimeGrid, interval_load
from repro.traces import (
    ClusterSpec,
    HeliosTraceGenerator,
    SynthParams,
    VCSpec,
    is_gpu_job,
)
from repro.frame import Table


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(20_000, 10))
    y = X[:, 0] * 2 + np.sin(X[:, 1]) + rng.normal(0, 0.1, 20_000)
    return X, y


def test_gbdt_fit_20k(benchmark, regression_data):
    X, y = regression_data
    params = GBDTParams(n_estimators=20, max_depth=6)
    model = benchmark(lambda: GBDTRegressor(params).fit(X, y))
    assert model.staged_mse()[-1] < np.var(y)


def test_gbdt_predict_20k(benchmark, regression_data):
    X, y = regression_data
    model = GBDTRegressor(GBDTParams(n_estimators=20)).fit(X, y)
    out = benchmark(model.predict, X)
    assert out.shape == (20_000,)


def test_binner_transform(benchmark, regression_data):
    X, _ = regression_data
    binner = Binner(max_bins=256).fit(X)
    out = benchmark(binner.transform, X)
    assert out.shape == X.shape


def test_trace_generation_one_month(benchmark):
    def gen():
        g = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=1))
        return g.generate_cluster("Venus")

    trace = benchmark(gen)
    assert len(trace) > 100


def test_simulator_throughput(benchmark):
    spec = ClusterSpec(
        name="B", gpus_per_node=8,
        vcs=(VCSpec("vc0", num_nodes=8, gpus_per_node=8),),
    )
    rng = np.random.default_rng(0)
    n = 20_000
    trace = Table(
        {
            "job_id": np.char.add("j", np.arange(n).astype("U8")),
            "cluster": np.full(n, "B"),
            "vc": np.full(n, "vc0"),
            "user": np.full(n, "u"),
            "name": np.full(n, "x"),
            "gpu_num": 2 ** rng.integers(0, 4, n),
            "cpu_num": np.ones(n, dtype=np.int64),
            "node_num": np.ones(n, dtype=np.int64),
            "submit_time": np.sort(rng.integers(0, 30 * 86_400, n)),
            "duration": rng.lognormal(5.0, 1.5, n),
            "status": np.full(n, "completed"),
        }
    )
    result = benchmark(lambda: Simulator(spec, SJFScheduler(), collect_node_intervals=False).run(trace))
    assert len(result.start_times) == n


def test_interval_load_rasterization(benchmark):
    rng = np.random.default_rng(0)
    n = 200_000
    starts = rng.uniform(0, 1e6, n)
    ends = starts + rng.uniform(1, 1e4, n)
    weights = rng.integers(1, 9, n).astype(float)
    grid = TimeGrid(0.0, 600.0, 2000)
    out = benchmark(interval_load, grid, starts, ends, weights)
    assert out.shape == (2000,)


def test_levenshtein_throughput(benchmark):
    rng = np.random.default_rng(0)
    alphabet = list("abcdefghij_")
    names = ["".join(rng.choice(alphabet, 20)) for _ in range(200)]

    def run():
        total = 0
        for a, b in zip(names[:-1], names[1:]):
            total += levenshtein(a, b)
        return total

    total = benchmark(run)
    assert total > 0
