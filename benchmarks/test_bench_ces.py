"""Benches regenerating the CES exhibits (Figs 14-15, Table 5).

Shape assertions follow §4.3.3: the forecast tracks demand closely, CES
parks idle nodes (raising node utilization by several points), wakes
nodes only a few times a day, and beats reactive DRS on churn/impact.
"""

import numpy as np


def test_fig14(run_exhibit):
    payload = run_exhibit("fig14")
    rep = payload["report"]
    # prediction tracks the actual running-node series
    assert rep.smape_forecast < 15.0
    # active pool always covers demand and parks something
    assert np.all(payload["active"] >= payload["demand"])
    assert rep.ces.avg_parked_nodes > 0.3


def test_fig15(run_exhibit):
    payload = run_exhibit("fig15")
    rep = payload["report"]
    assert rep.smape_forecast < 20.0
    assert np.all(payload["active"] >= payload["demand"])
    # Philly is the most under-utilized cluster: plenty to park (paper:
    # >100 of 552 nodes; proportionally here).
    assert rep.ces.avg_parked_nodes / rep.total_nodes > 0.05


def test_table5(run_exhibit):
    payload = run_exhibit("table5")
    rows = {r["cluster"]: r for r in payload["table"].iter_rows()}
    for cluster, row in rows.items():
        assert row["util_ces_%"] >= row["util_original_%"] - 1e-9, cluster
        assert row["daily_wake_ups"] < 20.0, cluster
        # predictive CES never churns more than reactive DRS
        assert row["daily_wake_ups"] <= row["vanilla_wakes_per_day"] + 1e-9, cluster
        assert row["affected_jobs"] <= row["vanilla_affected"], cluster
    # Philly gains the most node utilization (paper: 69% -> 90%).
    philly_gain = rows["Philly"]["util_ces_%"] - rows["Philly"]["util_original_%"]
    assert philly_gain > 3.0
    assert payload["annual_saved_kwh"] > 0
