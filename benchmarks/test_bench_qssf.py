"""Benches regenerating the QSSF exhibits (Figs 11-13, Tables 3-4).

Shape assertions follow §4.2.3: QSSF ≈ SJF ≫ FIFO on JCT and queueing;
every duration group benefits, short jobs the most; per-VC delays
collapse under QSSF.
"""

import numpy as np


def test_fig11(run_exhibit):
    payload = run_exhibit("fig11")
    curves = payload["curves"]
    for cluster in ("Venus", "Earth", "Saturn", "Uranus"):
        xs_f, ys_f = curves[(cluster, "FIFO")]
        xs_q, ys_q = curves[(cluster, "QSSF")]
        # QSSF's JCT CDF sits left of FIFO's: at FIFO's median JCT the
        # QSSF CDF has more mass.
        med_f = xs_f[np.searchsorted(ys_f, 0.5)]
        q_at = ys_q[min(np.searchsorted(xs_q, med_f), len(ys_q) - 1)]
        assert q_at >= 0.5


def test_table3(run_exhibit):
    payload = run_exhibit("table3")
    jct_imp = payload["jct_improvement"]
    queue_imp = payload["queue_improvement"]
    for cluster, imp in jct_imp.items():
        assert imp > 1.2, f"{cluster}: QSSF JCT improvement {imp:.2f}x"
    for cluster, imp in queue_imp.items():
        assert imp > 2.0, f"{cluster}: QSSF queue improvement {imp:.2f}x"
    # QSSF is comparable with oracle SJF (paper: sometimes better).
    m = payload["metrics"]
    for cluster in ("Venus", "Earth", "Saturn", "Uranus", "Philly"):
        assert m[(cluster, "QSSF")].avg_jct < 3.0 * m[(cluster, "SJF")].avg_jct


def test_table4(run_exhibit):
    payload = run_exhibit("table4")
    for row in payload["table"].iter_rows():
        # every group benefits; short-term jobs benefit the most
        assert row["short-term"] > 1.0
        assert row["short-term"] >= row["long-term"]


def test_fig12(run_exhibit):
    payload = run_exhibit("fig12")
    t = payload["table"]
    fifo = t["FIFO"]
    qssf = t["QSSF"]
    # Summed over the top VCs, QSSF slashes FIFO's queueing delay.
    assert qssf.sum() < 0.6 * fifo.sum()


def test_fig13(run_exhibit):
    payload = run_exhibit("fig13")
    t = payload["table"]
    assert t["QSSF"].sum() < t["FIFO"].sum()
