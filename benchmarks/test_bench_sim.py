"""Simulator-core benchmarks: fast vs reference replay throughput.

``BENCH {json}`` lines (grep the suite output for ``BENCH``):

* ``sim_replay`` — a synthetic ~50k-job multi-VC trace replayed under
  FIFO and the preemptive SRTF baseline through both engines; reports
  events/s each and the speedup.  The acceptance floor is a **3x**
  fast-vs-reference throughput ratio (the array-backed core typically
  lands 5-10x), asserted per policy, with byte-parity re-checked on the
  same run.
* ``sim_table3`` — end-to-end wall time of the heaviest replay-driven
  exhibit (``table3``: September replays of all four Helios clusters
  plus Philly under three policies) — the fast core's effect on the
  ``run all`` critical path.
"""

import json
import time

import numpy as np
import pytest

from repro.frame import Table
from repro.sched import FIFOScheduler, SRTFScheduler
from repro.sim import Simulator
from repro.traces import ClusterSpec, VCSpec

_N_JOBS = 50_000
_N_VCS = 4
_NODES_PER_VC = 12
_GPN = 8


def _bench_line(payload: dict, capsys) -> None:
    with capsys.disabled():
        print()
        print("BENCH " + json.dumps(payload, sort_keys=True))


@pytest.fixture(scope="module")
def spec():
    return ClusterSpec(
        name="B",
        gpus_per_node=_GPN,
        vcs=tuple(
            VCSpec(f"vc{i}", num_nodes=_NODES_PER_VC, gpus_per_node=_GPN)
            for i in range(_N_VCS)
        ),
    )


@pytest.fixture(scope="module")
def trace():
    """~50k jobs over ~30 synthetic days: bursty arrivals (many
    same-timestamp collisions), mixed demands, VC skew — enough load to
    keep the queues deep and the placement path hot."""
    rng = np.random.default_rng(11)
    n = _N_JOBS
    submit = np.sort(rng.integers(0, 30 * 86_400 // 60, n) * 60).astype(np.int64)
    gpus = rng.choice([1, 1, 1, 2, 2, 4, 8, 16], n)
    duration = np.round(rng.lognormal(7.2, 1.4, n), 1)
    return Table(
        {
            "job_id": np.array([f"j{i}" for i in range(n)]),
            "cluster": np.full(n, "B"),
            "vc": np.array(
                [f"vc{v}" for v in rng.choice(_N_VCS, n, p=[0.4, 0.3, 0.2, 0.1])]
            ),
            "user": np.array([f"u{u}" for u in rng.integers(0, 30, n)]),
            "name": np.array([f"job_{m}" for m in rng.integers(0, 50, n)]),
            "gpu_num": gpus.astype(np.int64),
            "cpu_num": (gpus * 5).astype(np.int64),
            "node_num": np.maximum(1, -(-gpus // _GPN)).astype(np.int64),
            "submit_time": submit,
            "duration": duration,
            "status": np.full(n, "completed"),
        }
    )


@pytest.mark.parametrize("sched_cls", [FIFOScheduler, SRTFScheduler])
def test_replay_throughput_floor(spec, trace, sched_cls, capsys):
    """Fast engine >= 3x the reference on the same synthetic workload."""
    t0 = time.perf_counter()
    ref = Simulator(spec, sched_cls(), mode="reference").run(trace)
    ref_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = Simulator(spec, sched_cls()).run(trace)
    fast_wall = time.perf_counter() - t0

    # replays process one arrival + one finish per job (plus preemption
    # re-runs); count events from the telemetry-backed outcome
    events = 2 * len(trace) + 2 * int(fast.preemptions.sum())
    speedup = ref_wall / fast_wall
    _bench_line(
        {
            "bench": "sim_replay",
            "policy": sched_cls.name,
            "jobs": len(trace),
            "events": events,
            "ref_wall_s": round(ref_wall, 3),
            "fast_wall_s": round(fast_wall, 3),
            "ref_events_per_s": round(events / ref_wall, 1),
            "fast_events_per_s": round(events / fast_wall, 1),
            "speedup": round(speedup, 2),
        },
        capsys,
    )
    # same run doubles as a cluster-scale parity check
    assert fast.start_times.tobytes() == ref.start_times.tobytes()
    assert fast.end_times.tobytes() == ref.end_times.tobytes()
    assert fast.preemptions.tobytes() == ref.preemptions.tobytes()
    for col in ("node", "start", "end", "gpus"):
        assert (
            fast.node_intervals[col].tobytes() == ref.node_intervals[col].tobytes()
        )
    assert speedup >= 3.0, (
        f"fast engine only {speedup:.2f}x the reference "
        f"({events / fast_wall:.0f} vs {events / ref_wall:.0f} ev/s); "
        "the acceptance floor is 3x"
    )


@pytest.mark.slow
def test_table3_end_to_end(capsys):
    """Wall time of the heaviest replay-funnel exhibit, fast engine."""
    from repro.experiments import run_experiment

    t0 = time.perf_counter()
    payload = run_experiment("table3")
    wall = time.perf_counter() - t0
    _bench_line(
        {"bench": "sim_table3", "wall_s": round(wall, 2)},
        capsys,
    )
    with capsys.disabled():
        print(payload.get("text", "(no text)"))
    assert "text" in payload
