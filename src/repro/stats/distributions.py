"""Distribution utilities: empirical CDFs and calibrated samplers.

The synthetic trace generator expresses the paper's reported marginals
(duration CDFs in Figs 1/5, size CDFs in Fig 6, status mixes in Fig 7)
through the primitives here: truncated log-normals, log-normal mixtures,
discrete categorical samplers, and empirical CDFs for comparing the result
back against the targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = [
    "EmpiricalCDF",
    "LogNormal",
    "LogNormalMixture",
    "Categorical",
    "powerlaw_weights",
]


class EmpiricalCDF:
    """Empirical CDF of a sample; evaluable at arbitrary points.

    >>> cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
    >>> float(cdf(2.5))
    0.5
    """

    def __init__(self, sample: Sequence[float]) -> None:
        arr = np.asarray(sample, dtype=float)
        arr = arr[~np.isnan(arr)]
        if arr.size == 0:
            raise ValueError("empty sample")
        self.sorted = np.sort(arr)
        self.n = arr.size

    def __call__(self, x: float | np.ndarray) -> np.ndarray:
        """Fraction of the sample <= x."""
        return np.searchsorted(self.sorted, np.asarray(x), side="right") / self.n

    def quantile(self, q: float | np.ndarray) -> np.ndarray:
        """Inverse CDF via linear interpolation."""
        return np.quantile(self.sorted, q)

    def median(self) -> float:
        return float(np.median(self.sorted))

    def mean(self) -> float:
        return float(self.sorted.mean())

    def curve(self, points: int = 200, log_x: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F(x))`` suitable for plotting/reporting a CDF.

        With ``log_x`` the evaluation grid is log-spaced between the sample
        extremes — matching how the paper draws duration CDFs (log x-axis).
        """
        lo = max(self.sorted[0], 1e-9)
        hi = max(self.sorted[-1], lo * (1 + 1e-9))
        if log_x:
            xs = np.geomspace(lo, hi, points)
        else:
            xs = np.linspace(self.sorted[0], hi, points)
        return xs, self(xs)


@dataclass(frozen=True)
class LogNormal:
    """Log-normal with optional truncation, parameterized by the median
    and sigma of the underlying normal (median = exp(mu))."""

    median: float
    sigma: float
    low: float = 0.0
    high: float = np.inf

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        mu = np.log(self.median)
        out = rng.lognormal(mean=mu, sigma=self.sigma, size=size)
        if self.low > 0.0 or np.isfinite(self.high):
            out = np.clip(out, self.low, self.high)
        return out


@dataclass(frozen=True)
class LogNormalMixture:
    """Weighted mixture of truncated log-normals.

    Job durations in GPU datacenters are multi-modal: second-scale debug
    jobs, minute-scale evaluation jobs, hour-to-day training jobs.  A
    mixture captures the long straight stretches of the paper's log-x CDFs.
    """

    components: tuple[LogNormal, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ValueError("components and weights must align")
        total = float(sum(self.weights))
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"weights must sum to 1, got {total}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choice = rng.choice(len(self.components), size=size, p=list(self.weights))
        out = np.empty(size, dtype=float)
        for idx, comp in enumerate(self.components):
            mask = choice == idx
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample(rng, count)
        return out


@dataclass(frozen=True)
class Categorical:
    """Discrete distribution over arbitrary values."""

    values: tuple
    probs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.probs):
            raise ValueError("values and probs must align")
        total = float(sum(self.probs))
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"probs must sum to 1, got {total}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        idx = rng.choice(len(self.values), size=size, p=list(self.probs))
        return np.asarray(self.values)[idx]

    def prob_of(self, value) -> float:
        for v, p in zip(self.values, self.probs):
            if v == value:
                return p
        return 0.0


def powerlaw_weights(n: int, alpha: float, rng: np.random.Generator | None = None) -> np.ndarray:
    """Normalized Zipf-like weights: w_i ∝ (i+1)^-alpha, optionally shuffled.

    Models heavy-tailed per-user activity (top 5% of users holding ~half of
    GPU time, Fig 8).  Larger ``alpha`` = heavier concentration.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-alpha)
    w /= w.sum()
    if rng is not None:
        rng.shuffle(w)
    return w
