"""Interval/event series -> regular time series, plus rolling helpers.

The simulator and the characterization code both need to turn "job i held
g GPUs on cluster c during [start, end)" into regular per-minute / per-hour
utilization series, and the CES service needs rolling trends over node
series.  Everything here is vectorized with ``np.add.at`` difference
arrays — O(jobs + bins), not O(jobs × bins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TimeGrid",
    "interval_load",
    "interval_concurrency",
    "rolling_mean",
    "rolling_std",
    "hourly_profile",
    "resample_mean",
]


@dataclass(frozen=True)
class TimeGrid:
    """A regular grid ``[t0, t0+dt, ...)`` of ``bins`` intervals."""

    t0: float
    dt: float
    bins: int

    @classmethod
    def covering(cls, t0: float, t1: float, dt: float) -> "TimeGrid":
        if t1 <= t0:
            raise ValueError("t1 must be > t0")
        bins = int(np.ceil((t1 - t0) / dt))
        return cls(t0=t0, dt=dt, bins=bins)

    @property
    def edges(self) -> np.ndarray:
        return self.t0 + self.dt * np.arange(self.bins + 1)

    @property
    def centers(self) -> np.ndarray:
        return self.t0 + self.dt * (np.arange(self.bins) + 0.5)

    def index_of(self, t: np.ndarray) -> np.ndarray:
        """Bin index of each timestamp (clipped to the grid)."""
        idx = np.floor((np.asarray(t) - self.t0) / self.dt).astype(np.int64)
        return np.clip(idx, 0, self.bins - 1)


def interval_load(
    grid: TimeGrid,
    starts: np.ndarray,
    ends: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Average weighted load per grid bin from half-open intervals.

    Each interval ``[s, e)`` contributes ``weight * overlap_fraction`` to
    every bin it overlaps, where ``overlap_fraction`` is the overlapped
    share of the bin width.  This yields e.g. "mean busy GPUs per minute".
    Implemented by splitting each interval into (full bins via a diff
    array) + (fractional first/last bin contributions).
    """
    s = np.asarray(starts, dtype=float)
    e = np.asarray(ends, dtype=float)
    if s.shape != e.shape:
        raise ValueError("starts/ends shape mismatch")
    w = np.ones_like(s) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != s.shape:
        raise ValueError("weights shape mismatch")

    t_lo, t_hi = grid.t0, grid.t0 + grid.dt * grid.bins
    s = np.clip(s, t_lo, t_hi)
    e = np.clip(e, t_lo, t_hi)
    valid = e > s
    s, e, w = s[valid], e[valid], w[valid]
    if s.size == 0:
        return np.zeros(grid.bins)

    # Accumulate weighted *time* per bin, then divide by dt at the end.
    acc = np.zeros(grid.bins + 1)
    first = np.floor((s - t_lo) / grid.dt).astype(np.int64)
    last = np.ceil((e - t_lo) / grid.dt).astype(np.int64) - 1
    first = np.clip(first, 0, grid.bins - 1)
    last = np.clip(last, 0, grid.bins - 1)

    single = first == last  # interval inside one bin
    if np.any(single):
        dur = e[single] - s[single]
        np.add.at(acc, first[single], w[single] * dur)

    multi = ~single
    if np.any(multi):
        fs, ls = first[multi], last[multi]
        sm, em, wm = s[multi], e[multi], w[multi]
        # Fractional head: from s to the end of its bin.
        head = (t_lo + (fs + 1) * grid.dt) - sm
        np.add.at(acc, fs, wm * head)
        # Fractional tail: from the start of the last bin to e.
        tail = em - (t_lo + ls * grid.dt)
        np.add.at(acc, ls, wm * tail)
        # Full bins in between, via a difference array over [fs+1, ls).
        dacc = np.zeros(grid.bins + 1)
        np.add.at(dacc, fs + 1, wm * grid.dt)
        np.add.at(dacc, ls, -wm * grid.dt)
        acc[: grid.bins] += np.cumsum(dacc)[: grid.bins]

    return acc[: grid.bins] / grid.dt


def interval_concurrency(
    grid: TimeGrid,
    starts: np.ndarray,
    ends: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Instantaneous weighted concurrency sampled at bin *starts*.

    Counts intervals covering each bin-left-edge (e.g. "nodes busy at time
    t"), which is what Figures 14/15 plot for running nodes.
    """
    s = np.asarray(starts, dtype=float)
    e = np.asarray(ends, dtype=float)
    w = np.ones_like(s) if weights is None else np.asarray(weights, dtype=float)
    out = np.zeros(grid.bins + 1)
    edges = grid.edges[:-1]
    i0 = np.searchsorted(edges, s, side="left")
    i1 = np.searchsorted(edges, e, side="left")
    keep = i1 > i0
    np.add.at(out, i0[keep], w[keep])
    np.add.at(out, i1[keep], -w[keep])
    return np.cumsum(out)[: grid.bins]


def rolling_mean(x: np.ndarray, window: int) -> np.ndarray:
    """Trailing-window mean; first ``window-1`` entries use partial windows."""
    x = np.asarray(x, dtype=float)
    if window <= 0:
        raise ValueError("window must be positive")
    c = np.cumsum(np.insert(x, 0, 0.0))
    n = len(x)
    idx = np.arange(1, n + 1)
    lo = np.maximum(idx - window, 0)
    return (c[idx] - c[lo]) / (idx - lo)


def rolling_std(x: np.ndarray, window: int) -> np.ndarray:
    """Trailing-window standard deviation (population)."""
    x = np.asarray(x, dtype=float)
    m = rolling_mean(x, window)
    m2 = rolling_mean(x * x, window)
    return np.sqrt(np.maximum(m2 - m * m, 0.0))


def hourly_profile(times: np.ndarray, values: np.ndarray | None = None) -> np.ndarray:
    """Average value (or event count) per hour-of-day (length-24 array).

    ``times`` are epoch seconds; the hour is computed in the trace's local
    timezone convention (the generator emits local-midnight-aligned epochs).
    """
    hours = (np.asarray(times, dtype=np.int64) // 3600) % 24
    if values is None:
        return np.bincount(hours, minlength=24).astype(float)
    sums = np.bincount(hours, weights=np.asarray(values, dtype=float), minlength=24)
    counts = np.bincount(hours, minlength=24)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


def resample_mean(x: np.ndarray, factor: int) -> np.ndarray:
    """Downsample by averaging consecutive blocks of ``factor`` samples."""
    x = np.asarray(x, dtype=float)
    if factor <= 0:
        raise ValueError("factor must be positive")
    n = (len(x) // factor) * factor
    if n == 0:
        return np.empty(0)
    return x[:n].reshape(-1, factor).mean(axis=1)
