"""Forecast / regression error metrics.

SMAPE is the headline metric of §4.3.2 (the paper reports ~3.6% SMAPE for
the GBDT node forecaster on Earth); the rest support model comparison in
the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["smape", "mape", "mae", "rmse", "r2_score", "quantile_abs_error"]


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(y_true, dtype=float)
    p = np.asarray(y_pred, dtype=float)
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("empty input")
    return t, p


def smape(y_true, y_pred) -> float:
    """Symmetric Mean Absolute Percentage Error, in percent (0..200).

    SMAPE = 100/n * sum(|p - t| / ((|t| + |p|) / 2)); terms where both
    values are zero contribute zero error.
    """
    t, p = _pair(y_true, y_pred)
    denom = (np.abs(t) + np.abs(p)) / 2.0
    err = np.zeros_like(t)
    nz = denom > 0
    err[nz] = np.abs(p[nz] - t[nz]) / denom[nz]
    return float(100.0 * err.mean())


def mape(y_true, y_pred) -> float:
    """Mean Absolute Percentage Error in percent; zero-true terms skipped."""
    t, p = _pair(y_true, y_pred)
    nz = t != 0
    if not np.any(nz):
        raise ValueError("MAPE undefined: all true values are zero")
    return float(100.0 * np.mean(np.abs((p[nz] - t[nz]) / t[nz])))


def mae(y_true, y_pred) -> float:
    t, p = _pair(y_true, y_pred)
    return float(np.mean(np.abs(p - t)))


def rmse(y_true, y_pred) -> float:
    t, p = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((p - t) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 1.0 = perfect, 0.0 = mean predictor."""
    t, p = _pair(y_true, y_pred)
    ss_res = float(np.sum((t - p) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def quantile_abs_error(y_true, y_pred, q: float = 0.9) -> float:
    """q-quantile of absolute errors (tail-error summary)."""
    t, p = _pair(y_true, y_pred)
    return float(np.quantile(np.abs(p - t), q))
