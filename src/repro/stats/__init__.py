"""Statistics substrate: distributions, time series, and error metrics."""

from .distributions import (
    Categorical,
    EmpiricalCDF,
    LogNormal,
    LogNormalMixture,
    powerlaw_weights,
)
from .metrics import mae, mape, quantile_abs_error, r2_score, rmse, smape
from .timeseries import (
    TimeGrid,
    hourly_profile,
    interval_concurrency,
    interval_load,
    resample_mean,
    rolling_mean,
    rolling_std,
)

__all__ = [
    "Categorical",
    "EmpiricalCDF",
    "LogNormal",
    "LogNormalMixture",
    "powerlaw_weights",
    "smape",
    "mape",
    "mae",
    "rmse",
    "r2_score",
    "quantile_abs_error",
    "TimeGrid",
    "interval_load",
    "interval_concurrency",
    "rolling_mean",
    "rolling_std",
    "hourly_profile",
    "resample_mean",
]
