"""The prediction-based framework's service abstraction (§4.1, Fig 10).

A *service* is a plug-and-play unit that (a) fits a prediction model
from historical data, (b) predicts upcoming job/cluster behaviour, and
(c) converts predictions into resource-management actions.  The Model
Update Engine periodically refits services on fresh history; the
Resource Orchestrator invokes them at decision points.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = ["PredictionService"]


class PredictionService(ABC):
    """Base class for framework services (QSSF and CES are instances)."""

    #: unique key used by the registry / orchestrator
    service_name: str = "base"

    @abstractmethod
    def fit(self, history: Any) -> "PredictionService":
        """(Re)train the service's prediction model from history."""

    @abstractmethod
    def predict(self, request: Any) -> Any:
        """Forecast upcoming events (job durations, node demand, ...)."""

    @abstractmethod
    def act(self, state: Any) -> Any:
        """Turn predictions into a resource-management decision."""

    def observe(self, event: Any) -> None:
        """Ingest one run-time observation (finished job, node sample).

        Default: no-op.  The Model Update Engine calls this between
        refits so cheap online statistics stay fresh.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} service={self.service_name!r}>"
