"""The prediction-based framework's service abstraction (§4.1, Fig 10).

A *service* is a plug-and-play unit that (a) fits a prediction model
from historical data, (b) predicts upcoming job/cluster behaviour, and
(c) converts predictions into resource-management actions.  The Model
Update Engine periodically refits services on fresh history; the
Resource Orchestrator invokes them at decision points.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = ["PredictionService"]


class PredictionService(ABC):
    """Base class for framework services (QSSF and CES are instances)."""

    #: unique key used by the registry / orchestrator
    service_name: str = "base"

    #: True when :meth:`apply_update` can advance the fitted model
    #: in place; the Model Update Engine then prefers the incremental
    #: refit path over a scratch :meth:`fit`.
    supports_incremental: bool = False

    #: True when this service's refits may be delegated to a central
    #: trainer and the model installed from a snapshot (cross-host
    #: replication).  Services whose decision state is a sequential
    #: side-effecting controller (CES) opt out: they keep refitting
    #: locally on their single owning shard.
    replicable: bool = True

    @abstractmethod
    def fit(self, history: Any) -> "PredictionService":
        """(Re)train the service's prediction model from history."""

    @abstractmethod
    def predict(self, request: Any) -> Any:
        """Forecast upcoming events (job durations, node demand, ...)."""

    @abstractmethod
    def act(self, state: Any) -> Any:
        """Turn predictions into a resource-management decision."""

    def observe(self, event: Any) -> None:
        """Ingest one run-time observation (finished job, node sample).

        Default: no-op.  The Model Update Engine calls this between
        refits so cheap online statistics stay fresh.
        """

    def apply_update(self, new_history: Any) -> "PredictionService":
        """Advance the fitted model with the observations gathered since
        the last refit, without refitting from scratch.

        ``new_history`` is the engine's ``update_builder`` view of the
        unconsumed observation buffer — the *new events only*, never the
        full history.  Services that already retain observations via
        :meth:`observe` MUST ignore the argument and treat the call as
        "bring the model up to date now": every event reaches the
        service through :meth:`observe` before a refit fires, so
        re-ingesting the argument would double-count it.  Only services
        declaring ``supports_incremental = True`` are expected to
        implement this; the default raises so a misconfigured engine
        fails loudly instead of silently keeping a stale model.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental updates"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} service={self.service_name!r}>"
