"""Deterministic fault-injection plane for chaos testing.

A :class:`FaultPlan` is a seeded, picklable description of *exactly*
which faults fire where: each :class:`FaultSpec` is keyed by the
worker's label (``key``), the retry ``attempt`` on which it fires, and
optionally a progress index ``at`` (e.g. a stream-batch number) so a
crash lands mid-run rather than at startup.  The plan travels to forked
workers either as a keyword argument or via the ``REPRO_FAULT_PLAN``
environment variable (fork inherits the parent's environment), so the
same plan + seed replays the identical fault sequence bit-for-bit —
the property the crash-recovery parity suite relies on.

Fault kinds:

* ``crash``      — the worker process SIGKILLs itself (no cleanup, no
  goodbye message): the supervisor sees a silent death.
* ``hang``       — the worker stalls (heartbeats stop) until the
  supervisor's timeout kills it.
* ``slow_start`` — the worker sleeps ``delay_s`` before doing work;
  exercises timeout headroom without failing.
* ``corrupt``    — the worker's result is wrapped in
  :class:`CorruptPayload`; the supervisor treats it as a failed
  attempt.
* ``exception``  — the worker raises :class:`TransientWorkerFault`, a
  retryable error with a full remote traceback.

Network fault kinds (:data:`NET_FAULT_KINDS`) are injected at the
serving control plane's *framing* layer (:mod:`repro.serve.net.framing`)
instead of inside a worker; ``at`` indexes the link's frame sequence
number rather than a stream batch:

* ``drop``       — ``span`` consecutive outgoing frames are silently
  discarded: the peer never sees them (a lost request or ack).
* ``delay``      — ``span`` consecutive frames are delivered ``delay_s``
  late (frames sent in between overtake them).
* ``duplicate``  — ``span`` consecutive frames are each delivered twice
  (a retransmit race); consumers must be idempotent.
* ``partition``  — the link carries *nothing* in either direction for
  ``span`` frames counted per side: requests and replies both vanish,
  the router sees only silence.

A plan may carry several faults for the same (key, attempt) as long as
their ``at`` indices differ — e.g. drop frame 40 *and* partition from
frame 90 on the same link epoch.  Exact duplicates (same key, attempt
*and* at) are rejected so a replay stays unambiguous.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = [
    "ALL_FAULT_KINDS",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "NET_FAULT_KINDS",
    "CorruptPayload",
    "FaultPlan",
    "FaultSpec",
    "TransientWorkerFault",
    "clear_fault_plan",
    "install_fault_plan",
    "installed_fault_plan",
]

#: process-level kinds, fired inside a supervised worker
FAULT_KINDS = ("crash", "hang", "slow_start", "corrupt", "exception")
#: network-level kinds, fired at the serve-net framing layer
NET_FAULT_KINDS = ("drop", "delay", "duplicate", "partition")
ALL_FAULT_KINDS = FAULT_KINDS + NET_FAULT_KINDS

#: Environment variable carrying a JSON-serialized plan into workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class TransientWorkerFault(RuntimeError):
    """The injected retryable exception (``kind="exception"``)."""


@dataclass(frozen=True)
class CorruptPayload:
    """Marker wrapping a worker result that was corrupted in flight."""

    payload: object = None


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``key``     — the worker label the fault targets (e.g. a cluster name).
    ``attempt`` — the retry attempt (0 = first try) on which it fires.
    ``at``      — progress index at which it fires; ``None`` fires at
    worker startup, before any work is done.  Progress is whatever the
    task reports via ``WorkerContext.maybe_fault(progress)`` — the
    serving shard reports its stream-batch index.
    ``delay_s`` — sleep length for ``slow_start`` (and an optional cap
    for ``hang``; 0 means "hang until killed"); delivery lateness for
    the network ``delay`` kind.
    ``span``    — how many consecutive frames a network fault covers
    (all four net kinds honor the ``[at, at+span)`` window; process
    kinds ignore it).
    """

    key: str
    kind: str = "exception"
    attempt: int = 0
    at: int | None = None
    delay_s: float = 0.0
    span: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {ALL_FAULT_KINDS}"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if self.at is not None and self.at < 0:
            raise ValueError(f"at must be None or >= 0, got {self.at}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.span < 1:
            raise ValueError(f"span must be >= 1, got {self.span}")
        if self.kind in NET_FAULT_KINDS and self.at is None:
            raise ValueError(
                f"network fault {self.kind!r} needs an 'at' frame index"
            )

    @property
    def is_net(self) -> bool:
        return self.kind in NET_FAULT_KINDS

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "attempt": self.attempt,
            "at": self.at,
            "delay_s": self.delay_s,
            "span": self.span,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable set of faults keyed by (label, attempt, at).

    Picklable and JSON round-trippable; at most one fault per
    (key, attempt, at) triple so a replay is unambiguous.  Several
    faults may share a (key, attempt) pair when they fire at different
    progress indices.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        seen: set[tuple[str, int, int | None]] = set()
        for f in self.faults:
            triple = (f.key, f.attempt, f.at)
            if triple in seen:
                raise ValueError(
                    f"duplicate fault for key={f.key!r} "
                    f"attempt={f.attempt} at={f.at}"
                )
            seen.add(triple)

    def fault_for(self, key: str, attempt: int) -> FaultSpec | None:
        """The first *process* fault planned for this (label, attempt),
        or None.  Kept for single-fault plans; multi-fault consumers use
        :meth:`process_faults_for`."""
        faults = self.process_faults_for(key, attempt)
        return faults[0] if faults else None

    def process_faults_for(self, key: str, attempt: int) -> tuple[FaultSpec, ...]:
        """Every process-level fault planned for this (label, attempt)."""
        return tuple(
            f for f in self.faults
            if f.key == key and f.attempt == attempt and not f.is_net
        )

    def net_faults_for(self, key: str, attempt: int) -> tuple[FaultSpec, ...]:
        """Every network fault planned for this (link label, epoch)."""
        return tuple(
            f for f in self.faults
            if f.key == key and f.attempt == attempt and f.is_net
        )

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [f.as_dict() for f in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec(**f) for f in data.get("faults", ())),
        )


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Publish ``plan`` via the environment (None uninstalls).

    Forked workers inherit the environment, so a plan installed in the
    parent is visible to every descendant without explicit plumbing.
    """
    if plan is None:
        os.environ.pop(FAULT_PLAN_ENV, None)
    else:
        os.environ[FAULT_PLAN_ENV] = plan.to_json()


def installed_fault_plan() -> FaultPlan | None:
    """The environment-installed plan, or None."""
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    return FaultPlan.from_json(text)


def clear_fault_plan() -> None:
    """Remove any environment-installed plan."""
    install_fault_plan(None)
