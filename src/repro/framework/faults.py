"""Deterministic fault-injection plane for chaos testing.

A :class:`FaultPlan` is a seeded, picklable description of *exactly*
which faults fire where: each :class:`FaultSpec` is keyed by the
worker's label (``key``), the retry ``attempt`` on which it fires, and
optionally a progress index ``at`` (e.g. a stream-batch number) so a
crash lands mid-run rather than at startup.  The plan travels to forked
workers either as a keyword argument or via the ``REPRO_FAULT_PLAN``
environment variable (fork inherits the parent's environment), so the
same plan + seed replays the identical fault sequence bit-for-bit —
the property the crash-recovery parity suite relies on.

Fault kinds:

* ``crash``      — the worker process SIGKILLs itself (no cleanup, no
  goodbye message): the supervisor sees a silent death.
* ``hang``       — the worker stalls (heartbeats stop) until the
  supervisor's timeout kills it.
* ``slow_start`` — the worker sleeps ``delay_s`` before doing work;
  exercises timeout headroom without failing.
* ``corrupt``    — the worker's result is wrapped in
  :class:`CorruptPayload`; the supervisor treats it as a failed
  attempt.
* ``exception``  — the worker raises :class:`TransientWorkerFault`, a
  retryable error with a full remote traceback.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "CorruptPayload",
    "FaultPlan",
    "FaultSpec",
    "TransientWorkerFault",
    "clear_fault_plan",
    "install_fault_plan",
    "installed_fault_plan",
]

FAULT_KINDS = ("crash", "hang", "slow_start", "corrupt", "exception")

#: Environment variable carrying a JSON-serialized plan into workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class TransientWorkerFault(RuntimeError):
    """The injected retryable exception (``kind="exception"``)."""


@dataclass(frozen=True)
class CorruptPayload:
    """Marker wrapping a worker result that was corrupted in flight."""

    payload: object = None


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``key``     — the worker label the fault targets (e.g. a cluster name).
    ``attempt`` — the retry attempt (0 = first try) on which it fires.
    ``at``      — progress index at which it fires; ``None`` fires at
    worker startup, before any work is done.  Progress is whatever the
    task reports via ``WorkerContext.maybe_fault(progress)`` — the
    serving shard reports its stream-batch index.
    ``delay_s`` — sleep length for ``slow_start`` (and an optional cap
    for ``hang``; 0 means "hang until killed").
    """

    key: str
    kind: str = "exception"
    attempt: int = 0
    at: int | None = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if self.at is not None and self.at < 0:
            raise ValueError(f"at must be None or >= 0, got {self.at}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "attempt": self.attempt,
            "at": self.at,
            "delay_s": self.delay_s,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable set of faults keyed by (label, attempt).

    Picklable and JSON round-trippable; at most one fault per
    (key, attempt) pair so a replay is unambiguous.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        seen: set[tuple[str, int]] = set()
        for f in self.faults:
            pair = (f.key, f.attempt)
            if pair in seen:
                raise ValueError(f"duplicate fault for key={f.key!r} attempt={f.attempt}")
            seen.add(pair)

    def fault_for(self, key: str, attempt: int) -> FaultSpec | None:
        """The fault planned for this (label, attempt), or None."""
        for f in self.faults:
            if f.key == key and f.attempt == attempt:
                return f
        return None

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [f.as_dict() for f in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec(**f) for f in data.get("faults", ())),
        )


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Publish ``plan`` via the environment (None uninstalls).

    Forked workers inherit the environment, so a plan installed in the
    parent is visible to every descendant without explicit plumbing.
    """
    if plan is None:
        os.environ.pop(FAULT_PLAN_ENV, None)
    else:
        os.environ[FAULT_PLAN_ENV] = plan.to_json()


def installed_fault_plan() -> FaultPlan | None:
    """The environment-installed plan, or None."""
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    return FaultPlan.from_json(text)


def clear_fault_plan() -> None:
    """Remove any environment-installed plan."""
    install_fault_plan(None)
