"""Resource Orchestrator (§4.1): routes decision points to services.

The orchestrator owns the registry of services and exposes the two
decision hooks the paper's framework defines: scheduling a job queue
(QSSF-shaped services) and managing the node pool (CES-shaped
services).  Services are selected by the cluster operator ("the cluster
operators can select services based on their demands").
"""

from __future__ import annotations

from typing import Any

from .parallel import map_threaded
from .service import PredictionService

__all__ = ["ResourceOrchestrator"]


class ResourceOrchestrator:
    """Plug-and-play service registry with decision dispatch."""

    def __init__(self) -> None:
        self._services: dict[str, PredictionService] = {}

    def install(self, service: PredictionService) -> None:
        if service.service_name in self._services:
            raise ValueError(f"service {service.service_name!r} already installed")
        self._services[service.service_name] = service

    def replace(self, service: PredictionService) -> PredictionService | None:
        """Install or hot-swap a service; returns the one it displaced.

        Idempotent reinstall: unlike ``uninstall()`` + ``install()``,
        there is no window in which the name is unregistered, so a
        freshly refit service can be swapped in while other threads are
        inside :meth:`decide_many` — the swap is a single dict
        assignment, and an in-flight batch keeps the service object it
        resolved at entry, finishing consistently on the old model.
        """
        old = self._services.get(service.service_name)
        self._services[service.service_name] = service
        return old

    def uninstall(self, name: str) -> None:
        if name not in self._services:
            raise KeyError(f"unknown service {name!r}")
        del self._services[name]

    @property
    def installed(self) -> list[str]:
        return list(self._services)

    def service(self, name: str) -> PredictionService:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"unknown service {name!r}") from None

    def decide(self, name: str, state: Any) -> Any:
        """Ask one service for its action given the cluster state."""
        return self.service(name).act(state)

    def decide_many(self, name: str, states: list[Any], jobs: int = 1) -> list[Any]:
        """Batch dispatch: one decision per state, in input order.

        Decision points are independent of each other, so ``jobs > 1``
        fans them out on a thread pool; the service object is shared, so
        this is only safe for services whose ``act`` does not mutate
        internal state (true of QSSF/CES — ``observe``/``fit`` mutate,
        ``act`` does not).
        """
        service = self.service(name)
        return map_threaded(service.act, states, jobs)
