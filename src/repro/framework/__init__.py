"""Prediction-based resource-management framework (§4.1, Fig 10)."""

from .engine import ModelUpdateEngine, UpdatePolicy
from .faults import (
    ALL_FAULT_KINDS,
    FAULT_KINDS,
    NET_FAULT_KINDS,
    CorruptPayload,
    FaultPlan,
    FaultSpec,
    TransientWorkerFault,
    clear_fault_plan,
    install_fault_plan,
    installed_fault_plan,
)
from .orchestrator import ResourceOrchestrator
from .parallel import (
    WorkerError,
    effective_jobs,
    fork_available,
    map_threaded,
    run_forked,
    stable_seed,
)
from .plugins import CESNodeService, PassthroughQueueService, QSSFService
from .service import PredictionService
from .supervise import (
    HeartbeatMonitor,
    Supervision,
    SupervisionLog,
    WorkerContext,
    WorkerFailure,
    backoff_delay,
    run_supervised,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "FAULT_KINDS",
    "NET_FAULT_KINDS",
    "CESNodeService",
    "CorruptPayload",
    "FaultPlan",
    "FaultSpec",
    "HeartbeatMonitor",
    "ModelUpdateEngine",
    "PassthroughQueueService",
    "PredictionService",
    "QSSFService",
    "ResourceOrchestrator",
    "Supervision",
    "SupervisionLog",
    "TransientWorkerFault",
    "UpdatePolicy",
    "WorkerContext",
    "WorkerError",
    "WorkerFailure",
    "backoff_delay",
    "clear_fault_plan",
    "effective_jobs",
    "fork_available",
    "install_fault_plan",
    "installed_fault_plan",
    "map_threaded",
    "run_forked",
    "run_supervised",
    "stable_seed",
]
