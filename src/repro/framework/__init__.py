"""Prediction-based resource-management framework (§4.1, Fig 10)."""

from .engine import ModelUpdateEngine, UpdatePolicy
from .faults import (
    CorruptPayload,
    FaultPlan,
    FaultSpec,
    TransientWorkerFault,
    clear_fault_plan,
    install_fault_plan,
    installed_fault_plan,
)
from .orchestrator import ResourceOrchestrator
from .parallel import (
    WorkerError,
    effective_jobs,
    fork_available,
    map_threaded,
    run_forked,
    stable_seed,
)
from .plugins import CESNodeService, PassthroughQueueService, QSSFService
from .service import PredictionService
from .supervise import (
    Supervision,
    SupervisionLog,
    WorkerContext,
    WorkerFailure,
    run_supervised,
)

__all__ = [
    "CESNodeService",
    "CorruptPayload",
    "FaultPlan",
    "FaultSpec",
    "ModelUpdateEngine",
    "PassthroughQueueService",
    "PredictionService",
    "QSSFService",
    "ResourceOrchestrator",
    "Supervision",
    "SupervisionLog",
    "TransientWorkerFault",
    "UpdatePolicy",
    "WorkerContext",
    "WorkerError",
    "WorkerFailure",
    "clear_fault_plan",
    "effective_jobs",
    "fork_available",
    "install_fault_plan",
    "installed_fault_plan",
    "map_threaded",
    "run_forked",
    "run_supervised",
    "stable_seed",
]
