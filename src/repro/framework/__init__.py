"""Prediction-based resource-management framework (§4.1, Fig 10)."""

from .engine import ModelUpdateEngine, UpdatePolicy
from .orchestrator import ResourceOrchestrator
from .plugins import CESNodeService, QSSFService
from .service import PredictionService

__all__ = [
    "CESNodeService",
    "ModelUpdateEngine",
    "PredictionService",
    "QSSFService",
    "ResourceOrchestrator",
    "UpdatePolicy",
]
