"""Prediction-based resource-management framework (§4.1, Fig 10)."""

from .engine import ModelUpdateEngine, UpdatePolicy
from .orchestrator import ResourceOrchestrator
from .parallel import (
    effective_jobs,
    fork_available,
    map_threaded,
    run_forked,
    stable_seed,
)
from .plugins import CESNodeService, QSSFService
from .service import PredictionService

__all__ = [
    "CESNodeService",
    "ModelUpdateEngine",
    "PredictionService",
    "QSSFService",
    "ResourceOrchestrator",
    "UpdatePolicy",
    "effective_jobs",
    "fork_available",
    "map_threaded",
    "run_forked",
    "stable_seed",
]
