"""Model Update Engine (§4.1): keeps prediction models fresh.

The engine buffers run-time observations and refreshes each registered
service either on a fixed cadence (simulated time) or when triggered
explicitly.  This is the component that keeps "the prediction model ...
updated with new data" while the Resource Orchestrator keeps serving
requests from the current model.

Two refresh paths exist since the incremental-evaluation protocol:

* **scratch** — ``service.fit(history_builder(all observations))``: the
  original full refit.  Always correct, kept as the fallback and as the
  correctness oracle the incremental path is tested against.
* **incremental** — ``service.apply_update(history_builder(new
  observations))``: drives the forecasters' ``update()``/``extend()``
  protocol so a long-running serving loop advances its models in O(new
  data) instead of O(all data).  Only taken when the service declares
  ``supports_incremental`` and already has a fitted model.

``mode="auto"`` (the default) picks incremental whenever it is valid and
falls back to scratch otherwise; ``mode="scratch"`` forces full refits.

A third path exists for multi-host serving: **delegated**.  With
``engine.delegated = True`` a due refit does not train locally — the
engine drains the pending buffer into a versioned *sync request* (the
observation delta since the previous refit) and queues it on an outbox
for the replication channel to ship to a central trainer.  The trained
model comes back as a pickled snapshot installed via
:meth:`install_snapshot`, which is version-gated (stale snapshots are
dropped, gaps rejected) and re-observes any events buffered since the
delta was cut so the installed service is byte-identical to one that
refit locally.  Sync requests stay on the outbox until their version is
installed, so a checkpoint taken mid-flight re-requests them on resume.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any

from .parallel import map_threaded
from .service import PredictionService

__all__ = ["ModelUpdateEngine", "UpdatePolicy"]

_MODES = ("auto", "scratch", "incremental")


@dataclass(frozen=True)
class UpdatePolicy:
    """When to refit: every ``interval_seconds`` of simulated time, or
    after ``max_buffered`` new observations, whichever comes first."""

    interval_seconds: float = 86_400.0
    max_buffered: int = 50_000

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.max_buffered < 1:
            raise ValueError("max_buffered must be >= 1")


@dataclass
class _ServiceState:
    service: PredictionService
    history_builder: Any  # Callable[[list], Any]: observations -> fit input
    update_builder: Any  # Callable[[list], Any]: new observations -> delta
    last_refit_time: float = 0.0
    history: list = field(default_factory=list)  # every observation ever
    pending: list = field(default_factory=list)  # since the last refit
    fitted: bool = False
    refit_count: int = 0
    incremental_refits: int = 0
    #: replication version vector: ``sync_version`` counts refits whose
    #: training was delegated to a central trainer, ``installed_version``
    #: counts the snapshots installed back.  ``sync > installed`` means a
    #: model is in flight and decisions must wait.
    sync_version: int = 0
    installed_version: int = 0
    #: actual model-training work done *in this process* (the delegated
    #: path bumps ``refit_count`` bookkeeping but not these).
    fits_performed: int = 0
    fit_seconds: float = 0.0


class ModelUpdateEngine:
    """Drives periodic model refreshes for any number of services."""

    def __init__(self, policy: UpdatePolicy | None = None, mode: str = "auto") -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.policy = policy or UpdatePolicy()
        self.mode = mode
        self._services: dict[str, _ServiceState] = {}
        #: when True, due refits for replicable services queue sync
        #: requests instead of training locally (multi-host replication)
        self.delegated = False
        # Outstanding sync requests, oldest first.  Entries stay here
        # until install_snapshot() consumes their version: a checkpoint
        # pickled mid-flight still carries them, so a respawned worker
        # re-requests rather than deadlocking on a lost broadcast.
        self._sync_outbox: list[dict] = []

    def register(
        self,
        service: PredictionService,
        history_builder,
        *,
        update_builder=None,
        prefitted: bool = False,
    ) -> None:
        """Attach a service; ``history_builder(observations)`` converts
        the buffered raw observations into the service's fit() input.

        ``update_builder(new_observations)`` builds the *delta* input
        the incremental path hands to ``apply_update`` — new events
        only, unlike ``history_builder`` which may fold in a base
        history for scratch refits.  Defaults to ``history_builder``
        (correct when that builder is a pure view of its argument).
        ``prefitted=True`` declares that the service arrives with a
        model already trained (e.g. on a historical trace before
        installation), which makes it eligible for the incremental path
        from its very first engine-driven refresh.
        """
        if service.service_name in self._services:
            raise ValueError(f"service {service.service_name!r} already registered")
        self._services[service.service_name] = _ServiceState(
            service=service,
            history_builder=history_builder,
            update_builder=update_builder or history_builder,
            fitted=prefitted,
        )

    @property
    def services(self) -> list[str]:
        return list(self._services)

    def swap(self, name: str, service: PredictionService, *, prefitted: bool = True) -> None:
        """Hot-swap the object behind an already-registered service name.

        Keeps the observation history, pending buffer, refit counters,
        and builders — only the model changes.  This is the degradation
        ladder's engine-side half: when a refit raises, the serving
        layer swaps in a simpler fallback service without losing the
        observations the next (cheaper) refit will train on.
        """
        state = self._state(name)
        if service.service_name != name:
            raise ValueError(
                f"cannot swap service named {service.service_name!r} into slot {name!r}"
            )
        state.service = service
        state.fitted = prefitted

    def reset_clock(self, now: float) -> None:
        """Anchor every service's refit timer at ``now``.

        A serving loop calls this with the stream's start time before
        the first event: refit cadence is measured in *simulated* time,
        and without the anchor a stream that starts mid-scenario (e.g.
        at the evaluation month) would look like one giant overdue
        interval and refit on its very first observation.
        """
        for state in self._services.values():
            state.last_refit_time = now

    def observe(self, name: str, event: Any, now: float) -> None:
        """Feed one observation; may trigger a refit."""
        state = self._state(name)
        state.service.observe(event)
        state.history.append(event)
        state.pending.append(event)
        due_time = now - state.last_refit_time >= self.policy.interval_seconds
        due_size = len(state.pending) >= self.policy.max_buffered
        if due_time or due_size:
            self.refit(name, now)

    def refit(self, name: str, now: float, mode: str | None = None) -> str | None:
        """Refresh the named service on the observations gathered so far.

        Returns the path taken (``"scratch"`` / ``"incremental"``) or
        ``None`` when there was nothing new to consume.
        """
        mode = mode or self.mode
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        state = self._state(name)
        if not state.pending:
            state.last_refit_time = now
            return None
        incremental = (
            mode in ("auto", "incremental")
            and state.service.supports_incremental
            and state.fitted
        )
        if self.delegated and getattr(state.service, "replicable", True):
            # Delegated: cut the pending buffer into a versioned delta
            # and queue it for the central trainer.  Bookkeeping counters
            # advance exactly as a local refit would (the central trainer
            # replays the same mode decision), but no model work happens
            # here — the snapshot comes back via install_snapshot().
            deltas = list(state.pending)
            state.pending.clear()
            state.last_refit_time = now
            state.refit_count += 1
            if incremental:
                state.incremental_refits += 1
            state.sync_version += 1
            self._sync_outbox.append({
                "service": name,
                "version": state.sync_version,
                "deltas": deltas,
                "now": now,
                "mode": mode,
            })
            return "delegated"
        # builders get copies: the pending buffer is cleared below and the
        # history keeps growing, so an identity builder must not hand the
        # service a live view of either
        t0 = time.perf_counter()
        if incremental:
            state.service.apply_update(state.update_builder(list(state.pending)))
            state.incremental_refits += 1
        else:
            state.service.fit(state.history_builder(list(state.history)))
        state.fits_performed += 1
        state.fit_seconds += time.perf_counter() - t0
        state.pending.clear()
        state.fitted = True
        state.last_refit_time = now
        state.refit_count += 1
        return "incremental" if incremental else "scratch"

    def refit_all(self, now: float, jobs: int = 1) -> list[str]:
        """Refresh every service with pending observations; returns their
        names.

        Services are independent, so with ``jobs > 1`` the refits run on
        a thread pool (threads, not processes: refits mutate the
        registered service objects in place).
        """
        due = [name for name, st in self._services.items() if st.pending]
        map_threaded(lambda name: self.refit(name, now), due, jobs)
        return due

    def refit_count(self, name: str) -> int:
        return self._state(name).refit_count

    def incremental_refit_count(self, name: str) -> int:
        """How many refits advanced the model in place (vs from scratch)."""
        return self._state(name).incremental_refits

    def pending_count(self, name: str) -> int:
        """Observations buffered since the named service's last refit."""
        return len(self._state(name).pending)

    def fits_performed(self, name: str) -> int:
        """Model fits actually executed in this process (delegated refits
        count toward ``refit_count`` but not here)."""
        return self._state(name).fits_performed

    def fit_seconds(self, name: str) -> float:
        """Wall seconds spent inside local fit/apply_update calls."""
        return self._state(name).fit_seconds

    def service(self, name: str) -> PredictionService:
        """The live service object behind a registered name."""
        return self._state(name).service

    # -- replication channel ------------------------------------------

    def sync_requests(self) -> list[dict]:
        """Outstanding sync requests, oldest first (a copy).

        Every entry is ``{service, version, deltas, now, mode}``.  The
        caller ships them to the central trainer; entries persist until
        :meth:`install_snapshot` consumes their version, so transports
        may send a request more than once (the trainer is idempotent).
        """
        return [dict(req) for req in self._sync_outbox]

    def sync_pending(self, name: str | None = None) -> bool:
        """True while any (or the named) service has a model in flight."""
        states = [self._state(name)] if name else self._services.values()
        return any(st.sync_version > st.installed_version for st in states)

    def sync_versions(self, name: str) -> tuple[int, int]:
        """``(requested, installed)`` sync versions for a service."""
        state = self._state(name)
        return state.sync_version, state.installed_version

    def ingest(self, name: str, events: list) -> None:
        """Feed a remote shard's observation delta without refit checks.

        The central trainer's half of a sync: replays the delta through
        ``observe`` and the history/pending buffers exactly as the shard
        did, so the forced :meth:`refit` that follows trains on the same
        bytes the shard would have trained on locally.
        """
        state = self._state(name)
        for event in events:
            state.service.observe(event)
            state.history.append(event)
            state.pending.append(event)

    def install_snapshot(self, name: str, version: int, service: PredictionService) -> bool:
        """Install a centrally-trained model snapshot; version-gated.

        Stale versions (already installed) are dropped and return False.
        ``version`` must be the next expected install and must not run
        ahead of this engine's own sync requests — the snapshot for
        version *v* only makes sense once this engine has cut delta *v*,
        because events observed after the cut are re-fed to the incoming
        service here (they are exactly ``pending``) to keep it
        byte-identical with a service that refit locally.
        """
        state = self._state(name)
        if version <= state.installed_version:
            return False
        if version != state.installed_version + 1 or version > state.sync_version:
            raise ValueError(
                f"snapshot gap for {name!r}: got v{version}, "
                f"installed v{state.installed_version}, requested v{state.sync_version}"
            )
        for event in state.pending:
            service.observe(event)
        state.service = service
        state.fitted = True
        state.installed_version = version
        self._sync_outbox = [
            req for req in self._sync_outbox
            if not (req["service"] == name and req["version"] <= version)
        ]
        return True

    def skip_snapshot(self, name: str, version: int) -> None:
        """Consume a sync version without installing its model.

        The degraded-shard escape hatch: a shard that already swapped in
        a fallback service must not let a remote snapshot revert it, but
        the version vector still has to advance or the shard would block
        forever waiting for an install that will never happen.
        """
        state = self._state(name)
        if version > state.installed_version:
            state.installed_version = min(version, state.sync_version)
        self._sync_outbox = [
            req for req in self._sync_outbox
            if not (req["service"] == name and req["version"] <= version)
        ]

    def snapshot_blob(self, name: str) -> bytes:
        """Pickle the named service with full training state retained.

        Central-trainer side of a sync: GBDT-backed services swap their
        boosters into ``keep_training_state`` form while pickling so the
        shard that unpickles this blob can keep boosting incrementally.
        """
        from ..ml.gbdt import keep_training_state

        with keep_training_state():
            return pickle.dumps(
                self._state(name).service, protocol=pickle.HIGHEST_PROTOCOL
            )

    def _state(self, name: str) -> _ServiceState:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"unknown service {name!r}") from None
