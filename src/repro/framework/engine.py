"""Model Update Engine (§4.1): periodic refits on accumulated history.

The engine buffers run-time observations and refits each registered
service either on a fixed cadence (simulated time) or when triggered
explicitly.  This is the component that keeps "the prediction model ...
updated with new data" while the Resource Orchestrator keeps serving
requests from the current model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .parallel import map_threaded
from .service import PredictionService

__all__ = ["ModelUpdateEngine", "UpdatePolicy"]


@dataclass(frozen=True)
class UpdatePolicy:
    """When to refit: every ``interval_seconds`` of simulated time, or
    after ``max_buffered`` observations, whichever comes first."""

    interval_seconds: float = 86_400.0
    max_buffered: int = 50_000

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.max_buffered < 1:
            raise ValueError("max_buffered must be >= 1")


@dataclass
class _ServiceState:
    service: PredictionService
    history_builder: Any  # Callable[[list], Any]: observations -> history
    last_refit_time: float = 0.0
    buffered: list = field(default_factory=list)
    refit_count: int = 0


class ModelUpdateEngine:
    """Drives periodic model refits for any number of services."""

    def __init__(self, policy: UpdatePolicy | None = None) -> None:
        self.policy = policy or UpdatePolicy()
        self._services: dict[str, _ServiceState] = {}

    def register(self, service: PredictionService, history_builder) -> None:
        """Attach a service; ``history_builder(observations)`` converts
        the buffered raw observations into the service's fit() input."""
        if service.service_name in self._services:
            raise ValueError(f"service {service.service_name!r} already registered")
        self._services[service.service_name] = _ServiceState(
            service=service, history_builder=history_builder
        )

    @property
    def services(self) -> list[str]:
        return list(self._services)

    def observe(self, name: str, event: Any, now: float) -> None:
        """Feed one observation; may trigger a refit."""
        state = self._state(name)
        state.service.observe(event)
        state.buffered.append(event)
        due_time = now - state.last_refit_time >= self.policy.interval_seconds
        due_size = len(state.buffered) >= self.policy.max_buffered
        if due_time or due_size:
            self.refit(name, now)

    def refit(self, name: str, now: float) -> None:
        """Refit the named service on everything buffered so far."""
        state = self._state(name)
        if not state.buffered:
            state.last_refit_time = now
            return
        history = state.history_builder(state.buffered)
        state.service.fit(history)
        state.last_refit_time = now
        state.refit_count += 1

    def refit_all(self, now: float, jobs: int = 1) -> list[str]:
        """Refit every service with buffered observations; returns their
        names.

        Services are independent, so with ``jobs > 1`` the refits run on
        a thread pool (threads, not processes: refits mutate the
        registered service objects in place).
        """
        due = [name for name, st in self._services.items() if st.buffered]
        map_threaded(lambda name: self.refit(name, now), due, jobs)
        return due

    def refit_count(self, name: str) -> int:
        return self._state(name).refit_count

    def _state(self, name: str) -> _ServiceState:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"unknown service {name!r}") from None
