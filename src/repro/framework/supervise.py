"""Supervised per-item worker pool: heartbeats, timeouts, retries.

:func:`run_supervised` is the fault-tolerant sibling of
:func:`~repro.framework.parallel.run_forked`.  Instead of a shared
pool, every item gets its *own* forked worker process supervised over a
pipe: the supervisor watches heartbeats, enforces wall and heartbeat
timeouts, retries dead/hung/corrupt attempts with bounded exponential
backoff (jitter derived from :func:`~repro.framework.parallel.stable_seed`,
never wall clock), and preserves the remote traceback plus the failing
item's repr when an attempt errors.  Failures are isolated per item: a
dead shard never discards its siblings' results.

Workers can checkpoint through the :class:`WorkerContext` handed to the
task function (``with_context=True``): ``ctx.save(state)`` ships the
snapshot to the supervisor, and a retried attempt finds it again in
``ctx.checkpoint`` — the mechanism behind the serving layer's
crash-recovery parity guarantee.

When forking is unavailable (nested inside a daemonic pool worker), the
supervisor degrades to an in-process loop that *simulates* crash and
hang faults with retryable control exceptions.  Attempt outcomes, retry
bookkeeping, and checkpoint flow are identical in both modes, so a
chaos run produces the same payload and supervision log either way.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass

from ..obs import collect as obs
from .faults import (
    CorruptPayload,
    FaultPlan,
    FaultSpec,
    TransientWorkerFault,
    installed_fault_plan,
)
from .parallel import WorkerError, effective_jobs, fork_available, stable_seed

__all__ = [
    "HeartbeatMonitor",
    "Supervision",
    "SupervisionLog",
    "WorkerContext",
    "WorkerFailure",
    "backoff_delay",
    "run_supervised",
]


@dataclass(frozen=True)
class Supervision:
    """Supervisor knobs: timeouts, retry budget, backoff shape."""

    #: hard wall-clock budget per attempt (None = unlimited)
    timeout_s: float | None = 300.0
    #: max silence between heartbeats before the worker is declared hung
    #: (None = heartbeats not enforced)
    heartbeat_timeout_s: float | None = None
    #: retries after the first attempt (attempt indices 0..max_retries)
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    poll_interval_s: float = 0.01

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.heartbeat_timeout_s is not None and self.heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be positive, got {self.heartbeat_timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff parameters must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")


def backoff_delay(label: str, attempt: int, supervision: Supervision) -> float:
    """Bounded exponential backoff before retry ``attempt`` (1-based).

    Jitter comes from :func:`stable_seed` over (label, attempt), not the
    wall clock, so a replayed chaos run waits the identical schedule.
    """
    if attempt <= 0:
        return 0.0
    base = supervision.backoff_base_s * (2.0 ** (attempt - 1))
    jitter = stable_seed(f"backoff:{label}", attempt) / 2.0**32  # [0, 1)
    return min(base * (1.0 + jitter), supervision.backoff_cap_s)


class SupervisionLog:
    """Ordered, deterministic record of attempt outcomes.

    Each event is ``(label, attempt, outcome)`` with outcome one of
    ``ok`` / ``crash`` / ``timeout`` / ``error`` / ``corrupt`` /
    ``failed`` (retry budget exhausted).  Outcome strings are identical
    between the forked and in-process supervisors, so a chaos exhibit's
    log is mode-independent.
    """

    def __init__(self) -> None:
        self.events: list[tuple[str, int, str]] = []

    def record(self, label: str, attempt: int, outcome: str) -> None:
        self.events.append((str(label), int(attempt), str(outcome)))
        obs.counter_add(f"supervise.outcome.{outcome}")

    def retries(self, label: str | None = None) -> int:
        """Failed attempts that were retried (terminal failures excluded)."""
        return sum(
            1
            for lbl, _, outcome in self.events
            if outcome not in ("ok", "failed") and (label is None or lbl == label)
        )

    def as_dict(self) -> dict:
        return {
            "events": [[lbl, attempt, outcome] for lbl, attempt, outcome in self.events],
            "retries": self.retries(),
        }


@dataclass(frozen=True)
class WorkerFailure:
    """Terminal per-item failure left in the result slot (strict=False)."""

    label: str
    attempts: int
    outcome: str
    error: str = ""
    remote_traceback: str | None = None


class _SimulatedCrash(BaseException):
    """In-process stand-in for a SIGKILLed worker (control flow only)."""


class _SimulatedStall(BaseException):
    """In-process stand-in for a hung worker (control flow only)."""


class HeartbeatMonitor:
    """Liveness tracking from any proof-of-life signal.

    The forked supervisor beats it from pipe messages; the serving
    control plane's router beats it from socket acks and pongs — the
    policy (gap histogram + timeout check) is identical either way.
    ``timeout_s=None`` disables expiry (gaps are still recorded).
    """

    __slots__ = ("timeout_s", "last_beat", "hist")

    def __init__(self, timeout_s: float | None = None, *, hist=None,
                 now: float | None = None) -> None:
        self.timeout_s = timeout_s
        self.last_beat = time.monotonic() if now is None else now
        self.hist = hist

    def beat(self, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        if self.hist is not None:
            self.hist.record(now - self.last_beat)
        self.last_beat = now

    def expired(self, now: float | None = None) -> bool:
        if self.timeout_s is None:
            return False
        now = time.monotonic() if now is None else now
        return now - self.last_beat > self.timeout_s


class WorkerContext:
    """Handle given to supervised task functions (``with_context=True``).

    * ``label`` / ``attempt`` identify this attempt;
    * ``checkpoint`` holds the last snapshot a *previous* attempt saved
      (None on a fresh item);
    * :meth:`save` ships a new checkpoint to the supervisor — it
      survives this worker's death;
    * :meth:`heartbeat` proves liveness;
    * :meth:`maybe_fault` reports progress (doubling as a heartbeat)
      and fires any planned fault whose ``at`` index is reached — a plan
      may stack several faults on one attempt (e.g. a slow_start at
      batch 5 and a crash at batch 100).

    ``real`` forces real side effects (SIGKILL, sleep) or simulated
    control exceptions; by default a context with a supervisor pipe dies
    for real and a pipe-less one simulates — the serving control
    plane's socket workers pass ``real=True`` explicitly because their
    liveness channel is the socket, not a pipe.
    """

    def __init__(
        self,
        label: str,
        attempt: int,
        *,
        fault: FaultSpec | None = None,
        faults: "tuple[FaultSpec, ...] | None" = None,
        checkpoint: object = None,
        conn=None,
        real: bool | None = None,
    ) -> None:
        if faults is None:
            faults = () if fault is None else (fault,)
        elif fault is not None:
            raise ValueError("pass either fault= or faults=, not both")
        self.label = label
        self.attempt = attempt
        self.checkpoint = checkpoint
        self.faults = tuple(faults)
        self._conn = conn
        self._real = (conn is not None) if real is None else real

    @property
    def fault(self) -> FaultSpec | None:
        """The first planned fault (single-fault plans; legacy accessor)."""
        return self.faults[0] if self.faults else None

    @property
    def corrupts(self) -> bool:
        """Whether this attempt's result is planned to be corrupted."""
        return any(f.kind == "corrupt" for f in self.faults)

    def heartbeat(self) -> None:
        if self._conn is not None:
            self._conn.send(("beat", None))

    def save(self, state: object) -> None:
        self.checkpoint = state
        if self._conn is not None:
            self._conn.send(("ckpt", state))

    def fire_startup_faults(self) -> None:
        """Fire every planned fault with no progress index (worker
        startup, before any work)."""
        for fault in self.faults:
            if fault.at is None and fault.kind != "corrupt":
                self._fire(fault)

    def maybe_fault(self, progress: int) -> None:
        self.heartbeat()
        for fault in self.faults:
            if (
                fault.kind != "corrupt"
                and fault.at is not None
                and int(progress) == fault.at
            ):
                self._fire(fault)

    def _fire(self, fault: FaultSpec) -> None:
        if fault.kind == "slow_start":
            time.sleep(fault.delay_s)
            return
        if fault.kind == "exception":
            raise TransientWorkerFault(
                f"injected transient fault for {self.label!r} attempt {self.attempt}"
            )
        if self._real:
            # Real process: die or stall for real.
            if fault.kind == "crash":
                os.kill(os.getpid(), signal.SIGKILL)
            elif fault.kind == "hang":
                time.sleep(fault.delay_s or 3600.0)
        else:
            # In-process fallback: simulate with control exceptions the
            # supervisor maps to the same outcomes as the real thing.
            if fault.kind == "crash":
                raise _SimulatedCrash(self.label)
            if fault.kind == "hang":
                raise _SimulatedStall(self.label)


def _describe(item: object) -> str:
    text = repr(item)
    return text if len(text) <= 200 else text[:197] + "..."


def _child_main(fn, item, with_context: bool, ctx: WorkerContext, conn) -> None:
    """Forked worker body: run the attempt, report over the pipe."""
    try:
        ctx.fire_startup_faults()
        result = fn(item, ctx) if with_context else fn(item)
        if ctx.corrupts:
            result = CorruptPayload(result)
        # Piggyback this attempt's obs state on the result pickle.  A
        # worker that dies before this line ships nothing — the retried
        # attempt's snapshot is the only one merged, so replayed batches
        # are never double-counted.
        conn.send(("ok", obs.carry_result(result)))
        conn.close()
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc(), _describe(item)))
            conn.close()
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


class _ItemState:
    """Supervisor-side bookkeeping for one item across its attempts."""

    __slots__ = ("idx", "item", "label", "attempt", "checkpoint", "failure", "settled")

    def __init__(self, idx: int, item: object, label: str) -> None:
        self.idx = idx
        self.item = item
        self.label = label
        self.attempt = 0
        self.checkpoint: object = None
        self.failure: WorkerFailure | None = None
        self.settled = False


class _Active:
    __slots__ = ("state", "proc", "conn", "started", "started_wall", "hb")

    def __init__(self, state: _ItemState, proc, conn, now: float,
                 hb: HeartbeatMonitor) -> None:
        self.state = state
        self.proc = proc
        self.conn = conn
        self.started = now
        self.started_wall = obs.wall_now()
        self.hb = hb


def run_supervised(
    fn,
    items,
    jobs: int = 1,
    *,
    labels=None,
    supervision: Supervision | None = None,
    fault_plan: FaultPlan | None = None,
    with_context: bool = False,
    validate=None,
    strict: bool = True,
    log: SupervisionLog | None = None,
) -> list:
    """``[fn(x) for x in items]`` under per-item worker supervision.

    Each item runs in its own forked process (even for a single item —
    that is what makes a mid-run SIGKILL survivable).  ``labels`` name
    the items for fault-plan lookup and error messages (default: the
    item's index as a string).  ``validate(result)`` may raise to mark
    an attempt's payload corrupt (also triggered by
    :class:`CorruptPayload` results).  With ``strict=True`` a
    :class:`WorkerError` is raised *after* every item has settled; with
    ``strict=False`` terminal failures are left in their result slots
    as :class:`WorkerFailure` markers.

    ``fault_plan`` defaults to the environment-installed plan (see
    :func:`~repro.framework.faults.install_fault_plan`).
    """
    items = list(items)
    n = len(items)
    if labels is None:
        labels = [str(i) for i in range(n)]
    labels = [str(lbl) for lbl in labels]
    if len(labels) != n:
        raise ValueError(f"got {len(labels)} labels for {n} items")
    sup = supervision or Supervision()
    plan = fault_plan if fault_plan is not None else installed_fault_plan()
    log = log if log is not None else SupervisionLog()

    states = [_ItemState(i, item, labels[i]) for i, item in enumerate(items)]
    results: list = [None] * n
    if n == 0:
        return results

    if fork_available():
        _supervise_forked(
            fn, states, results, jobs, sup, plan, with_context, validate, log
        )
    else:
        _supervise_inprocess(fn, states, results, sup, plan, with_context, validate, log)

    failures = [st.failure for st in states if st.failure is not None]
    for st in states:
        if st.failure is not None:
            results[st.idx] = st.failure
    if strict and failures:
        first = failures[0]
        message = (
            f"supervised worker {first.label!r} failed after "
            f"{first.attempts} attempt(s) [{first.outcome}]"
        )
        if first.error:
            message += f": {first.error}"
        if first.remote_traceback:
            message += "\n--- remote traceback ---\n" + first.remote_traceback
        err = WorkerError(
            message,
            item=first.label,
            remote_traceback=first.remote_traceback,
            attempts=first.attempts,
        )
        err.failures = failures
        err.results = results
        raise err
    return results


def _fail_attempt(
    state: _ItemState,
    outcome: str,
    sup: Supervision,
    log: SupervisionLog,
    pending: deque | None,
    now: float,
    *,
    error: str = "",
    remote_traceback: str | None = None,
) -> None:
    """Record a failed attempt; schedule a retry or settle terminally."""
    log.record(state.label, state.attempt, outcome)
    if state.attempt >= sup.max_retries:
        log.record(state.label, state.attempt, "failed")
        state.failure = WorkerFailure(
            label=state.label,
            attempts=state.attempt + 1,
            outcome=outcome,
            error=error,
            remote_traceback=remote_traceback,
        )
        state.settled = True
        return
    state.attempt += 1
    if pending is not None:
        delay = backoff_delay(state.label, state.attempt, sup)
        if delay:
            obs.histogram("supervise.backoff_s").record(delay)
        pending.append((state, now + delay))


def _check_result(result, validate) -> str | None:
    """None when the payload is good, else a corruption description."""
    if isinstance(result, CorruptPayload):
        return "worker returned a corrupt payload"
    if validate is not None:
        try:
            validate(result)
        except Exception as exc:
            return f"payload validation failed: {exc}"
    return None


def _supervise_forked(
    fn, states, results, jobs, sup, plan, with_context, validate, log
) -> None:
    ctx_mp = multiprocessing.get_context("fork")
    jobs = max(1, min(effective_jobs(jobs), len(states)))
    pending: deque = deque((st, 0.0) for st in states)
    active: dict[int, _Active] = {}
    hb_hist = obs.histogram("supervise.heartbeat_gap_s")

    def note_attempt(a: _Active, attempt: int, outcome: str) -> None:
        obs.record_span(
            "supervise.attempt", a.started_wall, obs.wall_now(),
            label=a.state.label, attempt=attempt, outcome=outcome,
        )

    def launch(state: _ItemState, now: float) -> None:
        obs.counter_add("supervise.attempts")
        faults = plan.process_faults_for(state.label, state.attempt) if plan else ()
        parent_conn, child_conn = ctx_mp.Pipe(duplex=False)
        wctx = WorkerContext(
            state.label,
            state.attempt,
            faults=faults,
            checkpoint=state.checkpoint,
            conn=child_conn,
        )
        proc = ctx_mp.Process(
            target=_child_main,
            args=(fn, state.item, with_context, wctx, child_conn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        active[state.idx] = _Active(
            state, proc, parent_conn, now,
            HeartbeatMonitor(sup.heartbeat_timeout_s, hist=hb_hist, now=now),
        )

    def reap(a: _Active) -> None:
        try:
            a.conn.close()
        except Exception:
            pass
        if a.proc.is_alive():
            a.proc.kill()
        a.proc.join()

    def finish(state: _ItemState, terminal, now: float) -> str:
        if terminal[0] == "ok":
            # Unwrap the worker's piggybacked obs snapshot; merge it only
            # when the payload is accepted, so a corrupt attempt's metrics
            # never pollute the run-wide view the retry will refill.
            result, snap = obs.split_carrier(terminal[1])
            problem = _check_result(result, validate)
            if problem is None:
                log.record(state.label, state.attempt, "ok")
                results[state.idx] = result
                state.settled = True
                if snap is not None:
                    obs.merge_snapshot(snap)
                return "ok"
            _fail_attempt(state, "corrupt", sup, log, pending, now, error=problem)
            return "corrupt"
        else:  # ("err", remote_traceback, item_repr)
            _, tb, item_repr = terminal
            _fail_attempt(
                state, "error", sup, log, pending, now,
                error=f"worker raised on item {item_repr}",
                remote_traceback=tb,
            )
            return "error"

    while pending or active:
        now = time.monotonic()

        # Launch ready work up to the concurrency cap.
        while pending and len(active) < jobs and pending[0][1] <= now:
            state, _ = pending.popleft()
            launch(state, now)
        if not active:
            # Only backoff-delayed retries remain: sleep until the first.
            time.sleep(max(0.0, min(nb for _, nb in pending) - now))
            continue

        for idx, a in list(active.items()):
            state = a.state
            terminal = None  # ("ok", result) | ("err", tb, item_repr)
            try:
                while a.conn.poll(0):
                    msg = a.conn.recv()
                    if msg[0] == "beat":
                        a.hb.beat()
                    elif msg[0] == "ckpt":
                        state.checkpoint = msg[1]
                        a.hb.beat()
                    else:
                        terminal = msg
                        break
            except (EOFError, OSError):
                pass  # pipe died with the worker; liveness check decides

            now = time.monotonic()
            if terminal is not None:
                del active[idx]
                reap(a)
                attempt_no = state.attempt
                note_attempt(a, attempt_no, finish(state, terminal, now))
            elif not a.proc.is_alive():
                # Died without a terminal message — but the pipe may still
                # hold one buffered (small results flush before exit).
                try:
                    if a.conn.poll(0.05):
                        msg = a.conn.recv()
                        if msg[0] in ("ok", "err"):
                            terminal = msg
                        elif msg[0] == "ckpt":
                            state.checkpoint = msg[1]
                except (EOFError, OSError):
                    pass
                del active[idx]
                reap(a)
                attempt_no = state.attempt
                if terminal is not None:
                    note_attempt(a, attempt_no, finish(state, terminal, now))
                else:
                    _fail_attempt(
                        state, "crash", sup, log, pending, now,
                        error="worker died without reporting a result (SIGKILL/OOM?)",
                    )
                    note_attempt(a, attempt_no, "crash")
            elif sup.timeout_s is not None and now - a.started > sup.timeout_s:
                del active[idx]
                reap(a)
                attempt_no = state.attempt
                _fail_attempt(
                    state, "timeout", sup, log, pending, now,
                    error=f"worker exceeded its {sup.timeout_s:g}s budget",
                )
                note_attempt(a, attempt_no, "timeout")
            elif a.hb.expired(now):
                del active[idx]
                reap(a)
                attempt_no = state.attempt
                _fail_attempt(
                    state, "timeout", sup, log, pending, now,
                    error=f"no heartbeat for {sup.heartbeat_timeout_s:g}s",
                )
                note_attempt(a, attempt_no, "timeout")

        if active:
            time.sleep(sup.poll_interval_s)


def _supervise_inprocess(
    fn, states, results, sup, plan, with_context, validate, log
) -> None:
    """Sequential fallback when forking is unavailable (nested pools).

    Crash and hang faults are simulated with control exceptions; attempt
    outcomes, retry schedule, and checkpoint flow match the forked path.
    """
    tracking = obs.is_enabled()
    for state in states:
        while not state.settled:
            faults = plan.process_faults_for(state.label, state.attempt) if plan else ()
            wctx = WorkerContext(
                state.label, state.attempt, faults=faults, checkpoint=state.checkpoint
            )
            delay = backoff_delay(state.label, state.attempt, sup)
            if delay:
                obs.histogram("supervise.backoff_s").record(delay)
                time.sleep(delay)
            obs.counter_add("supervise.attempts")
            # Isolate this attempt's obs state the way a fork does: stash
            # the outer recorder, run the attempt against a fresh one, and
            # merge the attempt's snapshot only if its payload is accepted
            # — a simulated crash discards its metrics exactly like a real
            # SIGKILL discards the dead worker's.
            outer = obs.drain() if tracking else None
            t0w = obs.wall_now()
            outcome = error = tb = None
            result = None
            try:
                wctx.fire_startup_faults()
                result = fn(state.item, wctx) if with_context else fn(state.item)
                if wctx.corrupts:
                    result = CorruptPayload(result)
            except _SimulatedCrash:
                outcome = "crash"
                error = "worker died without reporting a result (simulated)"
            except _SimulatedStall:
                outcome = "timeout"
                error = "worker hung past its budget (simulated)"
            except Exception:
                outcome = "error"
                tb = traceback.format_exc()
                error = f"worker raised on item {_describe(state.item)}"
            finally:
                if tracking:
                    attempt_snap = obs.drain()
                    obs.merge_snapshot(outer)
            state.checkpoint = wctx.checkpoint
            attempt_no = state.attempt
            if outcome is None:
                problem = _check_result(result, validate)
                if problem is None:
                    log.record(state.label, state.attempt, "ok")
                    results[state.idx] = result
                    state.settled = True
                    if tracking:
                        obs.merge_snapshot(attempt_snap)
                    obs.record_span(
                        "supervise.attempt", t0w, obs.wall_now(),
                        label=state.label, attempt=attempt_no, outcome="ok",
                    )
                    continue
                outcome, error = "corrupt", problem
            obs.record_span(
                "supervise.attempt", t0w, obs.wall_now(),
                label=state.label, attempt=attempt_no, outcome=outcome,
            )
            _fail_attempt(
                state, outcome, sup, log, None, time.monotonic(),
                error=error, remote_traceback=tb,
            )
