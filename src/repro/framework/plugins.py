"""QSSF and CES wrapped as framework services (the two case studies).

These adapters put the concrete implementations from
:mod:`repro.sched` / :mod:`repro.energy` behind the
:class:`~repro.framework.service.PredictionService` interface so they
compose with the Model Update Engine and Resource Orchestrator.
"""

from __future__ import annotations

import numpy as np

from ..energy.drs import DRSParams, run_drs
from ..energy.forecaster import NodeDemandForecaster
from ..frame import Table
from ..sched.qssf import QSSFScheduler
from .service import PredictionService

__all__ = ["QSSFService", "CESNodeService"]


class QSSFService(PredictionService):
    """Quasi-Shortest-Service-First as a pluggable service.

    ``fit`` trains the estimators on a historical trace; ``predict``
    returns expected GPU time for a batch of queued jobs; ``act`` sorts
    a queue table into scheduling order; ``observe`` feeds finished jobs
    to the rolling estimator.
    """

    service_name = "qssf"

    def __init__(self, lam: float = 0.5) -> None:
        self.lam = lam
        self.scheduler: QSSFScheduler | None = None

    def fit(self, history: Table) -> "QSSFService":
        self.scheduler = QSSFScheduler(history, lam=self.lam)
        return self

    def predict(self, request: Table) -> np.ndarray:
        if self.scheduler is None:
            raise RuntimeError("QSSFService not fitted")
        return self.scheduler.predicted_gpu_time(request)

    def act(self, state: Table) -> Table:
        """Return the queue sorted by predicted GPU time (ascending)."""
        priorities = self.predict(state)
        order = np.argsort(priorities, kind="stable")
        return state.take(order)

    def observe(self, event) -> None:
        """``event`` is a finished-job dict with user/name/gpu_num/duration."""
        if self.scheduler is not None:
            self.scheduler.observe(
                event["user"], event["name"], int(event["gpu_num"]),
                float(event["duration"]),
            )


class CESNodeService(PredictionService):
    """Cluster Energy Saving as a pluggable service.

    ``fit`` trains the node-demand forecaster on a demand series;
    ``predict`` forecasts demand H steps ahead; ``act`` runs Algorithm 2
    over a ``(demand, total_nodes)`` window and returns the DRS outcome.
    """

    service_name = "ces"

    def __init__(self, horizon_bins: int = 18, drs_params: DRSParams | None = None) -> None:
        self.horizon_bins = horizon_bins
        self.drs_params = drs_params
        self.forecaster: NodeDemandForecaster | None = None
        self._history: np.ndarray | None = None

    def fit(self, history: np.ndarray) -> "CESNodeService":
        self._history = np.asarray(history, dtype=float)
        self.forecaster = NodeDemandForecaster(horizon_bins=self.horizon_bins).fit(
            self._history
        )
        return self

    def predict(self, request: np.ndarray) -> np.ndarray:
        """Forecast demand ``horizon_bins`` ahead of each series index."""
        if self.forecaster is None:
            raise RuntimeError("CESNodeService not fitted")
        series = np.asarray(request, dtype=float)
        return self.forecaster.predict_at(series, np.arange(series.size))

    def act(self, state: tuple[np.ndarray, int]):
        demand, total_nodes = state
        demand = np.asarray(demand, dtype=float)
        fc = self.predict(demand)
        params = self.drs_params or DRSParams.scaled(int(total_nodes))
        return run_drs(demand, fc, int(total_nodes), params)
