"""QSSF and CES wrapped as framework services (the two case studies).

These adapters put the concrete implementations from
:mod:`repro.sched` / :mod:`repro.energy` behind the
:class:`~repro.framework.service.PredictionService` interface so they
compose with the Model Update Engine and Resource Orchestrator.
"""

from __future__ import annotations

import numpy as np

from ..energy.drs import DRSParams, run_drs
from ..energy.forecaster import ForecastFeatures, NodeDemandForecaster
from ..frame import Table
from ..ml.gbdt import GBDTParams
from ..sched.qssf import QSSFScheduler
from .service import PredictionService

__all__ = ["QSSFService", "CESNodeService", "PassthroughQueueService"]


class QSSFService(PredictionService):
    """Quasi-Shortest-Service-First as a pluggable service.

    ``fit`` trains the estimators on a historical trace; ``predict``
    returns expected GPU time for a batch of queued jobs; ``act`` sorts
    a queue table into scheduling order; ``observe`` feeds finished jobs
    to the rolling estimator.

    ``refit_mode`` selects how the Model Update Engine refreshes the
    service: ``"incremental"`` (default) advances the fitted model in
    place — the rolling estimator is already fresh from ``observe`` and
    the GBDT continues boosting on the new jobs only
    (:meth:`~repro.sched.qssf.QSSFScheduler.update_model`,
    ``GBDTParams`` preserved); ``"scratch"`` keeps the original
    full-history refit, the correctness oracle the incremental path is
    band-tested against.
    """

    service_name = "qssf"

    _REFIT_MODES = ("incremental", "scratch")

    def __init__(
        self,
        lam: float = 0.5,
        gbdt_params: GBDTParams | None = None,
        refit_mode: str = "incremental",
    ) -> None:
        if refit_mode not in self._REFIT_MODES:
            raise ValueError(
                f"refit_mode must be one of {self._REFIT_MODES}, got {refit_mode!r}"
            )
        self.lam = lam
        self.gbdt_params = gbdt_params
        self.refit_mode = refit_mode
        self.scheduler: QSSFScheduler | None = None

    @property
    def supports_incremental(self) -> bool:
        return self.refit_mode == "incremental"

    def fit(self, history: Table) -> "QSSFService":
        self.scheduler = QSSFScheduler(
            history, lam=self.lam, gbdt_params=self.gbdt_params
        )
        return self

    def apply_update(self, new_history: Table) -> "QSSFService":
        """Advance the fitted model with the jobs finished since the
        last refresh (the engine's ``update_builder`` delta table).

        Unlike the retain-observations services, the GBDT half has *not*
        seen these jobs yet — ``observe`` only feeds the rolling
        estimator — so the delta is ingested here, as continued boosting.
        """
        if self.scheduler is None:
            raise RuntimeError("QSSFService not fitted")
        self.scheduler.update_model(new_history)
        return self

    def predict(self, request: Table) -> np.ndarray:
        if self.scheduler is None:
            raise RuntimeError("QSSFService not fitted")
        return self.scheduler.predicted_gpu_time(request)

    def act(self, state: Table) -> Table:
        """Return the queue sorted by predicted GPU time (ascending)."""
        priorities = self.predict(state)
        order = np.argsort(priorities, kind="stable")
        return state.take(order)

    def observe(self, event) -> None:
        """``event`` is a finished-job dict with user/name/gpu_num/duration."""
        if self.scheduler is not None:
            self.scheduler.observe(
                event["user"], event["name"], int(event["gpu_num"]),
                float(event["duration"]),
            )


class PassthroughQueueService(PredictionService):
    """FIFO passthrough — the QSSF degradation ladder's last rung.

    Model-free and unfailable: ``act`` returns the queue in arrival
    order, ``predict`` returns zeros, ``fit``/``apply_update`` are
    no-ops.  When every smarter fallback has raised, the serving loop
    swaps this in so decisions keep flowing.
    """

    service_name = "qssf"
    supports_incremental = False

    def fit(self, history) -> "PassthroughQueueService":
        return self

    def apply_update(self, new_history) -> "PassthroughQueueService":
        return self

    def predict(self, request) -> np.ndarray:
        return np.zeros(len(request), dtype=float)

    def act(self, state: Table) -> Table:
        return state

    def observe(self, event) -> None:
        pass


class CESNodeService(PredictionService):
    """Cluster Energy Saving as a pluggable service.

    ``fit`` trains the node-demand forecaster on a demand series;
    ``predict`` forecasts demand H steps ahead; ``act`` runs Algorithm 2
    over a ``(demand, total_nodes)`` window and returns the DRS outcome.

    The service is *incremental*: ``observe(sample)`` ingests one
    node-demand sample and, every ``update_every`` samples, drives the
    forecaster's :meth:`~repro.energy.forecaster.NodeDemandForecaster.extend`
    path so the model advances between full refits instead of merely
    buffering data for the next scratch fit.  ``apply_update`` (the
    Model Update Engine's incremental refit hook) forces any still
    buffered samples into the model immediately.
    """

    service_name = "ces"
    supports_incremental = True
    #: the DRS controller is a sequential stateful owner: exactly one
    #: replica serves node samples, so central refits buy nothing and
    #: snapshot installs would clobber in-flight forecaster extends
    replicable = False

    def __init__(
        self,
        horizon_bins: int = 18,
        drs_params: DRSParams | None = None,
        update_every: int = 36,
        features: ForecastFeatures | None = None,
        gbdt_params: GBDTParams | None = None,
    ) -> None:
        if update_every < 1:
            raise ValueError("update_every must be >= 1")
        self.horizon_bins = horizon_bins
        self.drs_params = drs_params
        self.update_every = update_every
        self.features = features
        self.gbdt_params = gbdt_params
        self.forecaster: NodeDemandForecaster | None = None
        self._history: np.ndarray | None = None
        self._pending: list[float] = []
        self.updates_applied = 0

    def fit(self, history: np.ndarray) -> "CESNodeService":
        self._history = np.asarray(history, dtype=float)
        self._pending.clear()
        self.forecaster = NodeDemandForecaster(
            horizon_bins=self.horizon_bins,
            features=self.features,
            gbdt_params=self.gbdt_params,
        ).fit(self._history)
        return self

    @property
    def history(self) -> np.ndarray | None:
        """The demand series ingested so far (fit history + observations)."""
        if self._history is None:
            return None
        if self._pending:
            return np.concatenate([self._history, np.asarray(self._pending)])
        return self._history

    def observe(self, event) -> None:
        """``event`` is one node-demand sample (running nodes in a bin).

        Samples accumulate and, once ``update_every`` are pending on a
        fitted model, advance the forecaster incrementally — the serving
        loop's path for keeping predictions fresh between refits.
        """
        self._pending.append(float(event))
        if self.forecaster is not None and len(self._pending) >= self.update_every:
            self._advance()

    def apply_update(self, new_history=None) -> "CESNodeService":
        """Force any buffered samples into the model immediately.

        The service retains its observations, so per the
        :meth:`~repro.framework.service.PredictionService.apply_update`
        contract the argument is *never* ingested: every sample reaches
        the service through :meth:`observe` before a refit fires, and
        re-ingesting the engine-built delta would double-count it (in
        the worst case silently corrupting the demand series whenever a
        refit lands just after an ``update_every`` flush).  Ingest via
        :meth:`observe`; this call only flushes.
        """
        if self.forecaster is None:
            raise RuntimeError("CESNodeService not fitted")
        self._advance()
        return self

    def _advance(self) -> None:
        if not self._pending:
            return
        assert self._history is not None and self.forecaster is not None
        self._history = np.concatenate([self._history, np.asarray(self._pending)])
        self._pending.clear()
        self.forecaster.extend(self._history)
        self.updates_applied += 1

    def predict(self, request: np.ndarray) -> np.ndarray:
        """Forecast demand ``horizon_bins`` ahead of each series index."""
        if self.forecaster is None:
            raise RuntimeError("CESNodeService not fitted")
        series = np.asarray(request, dtype=float)
        return self.forecaster.predict_at(series, np.arange(series.size))

    def act(self, state: tuple[np.ndarray, int]):
        demand, total_nodes = state
        demand = np.asarray(demand, dtype=float)
        fc = self.predict(demand)
        params = self.drs_params or DRSParams.scaled(int(total_nodes))
        return run_drs(demand, fc, int(total_nodes), params)
