"""Process/thread fan-out primitives for the framework layer.

Small, dependency-free helpers shared by the experiment orchestrator
(:mod:`repro.experiments.orchestrator`) and the framework components:

* :func:`stable_seed` — deterministic 32-bit seeds derived from string
  task names, so a task seeds its RNG identically no matter which worker
  (or how many workers) runs it;
* :func:`effective_jobs` — clamp a requested worker count to something
  sane for the host;
* :func:`run_forked` — map a function over items with a forked process
  pool, falling back to in-process execution when forking is unavailable
  or pointless (1 worker, <2 items);
* :func:`map_threaded` — thread fan-out for I/O-light shared-memory work
  (used by the Model Update Engine's bulk refit and the Resource
  Orchestrator's batch dispatch).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..obs import collect as obs

__all__ = [
    "WorkerError",
    "stable_seed",
    "effective_jobs",
    "fork_available",
    "run_forked",
    "map_threaded",
]


class WorkerError(RuntimeError):
    """A forked/supervised worker failed.

    Carries the failing item's repr (``item``), the worker-side
    traceback (``remote_traceback``), and how many attempts were made
    (``attempts``; always 1 for :func:`run_forked`), so the caller sees
    *which* item broke and *where* — not a context-free pool exception.
    """

    def __init__(
        self,
        message: str,
        *,
        item: str | None = None,
        remote_traceback: str | None = None,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.item = item
        self.remote_traceback = remote_traceback
        self.attempts = attempts


def stable_seed(name: str, salt: int = 0) -> int:
    """A deterministic 32-bit seed for the task called ``name``.

    Hash-based (not ``hash()``, which is salted per process) so serial
    and parallel executions of the same task draw identical RNG streams.
    """
    digest = hashlib.sha256(f"{salt}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def effective_jobs(jobs: int | None) -> int:
    """Clamp a requested worker count to ``[1, 4 * cpu_count]``.

    ``None`` or ``0`` means "one per CPU".  Values above the clamp are
    almost certainly a typo and would only add fork overhead.
    """
    ncpu = os.cpu_count() or 1
    if not jobs:
        return ncpu
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return min(jobs, 4 * ncpu)


def fork_available() -> bool:
    """True when a fork-based process pool can be used on this host.

    Fork matters beyond speed: workers inherit the parent's warmed
    in-process memos copy-on-write, which is how shared precursors reach
    every worker without re-serialization.  Daemonic processes (e.g. the
    orchestrator's own pool workers) cannot have children, so nested
    fan-out — a worker running an exhibit whose internals also want a
    pool, like the fold-parallel forecaster comparison — reports
    unavailable and degrades to the in-process path.
    """
    if multiprocessing.current_process().daemon:
        return False
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class _RemoteFailure:
    """Worker-side failure record shipped back in the result slot."""

    item: str
    traceback: str


class _TracedCall:
    """Picklable wrapper that converts worker exceptions into markers.

    Raising inside a pool worker surfaces a context-free exception in
    the parent; returning a :class:`_RemoteFailure` instead preserves
    the remote traceback and the failing item's repr so the caller's
    :class:`WorkerError` can name both.
    """

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        try:
            # Piggyback the worker's obs state on the result pickle: the
            # parent absorbs it in run_forked, so spans/metrics recorded
            # inside pool workers land in the run-wide view for free.
            return obs.carry_result(self.fn(item))
        except Exception:
            text = repr(item)
            if len(text) > 200:
                text = text[:197] + "..."
            return _RemoteFailure(item=text, traceback=traceback.format_exc())


def run_forked(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int,
    *,
    chunksize: int = 1,
) -> list[Any]:
    """``[fn(x) for x in items]`` across a forked worker pool.

    Results keep ``items`` order.  Degrades to an in-process loop when
    ``jobs <= 1``, there is under 2 items of work, or the platform has no
    ``fork`` start method — callers get one code path either way.

    A worker exception raises :class:`WorkerError` naming the first
    failing item (in ``items`` order) with its remote traceback; a
    worker that dies before reporting (SIGKILL, OOM) fails fast with a
    :class:`WorkerError` instead of hanging the pool.  In-process
    execution lets exceptions propagate untouched — the local traceback
    is already complete.
    """
    jobs = min(effective_jobs(jobs), len(items)) if items else 1
    if jobs <= 1 or len(items) < 2 or not fork_available():
        return [fn(item) for item in items]
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
        try:
            results = list(pool.map(_TracedCall(fn), items, chunksize=chunksize))
        except BrokenProcessPool as exc:
            raise WorkerError(
                "a forked worker died before reporting a result "
                "(SIGKILL/OOM?); aborting the batch"
            ) from exc
    for result in results:
        if isinstance(result, _RemoteFailure):
            raise WorkerError(
                f"forked worker failed on item {result.item}\n"
                f"--- remote traceback ---\n{result.traceback}",
                item=result.item,
                remote_traceback=result.traceback,
            )
    return [obs.absorb_result(result) for result in results]


def map_threaded(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
) -> list[Any]:
    """``[fn(x) for x in items]`` on a thread pool (shared memory).

    For mutating shared objects in place — e.g. refitting registered
    services — where a process pool's copy-on-write would discard the
    mutation.  Order is preserved; exceptions propagate.
    """
    items = list(items)
    jobs = min(effective_jobs(jobs), len(items)) if items else 1
    if jobs <= 1 or len(items) < 2:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))
