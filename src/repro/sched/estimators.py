"""QSSF duration estimators (Algorithm 1, lines 12–20).

Two estimates are blended:

* :class:`RollingEstimator` — P_R: direct lookup in the historical trace.
  New user → average duration of same-GPU-demand jobs; known user but
  new job name → average of that user's same-demand jobs; otherwise an
  exponentially-weighted decay over the user's similar-named jobs
  (most recent first).
* :class:`MLEstimator` — P_M: a GBDT regression over encoded job
  attributes (demands, submission-time decomposition, user/VC/name
  encodings), trained on the historical trace (§4.2.2).
"""

from __future__ import annotations

import numpy as np

from ..frame import Table
from ..ml.encoding import FrequencyEncoder, OrdinalEncoder, time_features
from ..ml.gbdt import GBDTParams, GBDTRegressor
from ..ml.text import NameBucketizer, levenshtein_ratio

__all__ = ["RollingEstimator", "MLEstimator"]


class RollingEstimator:
    """History-table estimator with name-similarity matching.

    Parameters
    ----------
    decay:
        Exponential weight applied per step into the past when averaging
        a user's similar-named jobs (Algorithm 1 line 18).
    similarity_threshold:
        Levenshtein-ratio threshold for "SimilarName" (canonical forms
        are tried for an exact match first, which covers numbered
        recurrences like ``train_v7``).
    """

    def __init__(self, decay: float = 0.8, similarity_threshold: float = 0.7) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay
        self.similarity_threshold = similarity_threshold
        # user -> canon name -> [durations in submission order]
        self._user_names: dict[str, dict[str, list[float]]] = {}
        # (user, gpu) -> (sum, count); user -> (sum, count)
        self._user_gpu: dict[tuple[str, int], tuple[float, int]] = {}
        self._user_all: dict[str, tuple[float, int]] = {}
        # gpu -> (sum, count) over everyone; plus the global mean
        self._gpu_all: dict[int, tuple[float, int]] = {}
        self._global: tuple[float, int] = (0.0, 0)

    # ------------------------------------------------------------------
    def fit(self, history: Table) -> "RollingEstimator":
        """Ingest the historical trace in submission order."""
        order = np.argsort(history["submit_time"], kind="stable")
        users = history["user"][order]
        names = history["name"][order]
        gpus = history["gpu_num"][order]
        durs = history["duration"][order]
        for u, nm, g, d in zip(users, names, gpus.tolist(), durs.tolist()):
            self.update(str(u), str(nm), int(g), float(d))
        return self

    def update(self, user: str, name: str, gpu_num: int, duration: float) -> None:
        """Record one finished job (Model Update Engine hook)."""
        canon = NameBucketizer.canonicalize(name)
        self._user_names.setdefault(user, {}).setdefault(canon, []).append(duration)
        s, c = self._user_gpu.get((user, gpu_num), (0.0, 0))
        self._user_gpu[(user, gpu_num)] = (s + duration, c + 1)
        s, c = self._user_all.get(user, (0.0, 0))
        self._user_all[user] = (s + duration, c + 1)
        s, c = self._gpu_all.get(gpu_num, (0.0, 0))
        self._gpu_all[gpu_num] = (s + duration, c + 1)
        s, c = self._global
        self._global = (s + duration, c + 1)

    # ------------------------------------------------------------------
    def _mean(self, pair: tuple[float, int], fallback: float) -> float:
        s, c = pair
        return s / c if c else fallback

    def estimate(self, user: str, name: str, gpu_num: int) -> float:
        """P_R for one upcoming job (Algorithm 1, Priority function)."""
        if self._global[1] == 0:
            return 1.0  # empty history: all jobs tie
        global_mean = self._global[0] / self._global[1]
        user_names = self._user_names.get(user)
        if user_names is None:
            # New user: average duration of same-demand jobs in the trace.
            return self._mean(self._gpu_all.get(gpu_num, (0.0, 0)), global_mean)
        canon = NameBucketizer.canonicalize(name)
        matched = user_names.get(canon)
        if matched is None:
            # Fuzzy SimilarName pass over the user's distinct canon names.
            best = None
            for cand, durations in user_names.items():
                if levenshtein_ratio(canon, cand) >= self.similarity_threshold:
                    best = durations if best is None else best + durations
            matched = best
        if matched is None:
            # Known user, new job name: same-demand average for this user.
            user_mean = self._mean(self._user_all.get(user, (0.0, 0)), global_mean)
            return self._mean(self._user_gpu.get((user, gpu_num), (0.0, 0)), user_mean)
        # Exponentially weighted decay, most recent observation first.
        recent = np.asarray(matched[-50:][::-1], dtype=float)
        weights = self.decay ** np.arange(len(recent))
        return float((recent * weights).sum() / weights.sum())

    def estimate_many(self, trace: Table) -> np.ndarray:
        """Vector of P_R for every job in ``trace``."""
        users = trace["user"]
        names = trace["name"]
        gpus = trace["gpu_num"]
        return np.array(
            [
                self.estimate(str(u), str(nm), int(g))
                for u, nm, g in zip(users, names, gpus.tolist())
            ]
        )


class MLEstimator:
    """GBDT duration regressor over encoded job attributes (§4.2.2).

    The target is ``log1p(duration)`` (durations span seconds to weeks);
    predictions are exponentiated back.  Feature set:

    ====================  =====================================================
    gpu_num, cpu_num      resource demands
    node_num              consolidated node footprint
    month..minute         submission-time decomposition (5 features)
    user, vc              ordinal codes (first-seen order)
    user_freq             user's historical submission frequency
    name_bucket           Levenshtein-clustered job-name bucket id
    user_mean_logdur      per-user mean log-duration (target encoding)
    ====================  =====================================================
    """

    def __init__(
        self, params: GBDTParams | None = None, *, mode: str = "fast"
    ) -> None:
        self.params = params or GBDTParams(
            n_estimators=150, learning_rate=0.1, max_depth=7, min_samples_leaf=20
        )
        self.model = GBDTRegressor(self.params, mode=mode)
        self._user_enc = OrdinalEncoder()
        self._vc_enc = OrdinalEncoder()
        self._user_freq = FrequencyEncoder()
        self._buckets = NameBucketizer(threshold=0.8)
        self._user_mean: dict[str, float] = {}
        self._global_mean_logdur: float = 0.0
        self._fitted = False
        self._n_seen = 0

    # ------------------------------------------------------------------
    def _features(self, trace: Table, fit: bool) -> np.ndarray:
        users = trace["user"]
        if fit:
            user_codes = self._user_enc.fit_transform(users)
            vc_codes = self._vc_enc.fit_transform(trace["vc"])
            user_freq = self._user_freq.fit_transform(users)
            buckets = self._buckets.fit_transform(trace["name"])
        else:
            user_codes = self._user_enc.transform(users)
            vc_codes = self._vc_enc.transform(trace["vc"])
            user_freq = self._user_freq.transform(users)
            buckets = self._buckets.transform(trace["name"])
        tfeat = time_features(trace["submit_time"])
        user_mean = np.array(
            [self._user_mean.get(str(u), self._global_mean_logdur) for u in users]
        )
        return np.column_stack(
            [
                trace["gpu_num"].astype(float),
                trace["cpu_num"].astype(float),
                trace["node_num"].astype(float),
                tfeat.astype(float),
                user_codes.astype(float),
                vc_codes.astype(float),
                user_freq,
                buckets.astype(float),
                user_mean,
            ]
        )

    def fit(self, history: Table) -> "MLEstimator":
        if len(history) == 0:
            raise ValueError("cannot fit MLEstimator on an empty history")
        logdur = np.log1p(history["duration"].astype(float))
        self._global_mean_logdur = float(logdur.mean())
        # Target encoding (computed before _features reads it).
        users = history["user"]
        uniq, inv = np.unique(users, return_inverse=True)
        sums = np.bincount(inv, weights=logdur)
        counts = np.bincount(inv)
        self._user_mean = {
            str(u): float(s / c) for u, s, c in zip(uniq, sums, counts)
        }
        X = self._features(history, fit=True)
        self.model.fit(X, logdur)
        self._fitted = True
        self._n_seen = len(history)
        return self

    def update(self, new_jobs: Table, n_more: int | None = None) -> "MLEstimator":
        """Advance the GBDT with newly finished jobs (continued boosting).

        The encoders, target encoding, and histogram binner stay frozen
        from the initial fit (unseen users/names fall back to the same
        codes prediction uses), the new rows join the training matrix,
        and ``n_more`` boosting stages are appended via
        :meth:`~repro.ml.gbdt.GBDTRegressor.fit_more` — all
        :class:`~repro.ml.gbdt.GBDTParams` are preserved.  The default
        ``n_more`` scales the configured ensemble size by the share of
        new rows, so update cost tracks the amount of new data.  A
        scratch :meth:`fit` on the full history remains the oracle;
        estimates are expected to agree within a band, not bit-exactly.
        """
        if not self._fitted:
            raise RuntimeError("MLEstimator not fitted; call fit() first")
        if len(new_jobs) == 0:
            return self
        logdur = np.log1p(new_jobs["duration"].astype(float))
        X = self._features(new_jobs, fit=False)
        self._n_seen += len(new_jobs)
        if n_more is None:
            n_more = max(
                1, round(self.params.n_estimators * len(new_jobs) / self._n_seen)
            )
        self.model.fit_more(X, logdur, n_more)
        return self

    def estimate_many(self, trace: Table) -> np.ndarray:
        """Vector of P_M (predicted durations, seconds)."""
        if not self._fitted:
            raise RuntimeError("MLEstimator not fitted")
        X = self._features(trace, fit=False)
        return np.maximum(np.expm1(self.model.predict(X)), 1.0)
