"""Baseline scheduling policies (§4.2.3).

* **FIFO** — the production policy in Helios (Slurm, submission order).
* **SJF** — oracle Shortest-Job-First: non-preemptive, perfect knowledge
  of the true duration.  Upper bound for non-preemptive scheduling.
* **SRTF** — oracle Shortest-Remaining-Time-First with free preemption.
  Upper bound overall; "too ideal and thus impractical" per the paper.
"""

from __future__ import annotations

import numpy as np

from ..frame import Table
from .base import Scheduler

__all__ = ["FIFOScheduler", "SJFScheduler", "SRTFScheduler"]


class FIFOScheduler(Scheduler):
    """First-In-First-Out: priority is the submission timestamp."""

    name = "FIFO"

    def priorities(self, trace: Table) -> np.ndarray:
        return trace["submit_time"].astype(float)


class SJFScheduler(Scheduler):
    """Oracle Shortest-Job-First: priority is the true duration."""

    name = "SJF"

    def priorities(self, trace: Table) -> np.ndarray:
        return trace["duration"].astype(float)


class SRTFScheduler(Scheduler):
    """Oracle Shortest-Remaining-Time-First (preemptive SJF).

    Initial priority is the true duration; when the simulator preempts a
    job it re-queues it keyed by its remaining time.
    """

    name = "SRTF"
    preemptive = True

    def priorities(self, trace: Table) -> np.ndarray:
        return trace["duration"].astype(float)
