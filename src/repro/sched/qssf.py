"""Quasi-Shortest-Service-First scheduling (Algorithm 1, §4.2).

Priority of job J with GPU demand N:

    P(J) = N × ( λ·P_R(J) + (1−λ)·P_M(J) )

where P_R is the rolling history estimate and P_M the GBDT estimate of
the job's duration.  Ranking by expected *GPU time* (not duration) keeps
large-but-short jobs from blocking many small ones (§4.2.1).  Lower
priority value = scheduled first; non-preemptive.
"""

from __future__ import annotations

import numpy as np

from ..frame import Table
from ..ml.gbdt import GBDTParams
from .base import Scheduler
from .estimators import MLEstimator, RollingEstimator

__all__ = ["QSSFScheduler", "OracleGpuTimeScheduler", "NoisyOracleScheduler"]


class QSSFScheduler(Scheduler):
    """The paper's QSSF service as a queue policy.

    Parameters
    ----------
    history:
        Historical trace (e.g. April–August) used to fit both estimators.
    lam:
        Merging coefficient λ between rolling and ML estimates.
    gbdt_params:
        Hyper-parameters for the GBDT duration model.
    rolling, ml:
        Optional *prefitted* estimators to adopt instead of training
        from ``history``.  λ only affects how the two estimates blend,
        not how either model trains, so a λ-sweep (or a set of replays
        over the same month) can share one fit per estimator.  ``ml``
        is ignored at ``lam=1`` (the blend never consults it).
    """

    name = "QSSF"

    def __init__(
        self,
        history: Table,
        lam: float = 0.5,
        gbdt_params: GBDTParams | None = None,
        *,
        rolling: RollingEstimator | None = None,
        ml: MLEstimator | None = None,
    ) -> None:
        if not 0.0 <= lam <= 1.0:
            raise ValueError("lam must be in [0, 1]")
        self.lam = lam
        self.rolling = rolling if rolling is not None else RollingEstimator().fit(history)
        self.ml: MLEstimator | None = None
        if lam < 1.0:
            self.ml = ml if ml is not None else MLEstimator(gbdt_params).fit(history)

    # ------------------------------------------------------------------
    def predicted_durations(self, trace: Table) -> np.ndarray:
        """λ-blended duration estimate (seconds) per job."""
        p_r = self.rolling.estimate_many(trace)
        if self.ml is None:
            return p_r
        p_m = self.ml.estimate_many(trace)
        return self.lam * p_r + (1.0 - self.lam) * p_m

    def predicted_gpu_time(self, trace: Table) -> np.ndarray:
        """Expected GPU time = N × blended duration (the priority P)."""
        return trace["gpu_num"].astype(float) * self.predicted_durations(trace)

    def priorities(self, trace: Table) -> np.ndarray:
        return self.predicted_gpu_time(trace)

    def observe(self, user: str, name: str, gpu_num: int, duration: float) -> None:
        """Online update hook for the rolling estimator (Model Update
        Engine fetches finished jobs and feeds them back, §4.1)."""
        self.rolling.update(user, name, gpu_num, duration)

    def update_model(self, new_jobs: Table) -> "QSSFScheduler":
        """Advance the GBDT on newly finished jobs (continued boosting).

        The rolling estimator is *not* touched: it already ingested the
        same jobs one by one through :meth:`observe`.  Only the ML half
        of the blend needs a batch update (no-op at ``lam=1``).  See
        :meth:`repro.sched.estimators.MLEstimator.update`.
        """
        if self.ml is not None and len(new_jobs):
            self.ml.update(new_jobs)
        return self


class OracleGpuTimeScheduler(Scheduler):
    """Perfect-information QSSF: priority = true GPU time.

    Used in ablations to separate "rank by GPU time" from "predict the
    duration" effects.
    """

    name = "QSSF-oracle"

    def priorities(self, trace: Table) -> np.ndarray:
        return trace["duration"].astype(float) * trace["gpu_num"].astype(float)


class NoisyOracleScheduler(Scheduler):
    """Oracle GPU time corrupted by log-normal noise.

    This is how the paper evaluates QSSF on Philly (§4.2.3): the Philly
    trace lacks job names and VC configurations, so priorities are
    generated "randomly with a similar error distribution as Helios
    estimation".
    """

    name = "QSSF"

    def __init__(self, log_error_sigma: float = 0.8, seed: int = 0) -> None:
        if log_error_sigma < 0:
            raise ValueError("log_error_sigma must be >= 0")
        self.log_error_sigma = log_error_sigma
        self.seed = seed

    def priorities(self, trace: Table) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        noise = rng.lognormal(0.0, self.log_error_sigma, size=len(trace))
        return trace["duration"].astype(float) * trace["gpu_num"].astype(float) * noise
