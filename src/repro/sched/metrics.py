"""Scheduling outcome metrics (Tables 3–4, Figs 11–13)."""

from __future__ import annotations

import numpy as np

from ..frame import Table, group_reduce
from ..sim.engine import ReplayResult

__all__ = [
    "SchedulerMetrics",
    "compute_metrics",
    "queuing_by_vc",
    "queue_delay_ratio_by_group",
    "DURATION_GROUPS",
]

#: Table 4's job groups: short < 15 min, middle 15 min–6 h, long > 6 h.
DURATION_GROUPS = (
    ("short-term", 0.0, 15 * 60.0),
    ("middle-term", 15 * 60.0, 6 * 3600.0),
    ("long-term", 6 * 3600.0, np.inf),
)


class SchedulerMetrics:
    """Summary of one replay under one policy."""

    def __init__(
        self,
        name: str,
        avg_jct: float,
        avg_queue_time: float,
        num_queuing_jobs: int,
        median_jct: float,
        p99_queue: float,
    ) -> None:
        self.name = name
        self.avg_jct = avg_jct
        self.avg_queue_time = avg_queue_time
        self.num_queuing_jobs = num_queuing_jobs
        self.median_jct = median_jct
        self.p99_queue = p99_queue

    def as_dict(self) -> dict:
        return {
            "scheduler": self.name,
            "avg_jct": self.avg_jct,
            "avg_queue_time": self.avg_queue_time,
            "num_queuing_jobs": self.num_queuing_jobs,
            "median_jct": self.median_jct,
            "p99_queue": self.p99_queue,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SchedulerMetrics({self.name}: JCT={self.avg_jct:.0f}s, "
            f"queue={self.avg_queue_time:.0f}s, queued={self.num_queuing_jobs})"
        )


def compute_metrics(
    name: str, result: ReplayResult, queuing_threshold: float = 1.0
) -> SchedulerMetrics:
    """Table-3 metrics: average JCT, average queuing time, # queued jobs.

    A job "queued" if it waited more than ``queuing_threshold`` seconds
    (instantaneous placements don't count).
    """
    jct = result.jct
    qd = result.queue_delays
    return SchedulerMetrics(
        name=name,
        avg_jct=float(jct.mean()) if len(jct) else 0.0,
        avg_queue_time=float(qd.mean()) if len(qd) else 0.0,
        num_queuing_jobs=int(np.sum(qd > queuing_threshold)),
        median_jct=float(np.median(jct)) if len(jct) else 0.0,
        p99_queue=float(np.quantile(qd, 0.99)) if len(qd) else 0.0,
    )


def queuing_by_vc(result: ReplayResult) -> Table:
    """Average queuing delay per VC (Figs 12–13)."""
    vcs = result.trace["vc"]
    uniq, means = group_reduce(vcs, result.queue_delays, "mean")
    _, counts = group_reduce(vcs, None, "count")
    return Table({"vc": uniq, "avg_queue_delay": means, "num_jobs": counts})


def queue_delay_ratio_by_group(
    baseline: ReplayResult, improved: ReplayResult
) -> dict[str, float]:
    """Table 4: mean-queue-delay ratio baseline/improved per duration
    group; higher = bigger win for the improved policy."""
    if len(baseline.trace) != len(improved.trace):
        raise ValueError("results must replay the same trace")
    durations = baseline.trace["duration"]
    out: dict[str, float] = {}
    for label, lo, hi in DURATION_GROUPS:
        mask = (durations >= lo) & (durations < hi)
        if not np.any(mask):
            out[label] = np.nan
            continue
        base = float(baseline.queue_delays[mask].mean())
        imp = float(improved.queue_delays[mask].mean())
        out[label] = base / imp if imp > 0 else np.inf
    return out
