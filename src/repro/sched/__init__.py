"""Scheduling policies and metrics (the paper's QSSF service + baselines)."""

from .base import Scheduler
from .baselines import FIFOScheduler, SJFScheduler, SRTFScheduler
from .estimators import MLEstimator, RollingEstimator
from .metrics import (
    DURATION_GROUPS,
    SchedulerMetrics,
    compute_metrics,
    queue_delay_ratio_by_group,
    queuing_by_vc,
)
from .qssf import NoisyOracleScheduler, OracleGpuTimeScheduler, QSSFScheduler

__all__ = [
    "DURATION_GROUPS",
    "FIFOScheduler",
    "MLEstimator",
    "NoisyOracleScheduler",
    "OracleGpuTimeScheduler",
    "QSSFScheduler",
    "RollingEstimator",
    "SJFScheduler",
    "SRTFScheduler",
    "Scheduler",
    "SchedulerMetrics",
    "compute_metrics",
    "queue_delay_ratio_by_group",
    "queuing_by_vc",
]
