"""Scheduler interface.

A scheduler maps each job in a trace to a *priority value*; the
simulator keeps one priority queue per VC and always runs the queued job
with the lowest value (ties broken by arrival order).  ``preemptive``
schedulers may evict running jobs (only the SRTF oracle uses this).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..frame import Table

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Base class for queue policies."""

    #: whether the simulator may preempt running jobs for this policy
    preemptive: bool = False
    #: short display name used in experiment tables
    name: str = "base"

    @abstractmethod
    def priorities(self, trace: Table) -> np.ndarray:
        """Per-job priority (lower value = scheduled first)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
