"""Nested wall-time spans with explicit ids and fork-safe buffers.

A span is one timed region (``with trace("qssf.decide", cluster="Venus")``).
Spans carry explicit string ids — ``"<pid-hex>.<seq>"`` — rather than
relying on object identity, so a forked child's spans can name a parent
span that lives in a *different process*: the child inherits the parent's
open-span stack at fork time, keeps it for parenting, and clears only
the closed-record buffer (see :func:`repro.obs.collect` for the
``os.register_at_fork`` hook).

Timestamps are ``perf_counter`` (monotonic) re-based onto the wall
clock once at import: ``perf_counter`` on Linux is ``CLOCK_MONOTONIC``,
which forked children share, so parent and child spans land on one
consistent timeline without any cross-process clock handshake.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass, field

__all__ = ["SpanBuffer", "SpanRecord", "Span", "NOOP_SPAN", "wall_now"]

#: wall-clock anchor for the monotonic clock, fixed at import; forked
#: children inherit it, so all processes share one timeline.
_ANCHOR = time.time() - time.perf_counter()


def wall_now() -> float:
    """Monotonic-progressing wall-clock seconds (epoch-anchored)."""
    return _ANCHOR + time.perf_counter()


@dataclass
class SpanRecord:
    """One closed span: name, id links, wall-time interval, attributes."""

    name: str
    span_id: str
    parent_id: str | None
    start: float
    end: float
    pid: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanBuffer:
    """Per-process store of closed spans plus the open-span id stack."""

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self.stack: list[str] = []
        self.pid = os.getpid()
        self._seq = 0

    def new_id(self) -> str:
        self._seq += 1
        return f"{self.pid:x}.{self._seq}"

    def current_parent(self) -> str | None:
        return self.stack[-1] if self.stack else None

    def after_fork(self) -> None:
        """Reset for a forked child: drop the parent's closed records
        (the parent still owns them) but *keep* the open-span stack, so
        this child's spans re-parent under the spans that were open in
        the parent at fork time."""
        self.records = []
        self.pid = os.getpid()
        self._seq = 0


class Span:
    """Context manager for one timed region; also usable via
    :meth:`set` to attach attributes discovered mid-span."""

    __slots__ = ("_buf", "name", "attrs", "span_id", "parent_id", "_t0")

    def __init__(self, buf: SpanBuffer, name: str, attrs: dict) -> None:
        self._buf = buf
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        buf = self._buf
        self.parent_id = buf.current_parent()
        self.span_id = buf.new_id()
        buf.stack.append(self.span_id)
        self._t0 = wall_now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = wall_now()
        buf = self._buf
        if buf.stack and buf.stack[-1] == self.span_id:
            buf.stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        buf.records.append(SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start=self._t0,
            end=t1,
            pid=buf.pid,
            attrs=self.attrs,
        ))
        return False

    def __call__(self, fn):
        """Decorator form: times every call of ``fn`` under this name.

        Each invocation opens a fresh span against the *current*
        recorder state, so decorating at import time works even though
        recording is usually enabled later.
        """
        buf = self._buf
        name = self.name
        attrs = self.attrs

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with Span(buf, name, dict(attrs)):
                return fn(*args, **kwargs)

        return wrapper


class _NoopSpan:
    """Recording-disabled stand-in: every operation is a no-op."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __call__(self, fn):
        return fn


NOOP_SPAN = _NoopSpan()
