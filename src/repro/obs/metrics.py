"""Process-local metric primitives: counters, gauges, bounded histograms.

The histogram is the load-bearing piece: serving shards record one
latency sample per decision, a long stream records millions, and the
pre-obs telemetry kept every sample in an unbounded ``list[float]``.
:class:`Histogram` replaces that with **fixed log-spaced bins** — O(1)
memory regardless of sample count, O(1) record, mergeable across
processes (bin-wise addition), with quantiles read off the cumulative
bin counts.  Default geometry covers 1 µs .. 1000 s at 30 bins per
decade (≈ ±4 % relative quantile error), which spans every latency this
repo measures; callers recording non-time values (queue depths) pick
their own ``lo``/``decades``.

Everything here is deliberately registry-local (no globals): the global
recorder lives in :mod:`repro.obs.collect`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Histogram", "MetricsRegistry"]


class Histogram:
    """Bounded streaming histogram over fixed log-spaced bins.

    Bin ``b`` (1-based) covers ``[lo * 10**((b-1)/bpd), lo * 10**(b/bpd))``
    with ``bpd = bins_per_decade``; slot 0 is the underflow bucket
    (``x < lo``, including zeros and negatives) and the last slot is
    overflow.  Alongside the bins it tracks exact count/sum/min/max, so
    the mean is exact and quantiles are clamped into the observed range.
    Instances with identical geometry merge by bin-wise addition.
    """

    __slots__ = ("lo", "decades", "bins_per_decade", "counts",
                 "count", "total", "vmin", "vmax")

    def __init__(self, lo: float = 1e-6, decades: int = 9,
                 bins_per_decade: int = 30) -> None:
        if lo <= 0 or decades < 1 or bins_per_decade < 1:
            raise ValueError(
                f"bad histogram geometry: lo={lo}, decades={decades}, "
                f"bins_per_decade={bins_per_decade}"
            )
        self.lo = float(lo)
        self.decades = int(decades)
        self.bins_per_decade = int(bins_per_decade)
        self.counts = np.zeros(self.nbins + 2, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    @property
    def nbins(self) -> int:
        return self.decades * self.bins_per_decade

    @property
    def hi(self) -> float:
        return self.lo * 10.0 ** self.decades

    def geometry(self) -> tuple[float, int, int]:
        return (self.lo, self.decades, self.bins_per_decade)

    # -- recording -----------------------------------------------------

    def record(self, x: float) -> None:
        """Record one sample (non-finite values are dropped)."""
        x = float(x)
        if not math.isfinite(x):
            return
        if x < self.lo:
            i = 0
        elif x >= self.hi:
            i = self.nbins + 1
        else:
            i = min(int(math.log10(x / self.lo) * self.bins_per_decade) + 1,
                    self.nbins)
        self.counts[i] += 1
        self.count += 1
        self.total += x
        if x < self.vmin:
            self.vmin = x
        if x > self.vmax:
            self.vmax = x

    def record_many(self, values) -> None:
        """Vectorized :meth:`record` (non-finite values are dropped)."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size:
            arr = arr[np.isfinite(arr)]
        if not arr.size:
            return
        idx = np.zeros(arr.shape, dtype=np.int64)
        pos = arr >= self.lo
        if np.any(pos):
            idx[pos] = (
                np.floor(np.log10(arr[pos] / self.lo) * self.bins_per_decade)
                .astype(np.int64) + 1
            )
        np.clip(idx, 0, self.nbins + 1, out=idx)
        np.add.at(self.counts, idx, 1)
        self.count += int(arr.size)
        self.total += float(arr.sum())
        self.vmin = min(self.vmin, float(arr.min()))
        self.vmax = max(self.vmax, float(arr.max()))

    # -- reading -------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _bin_value(self, b: int) -> float:
        """Representative value for slot ``b`` (geometric bin midpoint)."""
        if b <= 0:
            return self.vmin if self.count else 0.0
        if b >= self.nbins + 1:
            return self.vmax if self.count else 0.0
        return self.lo * 10.0 ** ((b - 0.5) / self.bins_per_decade)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate, clamped to [min, max]."""
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.vmin
        if q >= 1.0:
            return self.vmax
        rank = max(1, int(math.ceil(q * self.count)))
        b = int(np.searchsorted(np.cumsum(self.counts), rank, side="left"))
        return float(min(max(self._bin_value(b), self.vmin), self.vmax))

    # -- combination ---------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Add ``other``'s samples into this histogram (same geometry)."""
        if self.geometry() != other.geometry():
            raise ValueError(
                f"cannot merge histograms with geometries {self.geometry()} "
                f"and {other.geometry()}"
            )
        self.counts += other.counts
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        return self

    def copy(self) -> "Histogram":
        out = Histogram(self.lo, self.decades, self.bins_per_decade)
        out.counts = self.counts.copy()
        out.count = self.count
        out.total = self.total
        out.vmin = self.vmin
        out.vmax = self.vmax
        return out

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready sparse encoding (occupied bins only)."""
        occupied = np.flatnonzero(self.counts)
        return {
            "lo": self.lo,
            "decades": self.decades,
            "bins_per_decade": self.bins_per_decade,
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "bins": {str(int(b)): int(self.counts[b]) for b in occupied},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        out = cls(data["lo"], data["decades"], data["bins_per_decade"])
        for b, n in data.get("bins", {}).items():
            out.counts[int(b)] = int(n)
        out.count = int(data["count"])
        out.total = float(data["total"])
        if out.count:
            out.vmin = float(data["min"])
            out.vmax = float(data["max"])
        return out

    # __slots__ classes need explicit pickle state (no __dict__).
    def __getstate__(self):
        return (self.lo, self.decades, self.bins_per_decade, self.counts,
                self.count, self.total, self.vmin, self.vmax)

    def __setstate__(self, state):
        (self.lo, self.decades, self.bins_per_decade, self.counts,
         self.count, self.total, self.vmin, self.vmax) = state

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, mean={self.mean:.6g}, "
            f"p50={self.quantile(0.5):.6g}, p99={self.quantile(0.99):.6g})"
        )


@dataclass
class MetricsRegistry:
    """Named counters, gauges, and histograms for one process.

    Counters sum on merge; gauges are last-write-wins (merge keeps the
    incoming value); histograms merge bin-wise.  All maps are plain
    dicts keyed by metric name — the export layer decides presentation.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter_add(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def histogram(self, name: str, **geometry) -> Histogram:
        """Get-or-create the named histogram.

        ``geometry`` (lo/decades/bins_per_decade) applies on first
        creation only; later calls return the existing instance, so a
        call site's geometry must be deterministic for cross-process
        merges to line up.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(**geometry)
        return hist

    def merge_histogram(self, name: str, other: Histogram) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = other.copy()
        else:
            hist.merge(other)

    def merge(self, counters: dict, gauges: dict,
              histograms: dict[str, Histogram]) -> None:
        for name, n in counters.items():
            self.counter_add(name, n)
        self.gauges.update(gauges)
        for name, hist in histograms.items():
            self.merge_histogram(name, hist)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
