"""Terminal reports over obs traces.

Usage::

    python -m repro.obs summarize DIR/trace.jsonl [--json]
    python -m repro.obs diff OLD/trace.jsonl NEW/trace.jsonl

``summarize`` renders one run: spans grouped by name (count / total /
mean / max), then counters, gauges, and histogram quantiles.  ``diff``
aligns two runs by metric and span name and prints what moved — the
run-over-run regression view (new counters, latency quantile shifts,
span-time deltas).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .collect import ObsSnapshot
from .export import read_jsonl

__all__ = ["main", "span_rollup", "summarize_dict"]


def span_rollup(snap: ObsSnapshot) -> dict[str, dict]:
    """Per-span-name aggregation: count, total/mean/max seconds."""
    out: dict[str, dict] = {}
    for s in snap.spans:
        row = out.setdefault(s.name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += s.duration
        row["max_s"] = max(row["max_s"], s.duration)
    for row in out.values():
        row["total_s"] = round(row["total_s"], 6)
        row["mean_s"] = round(row["total_s"] / row["count"], 6)
        row["max_s"] = round(row["max_s"], 6)
    return out


def summarize_dict(snap: ObsSnapshot) -> dict:
    """JSON-ready summary of one snapshot."""
    return {
        "spans": span_rollup(snap),
        "counters": dict(sorted(snap.counters.items())),
        "gauges": dict(sorted(snap.gauges.items())),
        "histograms": {
            name: {
                "count": h.count,
                "mean_ms": round(h.mean * 1e3, 4),
                "p50_ms": round(h.quantile(0.5) * 1e3, 4),
                "p99_ms": round(h.quantile(0.99) * 1e3, 4),
                "max_ms": round((h.vmax if h.count else 0.0) * 1e3, 4),
            }
            for name, h in sorted(snap.histograms.items())
        },
    }


def _print_summary(snap: ObsSnapshot, path: Path) -> None:
    summary = summarize_dict(snap)
    pids = sorted({s.pid for s in snap.spans})
    print(
        f"obs summary — {len(snap.spans)} spans across {max(len(pids), 1)} "
        f"process(es), {len(snap.counters)} counters, "
        f"{len(snap.histograms)} histograms ({path})"
    )
    if summary["spans"]:
        print()
        print(f"  {'span':<34s} {'count':>6s} {'total_s':>9s} "
              f"{'mean_ms':>9s} {'max_ms':>9s}")
        rows = sorted(summary["spans"].items(), key=lambda kv: -kv[1]["total_s"])
        for name, row in rows:
            print(
                f"  {name:<34.34s} {row['count']:>6d} {row['total_s']:>9.3f} "
                f"{row['mean_s'] * 1e3:>9.2f} {row['max_s'] * 1e3:>9.2f}"
            )
    if summary["histograms"]:
        print()
        print(f"  {'histogram':<34s} {'count':>8s} {'p50_ms':>9s} "
              f"{'p99_ms':>9s} {'mean_ms':>9s} {'max_ms':>9s}")
        for name, row in summary["histograms"].items():
            print(
                f"  {name:<34.34s} {row['count']:>8d} {row['p50_ms']:>9.3f} "
                f"{row['p99_ms']:>9.3f} {row['mean_ms']:>9.3f} "
                f"{row['max_ms']:>9.3f}"
            )
    if summary["counters"]:
        print()
        print("  counters:")
        for name, value in summary["counters"].items():
            print(f"    {name:<40s} {value}")
    if summary["gauges"]:
        print()
        print("  gauges:")
        for name, value in summary["gauges"].items():
            print(f"    {name:<40s} {value:g}")


def _fmt_delta(old: float, new: float) -> str:
    delta = new - old
    if old:
        return f"{old:g} -> {new:g} ({delta:+g}, {delta / old:+.1%})"
    return f"{old:g} -> {new:g} ({delta:+g})"


def _print_diff(old: ObsSnapshot, new: ObsSnapshot,
                old_path: Path, new_path: Path) -> int:
    """Print per-metric deltas; returns the number of changed entries."""
    changed = 0
    print(f"obs diff — {old_path} -> {new_path}")

    print()
    print("  counters:")
    for name in sorted(set(old.counters) | set(new.counters)):
        a, b = old.counters.get(name, 0), new.counters.get(name, 0)
        marker = " " if a == b else "*"
        changed += a != b
        print(f"  {marker} {name:<40s} {_fmt_delta(a, b)}")

    gauges = sorted(set(old.gauges) | set(new.gauges))
    if gauges:
        print()
        print("  gauges:")
        for name in gauges:
            a, b = old.gauges.get(name, 0.0), new.gauges.get(name, 0.0)
            marker = " " if a == b else "*"
            changed += a != b
            print(f"  {marker} {name:<40s} {_fmt_delta(a, b)}")

    hists = sorted(set(old.histograms) | set(new.histograms))
    if hists:
        print()
        print("  histograms (count | p50_ms | p99_ms):")
        for name in hists:
            ha, hb = old.histograms.get(name), new.histograms.get(name)
            ca = ha.count if ha else 0
            cb = hb.count if hb else 0
            pa = (ha.quantile(0.5) * 1e3) if ha else 0.0
            pb = (hb.quantile(0.5) * 1e3) if hb else 0.0
            qa = (ha.quantile(0.99) * 1e3) if ha else 0.0
            qb = (hb.quantile(0.99) * 1e3) if hb else 0.0
            marker = " " if (ca, pa, qa) == (cb, pb, qb) else "*"
            changed += marker == "*"
            print(
                f"  {marker} {name:<40s} {_fmt_delta(ca, cb)} | "
                f"{pa:.3f} -> {pb:.3f} | {qa:.3f} -> {qb:.3f}"
            )

    ra, rb = span_rollup(old), span_rollup(new)
    names = sorted(set(ra) | set(rb))
    if names:
        print()
        print("  spans (count | total_s):")
        for name in names:
            sa = ra.get(name, {"count": 0, "total_s": 0.0})
            sb = rb.get(name, {"count": 0, "total_s": 0.0})
            marker = " " if sa["count"] == sb["count"] else "*"
            changed += sa["count"] != sb["count"]
            print(
                f"  {marker} {name:<40s} "
                f"{_fmt_delta(sa['count'], sb['count'])} | "
                f"{sa['total_s']:.3f} -> {sb['total_s']:.3f}"
            )

    print()
    print(f"{changed} entr{'y' if changed == 1 else 'ies'} changed")
    return changed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize or diff obs JSONL traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="render one trace.jsonl")
    p_sum.add_argument("trace", type=Path, metavar="TRACE.jsonl")
    p_sum.add_argument("--json", action="store_true",
                       help="emit the summary as JSON instead of a table")
    p_diff = sub.add_parser("diff", help="compare two trace.jsonl dumps")
    p_diff.add_argument("old", type=Path, metavar="OLD.jsonl")
    p_diff.add_argument("new", type=Path, metavar="NEW.jsonl")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(sys.argv[1:] if argv is None else argv)
    try:
        if args.command == "summarize":
            snap = read_jsonl(args.trace)
            if args.json:
                print(json.dumps(summarize_dict(snap), indent=2, sort_keys=True))
            else:
                _print_summary(snap, args.trace)
            return 0
        old = read_jsonl(args.old)
        new = read_jsonl(args.new)
        _print_diff(old, new, args.old, args.new)
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
