"""repro.obs — zero-dependency tracing + metrics for the whole stack.

One process-global recorder (disabled by default; instrumented call
sites cost ~a branch) collects:

* **spans** — nested wall-time regions with explicit ids that survive
  forking (:mod:`repro.obs.spans`);
* **metrics** — counters, gauges, and bounded log-binned streaming
  histograms (:mod:`repro.obs.metrics`);
* **cross-process state** — pool and supervised workers piggyback their
  obs snapshots on the existing result pickles; the parent merges them
  into one run-wide view that survives retries and checkpoint-resume
  (:mod:`repro.obs.collect`).

Exports (:mod:`repro.obs.export`) are JSONL plus Chrome ``trace_event``
(opens in Perfetto / ``chrome://tracing``).  CLI::

    python -m repro.experiments.runner --smoke --obs-out DIR
    python -m repro.serve --clusters Venus --obs-out DIR
    python -m repro.obs summarize DIR/trace.jsonl
    python -m repro.obs diff old.jsonl new.jsonl

Typical instrumentation::

    from repro import obs

    with obs.trace("qssf.decide", cluster="Venus"):
        ...
    obs.counter_add("serve.events.submit", n)
    obs.histogram("serve.checkpoint_s").record(dt)
"""

from .collect import (
    RECORDER,
    ObsCarrier,
    ObsRecorder,
    ObsSnapshot,
    absorb_result,
    carry_result,
    counter_add,
    disable,
    drain,
    enable,
    gauge_set,
    histogram,
    is_enabled,
    merge_histogram,
    merge_snapshot,
    record_span,
    reset,
    snapshot,
    split_carrier,
    trace,
    traced,
    wall_now,
)
from .export import (
    chrome_trace,
    dump_dir,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Histogram, MetricsRegistry
from .spans import Span, SpanRecord


def dump(out_dir):
    """Write the global recorder's current state under ``out_dir`` as
    ``trace.jsonl`` + ``trace.chrome.json``; returns both paths."""
    return dump_dir(snapshot(), out_dir)


__all__ = [
    "Histogram",
    "MetricsRegistry",
    "ObsCarrier",
    "ObsRecorder",
    "ObsSnapshot",
    "RECORDER",
    "Span",
    "SpanRecord",
    "absorb_result",
    "carry_result",
    "chrome_trace",
    "counter_add",
    "disable",
    "drain",
    "dump",
    "dump_dir",
    "enable",
    "gauge_set",
    "histogram",
    "is_enabled",
    "merge_histogram",
    "merge_snapshot",
    "read_jsonl",
    "record_span",
    "reset",
    "snapshot",
    "split_carrier",
    "trace",
    "traced",
    "validate_chrome_trace",
    "wall_now",
    "write_chrome_trace",
    "write_jsonl",
]
