"""The process-global recorder and cross-process aggregation.

One :class:`ObsRecorder` per process (module global ``RECORDER``),
disabled by default: every recording entry point checks one flag and
returns, so instrumented call sites cost ~a branch until ``enable()``.

Cross-process flow — the piggyback protocol:

* the parent calls :func:`enable` *before* forking, so pool/supervised
  workers inherit the flag copy-on-write;
* an ``os.register_at_fork`` hook clears the child's inherited buffers
  (the parent still owns those records) while keeping the open-span
  stack, so child spans re-parent under the parent's open spans;
* a worker wraps each result in an :class:`ObsCarrier` holding a
  :func:`drain` snapshot of everything it recorded for that item
  (:func:`carry_result`); draining per item keeps long-lived pool
  workers from re-shipping cumulative state;
* the parent unwraps with :func:`absorb_result` / :func:`split_carrier`
  and merges the snapshot into its own recorder — but only for
  *successful* attempts, which is what keeps retried/crashed attempts
  from double-counting (a SIGKILLed fork's recorder dies unreported;
  the in-process supervisor isolates attempts explicitly).

Everything a worker ships is picklable and rides the existing result
pipes — there is no side channel to lose on a crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from .metrics import Histogram, MetricsRegistry
from .spans import NOOP_SPAN, Span, SpanBuffer, SpanRecord, wall_now

__all__ = [
    "ObsCarrier",
    "ObsRecorder",
    "ObsSnapshot",
    "RECORDER",
    "absorb_result",
    "carry_result",
    "counter_add",
    "disable",
    "drain",
    "enable",
    "gauge_set",
    "histogram",
    "is_enabled",
    "merge_histogram",
    "merge_snapshot",
    "record_span",
    "reset",
    "snapshot",
    "split_carrier",
    "trace",
    "traced",
    "wall_now",
]


@dataclass
class ObsSnapshot:
    """A frozen, picklable view of one recorder's state."""

    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (self.spans or self.counters or self.gauges
                    or self.histograms)

    def merge(self, other: "ObsSnapshot") -> "ObsSnapshot":
        self.spans.extend(other.spans)
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = hist.copy()
            else:
                mine.merge(hist)
        return self


@dataclass
class ObsCarrier:
    """A worker result with its obs snapshot piggybacked alongside."""

    result: Any
    obs: ObsSnapshot


class ObsRecorder:
    """Spans + metrics for one process, with snapshot/drain/merge."""

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = MetricsRegistry()
        self.spans = SpanBuffer()

    # -- recording (each entry point: one enabled check) ---------------

    def trace(self, name: str, **attrs):
        if not self.enabled:
            return NOOP_SPAN
        return Span(self.spans, name, attrs)

    def record_span(self, name: str, start: float, end: float, **attrs) -> None:
        """Emit an already-timed span (explicit wall timestamps)."""
        if not self.enabled:
            return
        buf = self.spans
        buf.records.append(SpanRecord(
            name=name,
            span_id=buf.new_id(),
            parent_id=buf.current_parent(),
            start=float(start),
            end=float(end),
            pid=buf.pid,
            attrs=attrs,
        ))

    def counter_add(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.metrics.counter_add(name, n)

    def gauge_set(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge_set(name, value)

    def histogram(self, name: str, **geometry) -> Histogram:
        """The named histogram — or a shared discard instance when
        disabled, so hot paths can record unconditionally after one
        hoisted ``is_enabled()`` check."""
        if not self.enabled:
            return _DISCARD_HIST
        return self.metrics.histogram(name, **geometry)

    def merge_histogram(self, name: str, hist: Histogram) -> None:
        if self.enabled:
            self.metrics.merge_histogram(name, hist)

    # -- aggregation ---------------------------------------------------

    def snapshot(self) -> ObsSnapshot:
        """Copy of everything recorded so far (recorder untouched)."""
        return ObsSnapshot(
            spans=list(self.spans.records),
            counters=dict(self.metrics.counters),
            gauges=dict(self.metrics.gauges),
            histograms={k: h.copy() for k, h in self.metrics.histograms.items()},
        )

    def drain(self) -> ObsSnapshot:
        """Snapshot + clear: hands off the recorded state, keeping the
        enabled flag and the open-span stack (spans still in flight
        close against fresh buffers and re-parent correctly)."""
        snap = ObsSnapshot(
            spans=self.spans.records,
            counters=self.metrics.counters,
            gauges=self.metrics.gauges,
            histograms=self.metrics.histograms,
        )
        self.spans.records = []
        self.metrics.counters = {}
        self.metrics.gauges = {}
        self.metrics.histograms = {}
        return snap

    def merge(self, snap: ObsSnapshot | None) -> None:
        if snap is None:
            return
        self.spans.records.extend(snap.spans)
        self.metrics.merge(snap.counters, snap.gauges, snap.histograms)

    def reset(self) -> None:
        """Drop all recorded state (keeps the enabled flag)."""
        self.drain()


#: shared sink for histogram records while recording is disabled;
#: bounded by construction, never exported.
_DISCARD_HIST = Histogram()

RECORDER = ObsRecorder()


def _after_fork() -> None:
    RECORDER.spans.after_fork()
    RECORDER.metrics.clear()


os.register_at_fork(after_in_child=_after_fork)


# -- module-level API bound to the global recorder ----------------------

def enable() -> None:
    RECORDER.enabled = True


def disable() -> None:
    RECORDER.enabled = False


def is_enabled() -> bool:
    return RECORDER.enabled


def reset() -> None:
    RECORDER.reset()


def trace(name: str, **attrs):
    """``with trace("name", **attrs):`` — time a region (no-op when
    recording is disabled)."""
    return RECORDER.trace(name, **attrs)


def traced(name: str | None = None, **attrs):
    """Decorator form of :func:`trace`; checks the enabled flag at each
    call, so it is safe to apply at import time."""
    def deco(fn):
        import functools

        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with RECORDER.trace(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def record_span(name: str, start: float, end: float, **attrs) -> None:
    RECORDER.record_span(name, start, end, **attrs)


def counter_add(name: str, n: int = 1) -> None:
    RECORDER.counter_add(name, n)


def gauge_set(name: str, value: float) -> None:
    RECORDER.gauge_set(name, value)


def histogram(name: str, **geometry) -> Histogram:
    return RECORDER.histogram(name, **geometry)


def merge_histogram(name: str, hist: Histogram) -> None:
    RECORDER.merge_histogram(name, hist)


def snapshot() -> ObsSnapshot:
    return RECORDER.snapshot()


def drain() -> ObsSnapshot:
    return RECORDER.drain()


def merge_snapshot(snap: ObsSnapshot | None) -> None:
    RECORDER.merge(snap)


# -- piggyback protocol -------------------------------------------------

def carry_result(result: Any) -> Any:
    """Worker side: attach this process's drained obs state to a result.

    Passthrough when recording is disabled, so un-instrumented runs ship
    the bare result with zero overhead.
    """
    if not RECORDER.enabled:
        return result
    return ObsCarrier(result, RECORDER.drain())


def split_carrier(obj: Any) -> tuple[Any, ObsSnapshot | None]:
    """Unwrap a possible carrier without merging (the caller decides
    whether the attempt's obs state should count)."""
    if isinstance(obj, ObsCarrier):
        return obj.result, obj.obs
    return obj, None


def absorb_result(obj: Any) -> Any:
    """Parent side: unwrap a carrier, merging its snapshot in."""
    if isinstance(obj, ObsCarrier):
        RECORDER.merge(obj.obs)
        return obj.result
    return obj
