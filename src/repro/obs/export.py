"""Export/import: JSONL dumps and Chrome ``trace_event`` files.

Two on-disk forms of one :class:`~repro.obs.collect.ObsSnapshot`:

* ``trace.jsonl`` — one JSON object per line (``kind`` of ``span`` /
  ``counter`` / ``gauge`` / ``hist``), lossless enough to round-trip
  back into a snapshot (:func:`read_jsonl`) for the ``summarize`` and
  ``diff`` CLI;
* ``trace.chrome.json`` — the Chrome ``trace_event`` array format
  (``ph: "X"`` complete events, microsecond timestamps relative to the
  first span), which opens directly in Perfetto or ``chrome://tracing``.
  Span pid/tid map to the recording process, so forked workers appear
  as separate tracks; counters and gauges ride one metadata-ish instant
  event at the origin.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

import numpy as np

from .collect import ObsSnapshot
from .metrics import Histogram
from .spans import SpanRecord

__all__ = [
    "chrome_trace",
    "dump_dir",
    "read_jsonl",
    "snapshot_lines",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]


def _json_safe(value):
    """Coerce attribute values to JSON-encodable types."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


def _safe_attrs(attrs: dict) -> dict:
    return {str(k): _json_safe(v) for k, v in attrs.items()}


# -- JSONL ---------------------------------------------------------------

def snapshot_lines(snap: ObsSnapshot) -> Iterator[dict]:
    """The JSONL object stream for one snapshot (spans first)."""
    for s in sorted(snap.spans, key=lambda s: (s.start, s.span_id)):
        yield {
            "kind": "span",
            "name": s.name,
            "id": s.span_id,
            "parent": s.parent_id,
            "start": round(s.start, 6),
            "end": round(s.end, 6),
            "dur_s": round(s.duration, 6),
            "pid": s.pid,
            "attrs": _safe_attrs(s.attrs),
        }
    for name in sorted(snap.counters):
        yield {"kind": "counter", "name": name, "value": snap.counters[name]}
    for name in sorted(snap.gauges):
        yield {"kind": "gauge", "name": name, "value": snap.gauges[name]}
    for name in sorted(snap.histograms):
        yield {"kind": "hist", "name": name,
               "hist": snap.histograms[name].to_dict()}


def write_jsonl(snap: ObsSnapshot, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for obj in snapshot_lines(snap):
            fh.write(json.dumps(obj, sort_keys=True) + "\n")
    return path


def read_jsonl(path: str | Path) -> ObsSnapshot:
    """Rebuild a snapshot from a ``trace.jsonl`` dump."""
    snap = ObsSnapshot()
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("kind")
            if kind == "span":
                snap.spans.append(SpanRecord(
                    name=obj["name"],
                    span_id=obj["id"],
                    parent_id=obj.get("parent"),
                    start=float(obj["start"]),
                    end=float(obj["end"]),
                    pid=int(obj.get("pid", 0)),
                    attrs=obj.get("attrs", {}),
                ))
            elif kind == "counter":
                snap.counters[obj["name"]] = int(obj["value"])
            elif kind == "gauge":
                snap.gauges[obj["name"]] = float(obj["value"])
            elif kind == "hist":
                snap.histograms[obj["name"]] = Histogram.from_dict(obj["hist"])
            else:
                raise ValueError(f"unknown obs record kind {kind!r} in {path}")
    return snap


# -- Chrome trace_event --------------------------------------------------

def chrome_trace(snap: ObsSnapshot) -> dict:
    """The ``trace_event`` JSON object for one snapshot."""
    spans = sorted(snap.spans, key=lambda s: (s.start, s.span_id))
    base = spans[0].start if spans else 0.0
    events: list[dict] = []
    for pid in sorted({s.pid for s in spans}):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": pid,
            "args": {"name": f"repro pid {pid}"},
        })
    for s in spans:
        events.append({
            "name": s.name,
            "cat": "obs",
            "ph": "X",
            "ts": round((s.start - base) * 1e6, 3),
            "dur": round(s.duration * 1e6, 3),
            "pid": s.pid,
            "tid": s.pid,
            "args": {
                **_safe_attrs(s.attrs),
                "span_id": s.span_id,
                "parent_id": s.parent_id,
            },
        })
    if snap.counters or snap.gauges or snap.histograms:
        anchor_pid = spans[0].pid if spans else os.getpid()
        events.append({
            "name": "obs.metrics",
            "cat": "obs",
            "ph": "i",
            "s": "g",
            "ts": 0,
            "pid": anchor_pid,
            "tid": anchor_pid,
            "args": {
                "counters": dict(sorted(snap.counters.items())),
                "gauges": dict(sorted(snap.gauges.items())),
                "histograms": {
                    name: {
                        "count": h.count,
                        "mean": h.mean,
                        "p50": h.quantile(0.5),
                        "p99": h.quantile(0.99),
                    }
                    for name, h in sorted(snap.histograms.items())
                },
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(snap: ObsSnapshot, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(snap)) + "\n")
    return path


def validate_chrome_trace(obj: dict) -> None:
    """Schema check for the subset of ``trace_event`` this repo emits.

    Raises ``ValueError`` on the first violation; used by the CI obs
    smoke job and the export tests.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("chrome trace must be an object with 'traceEvents'")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} ({ev.get('name')!r}) lacks {key!r}")
        if ev["ph"] == "X":
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"event {i} ({ev['name']!r}) has bad {key}: {value!r}"
                    )


# -- one-call dump -------------------------------------------------------

def dump_dir(snap: ObsSnapshot, out_dir: str | Path) -> tuple[Path, Path]:
    """Write both export forms under ``out_dir``; returns their paths."""
    out_dir = Path(out_dir)
    return (
        write_jsonl(snap, out_dir / "trace.jsonl"),
        write_chrome_trace(snap, out_dir / "trace.chrome.json"),
    )
