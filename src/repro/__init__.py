"""repro — reproduction of "Characterization and Prediction of Deep
Learning Workloads in Large-Scale GPU Datacenters" (SC '21).

Subpackages
-----------
``repro.traces``     calibrated synthetic Helios/Philly workloads (Table 1/2)
``repro.analysis``   §3 characterization (Figs 1-9)
``repro.sim``        trace-driven discrete-event cluster simulator
``repro.sched``      FIFO/SJF/SRTF baselines + QSSF (§4.2, Algorithm 1)
``repro.energy``     CES service: forecasting + DRS (§4.3, Algorithm 2)
``repro.framework``  prediction-based management framework (§4.1)
``repro.ml``         scratch GBDT / forecasters / encoders substrate
``repro.frame``      mini columnar dataframe substrate
``repro.stats``      distributions, time series, metrics
``repro.experiments`` one module per paper table/figure
``repro.serve``      streaming prediction-service runtime (§4.1 live;
                     lazy — not imported eagerly, like ``experiments``)

Quickstart
----------
>>> from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job
>>> from repro.sim import Simulator
>>> from repro.sched import FIFOScheduler
>>> gen = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=0))
>>> trace = gen.generate_cluster("Venus")
>>> gpu_jobs = trace.filter(is_gpu_job(trace))
>>> result = Simulator(gen.specs["Venus"], FIFOScheduler()).run(gpu_jobs)
>>> result.jct.shape == (len(gpu_jobs),)
True
"""

__version__ = "1.0.0"

from . import analysis, energy, frame, framework, ml, sched, sim, stats, traces

__all__ = [
    "__version__",
    "analysis",
    "energy",
    "frame",
    "framework",
    "ml",
    "sched",
    "sim",
    "stats",
    "traces",
]
