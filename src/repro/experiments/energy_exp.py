"""§4.3 exhibits: Figures 14-15 and Table 5 (CES evaluation)."""

from __future__ import annotations

import numpy as np

from ..analysis import render_kv, render_series, render_table
from ..energy import CESService, PowerModel
from ..frame import Table
from ..traces import SECONDS_PER_DAY
from . import common
from .cache import memo

__all__ = ["exp_fig14", "exp_fig15", "exp_table5", "ces_report"]

#: Helios CES protocol: train on everything before "1 September", control
#: the following 3 weeks (§4.3.3).
_HELIOS_EVAL_START = common.EVAL_MONTH * common.MONTH_SECONDS
_HELIOS_EVAL_END = _HELIOS_EVAL_START + 21 * SECONDS_PER_DAY

#: Philly: per-node series; train on Oct-Nov, control Dec 1-14.
_PHILLY_EVAL_START = 61 * SECONDS_PER_DAY
_PHILLY_EVAL_END = 75 * SECONDS_PER_DAY


@memo
def ces_report(cluster: str):
    """CES evaluation for one cluster (cached across exhibits)."""
    if cluster == "Philly":
        replay = common.philly_replay("FIFO", days=common.PHILLY_DAYS)
        return CESService().evaluate(
            replay, _PHILLY_EVAL_START, _PHILLY_EVAL_END, cluster="Philly"
        )
    replay = common.full_replay(cluster)
    return CESService().evaluate(
        replay, _HELIOS_EVAL_START, _HELIOS_EVAL_END, cluster=cluster
    )


# CES reports are shared inputs of figs 14-15, table 5, and the buffer
# ablation — make them addressable as precursor tokens ("ces_report:Earth").
common.PRECURSOR_FNS["ces_report"] = ces_report


def _node_state_text(cluster: str, title: str) -> tuple[dict, str]:
    rep = ces_report(cluster)
    split = rep.eval_start_bin
    demand_eval = rep.demand[split:]
    lines = [
        title,
        render_series(np.full_like(demand_eval, rep.total_nodes), "Total    "),
        render_series(demand_eval, "Running  "),
        render_series(rep.ces.active, "Active   "),
        render_series(rep.prediction, "Predicted"),
        render_kv(
            {
                "total_nodes": rep.total_nodes,
                "forecast_smape_%": rep.smape_forecast,
                "avg_parked": rep.ces.avg_parked_nodes,
                "util_original": rep.ces.utilization_original,
                "util_ces": rep.ces.utilization_ces,
            }
        ),
    ]
    payload = {
        "demand": demand_eval,
        "active": rep.ces.active,
        "prediction": rep.prediction,
        "total_nodes": rep.total_nodes,
        "report": rep,
    }
    return payload, "\n".join(lines)


def exp_fig14() -> dict:
    """Fig 14: Earth node states over the 3 controlled weeks."""
    payload, text = _node_state_text(
        "Earth", "Fig 14 — Earth node states (eval window)"
    )
    return {**payload, "text": text}


def exp_fig15() -> dict:
    """Fig 15: Philly node states over the 2 controlled weeks."""
    payload, text = _node_state_text(
        "Philly", "Fig 15 — Philly node states (eval window)"
    )
    return {**payload, "text": text}


def exp_table5() -> dict:
    """Table 5: CES performance per cluster (+ energy estimate)."""
    rows = []
    for cluster in common.CLUSTERS + ("Philly",):
        rep = ces_report(cluster)
        s = rep.summary()
        rows.append(
            {
                "cluster": cluster,
                "avg_drs_nodes": s["avg_drs_nodes"],
                "daily_wake_ups": s["daily_wake_ups"],
                "avg_woken_per_wake": s["avg_woken_per_wake"],
                "util_original_%": 100 * s["util_original"],
                "util_ces_%": 100 * s["util_ces"],
                "affected_jobs": s["affected_jobs"],
                "vanilla_wakes_per_day": s["vanilla_daily_wake_ups"],
                "vanilla_affected": s["vanilla_affected_jobs"],
            }
        )
    table = Table.from_rows(rows)
    total_parked = sum(r["avg_drs_nodes"] for r in rows if r["cluster"] != "Philly")
    annual = PowerModel().annual_saved_kwh(total_parked)
    # Scale-adjusted: our deployment is SCALE x the Table-1 node counts.
    annual_full_scale = annual / common.SCALE
    text = "\n".join(
        [
            render_table(table, "Table 5 — CES performance"),
            f"Helios parked nodes total: {total_parked:.1f} "
            f"(annualized {annual:,.0f} kWh at sim scale; "
            f"~{annual_full_scale:,.0f} kWh at paper scale)",
        ]
    )
    return {
        "table": table,
        "annual_saved_kwh": annual,
        "annual_saved_kwh_full_scale": annual_full_scale,
        "text": text,
    }
