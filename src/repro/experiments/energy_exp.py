"""§4.3 exhibits: Figures 14-15, Table 5 and the CES σ/ξ/window sweep.

The CES pipeline is evaluated in two cached stages per cluster:

* ``ces_forecast`` — the expensive precursor: bin the replay telemetry,
  fit the node-demand forecaster once, predict every evaluation bin
  (vectorized).  Warmable across processes (wave 4).
* ``ces_report`` — the cheap stage: Algorithm-2 walks (batched through
  :mod:`repro.energy.fast_drs`) plus energy accounting over the shared
  forecast.  Parent-cheap (wave 5).

Figs 14-15, Table 5, the σ ablation and ``ces_sweep`` all ride on the
same five forecasts — one fit per cluster for the whole exhibit suite.
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_kv, render_series, render_table
from ..energy import CESConfig, CESService, DRSCase, DRSParams, PowerModel, run_drs_batch
from ..frame import Table
from ..traces import SECONDS_PER_DAY
from . import common
from .cache import memo

__all__ = [
    "exp_fig14",
    "exp_fig15",
    "exp_table5",
    "exp_ces_sweep",
    "ces_forecast",
    "ces_report",
    "ces_service",
    "sweep_param_grid",
]

#: Helios CES protocol: train on everything before "1 September", control
#: the following 3 weeks (§4.3.3).
_HELIOS_EVAL_START = common.EVAL_MONTH * common.MONTH_SECONDS
_HELIOS_EVAL_END = _HELIOS_EVAL_START + 21 * SECONDS_PER_DAY

#: Philly: per-node series; train on Oct-Nov, control Dec 1-14.
_PHILLY_EVAL_START = 61 * SECONDS_PER_DAY
_PHILLY_EVAL_END = 75 * SECONDS_PER_DAY

_CES_CLUSTERS = common.CLUSTERS + ("Philly",)


def ces_service() -> CESService:
    """The shared experiment-scale CES protocol (lighter forecaster)."""
    return CESService(CESConfig(gbdt_params=common.CES_GBDT))


@memo
def ces_forecast(cluster: str):
    """Fitted demand forecast for one cluster (the expensive stage)."""
    if cluster == "Philly":
        replay = common.philly_replay("FIFO", days=common.PHILLY_DAYS)
        return ces_service().forecast(
            replay, _PHILLY_EVAL_START, _PHILLY_EVAL_END, cluster="Philly"
        )
    replay = common.full_replay(cluster)
    return ces_service().forecast(
        replay, _HELIOS_EVAL_START, _HELIOS_EVAL_END, cluster=cluster
    )


@memo
def ces_report(cluster: str):
    """CES evaluation for one cluster: batched DRS over the forecast."""
    return ces_service().control(ces_forecast(cluster))


# CES forecasts/reports are shared inputs of figs 14-15, table 5, the
# buffer ablation and the sweep — make them addressable as precursor
# tokens ("ces_forecast:Earth", "ces_report:Earth").
common.PRECURSOR_FNS["ces_forecast"] = ces_forecast
common.PRECURSOR_FNS["ces_report"] = ces_report


def _node_state_text(cluster: str, title: str) -> tuple[dict, str]:
    rep = ces_report(cluster)
    split = rep.eval_start_bin
    demand_eval = rep.demand[split:]
    lines = [
        title,
        render_series(np.full_like(demand_eval, rep.total_nodes), "Total    "),
        render_series(demand_eval, "Running  "),
        render_series(rep.ces.active, "Active   "),
        render_series(rep.prediction, "Predicted"),
        render_kv(
            {
                "total_nodes": rep.total_nodes,
                "forecast_smape_%": rep.smape_forecast,
                "avg_parked": rep.ces.avg_parked_nodes,
                "util_original": rep.ces.utilization_original,
                "util_ces": rep.ces.utilization_ces,
            }
        ),
    ]
    payload = {
        "demand": demand_eval,
        "active": rep.ces.active,
        "prediction": rep.prediction,
        "total_nodes": rep.total_nodes,
        "report": rep,
    }
    return payload, "\n".join(lines)


def exp_fig14() -> dict:
    """Fig 14: Earth node states over the 3 controlled weeks."""
    payload, text = _node_state_text(
        "Earth", "Fig 14 — Earth node states (eval window)"
    )
    return {**payload, "text": text}


def exp_fig15() -> dict:
    """Fig 15: Philly node states over the 2 controlled weeks."""
    payload, text = _node_state_text(
        "Philly", "Fig 15 — Philly node states (eval window)"
    )
    return {**payload, "text": text}


def exp_table5() -> dict:
    """Table 5: CES performance per cluster (+ energy estimate)."""
    rows = []
    for cluster in _CES_CLUSTERS:
        rep = ces_report(cluster)
        s = rep.summary()
        rows.append(
            {
                "cluster": cluster,
                "avg_drs_nodes": s["avg_drs_nodes"],
                "daily_wake_ups": s["daily_wake_ups"],
                "avg_woken_per_wake": s["avg_woken_per_wake"],
                "util_original_%": 100 * s["util_original"],
                "util_ces_%": 100 * s["util_ces"],
                "affected_jobs": s["affected_jobs"],
                "vanilla_wakes_per_day": s["vanilla_daily_wake_ups"],
                "vanilla_affected": s["vanilla_affected_jobs"],
            }
        )
    table = Table.from_rows(rows)
    total_parked = sum(r["avg_drs_nodes"] for r in rows if r["cluster"] != "Philly")
    annual = PowerModel().annual_saved_kwh(total_parked)
    # Scale-adjusted: our deployment is SCALE x the Table-1 node counts.
    annual_full_scale = annual / common.SCALE
    text = "\n".join(
        [
            render_table(table, "Table 5 — CES performance"),
            f"Helios parked nodes total: {total_parked:.1f} "
            f"(annualized {annual:,.0f} kWh at sim scale; "
            f"~{annual_full_scale:,.0f} kWh at paper scale)",
        ]
    )
    return {
        "table": table,
        "annual_saved_kwh": annual,
        "annual_saved_kwh_full_scale": annual_full_scale,
        "text": text,
    }


# ----------------------------------------------------------------------
# ces_sweep: the scenario-diversity axis the batch engine opens
# ----------------------------------------------------------------------

#: Sweep axes, sized relative to the cluster (matching how
#: :meth:`DRSParams.scaled` derives the defaults: σ ≈ 4%, ξ ≈ 0.6%).
SWEEP_SIGMA_FRACS = (0.01, 0.02, 0.04, 0.08)
SWEEP_XI_FRACS = (0.003, 0.006, 0.012)
SWEEP_WINDOW_BINS = (3, 6, 12)


def sweep_param_grid(total_nodes: int, bin_seconds: int = 600) -> list[DRSParams]:
    """The σ × ξ × window grid for one cluster, in deterministic order."""
    grid = []
    for frac in SWEEP_SIGMA_FRACS:
        for xi in SWEEP_XI_FRACS:
            for window in SWEEP_WINDOW_BINS:
                grid.append(
                    DRSParams(
                        buffer_nodes=max(1, int(round(frac * total_nodes))),
                        recent_window_bins=window,
                        recent_threshold=max(0.5, xi * total_nodes),
                        future_threshold=max(0.5, xi * total_nodes),
                        bin_seconds=bin_seconds,
                    )
                )
    return grid


def _pareto_front(rows: list[dict]) -> list[bool]:
    """Maximize energy saved, minimize affected jobs (ties survive)."""
    flags = []
    for r in rows:
        dominated = any(
            (o["saved_kwh"] >= r["saved_kwh"] and o["affected_jobs"] <= r["affected_jobs"])
            and (o["saved_kwh"] > r["saved_kwh"] or o["affected_jobs"] < r["affected_jobs"])
            for o in rows
        )
        flags.append(not dominated)
    return flags


def exp_ces_sweep() -> dict:
    """Sweep DRS knobs across every cluster in one batched walk.

    Each cluster's σ/ξ/window grid shares that cluster's cached
    forecast; all K × C controller runs advance simultaneously through
    the fast engine.  The exhibit reports, per cluster, the energy-saved
    vs affected-jobs Pareto frontier — the trade-off surface §4.3.3
    describes but Table 5 samples at a single operating point.
    """
    # price outcomes with the same power model ces_report uses, so the
    # sweep's kWh figures stay consistent with Table 5 / Figs 14-15
    power = ces_service().config.power
    cases: list[DRSCase] = []
    meta: list[dict] = []
    for cluster in _CES_CLUSTERS:
        fc = ces_forecast(cluster)
        for k, params in enumerate(sweep_param_grid(fc.total_nodes)):
            cases.append(
                DRSCase(
                    demand=fc.eval_demand,
                    predicted_future=fc.future_forecast,
                    total_nodes=fc.total_nodes,
                    params=params,
                    arrivals_per_bin=fc.arrivals,
                )
            )
            meta.append(
                {
                    "cluster": cluster,
                    "config": k,
                    "sigma_nodes": params.buffer_nodes,
                    "xi_nodes": params.recent_threshold,
                    "window_bins": params.recent_window_bins,
                    "eval_hours": fc.eval_hours,
                }
            )

    outcomes = run_drs_batch(cases)

    rows = []
    for m, out in zip(meta, outcomes):
        saved = power.saved_kwh(out.avg_parked_nodes, m["eval_hours"])
        saved -= power.wake_overhead_kwh(out.nodes_woken)
        rows.append(
            {
                "cluster": m["cluster"],
                "sigma_nodes": m["sigma_nodes"],
                "xi_nodes": m["xi_nodes"],
                "window_bins": m["window_bins"],
                "avg_parked": out.avg_parked_nodes,
                "daily_wake_ups": out.daily_wake_ups,
                "affected_jobs": out.affected_jobs,
                "util_ces_%": 100 * out.utilization_ces,
                "saved_kwh": saved,
            }
        )

    pareto_rows = []
    for cluster in _CES_CLUSTERS:
        cluster_rows = [r for r in rows if r["cluster"] == cluster]
        for r, optimal in zip(cluster_rows, _pareto_front(cluster_rows)):
            r["pareto"] = int(optimal)
            if optimal:
                pareto_rows.append(r)
    pareto_rows.sort(key=lambda r: (r["cluster"], -r["saved_kwh"]))

    table = Table.from_rows(rows)
    pareto = Table.from_rows(pareto_rows)
    n_configs = len(rows) // len(_CES_CLUSTERS)
    text = render_table(
        pareto,
        f"CES sweep — energy-saved vs affected-jobs Pareto frontier "
        f"({n_configs} configs x {len(_CES_CLUSTERS)} clusters, "
        f"{len(pareto_rows)} optimal)",
    )
    return {
        "table": table,
        "pareto": pareto,
        "grid": {
            "sigma_fracs": list(SWEEP_SIGMA_FRACS),
            "xi_fracs": list(SWEEP_XI_FRACS),
            "window_bins": list(SWEEP_WINDOW_BINS),
        },
        "text": text,
    }
