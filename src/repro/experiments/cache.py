"""Content-addressed artifact cache for experiment payloads.

Every exhibit run is keyed by ``(experiment id, parameters, code
fingerprint)``; the key is a SHA-256 digest, so a change to either the
parameters or any source file under :mod:`repro` produces a different
key and transparently busts the cache.  Artifacts are self-verifying:
each file stores a checksum of its payload bytes, and a corrupted or
truncated artifact reads back as a miss (the caller recomputes and
overwrites it) instead of raising.

Payloads are arbitrary experiment dicts (numpy arrays, Tables, nested
dicts/tuples, strings).  They are serialized with a pickler that routes
:class:`repro.frame.Table` through the deterministic binary format in
:mod:`repro.frame.io`, so equal payloads always serialize to identical
bytes — the property the determinism tests (serial vs ``--jobs N``)
assert on.

The module also provides :class:`memo`, the warmable in-process memoizer
used by :mod:`repro.experiments.common` for shared precursors (traces,
replays, trained schedulers).  Unlike ``functools.lru_cache`` it can be
*primed* with values computed elsewhere — which is how the parallel
orchestrator injects precursors computed by worker processes back into
the parent before fanning out experiments.
"""

from __future__ import annotations

import hashlib
import inspect
import io
import json
import os
import pickle
import struct
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..frame.io import table_from_bytes, table_to_bytes
from ..frame.table import Table

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "code_fingerprint",
    "dumps_payload",
    "loads_payload",
    "memo",
]

_PICKLE_PROTOCOL = 4  # fixed (not HIGHEST) so artifact bytes are stable


# ----------------------------------------------------------------------
# Payload serialization
# ----------------------------------------------------------------------


class _PayloadPickler(pickle.Pickler):
    """Pickler that stores Tables via the frame.io binary format."""

    def reducer_override(self, obj):
        if isinstance(obj, Table):
            return (table_from_bytes, (table_to_bytes(obj),))
        return NotImplemented


def dumps_payload(payload: Any) -> bytes:
    """Serialize an experiment payload to deterministic bytes."""
    buf = io.BytesIO()
    _PayloadPickler(buf, protocol=_PICKLE_PROTOCOL).dump(payload)
    return buf.getvalue()


def loads_payload(data: bytes) -> Any:
    """Inverse of :func:`dumps_payload`."""
    return pickle.loads(data)


# ----------------------------------------------------------------------
# Code fingerprint
# ----------------------------------------------------------------------

_FINGERPRINTS: dict[Path, str] = {}


def code_fingerprint(root: str | Path | None = None, *, refresh: bool = False) -> str:
    """SHA-256 over every ``*.py`` file under ``root`` (default: repro).

    Deliberately coarse: *any* source change invalidates *every* cached
    artifact.  That trades some unnecessary recomputation for a guarantee
    that a cached exhibit can never silently disagree with the code that
    would regenerate it.  The digest is memoized per root — the tree is
    only hashed once per process.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
    root = Path(root)
    if not refresh and root in _FINGERPRINTS:
        return _FINGERPRINTS[root]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fp = digest.hexdigest()
    _FINGERPRINTS[root] = fp
    return fp


# ----------------------------------------------------------------------
# Artifact cache
# ----------------------------------------------------------------------

#: artifact layout version; bump on any format change.
_ARTIFACT_MAGIC = b"RART1\n"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupted: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupted": self.corrupted,
        }


@dataclass
class ArtifactCache:
    """Disk cache mapping content-addressed keys to experiment payloads."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- keys ----------------------------------------------------------

    @staticmethod
    def key_for(exp_id: str, params: dict | None = None, fingerprint: str = "") -> str:
        """Content address of one experiment run.

        ``params`` are canonicalized through sorted-key JSON so dict
        ordering cannot produce spurious misses.
        """
        canon = json.dumps(params or {}, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256()
        digest.update(exp_id.encode("utf-8"))
        digest.update(b"\0")
        digest.update(canon.encode("utf-8"))
        digest.update(b"\0")
        digest.update(fingerprint.encode("utf-8"))
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.art"

    # -- read ----------------------------------------------------------

    def load(self, key: str) -> Any | None:
        """Payload for ``key``, or ``None`` on miss/corruption."""
        data = self.load_bytes(key)
        if data is None:
            return None
        try:
            return loads_payload(data)
        except Exception:
            self.stats.corrupted += 1
            self.stats.hits -= 1
            self.stats.misses += 1
            return None

    def load_bytes(self, key: str) -> bytes | None:
        """Verified payload bytes for ``key``, or ``None``.

        Any malformed artifact — bad magic, truncated header, payload
        shorter than declared, checksum mismatch — counts as a miss, so
        a crashed writer or bit-rot degrades to a recompute.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        payload = self._verify(raw)
        if payload is None:
            self.stats.corrupted += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    @staticmethod
    def _verify(raw: bytes) -> bytes | None:
        if not raw.startswith(_ARTIFACT_MAGIC):
            return None
        try:
            offset = len(_ARTIFACT_MAGIC)
            (meta_len,) = struct.unpack_from("<I", raw, offset)
            offset += 4
            meta = json.loads(raw[offset : offset + meta_len].decode("utf-8"))
            offset += meta_len
            payload = raw[offset:]
            if len(payload) != int(meta["payload_bytes"]):
                return None
            if hashlib.sha256(payload).hexdigest() != meta["payload_sha256"]:
                return None
            return payload
        except Exception:
            return None

    def contains(self, key: str) -> bool:
        path = self.path_for(key)
        try:
            return self._verify(path.read_bytes()) is not None
        except OSError:
            return False

    def metadata(self, key: str) -> dict | None:
        """The stored metadata header for ``key`` (no payload decode)."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if not raw.startswith(_ARTIFACT_MAGIC):
            return None
        try:
            offset = len(_ARTIFACT_MAGIC)
            (meta_len,) = struct.unpack_from("<I", raw, offset)
            return json.loads(raw[offset + 4 : offset + 4 + meta_len].decode("utf-8"))
        except Exception:
            return None

    # -- write ---------------------------------------------------------

    def store(
        self,
        key: str,
        payload: Any,
        *,
        exp_id: str = "",
        params: dict | None = None,
        fingerprint: str = "",
        payload_bytes: bytes | None = None,
    ) -> Path:
        """Write one artifact atomically; returns its path.

        ``payload_bytes`` lets callers that already serialized the
        payload (parallel workers ship bytes to the parent) skip a
        second serialization.
        """
        if payload_bytes is None:
            payload_bytes = dumps_payload(payload)
        meta = {
            "exp_id": exp_id,
            "params": params or {},
            "fingerprint": fingerprint,
            "payload_bytes": len(payload_bytes),
            "payload_sha256": hashlib.sha256(payload_bytes).hexdigest(),
        }
        meta_blob = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # unique temp name: concurrent writers of the same key must not
        # truncate each other's partial file; last rename wins cleanly
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            with tmp.open("wb") as fh:
                fh.write(_ARTIFACT_MAGIC)
                fh.write(struct.pack("<I", len(meta_blob)))
                fh.write(meta_blob)
                fh.write(payload_bytes)
            tmp.replace(path)
        except BaseException:  # incl. KeyboardInterrupt mid-write
            tmp.unlink(missing_ok=True)
            raise
        self.stats.stores += 1
        return path


# ----------------------------------------------------------------------
# Warmable in-process memoizer
# ----------------------------------------------------------------------


class memo:
    """``functools.lru_cache``-alike that supports external warming.

    ``fn.warm(args, value)`` installs a precomputed value, which is how
    the parallel orchestrator shares precursors (computed once in worker
    processes) with the parent before forking the experiment pool.

    Keys are normalized through the function's signature (defaults
    applied, keywords folded into positional order), so ``f("FIFO")``,
    ``f("FIFO", 61)`` and ``f(sched="FIFO")`` all share one cache entry
    when 61 is the default — and a precursor token's plain positional
    args always address the same entry the experiment's call does.
    """

    def __init__(self, fn: Callable) -> None:
        self.fn = fn
        self.cache: dict[tuple, Any] = {}
        self._signature = inspect.signature(fn)
        self.__name__ = getattr(fn, "__name__", repr(fn))
        self.__doc__ = fn.__doc__

    def _key(self, args: tuple, kwargs: dict) -> tuple:
        bound = self._signature.bind(*args, **kwargs)
        bound.apply_defaults()
        return tuple(bound.arguments.values())

    def __call__(self, *args, **kwargs):
        key = self._key(args, kwargs)
        try:
            return self.cache[key]
        except KeyError:
            value = self.fn(*args, **kwargs)
            self.cache[key] = value
            self._log_miss(key)
            return value

    def _log_miss(self, key: tuple) -> None:
        """Append a compute record to ``$REPRO_MEMO_LOG`` when set.

        One line per actual (non-warmed) computation: ``pid\tfn\targs``.
        Worker processes inherit the environment variable, so a single
        log file collects every process's computes — the orchestrator
        tests use it to assert that no precursor is ever computed twice
        across the pool.  Never raises; a broken log path degrades to
        no logging.
        """
        path = os.environ.get("REPRO_MEMO_LOG")
        if not path:
            return
        try:
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(f"{os.getpid()}\t{self.__name__}\t{key!r}\n")
        except OSError:  # pragma: no cover - diagnostics only
            pass

    def warm(self, args: tuple, value: Any) -> None:
        """Install a value computed elsewhere (e.g. a worker process)."""
        self.cache[self._key(tuple(args), {})] = value

    def is_cached(self, *args, **kwargs) -> bool:
        return self._key(args, kwargs) in self.cache

    def cache_clear(self) -> None:
        self.cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<memo {self.__name__} entries={len(self.cache)}>"
