"""Shared experiment scenario: one seeded workload, cached replays.

Every experiment (and benchmark) draws from the same scaled-down Helios
deployment so results are mutually consistent: 6 synthetic months at
``SCALE`` of the Table-1 node counts, plus a 92-day Philly trace.  The
builders memoize aggressively — the full benchmark suite generates each
trace and runs each (cluster, scheduler) replay exactly once.

The memos are :class:`repro.experiments.cache.memo` (not
``functools.lru_cache``) so the parallel orchestrator can *warm* them
with precursors computed in worker processes: each shared input gets a
string token (``"full_replay:Earth"``) that :func:`compute_precursor`
evaluates in a worker and :func:`warm_precursor` installs in the parent.
"""

from __future__ import annotations

from ..frame import Table
from .cache import memo
from ..ml.gbdt import GBDTParams
from ..sched import (
    FIFOScheduler,
    NoisyOracleScheduler,
    QSSFScheduler,
    SJFScheduler,
    SRTFScheduler,
)
from ..sim import ReplayResult, Simulator
from ..traces import (
    HeliosTraceGenerator,
    PhillyParams,
    PhillyTraceGenerator,
    SECONDS_PER_DAY,
    SynthParams,
    is_gpu_job,
    params_signature,
    slice_period,
)

__all__ = [
    "SCALE", "MONTHS", "SEED", "EVAL_MONTH", "MONTH_SECONDS",
    "PHILLY_DAYS", "PHILLY_SCALE", "CLUSTERS",
    "generator", "cluster_trace", "cluster_gpu_trace", "cluster_spec",
    "full_replay", "september_replay", "qssf_scheduler",
    "philly_generator", "philly_trace", "philly_replay",
    "SCHEDULER_NAMES",
    "PRECURSOR_FNS", "compute_precursor", "warm_precursor", "is_warm",
    "PRECURSOR_WAVES", "PARENT_WAVE_NAMES",
    "precursor_deps", "expand_precursors", "precursor_waves",
    "scenario_signature", "clear_scenario_caches",
]

SCALE = 0.1
MONTHS = 6
SEED = 42
EVAL_MONTH = 5  # "September": the last synthetic month (April = 0)
MONTH_SECONDS = 30 * SECONDS_PER_DAY
PHILLY_DAYS = 92
PHILLY_SCALE = 0.15
CLUSTERS = ("Venus", "Earth", "Saturn", "Uranus")
SCHEDULER_NAMES = ("FIFO", "SJF", "QSSF", "SRTF")

#: Lighter GBDT for the experiment-scale QSSF model (the default 150x7
#: model adds minutes of training for <1% priority-ordering change).
QSSF_GBDT = GBDTParams(n_estimators=60, learning_rate=0.12, max_depth=6,
                       min_samples_leaf=30)

#: Experiment-scale CES node-demand forecaster.  On the ~21k-bin
#: training windows of this scenario the default 150x6 ensemble
#: overfits slightly; 40 shallower trees fit ~4.5x faster with equal or
#: better eval SMAPE on all five clusters (measured 3.7/6.7/4.8/8.2/4.6%
#: vs 4.0/7.0/4.9/8.3/4.6% for the default).
CES_GBDT = GBDTParams(n_estimators=40, learning_rate=0.2, max_depth=5,
                      min_samples_leaf=20)


@memo
def generator() -> HeliosTraceGenerator:
    return HeliosTraceGenerator(SynthParams(months=MONTHS, scale=SCALE, seed=SEED))


@memo
def cluster_trace(name: str) -> Table:
    """Full 6-month trace (GPU + CPU jobs) for one cluster."""
    return generator().generate_cluster(name)


@memo
def cluster_gpu_trace(name: str) -> Table:
    trace = cluster_trace(name)
    return trace.filter(is_gpu_job(trace))


def cluster_spec(name: str):
    return generator().specs[name]


@memo
def full_replay(name: str) -> ReplayResult:
    """FIFO replay of the whole horizon (production policy telemetry)."""
    return Simulator(cluster_spec(name), FIFOScheduler()).run(cluster_gpu_trace(name))


#: History window for the QSSF model.  The paper trains on April-August;
#: we keep the most recent two months — older jobs change the learned
#: ranking negligibly (recurrent templates dominate) but double training
#: time at experiment scale.
QSSF_HISTORY_DAYS = 60


@memo
def qssf_scheduler(name: str, month: int = EVAL_MONTH) -> QSSFScheduler:
    """QSSF trained on the jobs preceding evaluation month ``month``.

    Memoized per (cluster, month): every fig11-style replay of the same
    evaluation month reuses one trained model — the GBDT fit happens
    once per pair, the way ``ces_forecast`` is shared across the DRS
    exhibits.  (The memo normalizes default arguments, so the
    ``"qssf_scheduler:Venus"`` precursor token and an explicit
    ``qssf_scheduler("Venus", EVAL_MONTH)`` call address the same
    entry.)
    """
    gpu = cluster_gpu_trace(name)
    cutoff = month * MONTH_SECONDS
    history = slice_period(
        gpu, cutoff - QSSF_HISTORY_DAYS * SECONDS_PER_DAY, cutoff
    )
    return QSSFScheduler(history, lam=0.5, gbdt_params=QSSF_GBDT)


def _scheduler(name: str, sched: str):
    if sched == "FIFO":
        return FIFOScheduler()
    if sched == "SJF":
        return SJFScheduler()
    if sched == "SRTF":
        return SRTFScheduler()
    if sched == "QSSF":
        return qssf_scheduler(name)
    raise KeyError(f"unknown scheduler {sched!r}")


@memo
def september_replay(name: str, sched: str) -> ReplayResult:
    """Replay the evaluation month under one policy (Fig 11 protocol)."""
    gpu = cluster_gpu_trace(name)
    sept = slice_period(
        gpu, EVAL_MONTH * MONTH_SECONDS, (EVAL_MONTH + 1) * MONTH_SECONDS
    )
    return Simulator(cluster_spec(name), _scheduler(name, sched)).run(sept)


# ----------------------------------------------------------------------
# Philly
# ----------------------------------------------------------------------


@memo
def philly_generator() -> PhillyTraceGenerator:
    return PhillyTraceGenerator(
        PhillyParams(days=PHILLY_DAYS, scale=PHILLY_SCALE, seed=SEED + 1)
    )


@memo
def philly_trace() -> Table:
    return philly_generator().generate()


@memo
def philly_replay(sched: str, days: int = 61) -> ReplayResult:
    """Replay the first ``days`` of Philly (Oct 1 – Nov 30 for Table 3).

    Philly lacks job names/VC history, so QSSF uses the paper's protocol:
    oracle GPU time corrupted with Helios-like estimation error (§4.2.3).
    """
    trace = slice_period(philly_trace(), 0, days * SECONDS_PER_DAY)
    if sched == "QSSF":
        policy = NoisyOracleScheduler(log_error_sigma=0.8, seed=SEED)
    else:
        policy = _scheduler("", sched)
    return Simulator(philly_generator().spec, policy).run(trace)


# ----------------------------------------------------------------------
# Precursor tokens (shared-input declarations for the orchestrator)
# ----------------------------------------------------------------------

#: Memoized builders addressable by token.  A token is
#: ``"<fn>"`` or ``"<fn>:<arg>[:<arg>...]"``; integer-looking args are
#: converted (``"philly_replay:FIFO:61"`` -> ``philly_replay("FIFO", 61)``).
PRECURSOR_FNS: dict[str, memo] = {
    "cluster_trace": cluster_trace,
    "cluster_gpu_trace": cluster_gpu_trace,
    "full_replay": full_replay,
    "qssf_scheduler": qssf_scheduler,
    "september_replay": september_replay,
    "philly_trace": philly_trace,
    "philly_replay": philly_replay,
}


def _parse_precursor(token: str) -> tuple[memo, tuple]:
    name, _, rest = token.partition(":")
    try:
        fn = PRECURSOR_FNS[name]
    except KeyError:
        raise KeyError(
            f"unknown precursor {name!r}; available: {sorted(PRECURSOR_FNS)}"
        ) from None
    args = tuple(
        int(a) if a.lstrip("-").isdigit() else a
        for a in (rest.split(":") if rest else ())
    )
    return fn, args


def compute_precursor(token: str):
    """Evaluate one shared input (warming this process's memo)."""
    fn, args = _parse_precursor(token)
    return fn(*args)


# ----------------------------------------------------------------------
# Precursor dependency graph (wave scheduling for the orchestrator)
# ----------------------------------------------------------------------

#: Warm-wave rank per precursor family.  The orchestrator computes each
#: wave across the pool, installs the results, and forks the next wave
#: *after* warming — so replay workers inherit every trace copy-on-write
#: instead of regenerating it (wave 1: traces; wave 2+: replays, per the
#: two-wave design; schedulers and CES reports get their own ranks so
#: the QSSF model and the replays that consume it never race).
PRECURSOR_WAVES: dict[str, int] = {
    "cluster_trace": 0,
    "philly_trace": 0,
    "cluster_gpu_trace": 1,
    "full_replay": 2,
    "qssf_scheduler": 2,
    "september_replay": 3,
    "philly_replay": 3,
    "ces_forecast": 4,
    "ces_report": 5,
}

#: Families cheap enough to derive in the parent process between waves
#: (a GPU-job filter over an already-warm trace; a batched DRS walk over
#: an already-warm forecast) — forking for them costs more than
#: computing them.
PARENT_WAVE_NAMES = frozenset({"cluster_gpu_trace", "ces_report"})


def precursor_deps(token: str) -> tuple[str, ...]:
    """Direct precursor dependencies of ``token`` (non-transitive)."""
    name, _, rest = token.partition(":")
    args = rest.split(":") if rest else []
    if name == "cluster_gpu_trace":
        return (f"cluster_trace:{args[0]}",)
    if name in ("full_replay", "qssf_scheduler"):
        return (f"cluster_gpu_trace:{args[0]}",)
    if name == "september_replay":
        deps = [f"cluster_gpu_trace:{args[0]}"]
        if len(args) > 1 and args[1] == "QSSF":
            deps.append(f"qssf_scheduler:{args[0]}")
        return tuple(deps)
    if name == "philly_replay":
        return ("philly_trace",)
    if name == "ces_report":
        return (f"ces_forecast:{args[0]}",)
    if name == "ces_forecast":
        if args and args[0] == "Philly":
            return (f"philly_replay:FIFO:{PHILLY_DAYS}",)
        return (f"full_replay:{args[0]}",)
    return ()


def expand_precursors(tokens: list[str]) -> list[str]:
    """Close a token list over :func:`precursor_deps` (order-preserving).

    Experiments declare only their top-level inputs; the traces and
    schedulers those replays consume are derived here, which is what lets
    the orchestrator warm them in an earlier wave instead of having every
    replay worker recompute them.
    """
    out: list[str] = []
    seen: set[str] = set()

    def visit(token: str) -> None:
        if token in seen:
            return
        seen.add(token)
        for dep in precursor_deps(token):
            visit(dep)
        out.append(token)

    for token in tokens:
        visit(token)
    return out


def precursor_waves(tokens: list[str]):
    """Group tokens into ordered warm waves.

    Yields ``(wave_rank, tokens, in_parent)`` tuples, in execution order.
    ``in_parent`` marks waves of cheap derivations the orchestrator
    should run in-process rather than fork for.  Unknown families sort
    last (they can only depend on registered ones).
    """
    by_wave: dict[int, list[str]] = {}
    for token in tokens:
        name = token.partition(":")[0]
        wave = PRECURSOR_WAVES.get(name, max(PRECURSOR_WAVES.values()) + 1)
        by_wave.setdefault(wave, []).append(token)
    for wave in sorted(by_wave):
        names = {t.partition(":")[0] for t in by_wave[wave]}
        yield wave, by_wave[wave], names <= PARENT_WAVE_NAMES


def warm_precursor(token: str, value) -> None:
    """Install a shared input computed in another process."""
    fn, args = _parse_precursor(token)
    fn.warm(args, value)


def is_warm(token: str) -> bool:
    """True when the token's value is already memoized in this process."""
    fn, args = _parse_precursor(token)
    return fn.is_cached(*args)


def scenario_signature() -> dict[str, str]:
    """Provenance digests of the shared scenario's generator params.

    Stamped into every artifact's cache key, so editing the scenario
    constants above (SCALE, MONTHS, seeds, ...) invalidates cached
    exhibits even if the code fingerprint were somehow unchanged.
    """
    return {
        "helios": params_signature(
            SynthParams(months=MONTHS, scale=SCALE, seed=SEED)
        ),
        "philly": params_signature(
            PhillyParams(days=PHILLY_DAYS, scale=PHILLY_SCALE, seed=SEED + 1)
        ),
    }


def clear_scenario_caches() -> None:
    """Drop every memoized trace/replay (tests use this for isolation)."""
    generator.cache_clear()
    philly_generator.cache_clear()
    for fn in PRECURSOR_FNS.values():
        fn.cache_clear()
