"""Process-parallel experiment orchestration with artifact caching.

Runs a set of registered exhibits end-to-end:

1. **Cache probe** — each experiment's content address (id, params, code
   fingerprint) is checked against the :class:`ArtifactCache`; hits
   return in milliseconds without touching the simulator.
2. **Precursor phase** — the union of the remaining experiments' shared
   inputs (declared as precursor tokens in the registry, closed over
   :func:`repro.experiments.common.precursor_deps`) is computed once
   across a forked worker pool in *dependency waves*: base traces
   first, then (in-parent) the cheap GPU-job filters, then simulator
   replays and schedulers, then CES reports.  Each wave's results are
   installed into this process's memos
   (:func:`repro.experiments.common.warm_precursor`) before the next
   wave forks, so replay workers inherit every trace copy-on-write —
   no worker ever regenerates a trace another worker (or an earlier
   wave) already produced, and the Saturn/QSSF September replay is
   computed exactly once.
3. **Experiment phase** — a fresh pool is forked *after* warming, so
   every worker inherits the precursors copy-on-write.  Workers return
   serialized payload bytes; the parent stores them as artifacts and
   decodes them for the report.

Determinism: every experiment (serial or parallel, any worker count)
runs under ``np.random.seed(stable_seed(exp_id))``, and payloads are
serialized with the deterministic codec in
:mod:`repro.experiments.cache` — so ``--jobs 4`` produces bytes
identical to ``--jobs 1``, which the test suite asserts.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..framework.parallel import (
    effective_jobs,
    fork_available,
    run_forked,
    stable_seed,
)
from ..obs import collect as obs
from . import common
from .cache import ArtifactCache, code_fingerprint, dumps_payload, loads_payload
from .registry import get_spec

__all__ = ["ExperimentOrchestrator", "OrchestratorResult", "RunReport"]

#: drain heavy work first so the pool's tail is short.
_COST_RANK = {"heavy": 0, "medium": 1, "cheap": 2}

#: rough per-token weight for precursor scheduling (heaviest first).
_TOKEN_RANK = ("ces_forecast", "ces_report", "september_replay",
               "full_replay", "philly_replay", "qssf_scheduler",
               "cluster_gpu_trace", "cluster_trace", "philly_trace")


@dataclass
class RunReport:
    """Outcome of one experiment in one orchestrated run."""

    exp_id: str
    status: str  # "cached" | "computed" | "failed"
    seconds: float
    cache_key: str = ""
    error: str = ""

    def as_dict(self) -> dict:
        return {
            "exp_id": self.exp_id,
            "status": self.status,
            "seconds": round(self.seconds, 4),
            "cache_key": self.cache_key,
            "error": self.error,
        }


@dataclass
class OrchestratorResult:
    """Everything one ``run()`` produced, JSON-ready via ``as_dict``."""

    reports: list[RunReport]
    payloads: dict[str, dict]
    wall_seconds: float
    jobs: int
    fingerprint: str
    cache_dir: str = ""
    cache_stats: dict = field(default_factory=dict)
    #: per-token precursor warm timings (parallel runs only)
    precursors: list[dict] = field(default_factory=list)

    @property
    def failed(self) -> list[RunReport]:
        return [r for r in self.reports if r.status == "failed"]

    def profile(self) -> dict:
        """Critical-path breakdown: exhibits sorted by wall time (cache
        hits and misses split out) plus the precursor warm phase.

        This is what future perf work reads instead of ad-hoc timing:
        the slowest computed exhibit is the serial floor, the precursor
        list shows what the pool warmed and for how long.
        """
        by_time = sorted(self.reports, key=lambda r: -r.seconds)
        computed = [r for r in self.reports if r.status == "computed"]
        cached = [r for r in self.reports if r.status == "cached"]
        return {
            "wall_seconds": round(self.wall_seconds, 4),
            "computed": len(computed),
            "cached": len(cached),
            "failed": len(self.failed),
            "cache_hit_rate": round(len(cached) / len(self.reports), 4)
            if self.reports
            else 0.0,
            "compute_seconds": round(sum(r.seconds for r in computed), 4),
            "precursor_seconds": round(
                sum(p["seconds"] for p in self.precursors), 4
            ),
            "exhibits": [
                {
                    "exp_id": r.exp_id,
                    "status": r.status,
                    "seconds": round(r.seconds, 4),
                }
                for r in by_time
            ],
            "precursors": sorted(
                self.precursors, key=lambda p: -p["seconds"]
            ),
        }

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 4),
            "fingerprint": self.fingerprint,
            "cache_dir": self.cache_dir,
            "cache": self.cache_stats,
            "results": [r.as_dict() for r in self.reports],
            "profile": self.profile(),
        }


def _run_seeded(exp_id: str) -> dict:
    """The one code path that executes an experiment (serial or worker).

    The global RNG is re-seeded from the experiment id so any builder
    that touches it draws an identical stream regardless of what ran
    before it in this process — the invariant behind serial/parallel
    payload equality.
    """
    np.random.seed(stable_seed(exp_id))
    with obs.trace(f"exhibit:{exp_id}", exp_id=exp_id):
        return get_spec(exp_id).fn()


def _precursor_task(token: str) -> tuple[str, Any, bool, float]:
    """Worker-side precursor: never raises, so one bad shared input
    cannot abort the whole parallel run (the exhibits that need it fail
    individually in the experiment phase, with a full traceback)."""
    t0 = time.perf_counter()
    try:
        with obs.trace(f"precursor:{token}", token=token):
            value = common.compute_precursor(token)
        return token, value, True, time.perf_counter() - t0
    except Exception:
        return token, None, False, time.perf_counter() - t0


def _experiment_task(exp_id: str) -> tuple[str, float, bytes | None, str]:
    """Worker-side experiment run: ship serialized payload or an error."""
    t0 = time.perf_counter()
    try:
        payload = _run_seeded(exp_id)
        return exp_id, time.perf_counter() - t0, dumps_payload(payload), ""
    except Exception:
        return exp_id, time.perf_counter() - t0, None, traceback.format_exc()


def _token_rank(token: str) -> int:
    name = token.partition(":")[0]
    try:
        return _TOKEN_RANK.index(name)
    except ValueError:
        return len(_TOKEN_RANK)


class ExperimentOrchestrator:
    """Schedules experiments across cache, precursor pool, and workers."""

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        jobs: int = 1,
        force: bool = False,
    ) -> None:
        self.cache = cache
        self.jobs = effective_jobs(jobs)
        self.force = force

    # -- public --------------------------------------------------------

    def run(self, exp_ids: list[str]) -> OrchestratorResult:
        t_start = time.perf_counter()
        t_start_wall = obs.wall_now()
        exp_ids = list(dict.fromkeys(exp_ids))  # dedup, keep order
        specs = [get_spec(eid) for eid in exp_ids]  # fail fast on typos
        fingerprint = code_fingerprint() if self.cache else ""
        scenario = common.scenario_signature() if self.cache else {}
        keys = {
            s.exp_id: ArtifactCache.key_for(s.exp_id, scenario, fingerprint)
            for s in specs
        }

        reports: dict[str, RunReport] = {}
        payloads: dict[str, dict] = {}

        to_run = []
        for spec in specs:
            cached = self._probe(spec.exp_id, keys[spec.exp_id])
            if cached is not None:
                payloads[spec.exp_id] = cached[0]
                reports[spec.exp_id] = cached[1]
            else:
                to_run.append(spec)

        # heavy exhibits first: the pool tail is the wall-clock floor.
        to_run.sort(key=lambda s: (_COST_RANK[s.cost], s.exp_id))

        precursor_profile: list[dict] = []
        parallel = self.jobs > 1 and len(to_run) > 1 and fork_available()
        if parallel:
            precursor_profile = self._warm_precursors(to_run)
            for exp_id, seconds, blob, error in run_forked(
                _experiment_task, [s.exp_id for s in to_run], self.jobs
            ):
                if blob is None:
                    reports[exp_id] = RunReport(
                        exp_id, "failed", seconds, keys[exp_id], error
                    )
                    continue
                payloads[exp_id] = loads_payload(blob)
                self._store(keys[exp_id], exp_id, scenario, fingerprint, blob=blob)
                reports[exp_id] = RunReport(
                    exp_id, "computed", seconds, keys[exp_id]
                )
        else:
            # in-process: keep the live payload, serialize only to store
            for spec in to_run:
                exp_id = spec.exp_id
                t0 = time.perf_counter()
                try:
                    payload = _run_seeded(exp_id)
                except Exception:
                    reports[exp_id] = RunReport(
                        exp_id, "failed", time.perf_counter() - t0,
                        keys[exp_id], traceback.format_exc(),
                    )
                    continue
                payloads[exp_id] = payload
                self._store(keys[exp_id], exp_id, scenario, fingerprint,
                            payload=payload)
                reports[exp_id] = RunReport(
                    exp_id, "computed", time.perf_counter() - t0, keys[exp_id]
                )

        result = OrchestratorResult(
            reports=[reports[eid] for eid in exp_ids],
            payloads=payloads,
            wall_seconds=time.perf_counter() - t_start,
            jobs=self.jobs,
            fingerprint=fingerprint,
            cache_dir=str(self.cache.root) if self.cache else "",
            cache_stats=self.cache.stats.as_dict() if self.cache else {},
            precursors=precursor_profile,
        )
        obs.record_span(
            "orchestrator.run", t_start_wall, obs.wall_now(),
            jobs=self.jobs, exhibits=len(exp_ids),
            cached=sum(1 for r in result.reports if r.status == "cached"),
            computed=sum(1 for r in result.reports if r.status == "computed"),
        )
        return result

    # -- internals -----------------------------------------------------

    def _store(
        self,
        key: str,
        exp_id: str,
        scenario: dict,
        fingerprint: str,
        *,
        payload: dict | None = None,
        blob: bytes | None = None,
    ) -> None:
        if self.cache is not None:
            obs.counter_add("runner.cache.store")
            self.cache.store(
                key,
                payload,
                exp_id=exp_id,
                params=scenario,
                fingerprint=fingerprint,
                payload_bytes=blob,
            )

    def _probe(self, exp_id: str, key: str):
        if self.cache is None or self.force:
            return None
        t0 = time.perf_counter()
        t0_wall = obs.wall_now()
        payload = self.cache.load(key)
        if payload is None:
            obs.counter_add("runner.cache.miss")
            return None
        seconds = time.perf_counter() - t0
        obs.counter_add("runner.cache.hit")
        obs.record_span(
            "runner.cache_probe", t0_wall, t0_wall + seconds, exp_id=exp_id
        )
        return payload, RunReport(exp_id, "cached", seconds, key)

    def _warm_precursors(self, specs) -> list[dict]:
        """Compute each distinct shared input once, in dependency waves.

        Declared inputs are closed over their derivation chain (a replay
        implies its trace; a QSSF replay implies its trained scheduler),
        then computed wave by wave: every wave forks only after the
        previous wave's values are installed in this process, so its
        workers inherit them copy-on-write and never recompute them.
        Returns the per-token timing profile.
        """
        profile: list[dict] = []
        tokens: list[str] = []
        for spec in specs:
            tokens.extend(spec.inputs)
        tokens = common.expand_precursors(list(dict.fromkeys(tokens)))
        for wave, wave_tokens, in_parent in common.precursor_waves(tokens):
            cold = [t for t in wave_tokens if not common.is_warm(t)]
            if not cold:
                continue
            if in_parent:
                # Cheap derivations of already-warm values: forking would
                # cost more than the work itself.
                for token in cold:
                    t0 = time.perf_counter()
                    try:
                        with obs.trace(f"precursor:{token}", token=token,
                                       wave=wave, where="parent"):
                            common.compute_precursor(token)
                    except Exception:
                        pass  # the exhibits needing it will report the failure
                    profile.append({
                        "token": token, "wave": wave, "where": "parent",
                        "seconds": round(time.perf_counter() - t0, 4),
                    })
                continue
            cold.sort(key=_token_rank)
            with obs.trace("runner.wave", wave=wave, tokens=len(cold)):
                for token, value, ok, seconds in run_forked(
                    _precursor_task, cold, self.jobs
                ):
                    if ok:
                        common.warm_precursor(token, value)
                    profile.append({
                        "token": token, "wave": wave, "where": "pool",
                        "seconds": round(seconds, 4),
                    })
        return profile
