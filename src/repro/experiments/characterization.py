"""§3 exhibits: Tables 1-2 and Figures 1-9."""

from __future__ import annotations

import numpy as np

from ..analysis import (
    duration_cdf,
    gpu_time_by_status,
    helios_philly_table,
    hourly_submission_profile,
    hourly_utilization_profile,
    job_size_cdfs,
    monthly_job_counts,
    monthly_utilization,
    render_cdf_points,
    render_kv,
    render_series,
    render_table,
    status_by_gpu_demand,
    status_distribution,
    user_completion_rates,
    user_queue_curve,
    user_resource_curve,
    vc_queue_and_duration,
    vc_utilization_stats,
)
from ..frame import Table
from ..traces import HELIOS_CLUSTER_TABLE
from . import common

__all__ = [
    "exp_table1", "exp_table2", "exp_fig1", "exp_fig2", "exp_fig3",
    "exp_fig4", "exp_fig5", "exp_fig6", "exp_fig7", "exp_fig8", "exp_fig9",
]


def exp_table1() -> dict:
    """Table 1: configurations of the four clusters (full + scaled)."""
    rows = []
    for name, row in HELIOS_CLUSTER_TABLE.items():
        spec = common.cluster_spec(name)
        rows.append(
            {
                "cluster": name,
                "paper_nodes": row["nodes"],
                "paper_gpus": row["gpus"],
                "paper_vcs": row["vcs"],
                "sim_nodes": spec.num_nodes,
                "sim_gpus": spec.num_gpus,
                "sim_vcs": spec.num_vcs,
                "gpu_model": row["gpu_model"],
            }
        )
    table = Table.from_rows(rows)
    return {"table": table, "text": render_table(table, "Table 1 — cluster configurations")}


def exp_table2() -> dict:
    """Table 2: Helios vs Philly trace statistics."""
    helios = {c: common.cluster_trace(c) for c in common.CLUSTERS}
    philly = common.philly_trace()
    helios_vcs = sum(common.cluster_spec(c).num_vcs for c in common.CLUSTERS)
    table = helios_philly_table(
        helios, philly,
        helios_vcs=helios_vcs,
        philly_vcs=common.philly_generator().spec.num_vcs,
        helios_months=common.MONTHS,
        philly_days=common.PHILLY_DAYS,
    )
    return {"table": table, "text": render_table(table, "Table 2 — Helios vs Philly")}


def exp_fig1() -> dict:
    """Fig 1: duration CDFs + GPU-time-by-status, Helios vs Philly."""
    helios_all = Table.concat(
        [common.cluster_trace(c) for c in common.CLUSTERS]
    )
    philly = common.philly_trace()
    xs_h, ys_h = duration_cdf(helios_all, "gpu")
    xs_p, ys_p = duration_cdf(philly, "gpu")
    status_h = gpu_time_by_status(helios_all)
    status_p = gpu_time_by_status(philly)
    probes = (100.0, 1_000.0, 10_000.0, 100_000.0)
    text = "\n".join(
        [
            "Fig 1a — GPU-job duration CDFs",
            render_cdf_points(xs_h, ys_h, probes, "Helios"),
            render_cdf_points(xs_p, ys_p, probes, "Philly"),
            "Fig 1b — GPU-time share by final status",
            render_kv(status_h, "Helios"),
            render_kv(status_p, "Philly"),
        ]
    )
    return {
        "helios_cdf": (xs_h, ys_h),
        "philly_cdf": (xs_p, ys_p),
        "helios_status": status_h,
        "philly_status": status_p,
        "text": text,
    }


def exp_fig2() -> dict:
    """Fig 2: hourly utilization and submission-rate profiles."""
    util = {}
    subs = {}
    lines = ["Fig 2 — daily patterns of cluster usage"]
    for c in common.CLUSTERS:
        util[c] = hourly_utilization_profile(common.full_replay(c))
        subs[c] = hourly_submission_profile(
            common.cluster_trace(c), months=common.MONTHS
        )
        lines.append(render_series(util[c], f"{c} util/hour "))
        lines.append(render_series(subs[c], f"{c} subs/hour "))
    return {"utilization": util, "submissions": subs, "text": "\n".join(lines)}


def exp_fig3() -> dict:
    """Fig 3: monthly job counts + utilization (split by job size)."""
    counts = {}
    utils = {}
    lines = ["Fig 3 — monthly trends"]
    for c in common.CLUSTERS:
        counts[c] = monthly_job_counts(common.cluster_trace(c))
        utils[c] = monthly_utilization(
            common.full_replay(c), months=common.MONTHS, split_by_size=True
        )
        lines.append(render_table(counts[c], f"{c} monthly submissions"))
        lines.append(render_table(utils[c], f"{c} monthly utilization"))
    return {"counts": counts, "utilization": utils, "text": "\n".join(lines)}


def exp_fig4() -> dict:
    """Fig 4: VC behaviours in Earth (May): utilization boxes + queueing."""
    replay = common.full_replay("Earth")
    stats = vc_utilization_stats(replay, common.cluster_spec("Earth"))
    qd = vc_queue_and_duration(replay)
    text = "\n".join(
        [
            render_table(stats, "Fig 4 (top) — Earth VC utilization quartiles"),
            render_table(qd, "Fig 4 (bottom) — normalized queue delay vs duration"),
        ]
    )
    return {"vc_stats": stats, "queue_duration": qd, "text": text}


def exp_fig5() -> dict:
    """Fig 5: per-cluster GPU and CPU duration CDFs."""
    curves = {}
    lines = ["Fig 5 — duration CDFs per cluster"]
    probes = (1.0, 10.0, 100.0, 1_000.0, 100_000.0)
    for c in common.CLUSTERS:
        trace = common.cluster_trace(c)
        curves[(c, "gpu")] = duration_cdf(trace, "gpu")
        curves[(c, "cpu")] = duration_cdf(trace, "cpu")
        lines.append(render_cdf_points(*curves[(c, "gpu")], probes, f"{c} GPU"))
        lines.append(render_cdf_points(*curves[(c, "cpu")], probes, f"{c} CPU"))
    return {"curves": curves, "text": "\n".join(lines)}


def exp_fig6() -> dict:
    """Fig 6: job-size CDFs by count and by GPU time."""
    tables = {}
    lines = ["Fig 6 — job size CDFs"]
    for c in common.CLUSTERS:
        tables[c] = job_size_cdfs(common.cluster_trace(c))
        lines.append(render_table(tables[c], c))
    return {"tables": tables, "text": "\n".join(lines)}


def exp_fig7() -> dict:
    """Fig 7: final statuses, CPU vs GPU and by GPU demand."""
    helios_all = Table.concat([common.cluster_trace(c) for c in common.CLUSTERS])
    dist = status_distribution(helios_all)
    by_demand = status_by_gpu_demand(helios_all)
    text = "\n".join(
        [
            render_table(dist, "Fig 7a — status by job kind"),
            render_table(by_demand, "Fig 7b — status by GPU demand"),
        ]
    )
    return {"distribution": dist, "by_demand": by_demand, "text": text}


def exp_fig8() -> dict:
    """Fig 8: user CDFs of GPU and CPU time."""
    curves = {}
    lines = ["Fig 8 — user resource concentration"]
    for c in common.CLUSTERS:
        trace = common.cluster_trace(c)
        for kind in ("gpu", "cpu"):
            frac, share = user_resource_curve(trace, kind)
            curves[(c, kind)] = (frac, share)
            lines.append(
                f"{c} {kind}: top5%={share[5]:.2f} top25%={share[25]:.2f}"
            )
    return {"curves": curves, "text": "\n".join(lines)}


def exp_fig9() -> dict:
    """Fig 9: user queue-delay concentration + completion-rate spread."""
    curves = {}
    rates = {}
    lines = ["Fig 9 — user queueing and completion"]
    for c in common.CLUSTERS:
        replay = common.full_replay(c)
        frac, share = user_queue_curve(replay)
        curves[c] = (frac, share)
        rates[c] = user_completion_rates(common.cluster_trace(c))
        med = float(np.median(rates[c]["completion_rate"]))
        lines.append(
            f"{c}: top5% users bear {share[5] * 100:.0f}% of queueing;"
            f" median user completion rate {med:.2f}"
        )
    return {"queue_curves": curves, "completion": rates, "text": "\n".join(lines)}
