"""§4.2 exhibits: Figures 11-13 and Tables 3-4 (QSSF evaluation)."""

from __future__ import annotations

import numpy as np

from ..analysis import render_cdf_points, render_table
from ..frame import Table
from ..sched import compute_metrics, queue_delay_ratio_by_group, queuing_by_vc
from ..stats.distributions import EmpiricalCDF
from . import common

__all__ = ["exp_fig11", "exp_fig12", "exp_fig13", "exp_table3", "exp_table4"]


def exp_fig11() -> dict:
    """Fig 11: JCT CDFs under FIFO/SJF/QSSF/SRTF across the 4 clusters."""
    curves: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
    lines = ["Fig 11 — JCT CDFs (September replay)"]
    probes = (100.0, 1_000.0, 10_000.0, 100_000.0)
    for c in common.CLUSTERS:
        for sched in common.SCHEDULER_NAMES:
            res = common.september_replay(c, sched)
            xs, ys = EmpiricalCDF(res.jct).curve(points=100, log_x=True)
            curves[(c, sched)] = (xs, ys)
            lines.append(render_cdf_points(xs, ys, probes, f"{c:7s} {sched:5s}"))
    return {"curves": curves, "text": "\n".join(lines)}


def exp_table3(include_philly: bool = True) -> dict:
    """Table 3: avg JCT / queue time / queued jobs per scheduler."""
    columns = list(common.CLUSTERS) + (["Philly"] if include_philly else [])
    schedulers = ("FIFO", "SJF", "QSSF")
    metric_rows = []
    metrics: dict[tuple[str, str], object] = {}
    for sched in schedulers:
        for c in columns:
            res = (
                common.philly_replay(sched)
                if c == "Philly"
                else common.september_replay(c, sched)
            )
            metrics[(c, sched)] = compute_metrics(sched, res)
    for label, attr in (
        ("avg_jct_s", "avg_jct"),
        ("avg_queue_s", "avg_queue_time"),
        ("queued_jobs", "num_queuing_jobs"),
    ):
        for sched in schedulers:
            row = {"metric": label, "scheduler": sched}
            for c in columns:
                row[c] = getattr(metrics[(c, sched)], attr)
            metric_rows.append(row)
    table = Table.from_rows(metric_rows)
    improvements = {
        c: metrics[(c, "FIFO")].avg_jct / max(metrics[(c, "QSSF")].avg_jct, 1e-9)
        for c in columns
    }
    queue_improvements = {
        c: metrics[(c, "FIFO")].avg_queue_time
        / max(metrics[(c, "QSSF")].avg_queue_time, 1e-9)
        for c in columns
    }
    text = "\n".join(
        [
            render_table(table, "Table 3 — scheduler comparison"),
            "QSSF vs FIFO JCT improvement: "
            + "  ".join(f"{c}:{v:.1f}x" for c, v in improvements.items()),
            "QSSF vs FIFO queue improvement: "
            + "  ".join(f"{c}:{v:.1f}x" for c, v in queue_improvements.items()),
        ]
    )
    return {
        "table": table,
        "metrics": metrics,
        "jct_improvement": improvements,
        "queue_improvement": queue_improvements,
        "text": text,
    }


def exp_table4() -> dict:
    """Table 4: FIFO/QSSF queue-delay ratio per duration group."""
    rows = []
    for c in common.CLUSTERS + ("Philly",):
        if c == "Philly":
            fifo = common.philly_replay("FIFO")
            qssf = common.philly_replay("QSSF")
        else:
            fifo = common.september_replay(c, "FIFO")
            qssf = common.september_replay(c, "QSSF")
        ratios = queue_delay_ratio_by_group(fifo, qssf)
        rows.append({"cluster": c, **ratios})
    table = Table.from_rows(rows)
    return {
        "table": table,
        "text": render_table(table, "Table 4 — queue-delay ratio FIFO/QSSF by duration group"),
    }


def _vc_delays(cluster: str, top_k: int = 10) -> Table:
    """Average queue delay of the busiest VCs under each scheduler."""
    per_sched = {}
    for sched in common.SCHEDULER_NAMES:
        res = (
            common.philly_replay(sched)
            if cluster == "Philly"
            else common.september_replay(cluster, sched)
        )
        by_vc = queuing_by_vc(res)
        per_sched[sched] = dict(zip(by_vc["vc"].tolist(), by_vc["avg_queue_delay"]))
    fifo = per_sched["FIFO"]
    top = sorted(fifo, key=fifo.get, reverse=True)[:top_k]
    rows = []
    for vc in top:
        rows.append(
            {"vc": vc, **{s: float(per_sched[s].get(vc, 0.0)) for s in common.SCHEDULER_NAMES}}
        )
    # the "all" column of Figs 12-13
    rows.append(
        {
            "vc": "all",
            **{
                s: float(np.mean(list(per_sched[s].values()))) for s in common.SCHEDULER_NAMES
            },
        }
    )
    return Table.from_rows(rows)


def exp_fig12() -> dict:
    """Fig 12: per-VC average queue delay in Saturn (September)."""
    table = _vc_delays("Saturn")
    return {"table": table, "text": render_table(table, "Fig 12 — Saturn per-VC avg queue delay (s)")}


def exp_fig13() -> dict:
    """Fig 13: per-VC average queue delay in Philly (Oct-Nov)."""
    table = _vc_delays("Philly")
    return {"table": table, "text": render_table(table, "Fig 13 — Philly per-VC avg queue delay (s)")}
