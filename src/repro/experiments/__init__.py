"""Per-exhibit experiments (Tables 1-5, Figures 1-15, ablations)."""

from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = ["EXPERIMENTS", "experiment_ids", "run_experiment"]
