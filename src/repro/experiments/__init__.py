"""Per-exhibit experiments (Tables 1-5, Figures 1-15, ablations).

The registry maps exhibit ids to builders plus orchestration metadata
(cost tier, shared precursor inputs); :mod:`.orchestrator` runs sets of
exhibits through the content-addressed artifact cache and a forked
worker pool; :mod:`.runner` is the CLI.
"""

from .cache import ArtifactCache, code_fingerprint
from .orchestrator import ExperimentOrchestrator, OrchestratorResult, RunReport
from .registry import (
    EXPERIMENTS,
    ExperimentSpec,
    SPECS,
    experiment_ids,
    get_spec,
    run_experiment,
    smoke_ids,
)

__all__ = [
    "ArtifactCache",
    "EXPERIMENTS",
    "ExperimentOrchestrator",
    "ExperimentSpec",
    "OrchestratorResult",
    "RunReport",
    "SPECS",
    "code_fingerprint",
    "experiment_ids",
    "get_spec",
    "run_experiment",
    "smoke_ids",
]
