"""Experiment registry: id -> spec (see DESIGN.md §4 for the index).

Beyond the id -> callable mapping, each :class:`ExperimentSpec` declares
orchestration metadata:

* ``cost`` — a coarse tier (``cheap`` under ~1 s, ``medium`` seconds,
  ``heavy`` tens of seconds) the orchestrator uses to schedule heavy
  exhibits first so a worker pool drains evenly;
* ``inputs`` — precursor tokens (see
  :func:`repro.experiments.common.compute_precursor`) naming the shared
  memoized inputs (synthetic traces, simulator replays, CES reports) the
  experiment reads.  Specs declare only their *top-level* inputs: the
  orchestrator closes the set over
  :func:`repro.experiments.common.precursor_deps` (a replay implies its
  trace, a QSSF replay its trained scheduler) and warms the result in
  dependency waves across the worker pool before fanning out, so no two
  workers replay the same (cluster, scheduler) pair and no replay worker
  regenerates a trace;
* ``smoke`` — membership in the fast CLI profile (``--smoke``): the
  trace-level exhibits, the serving smokes and the batched CES sweep —
  everything cheap enough to exercise the full pipeline in seconds.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from . import ablations, characterization, energy_exp, scheduling, serving
from .common import CLUSTERS, SCHEDULER_NAMES

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "SPECS",
    "experiment_ids",
    "get_spec",
    "run_experiment",
    "smoke_ids",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One exhibit: its builder plus orchestration metadata."""

    exp_id: str
    fn: Callable[[], dict]
    cost: str = "medium"  # "cheap" | "medium" | "heavy"
    inputs: tuple[str, ...] = ()
    smoke: bool = False

    def __post_init__(self) -> None:
        if self.cost not in ("cheap", "medium", "heavy"):
            raise ValueError(f"unknown cost tier {self.cost!r}")


def _traces(*, philly: bool = False) -> tuple[str, ...]:
    tokens = tuple(f"cluster_trace:{c}" for c in CLUSTERS)
    return tokens + (("philly_trace",) if philly else ())


def _full_replays(*clusters: str) -> tuple[str, ...]:
    return tuple(f"full_replay:{c}" for c in (clusters or CLUSTERS))


def _september(clusters=CLUSTERS, scheds=SCHEDULER_NAMES) -> tuple[str, ...]:
    return tuple(
        f"september_replay:{c}:{s}" for c in clusters for s in scheds
    )


def _philly_replays(*scheds: str) -> tuple[str, ...]:
    return tuple(f"philly_replay:{s}" for s in scheds)


_SPEC_TABLE: tuple[ExperimentSpec, ...] = (
    # -- §3 characterization ------------------------------------------
    ExperimentSpec("table1", characterization.exp_table1, "cheap", (), smoke=True),
    ExperimentSpec("table2", characterization.exp_table2, "medium",
                   _traces(philly=True), smoke=True),
    ExperimentSpec("fig1", characterization.exp_fig1, "medium",
                   _traces(philly=True), smoke=True),
    ExperimentSpec("fig2", characterization.exp_fig2, "heavy",
                   _full_replays()),
    ExperimentSpec("fig3", characterization.exp_fig3, "heavy",
                   _full_replays()),
    ExperimentSpec("fig4", characterization.exp_fig4, "medium",
                   _full_replays("Earth")),
    ExperimentSpec("fig5", characterization.exp_fig5, "medium", _traces(),
                   smoke=True),
    ExperimentSpec("fig6", characterization.exp_fig6, "medium", _traces(),
                   smoke=True),
    ExperimentSpec("fig7", characterization.exp_fig7, "medium", _traces(),
                   smoke=True),
    ExperimentSpec("fig8", characterization.exp_fig8, "medium", _traces(),
                   smoke=True),
    ExperimentSpec("fig9", characterization.exp_fig9, "heavy",
                   _full_replays()),
    # -- §4.2 QSSF ----------------------------------------------------
    ExperimentSpec("fig11", scheduling.exp_fig11, "heavy", _september()),
    ExperimentSpec("fig12", scheduling.exp_fig12, "heavy",
                   _september(clusters=("Saturn",))),
    ExperimentSpec("fig13", scheduling.exp_fig13, "heavy",
                   _philly_replays(*SCHEDULER_NAMES)),
    ExperimentSpec("table3", scheduling.exp_table3, "heavy",
                   _september(scheds=("FIFO", "SJF", "QSSF"))
                   + _philly_replays("FIFO", "SJF", "QSSF")),
    ExperimentSpec("table4", scheduling.exp_table4, "heavy",
                   _september(scheds=("FIFO", "QSSF"))
                   + _philly_replays("FIFO", "QSSF")),
    # -- §4.3 CES -----------------------------------------------------
    ExperimentSpec("fig14", energy_exp.exp_fig14, "heavy",
                   ("ces_report:Earth",)),
    ExperimentSpec("fig15", energy_exp.exp_fig15, "heavy",
                   ("ces_report:Philly",)),
    ExperimentSpec("table5", energy_exp.exp_table5, "heavy",
                   tuple(f"ces_report:{c}" for c in CLUSTERS + ("Philly",))),
    ExperimentSpec("ces_sweep", energy_exp.exp_ces_sweep, "heavy",
                   tuple(f"ces_forecast:{c}" for c in CLUSTERS + ("Philly",)),
                   smoke=True),
    # -- §4.1 serving runtime -----------------------------------------
    ExperimentSpec("serve_smoke", serving.exp_serve_smoke, "medium",
                   tuple(f"cluster_gpu_trace:{c}"
                         for c in serving.SERVE_SMOKE_CLUSTERS),
                   smoke=True),
    ExperimentSpec("serve_replay", serving.exp_serve_replay, "medium",
                   tuple(f"cluster_gpu_trace:{c}"
                         for c in serving.SERVE_REPLAY_CLUSTERS),
                   smoke=True),
    ExperimentSpec("serve_chaos", serving.exp_serve_chaos, "medium",
                   tuple(f"cluster_gpu_trace:{c}"
                         for c in serving.SERVE_CHAOS_CLUSTERS),
                   smoke=True),
    ExperimentSpec("serve_frontdoor", serving.exp_serve_frontdoor, "medium",
                   tuple(f"cluster_gpu_trace:{c}"
                         for c in serving.SERVE_NET_CLUSTERS),
                   smoke=True),
    # -- ablations ----------------------------------------------------
    ExperimentSpec("ablation_lambda", ablations.exp_ablation_lambda, "heavy",
                   ("cluster_gpu_trace:Venus",)),
    ExperimentSpec("ablation_forecaster", ablations.exp_ablation_forecaster,
                   "heavy", _full_replays("Earth")),
    ExperimentSpec("ablation_buffer", ablations.exp_ablation_buffer, "heavy",
                   ("ces_forecast:Earth",)),
    ExperimentSpec("ablation_oracle", ablations.exp_ablation_oracle, "heavy",
                   _september(clusters=("Venus",), scheds=("FIFO", "QSSF"))),
)

SPECS: dict[str, ExperimentSpec] = {spec.exp_id: spec for spec in _SPEC_TABLE}

#: Back-compat view: id -> zero-arg callable.
EXPERIMENTS: dict[str, Callable[[], dict]] = {
    spec.exp_id: spec.fn for spec in _SPEC_TABLE
}


def experiment_ids() -> list[str]:
    return list(SPECS)


def smoke_ids() -> list[str]:
    """The fast CLI profile: trace-level exhibits, the serving smokes
    (``serve_replay`` rides on the fast engine's cheap replays — no
    full-horizon simulation), and ``ces_sweep`` (the batched DRS grid
    makes the whole CES sweep affordable enough to smoke-test)."""
    return [eid for eid, spec in SPECS.items() if spec.smoke]


def get_spec(exp_id: str) -> ExperimentSpec:
    try:
        return SPECS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {experiment_ids()}"
        ) from None


def run_experiment(exp_id: str) -> dict:
    """Run one experiment by id; returns its payload (with a 'text' key)."""
    return get_spec(exp_id).fn()
