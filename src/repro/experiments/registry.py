"""Experiment registry: id -> callable (see DESIGN.md §4 for the index)."""

from __future__ import annotations

from collections.abc import Callable

from . import ablations, characterization, energy_exp, scheduling

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

EXPERIMENTS: dict[str, Callable[[], dict]] = {
    "table1": characterization.exp_table1,
    "table2": characterization.exp_table2,
    "fig1": characterization.exp_fig1,
    "fig2": characterization.exp_fig2,
    "fig3": characterization.exp_fig3,
    "fig4": characterization.exp_fig4,
    "fig5": characterization.exp_fig5,
    "fig6": characterization.exp_fig6,
    "fig7": characterization.exp_fig7,
    "fig8": characterization.exp_fig8,
    "fig9": characterization.exp_fig9,
    "fig11": scheduling.exp_fig11,
    "fig12": scheduling.exp_fig12,
    "fig13": scheduling.exp_fig13,
    "table3": scheduling.exp_table3,
    "table4": scheduling.exp_table4,
    "fig14": energy_exp.exp_fig14,
    "fig15": energy_exp.exp_fig15,
    "table5": energy_exp.exp_table5,
    "ablation_lambda": ablations.exp_ablation_lambda,
    "ablation_forecaster": ablations.exp_ablation_forecaster,
    "ablation_buffer": ablations.exp_ablation_buffer,
    "ablation_oracle": ablations.exp_ablation_oracle,
}


def experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(exp_id: str) -> dict:
    """Run one experiment by id; returns its payload (with a 'text' key)."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {experiment_ids()}"
        ) from None
    return fn()
