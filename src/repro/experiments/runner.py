"""CLI experiment runner.

Usage::

    python -m repro.experiments.runner            # list experiments
    python -m repro.experiments.runner fig11 table3
    python -m repro.experiments.runner all        # everything (slow)
"""

from __future__ import annotations

import sys
import time

from .registry import experiment_ids, run_experiment


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("available experiments:")
        for eid in experiment_ids():
            print(f"  {eid}")
        print("run with: python -m repro.experiments.runner <id> [<id> ...] | all")
        return 0
    ids = experiment_ids() if args == ["all"] else args
    for eid in ids:
        t0 = time.time()
        payload = run_experiment(eid)
        elapsed = time.time() - t0
        print("=" * 72)
        print(f"[{eid}] ({elapsed:.1f}s)")
        print(payload.get("text", "(no text payload)"))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
