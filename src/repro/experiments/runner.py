"""CLI experiment runner: cached, parallel reproduction of the exhibits.

Usage::

    python -m repro.experiments.runner                  # list experiments
    python -m repro.experiments.runner fig11 table3     # specific exhibits
    python -m repro.experiments.runner all --jobs 4     # everything, 4 workers
    python -m repro.experiments.runner --smoke          # fast trace-only profile
    python -m repro.experiments.runner all --force      # ignore cached artifacts
    python -m repro.experiments.runner all --json report.json

Artifacts are content-addressed by (experiment id, parameters, source
fingerprint) under ``--cache-dir`` (default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro/experiments``), so a re-run with unchanged code returns
every exhibit from disk in milliseconds.  ``--jobs N`` fans independent
exhibits across a forked worker pool with shared precursors computed
once; payloads are bit-identical to a serial run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .. import obs
from .cache import ArtifactCache
from .orchestrator import ExperimentOrchestrator
from .registry import SPECS, experiment_ids, get_spec, smoke_ids

__all__ = ["main", "build_parser", "default_cache_dir"]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "experiments"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run paper exhibits with caching and a parallel worker pool.",
    )
    parser.add_argument(
        "ids", nargs="*", metavar="ID",
        help="experiment ids to run, or 'all'; empty lists the registry",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the registry and exit; with --json, emit it "
             "machine-readably (id, tier, profile, precursors)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1; 0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="artifact cache location (default $REPRO_CACHE_DIR or "
             "~/.cache/repro/experiments)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache entirely",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="recompute even when a cached artifact exists (and overwrite it)",
    )
    profile = parser.add_mutually_exclusive_group()
    profile.add_argument(
        "--smoke", action="store_true",
        help="fast profile: the trace-only exhibits (no simulator replays)",
    )
    profile.add_argument(
        "--full", action="store_true",
        help="every registered exhibit (same as 'all')",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH", nargs="?",
        const=Path("-"),
        help="write a structured run report (timings, cache keys) to PATH "
             "(or the registry listing, with --list); bare --json writes "
             "to stdout",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress exhibit text; print only the run summary",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a per-exhibit wall-time + cache-hit table (sorted "
             "slowest first; the same breakdown is always embedded in "
             "the --json report under 'profile')",
    )
    parser.add_argument(
        "--obs-out", type=Path, default=None, metavar="DIR",
        help="enable tracing+metrics and dump trace.jsonl + "
             "trace.chrome.json (Perfetto-loadable) under DIR; inspect "
             "with 'python -m repro.obs summarize DIR/trace.jsonl'",
    )
    return parser


def _list_registry() -> None:
    print("available experiments:")
    for eid, spec in SPECS.items():
        tags = [spec.cost] + (["smoke"] if spec.smoke else [])
        print(f"  {eid:22s} [{', '.join(tags)}]")
    print(
        "run with: python -m repro.experiments.runner <id> [<id> ...] | all"
        " [--jobs N] [--smoke]"
    )


def registry_as_dict() -> dict:
    """Machine-readable registry: id, cost tier, profiles, precursors.

    ``inputs`` are the declared top-level precursor tokens; ``precursors``
    is their dependency closure in warm order — what the orchestrator
    actually computes before running the exhibit.
    """
    from .common import expand_precursors

    return {
        "experiments": [
            {
                "id": spec.exp_id,
                "cost": spec.cost,
                "smoke": spec.smoke,
                "inputs": list(spec.inputs),
                "precursors": expand_precursors(list(spec.inputs)),
            }
            for spec in SPECS.values()
        ]
    }


def _print_profile(result) -> None:
    """The critical-path table: exhibits slowest-first, then precursors."""
    prof = result.profile()
    print()
    print(
        f"profile — {prof['wall_seconds']:.2f}s wall, "
        f"{prof['compute_seconds']:.2f}s computing {prof['computed']} "
        f"exhibits, {prof['cached']} cached "
        f"(hit rate {prof['cache_hit_rate']:.0%})"
    )
    print(f"  {'exhibit':<22s} {'status':<9s} {'seconds':>14s}")
    for row in prof["exhibits"]:
        if row["status"] == "cached":
            # A hit's time is the cache probe, not an execution that took
            # 0.00s — render it as such so the table can't be misread.
            timing = f"hit ({row['seconds'] * 1e3:.1f}ms)"
        else:
            timing = f"{row['seconds']:.2f}"
        print(f"  {row['exp_id']:<22s} {row['status']:<9s} {timing:>14s}")
    if prof["cached"]:
        print("  (cached rows show cache-probe time, not exhibit compute time)")
    if prof["precursors"]:
        print(
            f"  precursor warm phase ({prof['precursor_seconds']:.2f}s "
            "worker-seconds):"
        )
        for p in prof["precursors"]:
            print(
                f"    {p['token']:<34s} wave {p['wave']} "
                f"[{p['where']}] {p['seconds']:>8.2f}"
            )


def _emit_json(payload: dict, path: Path) -> None:
    text = json.dumps(payload, indent=2) + "\n"
    if str(path) == "-":
        print(text, end="")
    else:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"report written to {path}")


def _select_ids(args: argparse.Namespace) -> list[str] | None:
    if args.smoke:
        return smoke_ids()
    if args.full or args.ids == ["all"]:
        return experiment_ids()
    if not args.ids:
        return None  # list mode
    return list(dict.fromkeys(args.ids))  # de-dup, keep order


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    if (args.smoke or args.full) and args.ids:
        parser.error("experiment IDs cannot be combined with --smoke/--full")
    if "all" in args.ids and len(args.ids) > 1:
        parser.error("'all' cannot be combined with other experiment IDs")
    if args.list and (args.ids or args.smoke or args.full):
        parser.error("--list cannot be combined with experiment IDs or profiles")
    if args.json is not None and str(args.json) in SPECS:
        # bare --json is valid, so argparse would otherwise swallow a
        # following experiment id as the report path and silently list
        parser.error(
            f"--json consumed experiment id {args.json!r} as its PATH; "
            "put IDs before --json or pass an explicit path"
        )
    ids = None if args.list else _select_ids(args)
    if ids is None:
        if args.json is not None:
            _emit_json(registry_as_dict(), args.json)
        else:
            _list_registry()
        return 0

    # usage errors (typo'd id, bad --jobs) fail here with a one-line
    # message; failures *inside* experiments are per-exhibit reports.
    try:
        for eid in ids:
            get_spec(eid)
        cache = None
        if not args.no_cache:
            cache = ArtifactCache(args.cache_dir or default_cache_dir())
        orchestrator = ExperimentOrchestrator(
            cache=cache, jobs=args.jobs, force=args.force
        )
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    if args.obs_out is not None:
        obs.enable()
    result = orchestrator.run(ids)

    for report in result.reports:
        print("=" * 72)
        print(f"[{report.exp_id}] {report.status} ({report.seconds:.2f}s)")
        if report.status == "failed":
            print(report.error)
        elif not args.quiet:
            print(result.payloads[report.exp_id].get("text", "(no text payload)"))
        print()

    counts = {"cached": 0, "computed": 0, "failed": 0}
    for report in result.reports:
        counts[report.status] += 1
    print(
        f"{len(result.reports)} exhibits in {result.wall_seconds:.1f}s "
        f"(jobs={result.jobs}): {counts['computed']} computed, "
        f"{counts['cached']} cached, {counts['failed']} failed"
    )

    if args.profile:
        _print_profile(result)

    if args.json is not None:
        _emit_json(result.as_dict(), args.json)

    if args.obs_out is not None:
        jsonl_path, chrome_path = obs.dump(args.obs_out)
        print(f"obs trace written to {jsonl_path} and {chrome_path}")

    return 1 if counts["failed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
