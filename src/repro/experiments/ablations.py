"""Ablations on the design choices DESIGN.md calls out.

* ``exp_ablation_lambda`` — the λ blend of Algorithm 1 (rolling-only vs
  GBDT-only vs mixtures).
* ``exp_ablation_forecaster`` — §4.3.2's model comparison: GBDT vs
  ARIMA vs Fourier/Prophet vs Holt-Winters vs LSTM on the Earth
  node-demand series (rolling-origin SMAPE).
* ``exp_ablation_buffer`` — Algorithm 2's σ buffer: parked nodes vs
  wake-up churn trade-off.
* ``exp_ablation_oracle`` — QSSF with perfect GPU-time knowledge:
  how much of the gap to SJF is prediction error.
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_table
from ..energy import DRSParams, GBDTSeriesForecaster, run_drs_grid
from ..frame import Table
from ..ml import (
    ARIMAForecaster,
    FourierForecaster,
    HoltWintersForecaster,
    LSTMForecaster,
    LSTMParams,
    compare_forecasters,
)
from ..sched import (
    MLEstimator,
    OracleGpuTimeScheduler,
    QSSFScheduler,
    RollingEstimator,
    compute_metrics,
)
from ..sim import Simulator, running_nodes_series
from ..stats.timeseries import TimeGrid, resample_mean
from ..traces import slice_period
from . import common
from .energy_exp import ces_forecast

__all__ = [
    "exp_ablation_lambda",
    "exp_ablation_forecaster",
    "exp_ablation_buffer",
    "exp_ablation_oracle",
]


def exp_ablation_lambda(cluster: str = "Venus") -> dict:
    """Sweep the Algorithm-1 merging coefficient λ on one cluster."""
    gpu = common.cluster_gpu_trace(cluster)
    history = gpu.filter(gpu["submit_time"] < common.EVAL_MONTH * common.MONTH_SECONDS)
    sept = slice_period(
        gpu,
        common.EVAL_MONTH * common.MONTH_SECONDS,
        (common.EVAL_MONTH + 1) * common.MONTH_SECONDS,
    )
    spec = common.cluster_spec(cluster)
    # λ only reweights the blend — both estimators are λ-independent, so
    # one fit each serves the whole sweep (replays never mutate them).
    rolling = RollingEstimator().fit(history)
    ml = MLEstimator(common.QSSF_GBDT).fit(history)
    rows = []
    for lam in (0.0, 0.25, 0.5, 0.75, 1.0):
        sched = QSSFScheduler(
            history,
            lam=lam,
            gbdt_params=common.QSSF_GBDT,
            rolling=rolling,
            ml=ml,
        )
        res = Simulator(spec, sched).run(sept)
        m = compute_metrics(f"lam={lam}", res)
        pred = sched.predicted_durations(sept)
        err = float(
            np.median(np.abs(np.log((pred + 1) / (sept["duration"] + 1))))
        )
        rows.append(
            {
                "lambda": lam,
                "avg_jct_s": m.avg_jct,
                "avg_queue_s": m.avg_queue_time,
                "median_abs_log_error": err,
            }
        )
    table = Table.from_rows(rows)
    return {"table": table, "text": render_table(table, f"Ablation — λ blend ({cluster})")}


def exp_ablation_forecaster(hour_bins: bool = True) -> dict:
    """§4.3.2: which model class forecasts node demand best (SMAPE).

    Runs through the incremental rolling-origin engine: every model is
    fitted once and advanced fold to fold via its ``update()`` method
    (ARIMA's incremental fit is bit-exact with scratch; GBDT/LSTM
    continue training on the grown window, which slightly *improves*
    them over per-fold scratch fits — consistent with the paper's
    finding that GBDT is the strongest model class here).  Independent
    models fan out over the forked pool when CPUs allow (``jobs=0`` =
    one per CPU; degrades to serial inside orchestrator workers).
    """
    replay = common.full_replay("Earth")
    grid = TimeGrid(0.0, 600.0, common.MONTHS * 30 * 144)
    series = running_nodes_series(replay, grid)
    if hour_bins:  # hourly bins keep LSTM/HW training affordable
        series = resample_mean(series, 6)
        period = 24
    else:
        period = 144
    initial = int(len(series) * 0.8)
    horizon = period  # forecast one day ahead
    scores = compare_forecasters(
        {
            "GBDT": lambda: GBDTSeriesForecaster(),
            "ARIMA": lambda: ARIMAForecaster(p=2 * period, d=0),
            "Fourier(Prophet)": lambda: FourierForecaster(periods=(period, 7 * period)),
            "HoltWinters": lambda: HoltWintersForecaster(season_length=period),
            "LSTM": lambda: LSTMForecaster(
                LSTMParams(window=period, hidden=12, epochs=10)
            ),
        },
        series + 1.0,  # avoid zero-demand SMAPE blowups
        initial=initial,
        horizon=horizon,
        step=horizon * 2,
        mode="auto",
        jobs=0,
    )
    table = Table.from_rows(
        [{"model": k, "smape_%": v} for k, v in sorted(scores.items(), key=lambda kv: kv[1])]
    )
    return {
        "scores": scores,
        "table": table,
        "text": render_table(table, "Ablation — node-demand forecaster comparison (Earth)"),
    }


def exp_ablation_buffer(cluster: str = "Earth") -> dict:
    """Sweep Algorithm 2's σ buffer (fraction of nodes).

    One batched :func:`~repro.energy.fast_drs.run_drs_grid` call over
    the cluster's cached forecast — the sweep shares the single
    forecaster fit with Table 5 and costs only the controller walks.
    """
    fc = ces_forecast(cluster)
    fracs = (0.01, 0.04, 0.08, 0.15)
    grid = []
    for frac in fracs:
        grid.append(
            DRSParams(
                buffer_nodes=max(1, int(round(frac * fc.total_nodes))),
                recent_window_bins=6,
                recent_threshold=max(0.5, 0.006 * fc.total_nodes),
                future_threshold=max(0.5, 0.006 * fc.total_nodes),
            )
        )
    outs = run_drs_grid(fc.eval_demand, fc.future_forecast, fc.total_nodes, grid)
    rows = [
        {
            "sigma_frac": frac,
            "sigma_nodes": params.buffer_nodes,
            "avg_parked": out.avg_parked_nodes,
            "daily_wake_ups": out.daily_wake_ups,
            "util_ces_%": 100 * out.utilization_ces,
        }
        for frac, params, out in zip(fracs, grid, outs)
    ]
    table = Table.from_rows(rows)
    return {"table": table, "text": render_table(table, f"Ablation — DRS buffer σ ({cluster})")}


def exp_ablation_oracle(cluster: str = "Venus") -> dict:
    """QSSF with oracle GPU time vs predicted GPU time vs FIFO."""
    sept_fifo = common.september_replay(cluster, "FIFO")
    sept_qssf = common.september_replay(cluster, "QSSF")
    gpu = common.cluster_gpu_trace(cluster)
    sept = slice_period(
        gpu,
        common.EVAL_MONTH * common.MONTH_SECONDS,
        (common.EVAL_MONTH + 1) * common.MONTH_SECONDS,
    )
    oracle = Simulator(common.cluster_spec(cluster), OracleGpuTimeScheduler()).run(sept)
    rows = [
        {"policy": name, "avg_jct_s": m.avg_jct, "avg_queue_s": m.avg_queue_time}
        for name, m in (
            ("FIFO", compute_metrics("FIFO", sept_fifo)),
            ("QSSF(predicted)", compute_metrics("QSSF", sept_qssf)),
            ("QSSF(oracle gpu-time)", compute_metrics("oracle", oracle)),
        )
    ]
    table = Table.from_rows(rows)
    return {
        "table": table,
        "text": render_table(table, f"Ablation — prediction error cost ({cluster})"),
    }
