"""Serving-runtime exhibits: the framework loop as a live system.

``serve_smoke`` streams the first days of the evaluation month for two
clusters through :mod:`repro.serve` — QSSF queue orderings, CES control
steps and online model updates — and reports per-shard throughput and
decision-latency telemetry.  Its stream derives node demand from the
traces alone (the as-if-unqueued approximation), so it exercises the
full serving stack in seconds with no simulator in the loop.

``serve_replay`` closes the loop: the shard window is replayed through
the fast simulator and the server consumes the *live* replay
(``EventStream.from_replay``) — finish events at simulated end times,
CES trained on and fed by the replay's running-nodes telemetry.  The
array-backed engine makes this cheap enough for the smoke profile.

The serve imports are deferred into the builders: the registry must
stay importable without touching :mod:`repro.serve` (which itself
imports the shared experiment scenario — a cycle if resolved at import
time).
"""

from __future__ import annotations

from . import common

__all__ = [
    "exp_serve_replay",
    "exp_serve_smoke",
    "SERVE_REPLAY_CLUSTERS",
    "SERVE_SMOKE_CLUSTERS",
    "smoke_serve_config",
]

#: shards streamed by the smoke exhibit
SERVE_SMOKE_CLUSTERS = ("Venus", "Saturn")
SERVE_SMOKE_HISTORY_DAYS = 14
SERVE_SMOKE_STREAM_DAYS = 3.0
SERVE_SMOKE_MAX_JOBS = 1_200

#: shards streamed from a live simulator replay
SERVE_REPLAY_CLUSTERS = ("Venus",)


def smoke_serve_config():
    """Replay-free serving knobs sized for the smoke budget.

    Rolling-only QSSF (``lam=1``) skips the GBDT duration model; hourly
    node bins with short-lag features keep the CES forecaster's warmup
    inside a two-week history window.
    """
    from ..energy.forecaster import ForecastFeatures
    from ..ml.gbdt import GBDTParams
    from ..serve import ServeConfig

    return ServeConfig(
        lam=1.0,
        bin_seconds=3_600,
        horizon_bins=6,
        ces_features=ForecastFeatures(
            bin_seconds=3_600, lags=(1, 2, 3, 6, 24, 168), windows=(6, 24)
        ),
        ces_gbdt=GBDTParams(n_estimators=60, max_depth=5, min_samples_leaf=10),
        ces_update_every=24,
    )


def _serve_exhibit(exp_id: str, clusters: tuple[str, ...], source: str) -> dict:
    """Shared builder: serve ``clusters`` shards and package telemetry."""
    from ..serve import aggregate_reports, serve_clusters

    reports = serve_clusters(
        clusters,
        config=smoke_serve_config(),
        jobs=1,
        history_days=SERVE_SMOKE_HISTORY_DAYS,
        stream_days=SERVE_SMOKE_STREAM_DAYS,
        max_jobs=SERVE_SMOKE_MAX_JOBS,
        source=source,
    )
    agg = aggregate_reports(reports)
    lines = [
        f"{exp_id} — streaming serving runtime "
        f"({SERVE_SMOKE_STREAM_DAYS:g} days, {len(reports)} shards, "
        f"{source} source)"
    ]
    for r in reports:
        lines.append(
            f"{r.cluster:7s} {r.events:6d} events  {r.events_per_s:9.0f} ev/s  "
            f"qssf p50/p99 {r.qssf_latency.p50_ms:.2f}/{r.qssf_latency.p99_ms:.2f} ms  "
            f"ces p50/p99 {r.ces_latency.p50_ms:.2f}/{r.ces_latency.p99_ms:.2f} ms  "
            f"wakes {r.ces_summary.get('wake_events', 0)}  "
            f"parked {r.ces_summary.get('avg_parked', 0.0):.1f}  "
            f"updates {r.refits}"
        )
    lines.append(
        f"aggregate: {agg['events']} events, {agg['events_per_s']:.0f} ev/s, "
        f"{agg['qssf_decisions']} queue orderings, {agg['ces_steps']} CES steps"
    )
    return {
        "shards": [r.as_dict() for r in reports],
        "aggregate": agg,
        "clusters": list(clusters),
        "source": source,
        "text": "\n".join(lines),
    }


def exp_serve_smoke() -> dict:
    """Serve two cluster shards end-to-end; returns telemetry + text."""
    return _serve_exhibit("serve_smoke", SERVE_SMOKE_CLUSTERS, "trace")


def exp_serve_replay() -> dict:
    """Serve a shard from a *live* simulator replay (§4.1 closed loop)."""
    return _serve_exhibit("serve_replay", SERVE_REPLAY_CLUSTERS, "replay")
