"""Serving-runtime exhibits: the framework loop as a live system.

``serve_smoke`` streams the first days of the evaluation month for two
clusters through :mod:`repro.serve` — QSSF queue orderings, CES control
steps and online model updates — and reports per-shard throughput and
decision-latency telemetry.  Its stream derives node demand from the
traces alone (the as-if-unqueued approximation), so it exercises the
full serving stack in seconds with no simulator in the loop.

``serve_replay`` closes the loop: the shard window is replayed through
the fast simulator and the server consumes the *live* replay
(``EventStream.from_replay``) — finish events at simulated end times,
CES trained on and fed by the replay's running-nodes telemetry.  The
array-backed engine makes this cheap enough for the smoke profile.

The serve imports are deferred into the builders: the registry must
stay importable without touching :mod:`repro.serve` (which itself
imports the shared experiment scenario — a cycle if resolved at import
time).
"""

from __future__ import annotations

from . import common

__all__ = [
    "exp_serve_chaos",
    "exp_serve_frontdoor",
    "exp_serve_replay",
    "exp_serve_smoke",
    "SERVE_CHAOS_CLUSTERS",
    "SERVE_NET_CLUSTERS",
    "SERVE_REPLAY_CLUSTERS",
    "SERVE_SMOKE_CLUSTERS",
    "smoke_serve_config",
]

#: shards streamed by the smoke exhibit
SERVE_SMOKE_CLUSTERS = ("Venus", "Saturn")
SERVE_SMOKE_HISTORY_DAYS = 14
SERVE_SMOKE_STREAM_DAYS = 3.0
SERVE_SMOKE_MAX_JOBS = 1_200

#: shards streamed from a live simulator replay
SERVE_REPLAY_CLUSTERS = ("Venus",)

#: chaos exhibit: one supervised shard, SIGKILLed mid-stream and resumed
SERVE_CHAOS_CLUSTERS = ("Venus",)
SERVE_CHAOS_KILL_BATCH = 130
SERVE_CHAOS_CHECKPOINT_EVERY = 50

#: front-door chaos exhibit: two shards that consistent-hash onto
#: *different* workers of a 2-worker ring (Venus → w1, Earth → w0), so
#: a worker SIGKILL and a link partition each hit one shard
SERVE_NET_CLUSTERS = ("Venus", "Earth")
SERVE_NET_WORKERS = 2
SERVE_NET_QUEUE_BOUND = 16
SERVE_NET_PARTITION_AT = 60


def smoke_serve_config():
    """Replay-free serving knobs sized for the smoke budget.

    Rolling-only QSSF (``lam=1``) skips the GBDT duration model; hourly
    node bins with short-lag features keep the CES forecaster's warmup
    inside a two-week history window.
    """
    from ..energy.forecaster import ForecastFeatures
    from ..ml.gbdt import GBDTParams
    from ..serve import ServeConfig

    return ServeConfig(
        lam=1.0,
        bin_seconds=3_600,
        horizon_bins=6,
        ces_features=ForecastFeatures(
            bin_seconds=3_600, lags=(1, 2, 3, 6, 24, 168), windows=(6, 24)
        ),
        ces_gbdt=GBDTParams(n_estimators=60, max_depth=5, min_samples_leaf=10),
        ces_update_every=24,
    )


def _serve_exhibit(exp_id: str, clusters: tuple[str, ...], source: str) -> dict:
    """Shared builder: serve ``clusters`` shards and package telemetry."""
    from ..serve import aggregate_reports, serve_clusters

    reports = serve_clusters(
        clusters,
        config=smoke_serve_config(),
        jobs=1,
        history_days=SERVE_SMOKE_HISTORY_DAYS,
        stream_days=SERVE_SMOKE_STREAM_DAYS,
        max_jobs=SERVE_SMOKE_MAX_JOBS,
        source=source,
    )
    agg = aggregate_reports(reports)
    lines = [
        f"{exp_id} — streaming serving runtime "
        f"({SERVE_SMOKE_STREAM_DAYS:g} days, {len(reports)} shards, "
        f"{source} source)"
    ]
    for r in reports:
        lines.append(
            f"{r.cluster:7s} {r.events:6d} events  {r.events_per_s:9.0f} ev/s  "
            f"qssf p50/p99 {r.qssf_latency.p50_ms:.2f}/{r.qssf_latency.p99_ms:.2f} ms  "
            f"ces p50/p99 {r.ces_latency.p50_ms:.2f}/{r.ces_latency.p99_ms:.2f} ms  "
            f"wakes {r.ces_summary.get('wake_events', 0)}  "
            f"parked {r.ces_summary.get('avg_parked', 0.0):.1f}  "
            f"updates {r.refits}"
        )
    lines.append(
        f"aggregate: {agg['events']} events, {agg['events_per_s']:.0f} ev/s, "
        f"{agg['qssf_decisions']} queue orderings, {agg['ces_steps']} CES steps"
    )
    return {
        "shards": [r.as_dict() for r in reports],
        "aggregate": agg,
        "clusters": list(clusters),
        "source": source,
        "text": "\n".join(lines),
    }


def exp_serve_smoke() -> dict:
    """Serve two cluster shards end-to-end; returns telemetry + text."""
    return _serve_exhibit("serve_smoke", SERVE_SMOKE_CLUSTERS, "trace")


def exp_serve_replay() -> dict:
    """Serve a shard from a *live* simulator replay (§4.1 closed loop)."""
    return _serve_exhibit("serve_replay", SERVE_REPLAY_CLUSTERS, "replay")


def exp_serve_chaos() -> dict:
    """Kill a serving shard mid-stream; prove crash-recovery parity.

    The baseline serves one shard fault-free.  The chaos run serves the
    *same* shard under supervision with a deterministic
    :class:`~repro.framework.faults.FaultPlan` that SIGKILLs the worker
    at micro-batch 130 (between the second and third checkpoints); the
    supervisor restarts it, the new attempt resumes from the last
    checkpoint, and the exhibit asserts the recovered report's parity
    surface is byte-identical to the baseline's.  Every field in the
    payload is deterministic, so this exhibit carries a golden.
    """
    from ..framework import FaultPlan, FaultSpec, Supervision, SupervisionLog
    from ..serve import serve_clusters

    shard_kwargs = dict(
        config=smoke_serve_config(),
        history_days=SERVE_SMOKE_HISTORY_DAYS,
        stream_days=SERVE_SMOKE_STREAM_DAYS,
        max_jobs=SERVE_SMOKE_MAX_JOBS,
    )
    baseline = serve_clusters(SERVE_CHAOS_CLUSTERS, jobs=1, **shard_kwargs)[0]

    plan = FaultPlan(
        seed=7,
        faults=tuple(
            FaultSpec(key=c, kind="crash", at=SERVE_CHAOS_KILL_BATCH)
            for c in SERVE_CHAOS_CLUSTERS
        ),
    )
    log = SupervisionLog()
    recovered = serve_clusters(
        SERVE_CHAOS_CLUSTERS,
        jobs=1,
        **shard_kwargs,
        supervised=True,
        supervision=Supervision(
            timeout_s=600.0, max_retries=2,
            backoff_base_s=0.01, backoff_cap_s=0.05,
        ),
        fault_plan=plan,
        checkpoint_every=SERVE_CHAOS_CHECKPOINT_EVERY,
        log=log,
    )[0]

    parity = recovered.parity_bytes() == baseline.parity_bytes()
    if not parity:
        raise RuntimeError(
            "crash-recovery parity violated: the resumed shard's report "
            "differs from the never-failed baseline"
        )
    lines = [
        "serve_chaos — SIGKILL a serving shard mid-stream, resume from "
        "checkpoint, byte-compare against the never-failed run",
        f"shard {baseline.cluster}: {baseline.events} events, "
        f"kill at batch {SERVE_CHAOS_KILL_BATCH}, "
        f"checkpoint every {SERVE_CHAOS_CHECKPOINT_EVERY} batches",
        f"supervision: {log.retries()} retry "
        f"({', '.join(o for _, _, o in log.events)})",
        f"parity: recovered report == baseline report "
        f"(qssf digest {baseline.qssf_digest[:16]}…)",
    ]
    return {
        "parity": parity,
        "baseline": baseline.parity_dict(),
        "recovered": recovered.parity_dict(),
        "retries": recovered.retries,
        "supervision": log.as_dict(),
        "kill_batch": SERVE_CHAOS_KILL_BATCH,
        "checkpoint_every": SERVE_CHAOS_CHECKPOINT_EVERY,
        "clusters": list(SERVE_CHAOS_CLUSTERS),
        "text": "\n".join(lines),
    }


def exp_serve_frontdoor() -> dict:
    """Partition-and-kill chaos parity through the socket control plane.

    The baseline serves two shards directly.  The chaos run routes the
    same shards through :mod:`repro.serve.net` — consistent hashing
    places them on different workers — under a plan that SIGKILLs
    Venus's worker at micro-batch 130 *and* partitions Earth's link
    indefinitely from frame 60.  The router's breaker ladder respawns
    and reroutes both shards from their piggybacked checkpoints, and the
    exhibit asserts the merged parity surface is byte-identical to the
    fault-free baseline.  All wall-clock-plane counters land in
    ``net_stats`` (scrubbed from the golden); every other field is
    deterministic.
    """
    from ..framework import FaultPlan, FaultSpec
    from ..serve import (
        NetConfig,
        parity_surface,
        serve_clusters,
        serve_clusters_net,
    )

    shard_kwargs = dict(
        config=smoke_serve_config(),
        history_days=SERVE_SMOKE_HISTORY_DAYS,
        stream_days=SERVE_SMOKE_STREAM_DAYS,
        max_jobs=SERVE_SMOKE_MAX_JOBS,
    )
    baseline = serve_clusters(SERVE_NET_CLUSTERS, jobs=1, **shard_kwargs)

    plan = FaultPlan(
        seed=13,
        faults=(
            FaultSpec(key="Venus", kind="crash", at=SERVE_CHAOS_KILL_BATCH),
            FaultSpec(key="link:w0", kind="partition",
                      at=SERVE_NET_PARTITION_AT, span=100_000),
        ),
    )
    net = NetConfig(
        workers=SERVE_NET_WORKERS, queue_bound=SERVE_NET_QUEUE_BOUND,
        rpc_deadline_s=1.5, resume_deadline_s=600.0, max_retries=2,
        backoff_base_s=0.01, backoff_cap_s=0.05,
    )
    recovered, stats = serve_clusters_net(
        SERVE_NET_CLUSTERS,
        shard_kwargs["config"],
        history_days=SERVE_SMOKE_HISTORY_DAYS,
        stream_days=SERVE_SMOKE_STREAM_DAYS,
        max_jobs=SERVE_SMOKE_MAX_JOBS,
        checkpoint_every=SERVE_CHAOS_CHECKPOINT_EVERY,
        fault_plan=plan,
        net=net,
    )

    parity = parity_surface(recovered) == parity_surface(baseline)
    if not parity:
        raise RuntimeError(
            "net chaos parity violated: the rerouted shards' merged "
            "report surface differs from the fault-free baseline"
        )
    lines = [
        "serve_frontdoor — SIGKILL one shard worker and partition the "
        "other's link; reroute from checkpoints through the socket "
        "control plane, byte-compare against the direct run",
        f"shards {', '.join(SERVE_NET_CLUSTERS)} on "
        f"{SERVE_NET_WORKERS} workers, queue bound "
        f"{SERVE_NET_QUEUE_BOUND}, checkpoint every "
        f"{SERVE_CHAOS_CHECKPOINT_EVERY} batches",
        f"faults: crash Venus at batch {SERVE_CHAOS_KILL_BATCH}; "
        f"partition link:w0 from frame {SERVE_NET_PARTITION_AT}",
    ] + [
        f"{r.cluster:7s} {r.events:6d} events  parity ok"
        for r in recovered
    ]
    return {
        "parity": parity,
        "baseline": [r.parity_dict() for r in baseline],
        "recovered": [r.parity_dict() for r in recovered],
        "clusters": list(SERVE_NET_CLUSTERS),
        "workers": SERVE_NET_WORKERS,
        "queue_bound": SERVE_NET_QUEUE_BOUND,
        "kill_batch": SERVE_CHAOS_KILL_BATCH,
        "partition_at": SERVE_NET_PARTITION_AT,
        "checkpoint_every": SERVE_CHAOS_CHECKPOINT_EVERY,
        "net_stats": stats.as_dict(),
        "text": "\n".join(lines),
    }
