"""Serving-runtime exhibits: the framework loop as a live system.

``serve_smoke`` streams the first days of the evaluation month for two
clusters through :mod:`repro.serve` — QSSF queue orderings, CES control
steps and online model updates — and reports per-shard throughput and
decision-latency telemetry.  Its stream derives node demand from the
traces alone (the as-if-unqueued approximation), so it exercises the
full serving stack in seconds with no simulator in the loop.

``serve_replay`` closes the loop: the shard window is replayed through
the fast simulator and the server consumes the *live* replay
(``EventStream.from_replay``) — finish events at simulated end times,
CES trained on and fed by the replay's running-nodes telemetry.  The
array-backed engine makes this cheap enough for the smoke profile.

The serve imports are deferred into the builders: the registry must
stay importable without touching :mod:`repro.serve` (which itself
imports the shared experiment scenario — a cycle if resolved at import
time).
"""

from __future__ import annotations

from . import common

__all__ = [
    "exp_serve_chaos",
    "exp_serve_replay",
    "exp_serve_smoke",
    "SERVE_CHAOS_CLUSTERS",
    "SERVE_REPLAY_CLUSTERS",
    "SERVE_SMOKE_CLUSTERS",
    "smoke_serve_config",
]

#: shards streamed by the smoke exhibit
SERVE_SMOKE_CLUSTERS = ("Venus", "Saturn")
SERVE_SMOKE_HISTORY_DAYS = 14
SERVE_SMOKE_STREAM_DAYS = 3.0
SERVE_SMOKE_MAX_JOBS = 1_200

#: shards streamed from a live simulator replay
SERVE_REPLAY_CLUSTERS = ("Venus",)

#: chaos exhibit: one supervised shard, SIGKILLed mid-stream and resumed
SERVE_CHAOS_CLUSTERS = ("Venus",)
SERVE_CHAOS_KILL_BATCH = 130
SERVE_CHAOS_CHECKPOINT_EVERY = 50


def smoke_serve_config():
    """Replay-free serving knobs sized for the smoke budget.

    Rolling-only QSSF (``lam=1``) skips the GBDT duration model; hourly
    node bins with short-lag features keep the CES forecaster's warmup
    inside a two-week history window.
    """
    from ..energy.forecaster import ForecastFeatures
    from ..ml.gbdt import GBDTParams
    from ..serve import ServeConfig

    return ServeConfig(
        lam=1.0,
        bin_seconds=3_600,
        horizon_bins=6,
        ces_features=ForecastFeatures(
            bin_seconds=3_600, lags=(1, 2, 3, 6, 24, 168), windows=(6, 24)
        ),
        ces_gbdt=GBDTParams(n_estimators=60, max_depth=5, min_samples_leaf=10),
        ces_update_every=24,
    )


def _serve_exhibit(exp_id: str, clusters: tuple[str, ...], source: str) -> dict:
    """Shared builder: serve ``clusters`` shards and package telemetry."""
    from ..serve import aggregate_reports, serve_clusters

    reports = serve_clusters(
        clusters,
        config=smoke_serve_config(),
        jobs=1,
        history_days=SERVE_SMOKE_HISTORY_DAYS,
        stream_days=SERVE_SMOKE_STREAM_DAYS,
        max_jobs=SERVE_SMOKE_MAX_JOBS,
        source=source,
    )
    agg = aggregate_reports(reports)
    lines = [
        f"{exp_id} — streaming serving runtime "
        f"({SERVE_SMOKE_STREAM_DAYS:g} days, {len(reports)} shards, "
        f"{source} source)"
    ]
    for r in reports:
        lines.append(
            f"{r.cluster:7s} {r.events:6d} events  {r.events_per_s:9.0f} ev/s  "
            f"qssf p50/p99 {r.qssf_latency.p50_ms:.2f}/{r.qssf_latency.p99_ms:.2f} ms  "
            f"ces p50/p99 {r.ces_latency.p50_ms:.2f}/{r.ces_latency.p99_ms:.2f} ms  "
            f"wakes {r.ces_summary.get('wake_events', 0)}  "
            f"parked {r.ces_summary.get('avg_parked', 0.0):.1f}  "
            f"updates {r.refits}"
        )
    lines.append(
        f"aggregate: {agg['events']} events, {agg['events_per_s']:.0f} ev/s, "
        f"{agg['qssf_decisions']} queue orderings, {agg['ces_steps']} CES steps"
    )
    return {
        "shards": [r.as_dict() for r in reports],
        "aggregate": agg,
        "clusters": list(clusters),
        "source": source,
        "text": "\n".join(lines),
    }


def exp_serve_smoke() -> dict:
    """Serve two cluster shards end-to-end; returns telemetry + text."""
    return _serve_exhibit("serve_smoke", SERVE_SMOKE_CLUSTERS, "trace")


def exp_serve_replay() -> dict:
    """Serve a shard from a *live* simulator replay (§4.1 closed loop)."""
    return _serve_exhibit("serve_replay", SERVE_REPLAY_CLUSTERS, "replay")


def exp_serve_chaos() -> dict:
    """Kill a serving shard mid-stream; prove crash-recovery parity.

    The baseline serves one shard fault-free.  The chaos run serves the
    *same* shard under supervision with a deterministic
    :class:`~repro.framework.faults.FaultPlan` that SIGKILLs the worker
    at micro-batch 130 (between the second and third checkpoints); the
    supervisor restarts it, the new attempt resumes from the last
    checkpoint, and the exhibit asserts the recovered report's parity
    surface is byte-identical to the baseline's.  Every field in the
    payload is deterministic, so this exhibit carries a golden.
    """
    from ..framework import FaultPlan, FaultSpec, Supervision, SupervisionLog
    from ..serve import serve_clusters

    shard_kwargs = dict(
        config=smoke_serve_config(),
        history_days=SERVE_SMOKE_HISTORY_DAYS,
        stream_days=SERVE_SMOKE_STREAM_DAYS,
        max_jobs=SERVE_SMOKE_MAX_JOBS,
    )
    baseline = serve_clusters(SERVE_CHAOS_CLUSTERS, jobs=1, **shard_kwargs)[0]

    plan = FaultPlan(
        seed=7,
        faults=tuple(
            FaultSpec(key=c, kind="crash", at=SERVE_CHAOS_KILL_BATCH)
            for c in SERVE_CHAOS_CLUSTERS
        ),
    )
    log = SupervisionLog()
    recovered = serve_clusters(
        SERVE_CHAOS_CLUSTERS,
        jobs=1,
        **shard_kwargs,
        supervised=True,
        supervision=Supervision(
            timeout_s=600.0, max_retries=2,
            backoff_base_s=0.01, backoff_cap_s=0.05,
        ),
        fault_plan=plan,
        checkpoint_every=SERVE_CHAOS_CHECKPOINT_EVERY,
        log=log,
    )[0]

    parity = recovered.parity_bytes() == baseline.parity_bytes()
    if not parity:
        raise RuntimeError(
            "crash-recovery parity violated: the resumed shard's report "
            "differs from the never-failed baseline"
        )
    lines = [
        "serve_chaos — SIGKILL a serving shard mid-stream, resume from "
        "checkpoint, byte-compare against the never-failed run",
        f"shard {baseline.cluster}: {baseline.events} events, "
        f"kill at batch {SERVE_CHAOS_KILL_BATCH}, "
        f"checkpoint every {SERVE_CHAOS_CHECKPOINT_EVERY} batches",
        f"supervision: {log.retries()} retry "
        f"({', '.join(o for _, _, o in log.events)})",
        f"parity: recovered report == baseline report "
        f"(qssf digest {baseline.qssf_digest[:16]}…)",
    ]
    return {
        "parity": parity,
        "baseline": baseline.parity_dict(),
        "recovered": recovered.parity_dict(),
        "retries": recovered.retries,
        "supervision": log.as_dict(),
        "kill_batch": SERVE_CHAOS_KILL_BATCH,
        "checkpoint_every": SERVE_CHAOS_CHECKPOINT_EVERY,
        "clusters": list(SERVE_CHAOS_CLUSTERS),
        "text": "\n".join(lines),
    }
