"""Node-demand forecasting for the CES service (§4.3.2).

The forecaster learns the number of *running* (demanded) nodes H steps
ahead from calendar features, lags and rolling trends of the series —
exactly the feature families the paper lists: "repetitive patterns
(hour, day of the week, date)", "average values and standard deviations
of active nodes under different rolling window sizes", "various time
scale lags".  The paper found GBDT the most accurate model class
(~3.6% SMAPE on Earth) against ARIMA / Prophet / LSTM; those comparators
live in :mod:`repro.ml` and are benchmarked in the ablation suite.

Feature construction is incremental-friendly: every feature is trailing
(calendar terms, lags, rolling windows), so appending points never
changes existing rows.  :meth:`ForecastFeatures.build_at` materializes
just the rows for a set of indices, which is what lets
:meth:`NodeDemandForecaster.extend` append feature rows instead of
rebuilding the whole matrix, and what drops the per-step cost of the
recursive :meth:`GBDTSeriesForecaster.forecast` from a full
O(history · n_features) matrix build to two cumulative sums plus the
requested rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.gbdt import GBDTParams, GBDTRegressor
from ..stats.timeseries import rolling_mean, rolling_std

__all__ = ["ForecastFeatures", "NodeDemandForecaster", "GBDTSeriesForecaster"]


@dataclass(frozen=True)
class ForecastFeatures:
    """Feature recipe for the node-demand model.

    ``bin_seconds`` anchors the calendar encodings; lags and windows are
    in bins.
    """

    bin_seconds: int = 600
    lags: tuple[int, ...] = (1, 2, 3, 6, 18, 36, 144, 1008)
    windows: tuple[int, ...] = (6, 18, 144)

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if any(l < 1 for l in self.lags):
            raise ValueError("lags must be >= 1")

    @property
    def n_features(self) -> int:
        return 4 + len(self.lags) + 2 * len(self.windows)

    def _calendar_and_lags(
        self, s: np.ndarray, idx: np.ndarray, t0: float
    ) -> list[np.ndarray]:
        times = t0 + idx * self.bin_seconds
        hour = (times / 3_600.0) % 24
        dow = (times // 86_400.0) % 7
        cols = [
            np.sin(2 * np.pi * hour / 24.0),
            np.cos(2 * np.pi * hour / 24.0),
            dow,
            (dow >= 5).astype(float),  # weekend flag
        ]
        for lag in self.lags:
            cols.append(s[np.maximum(idx - lag, 0)])
        return cols

    def build(self, series: np.ndarray, t0: float = 0.0) -> np.ndarray:
        """Feature matrix for every index of ``series``.

        Lags shorter than the available history are clipped to index 0 —
        early rows are less informative, callers should prefer indices
        past ``max(lags)``.
        """
        s = np.asarray(series, dtype=float)
        idx = np.arange(s.size)
        cols = self._calendar_and_lags(s, idx, t0)
        for w in self.windows:
            cols.append(rolling_mean(s, w))
            cols.append(rolling_std(s, w))
        return np.column_stack(cols)

    def build_at(
        self,
        series: np.ndarray,
        indices: np.ndarray,
        t0: float = 0.0,
        cumsums: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Feature rows for ``indices`` only — O(n + len(indices)) work.

        Produces values identical to ``build(series, t0)[indices]``
        (rolling statistics are evaluated from the same cumulative sums),
        without materializing the full matrix.  This is the hot path of
        recursive forecasting and of incremental refits, where only the
        freshly appended rows are ever needed.

        ``cumsums`` optionally supplies the prefix sums ``(c1, c2)`` of
        ``series`` and ``series**2`` (each of length ``len(series)+1``,
        leading 0).  A streaming caller that maintains them by sequential
        addition gets identical floats to the internal ``np.cumsum`` —
        and drops the per-call cost from O(history) to O(rows), which is
        what makes per-bin forecasting in the serving loop flat in
        stream length.
        """
        s = np.asarray(series, dtype=float)
        idx = np.asarray(indices, dtype=np.int64)
        cols = self._calendar_and_lags(s, idx, t0)
        # Trailing-window mean/std at the requested indices, computed with
        # the exact cumulative-sum formulation rolling_mean/rolling_std use.
        if cumsums is None:
            c1 = np.cumsum(np.insert(s, 0, 0.0))
            c2 = np.cumsum(np.insert(s * s, 0, 0.0))
        else:
            c1, c2 = cumsums
            if len(c1) != s.size + 1 or len(c2) != s.size + 1:
                raise ValueError("cumsums must have length len(series) + 1")
        hi = idx + 1
        for w in self.windows:
            lo = np.maximum(hi - w, 0)
            span = hi - lo
            m = (c1[hi] - c1[lo]) / span
            m2 = (c2[hi] - c2[lo]) / span
            cols.append(m)
            cols.append(np.sqrt(np.maximum(m2 - m * m, 0.0)))
        return np.column_stack(cols)


class NodeDemandForecaster:
    """Direct H-step-ahead GBDT forecaster for the running-node series."""

    def __init__(
        self,
        horizon_bins: int = 18,  # 3 hours at 10-minute bins (§4.3.2)
        features: ForecastFeatures | None = None,
        gbdt_params: GBDTParams | None = None,
        *,
        mode: str = "fast",
    ) -> None:
        if horizon_bins < 1:
            raise ValueError("horizon_bins must be >= 1")
        self.horizon = horizon_bins
        self.features = features or ForecastFeatures()
        self.model = GBDTRegressor(
            gbdt_params
            or GBDTParams(n_estimators=150, max_depth=6, min_samples_leaf=20),
            mode=mode,
        )
        self._fitted = False
        self._train_end = 0  # exclusive end of indices already trained on

    def fit(self, series: np.ndarray, t0: float = 0.0) -> "NodeDemandForecaster":
        s = np.asarray(series, dtype=float)
        warmup = max(self.features.lags)
        if s.size <= warmup + self.horizon + 10:
            raise ValueError(
                f"series too short: need > {warmup + self.horizon + 10} bins"
            )
        X = self.features.build(s, t0)
        idx = np.arange(warmup, s.size - self.horizon)
        self.model.fit(X[idx], s[idx + self.horizon])
        self._fitted = True
        self._train_end = s.size - self.horizon
        return self

    def extend(
        self,
        series: np.ndarray,
        t0: float = 0.0,
        n_new_trees: int | None = None,
    ) -> "NodeDemandForecaster":
        """Incremental refit on a series that extends the fitted one.

        Deliberately *not* named ``update``: the incremental-protocol
        ``update(new_points)`` methods take only the appended points,
        whereas this takes the whole grown series —
        ``series`` must contain the previously fitted series as a prefix.
        Feature rows are built only for the training indices the appended
        points unlock (old rows are trailing-window features and never
        change), binned with the frozen binner, and the boosting schedule
        continues with ``n_new_trees`` additional stages
        (default: stages proportional to the share of new rows, at least
        one per update).
        """
        if not self._fitted:
            raise RuntimeError("forecaster not fitted; call fit() before extend()")
        s = np.asarray(series, dtype=float)
        new_idx = np.arange(self._train_end, s.size - self.horizon)
        if n_new_trees is None:
            if new_idx.size == 0:
                return self  # nothing unlocked: keep the model untouched
            total = s.size - self.horizon - max(self.features.lags)
            share = new_idx.size / max(total, 1)
            n_new_trees = max(1, int(round(self.model.params.n_estimators * share)))
        X_new = self.features.build_at(s, new_idx, t0)
        self.model.fit_more(X_new, s[new_idx + self.horizon], n_new_trees)
        self._train_end = max(self._train_end, s.size - self.horizon)
        return self

    def predict_at(
        self,
        series: np.ndarray,
        indices: np.ndarray,
        t0: float = 0.0,
        cumsums: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Forecast ``series[i + horizon]`` for each index i.

        Features use only values up to i (lags/rolling windows are
        trailing), so this is a valid walk-forward prediction when the
        model was fitted on earlier data.  ``cumsums`` is forwarded to
        :meth:`ForecastFeatures.build_at` for streaming callers.
        """
        if not self._fitted:
            raise RuntimeError("forecaster not fitted")
        s = np.asarray(series, dtype=float)
        X = self.features.build_at(s, np.asarray(indices), t0, cumsums=cumsums)
        return np.maximum(self.model.predict(X), 0.0)


class GBDTSeriesForecaster:
    """fit/forecast adapter so GBDT joins the §4.3.2 model comparison.

    Trains a one-step-ahead model and forecasts recursively, mirroring
    how the classical baselines (AR / Fourier / ETS / LSTM) operate in
    :func:`repro.ml.model_selection.compare_forecasters`.  Supports the
    incremental protocol: :meth:`update` appends points, builds feature
    rows for just those points, and continues the boosting schedule
    (``update_trees`` stages per call) instead of re-fitting the whole
    ensemble.
    """

    def __init__(
        self,
        features: ForecastFeatures | None = None,
        gbdt_params: GBDTParams | None = None,
        update_trees: int | None = None,
        *,
        mode: str = "fast",
    ) -> None:
        self.inner = NodeDemandForecaster(
            horizon_bins=1,
            features=features,
            gbdt_params=gbdt_params,
            mode=mode,
        )
        self.update_trees = update_trees
        self._history: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "GBDTSeriesForecaster":
        self._history = np.asarray(series, dtype=float).copy()
        self.inner.fit(self._history)
        return self

    def update(self, new_points: np.ndarray) -> "GBDTSeriesForecaster":
        """Append observations and continue boosting on the new rows."""
        if self._history is None:
            raise RuntimeError("forecaster not fitted; call fit() before update()")
        new_points = np.asarray(new_points, dtype=float)
        if new_points.ndim != 1:
            raise ValueError("new_points must be 1-D")
        if new_points.size == 0:
            return self
        self._history = np.concatenate([self._history, new_points])
        self.inner.extend(self._history, n_new_trees=self.update_trees)
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._history is None:
            raise RuntimeError("forecaster not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        n0 = self._history.size
        buf = np.concatenate([self._history, np.empty(horizon)])
        for h in range(horizon):
            nxt = self.inner.predict_at(
                buf[: n0 + h], np.array([n0 + h - 1])
            )[0]
            buf[n0 + h] = nxt
        return buf[n0:]
