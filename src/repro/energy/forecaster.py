"""Node-demand forecasting for the CES service (§4.3.2).

The forecaster learns the number of *running* (demanded) nodes H steps
ahead from calendar features, lags and rolling trends of the series —
exactly the feature families the paper lists: "repetitive patterns
(hour, day of the week, date)", "average values and standard deviations
of active nodes under different rolling window sizes", "various time
scale lags".  The paper found GBDT the most accurate model class
(~3.6% SMAPE on Earth) against ARIMA / Prophet / LSTM; those comparators
live in :mod:`repro.ml` and are benchmarked in the ablation suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.gbdt import GBDTParams, GBDTRegressor
from ..stats.timeseries import rolling_mean, rolling_std

__all__ = ["ForecastFeatures", "NodeDemandForecaster", "GBDTSeriesForecaster"]


@dataclass(frozen=True)
class ForecastFeatures:
    """Feature recipe for the node-demand model.

    ``bin_seconds`` anchors the calendar encodings; lags and windows are
    in bins.
    """

    bin_seconds: int = 600
    lags: tuple[int, ...] = (1, 2, 3, 6, 18, 36, 144, 1008)
    windows: tuple[int, ...] = (6, 18, 144)

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if any(l < 1 for l in self.lags):
            raise ValueError("lags must be >= 1")

    @property
    def n_features(self) -> int:
        return 4 + len(self.lags) + 2 * len(self.windows)

    def build(self, series: np.ndarray, t0: float = 0.0) -> np.ndarray:
        """Feature matrix for every index of ``series``.

        Lags shorter than the available history are clipped to index 0 —
        early rows are less informative, callers should prefer indices
        past ``max(lags)``.
        """
        s = np.asarray(series, dtype=float)
        n = s.size
        idx = np.arange(n)
        times = t0 + idx * self.bin_seconds
        hour = (times / 3_600.0) % 24
        dow = (times // 86_400.0) % 7
        cols = [
            np.sin(2 * np.pi * hour / 24.0),
            np.cos(2 * np.pi * hour / 24.0),
            dow,
            (dow >= 5).astype(float),  # weekend flag
        ]
        for lag in self.lags:
            cols.append(s[np.maximum(idx - lag, 0)])
        for w in self.windows:
            cols.append(rolling_mean(s, w))
            cols.append(rolling_std(s, w))
        return np.column_stack(cols)


class NodeDemandForecaster:
    """Direct H-step-ahead GBDT forecaster for the running-node series."""

    def __init__(
        self,
        horizon_bins: int = 18,  # 3 hours at 10-minute bins (§4.3.2)
        features: ForecastFeatures | None = None,
        gbdt_params: GBDTParams | None = None,
    ) -> None:
        if horizon_bins < 1:
            raise ValueError("horizon_bins must be >= 1")
        self.horizon = horizon_bins
        self.features = features or ForecastFeatures()
        self.model = GBDTRegressor(
            gbdt_params
            or GBDTParams(n_estimators=150, max_depth=6, min_samples_leaf=20)
        )
        self._fitted = False

    def fit(self, series: np.ndarray, t0: float = 0.0) -> "NodeDemandForecaster":
        s = np.asarray(series, dtype=float)
        warmup = max(self.features.lags)
        if s.size <= warmup + self.horizon + 10:
            raise ValueError(
                f"series too short: need > {warmup + self.horizon + 10} bins"
            )
        X = self.features.build(s, t0)
        idx = np.arange(warmup, s.size - self.horizon)
        self.model.fit(X[idx], s[idx + self.horizon])
        self._fitted = True
        return self

    def predict_at(
        self, series: np.ndarray, indices: np.ndarray, t0: float = 0.0
    ) -> np.ndarray:
        """Forecast ``series[i + horizon]`` for each index i.

        Features use only values up to i (lags/rolling windows are
        trailing), so this is a valid walk-forward prediction when the
        model was fitted on earlier data.
        """
        if not self._fitted:
            raise RuntimeError("forecaster not fitted")
        X = self.features.build(np.asarray(series, dtype=float), t0)
        return np.maximum(self.model.predict(X[np.asarray(indices)]), 0.0)


class GBDTSeriesForecaster:
    """fit/forecast adapter so GBDT joins the §4.3.2 model comparison.

    Trains a one-step-ahead model and forecasts recursively, mirroring
    how the classical baselines (AR / Fourier / ETS / LSTM) operate in
    :func:`repro.ml.model_selection.compare_forecasters`.
    """

    def __init__(
        self,
        features: ForecastFeatures | None = None,
        gbdt_params: GBDTParams | None = None,
    ) -> None:
        self.inner = NodeDemandForecaster(
            horizon_bins=1,
            features=features,
            gbdt_params=gbdt_params,
        )
        self._history: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "GBDTSeriesForecaster":
        self._history = np.asarray(series, dtype=float).copy()
        self.inner.fit(self._history)
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._history is None:
            raise RuntimeError("forecaster not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        buf = self._history.copy()
        out = np.empty(horizon)
        for h in range(horizon):
            nxt = self.inner.predict_at(buf, np.array([buf.size - 1]))[0]
            out[h] = nxt
            buf = np.append(buf, nxt)
        return out
