"""Batched CES/DRS evaluation engine (the fast path of Algorithm 2).

The stepwise :class:`~repro.energy.drs.DRSController` walks one
(parameterization, cluster) pair bin by bin in Python — perfect for the
serving loop, but a σ/ξ/window sweep pays the interpreter once per
config per bin.  This module is the sweep's array-backed twin, built on
the same fast/reference pattern as :mod:`repro.sim.fast`:

* every controller run in a batch becomes one *row* of
  struct-of-arrays state — per-row ``cur`` active pool, wake/woken/
  affected counters, σ/ξ/window parameter vectors;
* the demand/forecast series are packed into (bins × rows) matrices so
  each simulated bin advances **all K configurations × C clusters in a
  handful of vectorized operations**, with the wake targets and park
  floors precomputed outside the loop;
* the RecentNodesTrend lookback reads straight from the already-written
  rows of the active-history matrix (the matrix *is* the ring buffer —
  per-row windows index ``t - W`` directly).

``mode="reference"`` drives the stepwise controller per case and is the
correctness oracle: the fast path must produce **byte-identical**
:class:`~repro.energy.drs.DRSOutcome` fields for every row (asserted by
``tests/test_drs_grid_parity.py`` on real cluster windows and by the
hypothesis suite on random series).  All arithmetic is plain IEEE-754
float64 element-wise work, so equality is exact, not approximate.

Rows may have different series lengths (Helios and Philly evaluation
windows differ); shorter rows are padded with zero demand.  A padded
bin can never wake (demand 0 is never strictly above the pool) and any
parking it does happens past the row's extracted window, so dead rows
need no masking on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .drs import DRSOutcome, DRSParams, _reactive_params, run_drs

__all__ = ["DRSCase", "run_drs_batch", "run_drs_grid", "run_vanilla_drs_batch"]

_MODES = ("fast", "reference")


@dataclass(frozen=True)
class DRSCase:
    """One controller run: a demand window under one parameterization."""

    demand: np.ndarray
    predicted_future: np.ndarray
    total_nodes: int
    params: DRSParams
    arrivals_per_bin: np.ndarray | None = None


def run_drs_grid(
    demand: np.ndarray,
    predicted_future: np.ndarray,
    total_nodes: int,
    grid: Sequence[DRSParams],
    arrivals_per_bin: np.ndarray | None = None,
    mode: str = "fast",
) -> list[DRSOutcome]:
    """Sweep K parameterizations over one cluster's evaluation window.

    Returns one :class:`DRSOutcome` per entry of ``grid``, in order —
    each byte-identical to ``run_drs(demand, ..., params=grid[k])``.
    """
    return run_drs_batch(
        [
            DRSCase(demand, predicted_future, total_nodes, p, arrivals_per_bin)
            for p in grid
        ],
        mode=mode,
    )


def run_vanilla_drs_batch(
    cases: Sequence[DRSCase], mode: str = "fast"
) -> list[DRSOutcome]:
    """Reactive-baseline variant of :func:`run_drs_batch`.

    Each case is rewritten the way :func:`~repro.energy.drs.run_vanilla_drs`
    rewrites a single run: trend guards off, demand standing in for the
    forecast (``predicted_future`` is ignored).
    """
    return run_drs_batch(
        [
            DRSCase(
                c.demand,
                c.demand,
                c.total_nodes,
                _reactive_params(c.params),
                c.arrivals_per_bin,
            )
            for c in cases
        ],
        mode=mode,
    )


def run_drs_batch(cases: Sequence[DRSCase], mode: str = "fast") -> list[DRSOutcome]:
    """Run every case's Algorithm-2 walk, batched across rows.

    ``mode="fast"`` steps all rows simultaneously over struct-of-arrays
    state; ``mode="reference"`` loops the stepwise controller (the
    oracle).  Outputs are byte-identical between the two.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    cases = list(cases)

    # Validate every case up front, identically for both modes — the
    # oracle and the fast path must accept and reject the same inputs.
    demands = []
    forecasts = []
    arrival_rows: list[np.ndarray | None] = []
    for c in cases:
        d = np.asarray(c.demand, dtype=float)
        fc = np.asarray(c.predicted_future, dtype=float)
        if d.shape != fc.shape:
            raise ValueError("demand and predicted_future must align")
        if c.total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        arr = None
        if c.arrivals_per_bin is not None:
            arr = np.asarray(c.arrivals_per_bin, dtype=float)
            if arr.shape != d.shape:
                raise ValueError("arrivals_per_bin must align with demand")
        demands.append(d)
        forecasts.append(fc)
        arrival_rows.append(arr)

    if mode == "reference":
        return [
            run_drs(
                demands[r],
                forecasts[r],
                c.total_nodes,
                c.params,
                arrivals_per_bin=arrival_rows[r],
            )
            for r, c in enumerate(cases)
        ]
    if not cases:
        return []

    # -- pack rows into struct-of-arrays state -------------------------
    R = len(cases)
    lengths = np.array([d.size for d in demands], dtype=np.int64)
    n_max = int(lengths.max())

    # (bins x rows) layout: each step reads one contiguous row per matrix.
    D = np.zeros((n_max, R))
    F = np.zeros((n_max, R))
    arrivals = np.zeros((n_max, R), dtype=np.int64)
    for r in range(R):
        n = demands[r].size
        D[:n, r] = demands[r]
        F[:n, r] = forecasts[r]
        if arrival_rows[r] is not None:
            # the controller charges int(arrivals) per wake: truncate once
            arrivals[:n, r] = arrival_rows[r].astype(np.int64)

    sigma = np.array([c.params.buffer_nodes for c in cases], dtype=float)
    window = np.array([c.params.recent_window_bins for c in cases], dtype=np.int64)
    xi_h = np.array([c.params.recent_threshold for c in cases], dtype=float)
    xi_p = np.array([c.params.future_threshold for c in cases], dtype=float)
    total = np.array([c.total_nodes for c in cases], dtype=float)

    # Hoisted per-bin targets: NodesWakeUp restore level and the
    # PeriodicCheck park floor (already capped at the node count) —
    # identical expressions to DRSController.step, evaluated in bulk.
    wake_target = np.minimum(total, D + sigma)
    floor = np.maximum(D, F) + sigma
    park_level = np.minimum(total, floor)

    one_window = int(window[0]) if (window == window[0]).all() else None

    cur = total.copy()
    active = np.empty((n_max, R))
    wake_events = np.zeros(R, dtype=np.int64)
    nodes_woken = np.zeros(R, dtype=np.int64)
    affected = np.zeros(R, dtype=np.int64)
    rows = np.arange(R)

    # -- the batched walk ----------------------------------------------
    for t in range(n_max):
        d = D[t]
        wake = d > cur
        # RecentNodesTrend: the active level one window ago (the current
        # pool before any history exists), read from the rows already
        # written this walk.
        if one_window is not None:
            past = active[t - one_window] if t >= one_window else cur
        else:
            lookback = t - window
            past = np.where(
                lookback >= 0, active[np.maximum(lookback, 0), rows], cur
            )
        park = ~wake & (past - d >= xi_h) & (cur - floor[t] >= xi_p)
        if wake.any():
            tgt = wake_target[t]
            wake_events += wake
            nodes_woken += np.where(wake, np.rint(tgt - cur), 0.0).astype(
                np.int64
            )
            affected += np.where(wake, arrivals[t], 0)
            cur = np.where(
                wake,
                tgt,
                np.where(park, np.minimum(cur, park_level[t]), cur),
            )
        else:
            cur = np.where(park, np.minimum(cur, park_level[t]), cur)
        active[t] = cur

    # -- unpack per-row outcomes ---------------------------------------
    outcomes = []
    for r, c in enumerate(cases):
        n = int(lengths[r])
        outcomes.append(
            DRSOutcome(
                active=active[:n, r].copy(),
                demand=demands[r],
                total_nodes=c.total_nodes,
                wake_events=int(wake_events[r]),
                nodes_woken=int(nodes_woken[r]),
                affected_jobs=int(affected[r]),
                bins_per_day=86_400.0 / c.params.bin_seconds,
            )
        )
    return outcomes
