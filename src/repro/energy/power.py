"""Datacenter power model (§4.3.3).

Constants follow the paper's estimate: an idle DGX-1 server draws ~800 W
(read from the BMC PSU inputs), and cooling infrastructure typically
consumes twice the server energy [23], so every parked idle node saves
3× its idle draw.  Waking a node costs a reboot period at full power.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerModel"]

_HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class PowerModel:
    """Energy accounting for Dynamic Resource Sleep."""

    idle_node_watts: float = 800.0
    cooling_multiplier: float = 3.0  # servers + 2x cooling
    reboot_seconds: float = 300.0
    reboot_watts: float = 1600.0  # full-tilt draw during boot

    def __post_init__(self) -> None:
        if self.idle_node_watts <= 0:
            raise ValueError("idle_node_watts must be positive")
        if self.cooling_multiplier < 1.0:
            raise ValueError("cooling_multiplier must be >= 1")

    def parked_power_watts(self, parked_nodes: float) -> float:
        """Instantaneous facility power avoided by parking nodes."""
        return parked_nodes * self.idle_node_watts * self.cooling_multiplier

    def saved_kwh(self, avg_parked_nodes: float, hours: float) -> float:
        """Energy saved by an average of ``avg_parked_nodes`` over ``hours``."""
        if hours < 0:
            raise ValueError("hours must be >= 0")
        return self.parked_power_watts(avg_parked_nodes) * hours / 1_000.0

    def annual_saved_kwh(self, avg_parked_nodes: float) -> float:
        """Annualized saving (the paper reports >1.65M kWh over 4 clusters)."""
        return self.saved_kwh(avg_parked_nodes, _HOURS_PER_YEAR)

    def wake_overhead_kwh(self, nodes_woken: float) -> float:
        """Boot-energy cost of waking ``nodes_woken`` nodes (cooling incl.)."""
        return (
            nodes_woken
            * self.reboot_watts
            * self.cooling_multiplier
            * self.reboot_seconds
            / 3_600.0
            / 1_000.0
        )
