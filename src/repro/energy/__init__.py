"""Cluster Energy Saving service (the paper's second case study)."""

from .ces import CESConfig, CESForecast, CESReport, CESService
from .drs import (
    DRSController,
    DRSOutcome,
    DRSParams,
    run_always_on,
    run_drs,
    run_vanilla_drs,
)
from .fast_drs import DRSCase, run_drs_batch, run_drs_grid, run_vanilla_drs_batch
from .forecaster import ForecastFeatures, GBDTSeriesForecaster, NodeDemandForecaster
from .power import PowerModel

__all__ = [
    "CESConfig",
    "CESForecast",
    "CESReport",
    "CESService",
    "DRSCase",
    "DRSController",
    "DRSOutcome",
    "DRSParams",
    "ForecastFeatures",
    "GBDTSeriesForecaster",
    "NodeDemandForecaster",
    "PowerModel",
    "run_always_on",
    "run_drs",
    "run_drs_batch",
    "run_drs_grid",
    "run_vanilla_drs",
    "run_vanilla_drs_batch",
]
