"""Cluster Energy Saving service (the paper's second case study)."""

from .ces import CESConfig, CESReport, CESService
from .drs import (
    DRSController,
    DRSOutcome,
    DRSParams,
    run_always_on,
    run_drs,
    run_vanilla_drs,
)
from .forecaster import ForecastFeatures, GBDTSeriesForecaster, NodeDemandForecaster
from .power import PowerModel

__all__ = [
    "CESConfig",
    "CESReport",
    "CESService",
    "DRSController",
    "DRSOutcome",
    "DRSParams",
    "ForecastFeatures",
    "GBDTSeriesForecaster",
    "NodeDemandForecaster",
    "PowerModel",
    "run_always_on",
    "run_drs",
    "run_vanilla_drs",
]
