"""The Cluster Energy Saving service end-to-end (§4.3).

Pipeline: replay telemetry → running-nodes series (10-minute bins) →
train the GBDT node-demand forecaster on the history window → run
Algorithm-2 DRS over the evaluation window → Table-5 metrics and the
Fig-14/15 curves (Total / Running / Active / Prediction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.engine import ReplayResult
from ..sim.telemetry import running_nodes_series
from ..stats.timeseries import TimeGrid
from .drs import DRSOutcome, DRSParams, run_always_on, run_drs, run_vanilla_drs
from .forecaster import NodeDemandForecaster
from .power import PowerModel

__all__ = ["CESConfig", "CESReport", "CESService"]


@dataclass(frozen=True)
class CESConfig:
    """CES evaluation protocol knobs.

    ``drs=None`` derives size-proportional Algorithm-2 parameters from
    the cluster's node count (:meth:`DRSParams.scaled`).
    """

    bin_seconds: int = 600
    horizon_bins: int = 18          # 3-hour lookahead (§4.3.2)
    drs: DRSParams | None = None
    power: PowerModel = field(default_factory=PowerModel)

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")


@dataclass
class CESReport:
    """Everything the Table-5 / Fig-14 exhibits need for one cluster."""

    cluster: str
    grid: TimeGrid
    eval_start_bin: int
    demand: np.ndarray          # running nodes, full window
    prediction: np.ndarray      # forecast of demand (eval window, aligned)
    ces: DRSOutcome
    vanilla: DRSOutcome
    always_on: DRSOutcome
    total_nodes: int
    smape_forecast: float
    saved_kwh_eval: float
    annual_saved_kwh: float

    def summary(self) -> dict:
        """Table-5 row for this cluster."""
        return {
            "cluster": self.cluster,
            "avg_drs_nodes": self.ces.avg_parked_nodes,
            "daily_wake_ups": self.ces.daily_wake_ups,
            "avg_woken_per_wake": self.ces.avg_woken_per_wake,
            "util_original": self.ces.utilization_original,
            "util_ces": self.ces.utilization_ces,
            "vanilla_daily_wake_ups": self.vanilla.daily_wake_ups,
            "affected_jobs": self.ces.affected_jobs,
            "vanilla_affected_jobs": self.vanilla.affected_jobs,
            "forecast_smape": self.smape_forecast,
            "annual_saved_kwh": self.annual_saved_kwh,
        }


class CESService:
    """Train-then-control CES evaluation on one replayed cluster."""

    def __init__(self, config: CESConfig | None = None) -> None:
        self.config = config or CESConfig()

    def evaluate(
        self,
        result: ReplayResult,
        eval_start: float,
        eval_end: float,
        cluster: str = "",
        t0: float = 0.0,
    ) -> CESReport:
        """Run the full CES protocol.

        ``[t0, eval_start)`` trains the forecaster; ``[eval_start,
        eval_end)`` is controlled by Algorithm 2 (the paper trains on
        everything before 1 September and evaluates 3 weeks).
        """
        cfg = self.config
        if not t0 < eval_start < eval_end:
            raise ValueError("need t0 < eval_start < eval_end")
        grid = TimeGrid.covering(t0, eval_end, cfg.bin_seconds)
        demand = running_nodes_series(result, grid)
        split = int((eval_start - t0) / cfg.bin_seconds)
        if split < max(NodeDemandForecaster().features.lags) + cfg.horizon_bins + 10:
            raise ValueError("training window too short for the forecaster")

        forecaster = NodeDemandForecaster(horizon_bins=cfg.horizon_bins).fit(
            demand[:split], t0=t0
        )
        eval_bins = np.arange(split, grid.bins)
        # ŷ[t] estimates demand at t + H using only data through t; the
        # control loop compares it with current demand (FutureNodesTrend).
        source_bins = np.maximum(eval_bins - cfg.horizon_bins, 0)
        prediction = forecaster.predict_at(demand, source_bins, t0=t0)

        eval_demand = demand[split:]
        arrivals = self._arrivals_per_bin(result, grid)[split:]
        future_fc = forecaster.predict_at(demand, eval_bins, t0=t0)
        drs_params = cfg.drs or DRSParams.scaled(result.num_nodes, cfg.bin_seconds)
        ces = run_drs(
            eval_demand,
            future_fc,
            total_nodes=result.num_nodes,
            params=drs_params,
            arrivals_per_bin=arrivals,
        )
        vanilla = run_vanilla_drs(
            eval_demand, result.num_nodes, drs_params, arrivals_per_bin=arrivals
        )
        always = run_always_on(eval_demand, result.num_nodes, drs_params)

        from ..stats.metrics import smape

        hours_eval = (eval_end - eval_start) / 3_600.0
        saved = cfg.power.saved_kwh(ces.avg_parked_nodes, hours_eval)
        saved -= cfg.power.wake_overhead_kwh(ces.nodes_woken)
        return CESReport(
            cluster=cluster,
            grid=grid,
            eval_start_bin=split,
            demand=demand,
            prediction=prediction,
            ces=ces,
            vanilla=vanilla,
            always_on=always,
            total_nodes=result.num_nodes,
            smape_forecast=smape(eval_demand + 1.0, prediction + 1.0),
            saved_kwh_eval=saved,
            annual_saved_kwh=cfg.power.annual_saved_kwh(ces.avg_parked_nodes),
        )

    @staticmethod
    def _arrivals_per_bin(result: ReplayResult, grid: TimeGrid) -> np.ndarray:
        submit = result.trace["submit_time"]
        counts = np.zeros(grid.bins)
        idx = grid.index_of(submit)
        np.add.at(counts, idx, 1.0)
        return counts
