"""The Cluster Energy Saving service end-to-end (§4.3).

Pipeline: replay telemetry → running-nodes series (10-minute bins) →
train the GBDT node-demand forecaster on the history window → run
Algorithm-2 DRS over the evaluation window → Table-5 metrics and the
Fig-14/15 curves (Total / Running / Active / Prediction).

The protocol is split at its cost cliff:

* :meth:`CESService.forecast` is the expensive stage — one forecaster
  fit per cluster plus a vectorized all-bins prediction — packaged as a
  reusable :class:`CESForecast`;
* :meth:`CESService.control` is the cheap stage — Algorithm-2 walks
  over the evaluation window (batched through
  :mod:`repro.energy.fast_drs`) plus the energy accounting.

Table 5, Figs 14-15, the σ ablation and the σ/ξ/window sweep all share
one :class:`CESForecast` per cluster and re-run only the control stage,
so sweeping DRS knobs costs milliseconds, not refits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ml.gbdt import GBDTParams
from ..sim.engine import ReplayResult
from ..sim.telemetry import running_nodes_series
from ..stats.timeseries import TimeGrid
from .drs import DRSOutcome, DRSParams, _reactive_params, run_always_on
from .fast_drs import DRSCase, run_drs_batch
from .forecaster import ForecastFeatures, NodeDemandForecaster
from .power import PowerModel

__all__ = ["CESConfig", "CESForecast", "CESReport", "CESService"]


@dataclass(frozen=True)
class CESConfig:
    """CES evaluation protocol knobs.

    ``drs=None`` derives size-proportional Algorithm-2 parameters from
    the cluster's node count (:meth:`DRSParams.scaled`);
    ``gbdt_params``/``features`` override the node-demand forecaster's
    model size and feature recipe (``None`` keeps the defaults).
    """

    bin_seconds: int = 600
    horizon_bins: int = 18          # 3-hour lookahead (§4.3.2)
    drs: DRSParams | None = None
    power: PowerModel = field(default_factory=PowerModel)
    gbdt_params: GBDTParams | None = None
    features: ForecastFeatures | None = None

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")


@dataclass
class CESForecast:
    """The fitted half of the CES protocol for one replayed cluster.

    Everything downstream DRS stages need: the binned demand series,
    the walk-forward prediction aligned for display (``prediction[i]``
    estimates ``eval_demand[i]``), the control-loop forecast input
    (``future_forecast[i]`` estimates demand H bins past eval bin i),
    and per-bin job arrivals.  Deliberately model-free — it pickles
    small and warms across processes as a precursor.
    """

    cluster: str
    grid: TimeGrid
    eval_start_bin: int
    eval_start: float
    eval_end: float
    demand: np.ndarray          # running nodes, full window
    prediction: np.ndarray      # forecast of demand (eval window, aligned)
    future_forecast: np.ndarray  # forecast of demand at t + H (DRS input)
    arrivals: np.ndarray        # job arrivals per eval-window bin
    total_nodes: int
    smape_forecast: float

    @property
    def eval_demand(self) -> np.ndarray:
        """Demand over the controlled window only."""
        return self.demand[self.eval_start_bin:]

    @property
    def eval_hours(self) -> float:
        return (self.eval_end - self.eval_start) / 3_600.0


@dataclass
class CESReport:
    """Everything the Table-5 / Fig-14 exhibits need for one cluster."""

    cluster: str
    grid: TimeGrid
    eval_start_bin: int
    demand: np.ndarray          # running nodes, full window
    prediction: np.ndarray      # forecast of demand (eval window, aligned)
    ces: DRSOutcome
    vanilla: DRSOutcome
    always_on: DRSOutcome
    total_nodes: int
    smape_forecast: float
    saved_kwh_eval: float
    annual_saved_kwh: float

    def summary(self) -> dict:
        """Table-5 row for this cluster."""
        return {
            "cluster": self.cluster,
            "avg_drs_nodes": self.ces.avg_parked_nodes,
            "daily_wake_ups": self.ces.daily_wake_ups,
            "avg_woken_per_wake": self.ces.avg_woken_per_wake,
            "util_original": self.ces.utilization_original,
            "util_ces": self.ces.utilization_ces,
            "vanilla_daily_wake_ups": self.vanilla.daily_wake_ups,
            "affected_jobs": self.ces.affected_jobs,
            "vanilla_affected_jobs": self.vanilla.affected_jobs,
            "forecast_smape": self.smape_forecast,
            "annual_saved_kwh": self.annual_saved_kwh,
        }


class CESService:
    """Train-then-control CES evaluation on one replayed cluster."""

    def __init__(self, config: CESConfig | None = None) -> None:
        self.config = config or CESConfig()

    def forecast(
        self,
        result: ReplayResult,
        eval_start: float,
        eval_end: float,
        cluster: str = "",
        t0: float = 0.0,
    ) -> CESForecast:
        """Fit the demand forecaster and predict the evaluation window.

        ``[t0, eval_start)`` trains the forecaster; predictions cover
        ``[eval_start, eval_end)`` (the paper trains on everything
        before 1 September and evaluates 3 weeks).  This is the
        expensive stage — one GBDT fit plus two vectorized all-bins
        predictions — and its output is everything any DRS
        parameterization needs, so sweeps run it exactly once.
        """
        cfg = self.config
        if not t0 < eval_start < eval_end:
            raise ValueError("need t0 < eval_start < eval_end")
        grid = TimeGrid.covering(t0, eval_end, cfg.bin_seconds)
        demand = running_nodes_series(result, grid)
        split = int((eval_start - t0) / cfg.bin_seconds)
        forecaster = NodeDemandForecaster(
            horizon_bins=cfg.horizon_bins,
            features=cfg.features,
            gbdt_params=cfg.gbdt_params,
        )
        if split < max(forecaster.features.lags) + cfg.horizon_bins + 10:
            raise ValueError("training window too short for the forecaster")

        forecaster.fit(demand[:split], t0=t0)
        eval_bins = np.arange(split, grid.bins)
        # ŷ[t] estimates demand at t + H using only data through t; the
        # control loop compares it with current demand (FutureNodesTrend).
        source_bins = np.maximum(eval_bins - cfg.horizon_bins, 0)
        prediction = forecaster.predict_at(demand, source_bins, t0=t0)
        future_fc = forecaster.predict_at(demand, eval_bins, t0=t0)

        from ..stats.metrics import smape

        return CESForecast(
            cluster=cluster,
            grid=grid,
            eval_start_bin=split,
            eval_start=eval_start,
            eval_end=eval_end,
            demand=demand,
            prediction=prediction,
            future_forecast=future_fc,
            arrivals=self._arrivals_per_bin(result, grid)[split:],
            total_nodes=result.num_nodes,
            smape_forecast=smape(demand[split:] + 1.0, prediction + 1.0),
        )

    def control(
        self,
        forecast: CESForecast,
        drs_params: DRSParams | None = None,
    ) -> CESReport:
        """Run Algorithm 2 (+ baselines) over a fitted evaluation window.

        The cheap stage: predictive CES and the reactive baseline run as
        one two-row batch through the fast engine (byte-identical to the
        stepwise controller), then the energy model prices the outcome.
        ``drs_params`` overrides the configured knobs — σ/ξ/window
        sweeps call this repeatedly against one shared ``forecast``.
        """
        cfg = self.config
        params = drs_params or cfg.drs or DRSParams.scaled(
            forecast.total_nodes, cfg.bin_seconds
        )
        eval_demand = forecast.eval_demand
        predictive = DRSCase(
            demand=eval_demand,
            predicted_future=forecast.future_forecast,
            total_nodes=forecast.total_nodes,
            params=params,
            arrivals_per_bin=forecast.arrivals,
        )
        # the reactive baseline row: guards off, demand as its own
        # forecast (the run_vanilla_drs rewrite, batched alongside)
        reactive = DRSCase(
            demand=eval_demand,
            predicted_future=eval_demand,
            total_nodes=forecast.total_nodes,
            params=_reactive_params(params),
            arrivals_per_bin=forecast.arrivals,
        )
        ces, vanilla = run_drs_batch([predictive, reactive])
        always = run_always_on(eval_demand, forecast.total_nodes, params)

        saved = cfg.power.saved_kwh(ces.avg_parked_nodes, forecast.eval_hours)
        saved -= cfg.power.wake_overhead_kwh(ces.nodes_woken)
        return CESReport(
            cluster=forecast.cluster,
            grid=forecast.grid,
            eval_start_bin=forecast.eval_start_bin,
            demand=forecast.demand,
            prediction=forecast.prediction,
            ces=ces,
            vanilla=vanilla,
            always_on=always,
            total_nodes=forecast.total_nodes,
            smape_forecast=forecast.smape_forecast,
            saved_kwh_eval=saved,
            annual_saved_kwh=cfg.power.annual_saved_kwh(ces.avg_parked_nodes),
        )

    def evaluate(
        self,
        result: ReplayResult,
        eval_start: float,
        eval_end: float,
        cluster: str = "",
        t0: float = 0.0,
    ) -> CESReport:
        """Run the full CES protocol (forecast stage, then control)."""
        return self.control(self.forecast(result, eval_start, eval_end, cluster, t0))

    @staticmethod
    def _arrivals_per_bin(result: ReplayResult, grid: TimeGrid) -> np.ndarray:
        submit = result.trace["submit_time"]
        counts = np.zeros(grid.bins)
        idx = grid.index_of(submit)
        np.add.at(counts, idx, 1.0)
        return counts
