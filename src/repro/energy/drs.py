"""Dynamic Resource Sleep control (Algorithm 2).

The controller walks the demanded-nodes series (10-minute bins from
replay telemetry) and maintains the *active* node count:

* **JobArrivalCheck** — whenever demand exceeds the active pool, wake
  ``gap + σ`` nodes immediately (σ buffers unexpected arrivals).  Jobs
  arriving in that bin are "affected" (they wait one reboot).
* **PeriodicCheck** — every bin, park down to ``max(demand, predicted
  future demand) + σ`` when both trend guards pass: the pool active a
  window ago exceeds current demand by at least ``ξ_H``
  (RecentNodesTrend — "the reduced number of active nodes during a fixed
  past period"), and the active pool exceeds the predicted future demand
  by at least ``ξ_P`` beyond the buffer (FutureNodesTrend).  The future
  guard is what "circumvents incorrect DRS operations caused by
  prediction error" (§4.3.2): if the model predicts a rebound, nothing
  is parked.

The vanilla (reactive) DRS baseline tracks demand directly with no
prediction, incurring far more wake-ups (§4.3.3 reports 34.1/day vs
1.1–2.6/day for CES).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "DRSController",
    "DRSParams",
    "DRSOutcome",
    "run_drs",
    "run_vanilla_drs",
    "run_always_on",
]


@dataclass(frozen=True)
class DRSParams:
    """Algorithm-2 knobs.

    Thresholds and buffer are in *nodes*; use :meth:`scaled` to derive
    them from the cluster size (the paper's ξ≈1 node and σ of a few
    nodes are calibrated to 130–550-node clusters — on a scaled-down
    replica the same absolute values would be far stricter).
    """

    buffer_nodes: int = 2           # σ
    recent_window_bins: int = 6     # 1 hour of 10-minute bins
    recent_threshold: float = 1.0   # ξ_H (nodes)
    future_threshold: float = 1.0   # ξ_P (nodes)
    bin_seconds: int = 600

    def __post_init__(self) -> None:
        if self.buffer_nodes < 0:
            raise ValueError("buffer_nodes must be >= 0")
        if self.recent_window_bins < 1:
            raise ValueError("recent_window_bins must be >= 1")

    @classmethod
    def scaled(cls, total_nodes: int, bin_seconds: int = 600) -> "DRSParams":
        """Size-proportional knobs: σ ≈ 4% of nodes, ξ ≈ 0.6%."""
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        return cls(
            buffer_nodes=max(1, int(round(0.04 * total_nodes))),
            recent_window_bins=max(1, int(round(3_600 / bin_seconds))),
            recent_threshold=max(0.5, 0.006 * total_nodes),
            future_threshold=max(0.5, 0.006 * total_nodes),
            bin_seconds=bin_seconds,
        )


@dataclass
class DRSOutcome:
    """Result of a DRS run over an evaluation window."""

    active: np.ndarray          # active nodes per bin
    demand: np.ndarray          # demanded (running) nodes per bin
    total_nodes: int
    wake_events: int
    nodes_woken: int
    affected_jobs: int
    bins_per_day: float

    @property
    def avg_parked_nodes(self) -> float:
        """Table 5 "Average # of DRS nodes"."""
        return float(np.mean(self.total_nodes - self.active))

    @property
    def daily_wake_ups(self) -> float:
        days = len(self.active) / self.bins_per_day
        return self.wake_events / days if days > 0 else 0.0

    @property
    def avg_woken_per_wake(self) -> float:
        return self.nodes_woken / self.wake_events if self.wake_events else 0.0

    @property
    def utilization_original(self) -> float:
        """Node utilization with every node powered (demand / total)."""
        return float(np.mean(self.demand / self.total_nodes))

    @property
    def utilization_ces(self) -> float:
        """Node utilization against the active pool (demand / active)."""
        return float(np.mean(self.demand / np.maximum(self.active, 1e-9)))


def _wake_target(demand: float, sigma: int, total: int) -> float:
    """NodesWakeUp: restore the pool to ``demand + σ`` nodes (Alg 2 line 3,
    capped at the physical node count)."""
    return min(total, demand + sigma)


def _reactive_params(params: DRSParams) -> DRSParams:
    """Vanilla-DRS knobs: both trend guards disabled.

    With ``-inf`` thresholds the PeriodicCheck always parks down to the
    floor, and feeding the demand itself as the "forecast" makes that
    floor ``demand + σ`` — exactly the reactive baseline.  This is how
    :func:`run_vanilla_drs` shares the controller's wake/park arithmetic
    instead of duplicating it.
    """
    return replace(
        params,
        recent_threshold=float("-inf"),
        future_threshold=float("-inf"),
    )


class DRSController:
    """Stepwise Algorithm-2 controller: one :meth:`step` per bin.

    This is the *online* form of :func:`run_drs`: the batch function
    drives a controller bin by bin, so a serving loop stepping the same
    controller over a replayed stream produces byte-identical decisions
    to the batch replay — the parity the framework tests assert.

    State between steps is the current active pool, the trailing
    ``recent_window_bins`` of active levels (RecentNodesTrend), and the
    wake/affected counters.
    """

    def __init__(self, total_nodes: int, params: DRSParams | None = None) -> None:
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        self.total_nodes = total_nodes
        self.params = params or DRSParams()
        self.cur = float(total_nodes)
        self.wake_events = 0
        self.nodes_woken = 0
        self.affected_jobs = 0
        self._active: list[float] = []
        self._demand: list[float] = []

    @property
    def steps(self) -> int:
        return len(self._active)

    def step(self, demand: float, predicted_future: float, arrivals: float = 0.0) -> float:
        """Advance one bin; returns the active pool after the decision.

        ``predicted_future`` estimates demand ``horizon`` ahead of this
        bin (FutureNodesTrend); ``arrivals`` counts jobs submitted in the
        bin, charged as affected when the bin forces a wake-up.
        """
        p = self.params
        t = len(self._active)
        cur = self.cur
        # JobArrivalCheck: demand beyond the active pool forces a wake.
        if demand > cur:
            new = _wake_target(demand, p.buffer_nodes, self.total_nodes)
            self.wake_events += 1
            self.nodes_woken += int(round(new - cur))
            self.affected_jobs += int(arrivals)
            cur = new
        # PeriodicCheck: park only when past AND future trends agree.
        else:
            past_active = (
                self._active[t - p.recent_window_bins]
                if t >= p.recent_window_bins
                else cur
            )
            recent_trend = past_active - demand
            floor = max(demand, predicted_future) + p.buffer_nodes
            future_trend = cur - floor
            if recent_trend >= p.recent_threshold and future_trend >= p.future_threshold:
                cur = min(cur, min(self.total_nodes, floor))
        self.cur = cur
        self._active.append(cur)
        self._demand.append(float(demand))
        return cur

    def outcome(self) -> DRSOutcome:
        """The window walked so far, packaged like :func:`run_drs`."""
        return DRSOutcome(
            active=np.asarray(self._active, dtype=float),
            demand=np.asarray(self._demand, dtype=float),
            total_nodes=self.total_nodes,
            wake_events=self.wake_events,
            nodes_woken=self.nodes_woken,
            affected_jobs=self.affected_jobs,
            bins_per_day=86_400.0 / self.params.bin_seconds,
        )


def run_drs(
    demand: np.ndarray,
    predicted_future: np.ndarray,
    total_nodes: int,
    params: DRSParams | None = None,
    arrivals_per_bin: np.ndarray | None = None,
) -> DRSOutcome:
    """Run predictive CES-DRS (Algorithm 2) over an evaluation window.

    Drives a :class:`DRSController` bin by bin — the batch and the
    streamed (serving-loop) evaluations share one decision code path.

    Parameters
    ----------
    demand:
        Demanded (running) nodes per bin.
    predicted_future:
        Forecast of demand ``future_window`` ahead, aligned per bin
        (``predicted_future[t]`` estimates demand at t + H).
    total_nodes:
        Physical node count.
    arrivals_per_bin:
        Job arrivals per bin; used to count affected jobs on wake-ups.
    """
    p = params or DRSParams()
    d = np.asarray(demand, dtype=float)
    fc = np.asarray(predicted_future, dtype=float)
    if d.shape != fc.shape:
        raise ValueError("demand and predicted_future must align")
    arr = (
        np.zeros_like(d)
        if arrivals_per_bin is None
        else np.asarray(arrivals_per_bin, dtype=float)
    )
    controller = DRSController(total_nodes, p)
    for t in range(d.size):
        controller.step(d[t], fc[t], arr[t])
    return controller.outcome()


def run_vanilla_drs(
    demand: np.ndarray,
    total_nodes: int,
    params: DRSParams | None = None,
    arrivals_per_bin: np.ndarray | None = None,
) -> DRSOutcome:
    """Reactive DRS baseline: track demand with no future knowledge.

    Runs the same :class:`DRSController` walk as :func:`run_drs` under
    :func:`_reactive_params` (guards off, demand as its own forecast),
    so the baseline can never drift from Algorithm 2's wake/park
    arithmetic — and the batched engine in :mod:`repro.energy.fast_drs`
    accelerates it for free.
    """
    d = np.asarray(demand, dtype=float)
    return run_drs(
        d,
        d,
        total_nodes,
        _reactive_params(params or DRSParams()),
        arrivals_per_bin=arrivals_per_bin,
    )


def run_always_on(
    demand: np.ndarray, total_nodes: int, params: DRSParams | None = None
) -> DRSOutcome:
    """No-DRS baseline: every node stays powered (the "Original" row)."""
    p = params or DRSParams()
    d = np.asarray(demand, dtype=float)
    return DRSOutcome(
        active=np.full(d.size, float(total_nodes)),
        demand=d,
        total_nodes=total_nodes,
        wake_events=0,
        nodes_woken=0,
        affected_jobs=0,
        bins_per_day=86_400.0 / p.bin_seconds,
    )
