"""Mini columnar dataframe substrate (numpy-backed, no pandas)."""

from .io import (
    from_csv_string,
    read_csv,
    table_from_bytes,
    table_to_bytes,
    to_csv_string,
    write_csv,
)
from .ops import (
    apply_per_group,
    group_reduce,
    groupby_agg,
    quantiles,
    top_k_share,
    value_counts,
    weighted_share,
)
from .table import Table

__all__ = [
    "Table",
    "group_reduce",
    "groupby_agg",
    "value_counts",
    "weighted_share",
    "quantiles",
    "top_k_share",
    "apply_per_group",
    "read_csv",
    "write_csv",
    "to_csv_string",
    "from_csv_string",
    "table_to_bytes",
    "table_from_bytes",
]
