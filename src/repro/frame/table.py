"""A minimal columnar table backed by numpy arrays.

The offline environment has no pandas, so this module provides the small
slice of dataframe functionality the rest of the library needs: named,
equal-length numpy columns with filtering, sorting, selection, and row
iteration.  All operations return *new* :class:`Table` objects (columns may
share memory with the parent when the operation is a pure view, e.g.
``select``).

Design notes
------------
* Columns are 1-D ``numpy.ndarray``; string columns use numpy unicode dtypes.
* Boolean-mask filtering, integer take, and slicing are vectorized.
* Aggregation / groupby live in :mod:`repro.frame.ops` to keep this module
  focused on the container itself.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any

import numpy as np

__all__ = ["Table"]


def _as_column(values: Any) -> np.ndarray:
    """Coerce ``values`` into a 1-D numpy array suitable for a column."""
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    return arr


class Table:
    """An immutable-ish ordered mapping of column name -> numpy array.

    Parameters
    ----------
    columns:
        Mapping of name to array-like.  All columns must share one length.

    Examples
    --------
    >>> t = Table({"a": [1, 2, 3], "b": [1.0, 4.0, 9.0]})
    >>> len(t)
    3
    >>> t.filter(t["a"] > 1)["b"].tolist()
    [4.0, 9.0]
    """

    __slots__ = ("_cols",)

    def __init__(self, columns: Mapping[str, Any] | None = None) -> None:
        cols: dict[str, np.ndarray] = {}
        n: int | None = None
        for name, values in (columns or {}).items():
            arr = _as_column(values)
            if n is None:
                n = arr.shape[0]
            elif arr.shape[0] != n:
                raise ValueError(
                    f"column {name!r} has length {arr.shape[0]}, expected {n}"
                )
            cols[str(name)] = arr
        self._cols = cols

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._cols)

    @property
    def num_rows(self) -> int:
        if not self._cols:
            return 0
        return next(iter(self._cols.values())).shape[0]

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: object) -> bool:
        return name in self._cols

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._cols[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self._cols)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._cols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.columns != other.columns:
            return False
        return all(np.array_equal(self[c], other[c]) for c in self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{k}:{v.dtype}" for k, v in self._cols.items())
        return f"Table({self.num_rows} rows; {cols})"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls, rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from a sequence of dict rows."""
        if not rows:
            return cls({c: np.empty(0) for c in (columns or [])})
        names = list(columns) if columns is not None else list(rows[0].keys())
        data = {name: np.asarray([row[name] for row in rows]) for name in names}
        return cls(data)

    def copy(self) -> "Table":
        """Deep copy (columns are copied)."""
        return Table({k: v.copy() for k, v in self._cols.items()})

    def with_column(self, name: str, values: Any) -> "Table":
        """Return a new table with ``name`` added or replaced."""
        arr = _as_column(values)
        if self._cols and arr.shape[0] != self.num_rows:
            raise ValueError(
                f"new column length {arr.shape[0]} != table length {self.num_rows}"
            )
        cols = dict(self._cols)
        cols[name] = arr
        return Table(cols)

    def without_columns(self, *names: str) -> "Table":
        """Return a new table dropping the given columns (missing ok)."""
        return Table({k: v for k, v in self._cols.items() if k not in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a new table with columns renamed per ``mapping``."""
        return Table({mapping.get(k, k): v for k, v in self._cols.items()})

    # ------------------------------------------------------------------
    # row-wise operations
    # ------------------------------------------------------------------
    def select(self, *names: str) -> "Table":
        """Project onto a subset of columns (views, no copy)."""
        return Table({n: self[n] for n in names})

    def filter(self, mask: np.ndarray) -> "Table":
        """Keep rows where ``mask`` is truthy."""
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise TypeError(f"filter mask must be boolean, got {mask.dtype}")
        if mask.shape[0] != self.num_rows:
            raise ValueError(
                f"mask length {mask.shape[0]} != table length {self.num_rows}"
            )
        return Table({k: v[mask] for k, v in self._cols.items()})

    def take(self, indices: np.ndarray) -> "Table":
        """Select rows by integer index array (with fancy-index semantics)."""
        idx = np.asarray(indices)
        return Table({k: v[idx] for k, v in self._cols.items()})

    def slice(self, start: int = 0, stop: int | None = None) -> "Table":
        """Row slice ``[start:stop]`` (views, no copy)."""
        return Table({k: v[start:stop] for k, v in self._cols.items()})

    def head(self, n: int = 5) -> "Table":
        return self.slice(0, n)

    def sort_by(self, *names: str, descending: bool = False) -> "Table":
        """Stable sort by one or more columns (last name = primary key
        when using numpy's lexsort convention; we expose the natural
        "first name is primary" order instead)."""
        if not names:
            raise ValueError("sort_by needs at least one column")
        # np.lexsort uses the *last* key as primary -> reverse our list.
        keys = tuple(self[name] for name in reversed(names))
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate rows as plain dicts (python scalars)."""
        names = self.columns
        cols = [self._cols[n] for n in names]
        for i in range(self.num_rows):
            yield {n: c[i].item() if hasattr(c[i], "item") else c[i] for n, c in zip(names, cols)}

    def row(self, i: int) -> dict[str, Any]:
        """Return row ``i`` as a dict of python scalars."""
        out: dict[str, Any] = {}
        for n, c in self._cols.items():
            v = c[i]
            out[n] = v.item() if hasattr(v, "item") else v
        return out

    # ------------------------------------------------------------------
    # combining
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Vertically stack tables sharing the same column set."""
        tables = [t for t in tables if t.num_rows > 0 or t.columns]
        if not tables:
            return Table()
        names = tables[0].columns
        for t in tables[1:]:
            if t.columns != names:
                raise ValueError(
                    f"column mismatch in concat: {t.columns} vs {names}"
                )
        return Table(
            {n: np.concatenate([t[n] for t in tables]) for n in names}
        )

    def to_dict(self) -> dict[str, np.ndarray]:
        """Return the underlying column mapping (shallow)."""
        return dict(self._cols)
