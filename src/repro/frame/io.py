"""Serialization for :class:`repro.frame.Table`.

Two dependency-free layers:

* a CSV round-trip for human-readable interchange.  Dtypes are preserved
  through a typed header line (``name:kind``) so that a written table
  reads back with identical column dtype kinds.  ``kind`` is one of
  ``i`` (int64), ``f`` (float64), ``U`` (unicode), ``b`` (bool).
* a binary round-trip (:func:`table_to_bytes` / :func:`table_from_bytes`)
  used by the experiment artifact cache: exact (bit-level) preservation
  of every column, deterministic output for equal tables, and a couple
  orders of magnitude faster than CSV on trace-sized tables.
"""

from __future__ import annotations

import csv
import io as _io
import json
import struct
from pathlib import Path

import numpy as np

from .table import Table

__all__ = [
    "write_csv",
    "read_csv",
    "to_csv_string",
    "from_csv_string",
    "table_to_bytes",
    "table_from_bytes",
]

_KINDS = {"i", "f", "U", "b"}


def _kind_of(arr: np.ndarray) -> str:
    k = arr.dtype.kind
    if k in ("i", "u"):
        return "i"
    if k == "f":
        return "f"
    if k == "b":
        return "b"
    if k in ("U", "S", "O"):
        return "U"
    raise TypeError(f"unsupported column dtype {arr.dtype}")


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a typed header."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = table.columns
    kinds = [_kind_of(table[n]) for n in names]
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([f"{n}:{k}" for n, k in zip(names, kinds)])
        cols = [table[n] for n in names]
        for i in range(table.num_rows):
            writer.writerow([c[i] for c in cols])


def read_csv(path: str | Path) -> Table:
    """Read a table written by :func:`write_csv`."""
    path = Path(path)
    with path.open("r", newline="") as fh:
        return _read_csv_stream(fh)


def _read_csv_stream(fh: _io.TextIOBase) -> Table:
    reader = csv.reader(fh)
    try:
        header = next(reader)
    except StopIteration:
        return Table()
    names: list[str] = []
    kinds: list[str] = []
    for item in header:
        if ":" not in item:
            raise ValueError(f"header cell {item!r} missing ':kind' suffix")
        name, kind = item.rsplit(":", 1)
        if kind not in _KINDS:
            raise ValueError(f"unknown column kind {kind!r} for {name!r}")
        names.append(name)
        kinds.append(kind)
    raw: list[list[str]] = [row for row in reader if row]
    cols: dict[str, np.ndarray] = {}
    for j, (name, kind) in enumerate(zip(names, kinds)):
        cells = [row[j] for row in raw]
        if kind == "i":
            cols[name] = np.array([int(c) for c in cells], dtype=np.int64)
        elif kind == "f":
            cols[name] = np.array([float(c) for c in cells], dtype=np.float64)
        elif kind == "b":
            cols[name] = np.array([c == "True" for c in cells], dtype=bool)
        else:
            cols[name] = np.array(cells, dtype=str) if cells else np.array([], dtype="U1")
    return Table(cols)


def to_csv_string(table: Table) -> str:
    """Serialize ``table`` to a CSV string (typed header included)."""
    buf = _io.StringIO()
    names = table.columns
    kinds = [_kind_of(table[n]) for n in names]
    writer = csv.writer(buf)
    writer.writerow([f"{n}:{k}" for n, k in zip(names, kinds)])
    cols = [table[n] for n in names]
    for i in range(table.num_rows):
        writer.writerow([c[i] for c in cols])
    return buf.getvalue()


def from_csv_string(text: str) -> Table:
    """Parse a table from :func:`to_csv_string` output."""
    return _read_csv_stream(_io.StringIO(text))


# ----------------------------------------------------------------------
# Binary round-trip (exact, deterministic — the artifact-cache format)
# ----------------------------------------------------------------------

#: magic + version; bump on any layout change so stale artifacts miss.
_TABLE_MAGIC = b"RFT1"


def _binary_dtype(arr: np.ndarray) -> np.dtype:
    """Dtype ``arr`` is stored as: little-endian, unicode for objects."""
    if arr.dtype.kind in ("O", "S"):
        arr = arr.astype(str)
    dt = arr.dtype
    # force explicit little-endian: native ("=") means big-endian on BE
    # hosts, which would break the cross-machine deterministic-bytes
    # contract the artifact cache relies on
    if dt.byteorder in (">", "="):
        dt = dt.newbyteorder("<")
    return dt


def table_to_bytes(table: Table) -> bytes:
    """Serialize ``table`` to a compact, deterministic binary blob.

    Layout: ``RFT1`` magic, a little-endian uint32 header length, a JSON
    header (``{"nrows": n, "columns": [[name, dtype_str], ...]}``), then
    each column's raw buffer in header order.  Equal tables serialize to
    identical bytes, which is what lets the artifact cache compare cached
    and fresh payloads bit-for-bit.
    """
    names = table.columns
    cols = []
    dtypes = []
    for name in names:
        arr = np.ascontiguousarray(table[name])
        dt = _binary_dtype(arr)
        if arr.dtype != dt:
            arr = arr.astype(dt)
        cols.append(arr)
        dtypes.append(dt.str)
    header = json.dumps(
        {"nrows": table.num_rows, "columns": [[n, d] for n, d in zip(names, dtypes)]},
        separators=(",", ":"),
        sort_keys=False,
    ).encode("utf-8")
    parts = [_TABLE_MAGIC, struct.pack("<I", len(header)), header]
    parts.extend(arr.tobytes() for arr in cols)
    return b"".join(parts)


def table_from_bytes(data: bytes) -> Table:
    """Reconstruct a :class:`Table` written by :func:`table_to_bytes`."""
    if data[:4] != _TABLE_MAGIC:
        raise ValueError("not a serialized Table (bad magic)")
    if len(data) < 8:
        raise ValueError("truncated Table header")
    (header_len,) = struct.unpack_from("<I", data, 4)
    header_end = 8 + header_len
    header = json.loads(data[8:header_end].decode("utf-8"))
    nrows = int(header["nrows"])
    offset = header_end
    cols: dict[str, np.ndarray] = {}
    for name, dtype_str in header["columns"]:
        dt = np.dtype(dtype_str)
        nbytes = dt.itemsize * nrows
        chunk = data[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise ValueError(f"truncated column {name!r}")
        cols[name] = np.frombuffer(chunk, dtype=dt).copy()
        offset += nbytes
    if offset != len(data):
        raise ValueError("trailing bytes after last column")
    return Table(cols)
