"""CSV round-trip for :class:`repro.frame.Table`.

A small, dependency-free CSV layer.  Dtypes are preserved through a typed
header line (``name:kind``) so that a written table reads back with
identical column dtype kinds.  ``kind`` is one of ``i`` (int64), ``f``
(float64), ``U`` (unicode), ``b`` (bool).
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path

import numpy as np

from .table import Table

__all__ = ["write_csv", "read_csv"]

_KINDS = {"i", "f", "U", "b"}


def _kind_of(arr: np.ndarray) -> str:
    k = arr.dtype.kind
    if k in ("i", "u"):
        return "i"
    if k == "f":
        return "f"
    if k == "b":
        return "b"
    if k in ("U", "S", "O"):
        return "U"
    raise TypeError(f"unsupported column dtype {arr.dtype}")


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a typed header."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = table.columns
    kinds = [_kind_of(table[n]) for n in names]
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([f"{n}:{k}" for n, k in zip(names, kinds)])
        cols = [table[n] for n in names]
        for i in range(table.num_rows):
            writer.writerow([c[i] for c in cols])


def read_csv(path: str | Path) -> Table:
    """Read a table written by :func:`write_csv`."""
    path = Path(path)
    with path.open("r", newline="") as fh:
        return _read_csv_stream(fh)


def _read_csv_stream(fh: _io.TextIOBase) -> Table:
    reader = csv.reader(fh)
    try:
        header = next(reader)
    except StopIteration:
        return Table()
    names: list[str] = []
    kinds: list[str] = []
    for item in header:
        if ":" not in item:
            raise ValueError(f"header cell {item!r} missing ':kind' suffix")
        name, kind = item.rsplit(":", 1)
        if kind not in _KINDS:
            raise ValueError(f"unknown column kind {kind!r} for {name!r}")
        names.append(name)
        kinds.append(kind)
    raw: list[list[str]] = [row for row in reader if row]
    cols: dict[str, np.ndarray] = {}
    for j, (name, kind) in enumerate(zip(names, kinds)):
        cells = [row[j] for row in raw]
        if kind == "i":
            cols[name] = np.array([int(c) for c in cells], dtype=np.int64)
        elif kind == "f":
            cols[name] = np.array([float(c) for c in cells], dtype=np.float64)
        elif kind == "b":
            cols[name] = np.array([c == "True" for c in cells], dtype=bool)
        else:
            cols[name] = np.array(cells, dtype=str) if cells else np.array([], dtype="U1")
    return Table(cols)


def to_csv_string(table: Table) -> str:
    """Serialize ``table`` to a CSV string (typed header included)."""
    buf = _io.StringIO()
    names = table.columns
    kinds = [_kind_of(table[n]) for n in names]
    writer = csv.writer(buf)
    writer.writerow([f"{n}:{k}" for n, k in zip(names, kinds)])
    cols = [table[n] for n in names]
    for i in range(table.num_rows):
        writer.writerow([c[i] for c in cols])
    return buf.getvalue()


def from_csv_string(text: str) -> Table:
    """Parse a table from :func:`to_csv_string` output."""
    return _read_csv_stream(_io.StringIO(text))
