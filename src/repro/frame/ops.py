"""Vectorized aggregation helpers over :class:`repro.frame.Table`.

These cover the aggregation patterns the characterization and scheduling
code needs: groupby-aggregate, value counts, weighted shares, empirical
quantiles.  All grouping is done with ``np.unique(..., return_inverse=True)``
plus ``np.bincount`` segment reductions — no Python loops over rows.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from .table import Table

__all__ = [
    "group_reduce",
    "groupby_agg",
    "value_counts",
    "weighted_share",
    "quantiles",
    "top_k_share",
]

# Aggregations implementable as pure segment reductions.
_SEGMENT_AGGS = {"sum", "mean", "count", "min", "max", "median", "std"}


def _segment_reduce(
    values: np.ndarray, inverse: np.ndarray, n_groups: int, how: str
) -> np.ndarray:
    """Reduce ``values`` per group id in ``inverse`` (0..n_groups-1)."""
    if how == "count":
        return np.bincount(inverse, minlength=n_groups).astype(np.int64)
    if how == "sum":
        return np.bincount(inverse, weights=values, minlength=n_groups)
    if how == "mean":
        counts = np.bincount(inverse, minlength=n_groups)
        sums = np.bincount(inverse, weights=values, minlength=n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    if how == "std":
        counts = np.bincount(inverse, minlength=n_groups)
        sums = np.bincount(inverse, weights=values, minlength=n_groups)
        sqsums = np.bincount(inverse, weights=values * values, minlength=n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = sums / np.maximum(counts, 1)
            var = sqsums / np.maximum(counts, 1) - mean * mean
        return np.sqrt(np.maximum(var, 0.0))
    if how in ("min", "max", "median"):
        # Sort-based segmented reduction: order rows by group then value.
        order = np.lexsort((values, inverse))
        sorted_inv = inverse[order]
        sorted_val = values[order]
        # Segment boundaries in the sorted layout.
        boundaries = np.flatnonzero(np.diff(sorted_inv)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(values)]))
        present = sorted_inv[starts]
        out = np.full(n_groups, np.nan)
        if how == "min":
            out[present] = sorted_val[starts]
        elif how == "max":
            out[present] = sorted_val[ends - 1]
        else:  # median
            lengths = ends - starts
            lo = starts + (lengths - 1) // 2
            hi = starts + lengths // 2
            out[present] = 0.5 * (sorted_val[lo] + sorted_val[hi])
        return out
    raise ValueError(f"unknown aggregation {how!r}")


def group_reduce(
    keys: np.ndarray | Sequence[np.ndarray],
    values: np.ndarray | None,
    how: str,
) -> tuple[np.ndarray | tuple[np.ndarray, ...], np.ndarray]:
    """Group ``values`` by ``keys`` and reduce.

    Returns ``(unique_keys, reduced)``.  ``keys`` may be one array or a
    sequence of arrays (multi-key grouping returns a tuple of key arrays).
    """
    multi = not isinstance(keys, np.ndarray) and len(keys) > 1
    if isinstance(keys, np.ndarray):
        uniques, inverse = np.unique(keys, return_inverse=True)
        n_groups = len(uniques)
    else:
        arrays = [np.asarray(k) for k in keys]
        if len(arrays) == 1:
            uniques, inverse = np.unique(arrays[0], return_inverse=True)
            n_groups = len(uniques)
            multi = False
        else:
            # Factorize each key and combine into one composite id.
            codes = []
            sizes = []
            per_key_uniques = []
            for a in arrays:
                u, inv = np.unique(a, return_inverse=True)
                per_key_uniques.append(u)
                codes.append(inv)
                sizes.append(len(u))
            composite = np.zeros(len(arrays[0]), dtype=np.int64)
            for inv, size in zip(codes, sizes):
                composite = composite * size + inv
            comp_unique, inverse = np.unique(composite, return_inverse=True)
            n_groups = len(comp_unique)
            # Decode composite ids back to per-key unique values.
            decoded = []
            rem = comp_unique
            for u, size in zip(reversed(per_key_uniques), reversed(sizes)):
                decoded.append(u[rem % size])
                rem = rem // size
            uniques = tuple(reversed(decoded))
    if values is None:
        if how != "count":
            raise ValueError("values required for non-count aggregation")
        vals = np.zeros(len(inverse))
    else:
        vals = np.asarray(values, dtype=float)
    reduced = _segment_reduce(vals, inverse, n_groups, how)
    return uniques, reduced


def groupby_agg(
    table: Table,
    by: str | Sequence[str],
    aggs: Mapping[str, tuple[str, str]],
) -> Table:
    """Pandas-like groupby-aggregate.

    Parameters
    ----------
    table:
        Input table.
    by:
        Column name or list of names to group by.
    aggs:
        Mapping ``output_name -> (input_column, how)`` where ``how`` is one
        of ``sum, mean, count, min, max, median, std``.

    Returns
    -------
    Table with the group keys plus one column per aggregation, sorted by key.
    """
    by_names = [by] if isinstance(by, str) else list(by)
    key_arrays = [table[n] for n in by_names]
    out_cols: dict[str, np.ndarray] = {}
    uniques: Any = None
    for out_name, (col, how) in aggs.items():
        values = None if how == "count" else table[col]
        uniques, reduced = group_reduce(
            key_arrays if len(key_arrays) > 1 else key_arrays[0], values, how
        )
        out_cols[out_name] = reduced
    if uniques is None:
        raise ValueError("aggs must not be empty")
    if isinstance(uniques, tuple):
        keys = {n: u for n, u in zip(by_names, uniques)}
    else:
        keys = {by_names[0]: uniques}
    return Table({**keys, **out_cols})


def value_counts(values: np.ndarray, normalize: bool = False) -> Table:
    """Count occurrences of each unique value, descending by count."""
    uniques, counts = np.unique(np.asarray(values), return_counts=True)
    order = np.argsort(counts)[::-1]
    counts_out: np.ndarray = counts[order].astype(float)
    if normalize and counts.sum() > 0:
        counts_out = counts_out / counts.sum()
    return Table({"value": uniques[order], "count": counts_out})


def weighted_share(
    keys: np.ndarray, weights: np.ndarray, normalize: bool = True
) -> Table:
    """Total weight per key (e.g. GPU time per status), descending."""
    uniques, sums = group_reduce(np.asarray(keys), np.asarray(weights), "sum")
    order = np.argsort(sums)[::-1]
    share = sums[order]
    if normalize and share.sum() > 0:
        share = share / share.sum()
    return Table({"value": np.asarray(uniques)[order], "share": share})


def quantiles(
    values: np.ndarray, qs: Sequence[float] = (0.25, 0.5, 0.75)
) -> np.ndarray:
    """Empirical quantiles (linear interpolation); nan-safe."""
    arr = np.asarray(values, dtype=float)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return np.full(len(qs), np.nan)
    return np.quantile(arr, list(qs))


def top_k_share(
    keys: np.ndarray, weights: np.ndarray, fraction: float
) -> float:
    """Share of total weight held by the top ``fraction`` of keys.

    Used for statements like "the top 5% of users occupy over 90% of CPU
    time" (§3.3 of the paper).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    uniques, sums = group_reduce(np.asarray(keys), np.asarray(weights), "sum")
    if len(sums) == 0 or sums.sum() <= 0:
        return 0.0
    sorted_sums = np.sort(sums)[::-1]
    k = max(1, int(np.ceil(fraction * len(sorted_sums))))
    return float(sorted_sums[:k].sum() / sorted_sums.sum())


def apply_per_group(
    table: Table,
    by: str,
    fn: Callable[[Table], Mapping[str, Any]],
) -> Table:
    """Apply ``fn`` to each group's sub-table; collect dict results.

    ``fn`` receives the group's rows and returns a flat mapping of summary
    values.  Reserved for aggregations that are not segment reductions
    (e.g. fitting a model per VC); the per-group loop is over *groups*,
    not rows.
    """
    values = table[by]
    uniques, inverse = np.unique(values, return_inverse=True)
    rows: list[dict[str, Any]] = []
    for gid, key in enumerate(uniques):
        sub = table.filter(inverse == gid)
        result = dict(fn(sub))
        rows.append({by: key, **result})
    return Table.from_rows(rows)
