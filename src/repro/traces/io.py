"""Trace persistence and slicing utilities."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..frame import Table, read_csv, write_csv
from .schema import DAYS_PER_MONTH, SECONDS_PER_DAY, validate_columns

__all__ = [
    "save_trace",
    "load_trace",
    "slice_period",
    "slice_month",
    "split_train_eval",
]


def save_trace(trace: Table, path: str | Path) -> None:
    """Persist a trace (schema-checked) as typed CSV."""
    validate_columns(trace)
    write_csv(trace, path)


def load_trace(path: str | Path) -> Table:
    """Load a trace and check the schema."""
    trace = read_csv(path)
    validate_columns(trace)
    return trace


def slice_period(trace: Table, t0: float, t1: float, by: str = "submit_time") -> Table:
    """Jobs whose ``by`` timestamp falls in ``[t0, t1)``."""
    if t1 <= t0:
        raise ValueError("t1 must be > t0")
    t = trace[by]
    return trace.filter((t >= t0) & (t < t1))


def slice_month(trace: Table, month: int, start_epoch: int = 0) -> Table:
    """Jobs submitted in the given 30-day month index (0 = April)."""
    if month < 0:
        raise ValueError("month must be >= 0")
    month_s = DAYS_PER_MONTH * SECONDS_PER_DAY
    t0 = start_epoch + month * month_s
    return slice_period(trace, t0, t0 + month_s)


def split_train_eval(
    trace: Table, eval_month: int, start_epoch: int = 0
) -> tuple[Table, Table]:
    """The paper's QSSF protocol: train on months before ``eval_month``,
    evaluate on ``eval_month`` (April-August -> September, §4.2.3)."""
    month_s = DAYS_PER_MONTH * SECONDS_PER_DAY
    cutoff = start_epoch + eval_month * month_s
    t = trace["submit_time"]
    train = trace.filter(t < cutoff)
    eval_part = slice_month(trace, eval_month, start_epoch)
    return train, eval_part


def month_of(times: np.ndarray, start_epoch: int = 0) -> np.ndarray:
    """Month index (30-day convention) of each timestamp."""
    return ((np.asarray(times, dtype=np.int64) - start_epoch)
            // (DAYS_PER_MONTH * SECONDS_PER_DAY))
