"""Cluster and virtual-cluster specifications (Table 1 of the paper).

Helios has four clusters managed by Slurm, each statically partitioned
into VCs; nodes are exclusively owned by one VC and all GPUs within a VC
are homogeneous (§2.1).  ``scale`` lets experiments shrink node counts
proportionally while keeping the topology shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.distributions import powerlaw_weights

__all__ = [
    "VCSpec",
    "ClusterSpec",
    "HELIOS_CLUSTER_TABLE",
    "helios_cluster_specs",
    "philly_cluster_spec",
    "partition_vcs",
]


@dataclass(frozen=True)
class VCSpec:
    """A virtual cluster: a fixed set of nodes dedicated to one group."""

    name: str
    num_nodes: int
    gpus_per_node: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("VC must have at least one node")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node


@dataclass(frozen=True)
class ClusterSpec:
    """A physical cluster partitioned into VCs."""

    name: str
    gpus_per_node: int
    vcs: tuple[VCSpec, ...]
    gpu_model: str = "Volta"
    cpu_threads_per_node: int = 48
    ram_gb_per_node: int = 376
    network: str = "IB EDR"

    @property
    def num_nodes(self) -> int:
        return sum(vc.num_nodes for vc in self.vcs)

    @property
    def num_gpus(self) -> int:
        return sum(vc.num_gpus for vc in self.vcs)

    @property
    def num_vcs(self) -> int:
        return len(self.vcs)

    def vc(self, name: str) -> VCSpec:
        for vc in self.vcs:
            if vc.name == name:
                return vc
        raise KeyError(f"no VC {name!r} in cluster {self.name}")


#: Table 1 of the paper (nodes, GPUs, VC counts as of 2020-09-01).
HELIOS_CLUSTER_TABLE: dict[str, dict] = {
    "Venus": dict(
        nodes=133, gpus=1064, vcs=27, gpu_model="Volta",
        cpu_threads=48, ram_gb=376, network="IB EDR", reported_jobs=247_000,
    ),
    "Earth": dict(
        nodes=143, gpus=1144, vcs=25, gpu_model="Volta",
        cpu_threads=48, ram_gb=376, network="IB EDR", reported_jobs=873_000,
    ),
    "Saturn": dict(
        nodes=262, gpus=2096, vcs=28, gpu_model="Pascal & Volta",
        cpu_threads=64, ram_gb=256, network="IB FDR", reported_jobs=1_753_000,
    ),
    "Uranus": dict(
        nodes=264, gpus=2112, vcs=25, gpu_model="Pascal",
        cpu_threads=64, ram_gb=256, network="IB FDR", reported_jobs=490_000,
    ),
}


def partition_vcs(
    cluster_name: str,
    n_nodes: int,
    n_vcs: int,
    gpus_per_node: int,
    rng: np.random.Generator,
    concentration: float = 0.9,
) -> tuple[VCSpec, ...]:
    """Split ``n_nodes`` into ``n_vcs`` skewed VC sizes.

    Real VC sizes are heavy-tailed (Fig 4: one 208-GPU VC, many 32–96-GPU
    VCs); a power-law weight vector rounded to whole nodes with a one-node
    floor reproduces that shape.
    """
    # Prefer VCs of >= 2 nodes: cut the VC count rather than create
    # single-node VCs (which cannot host any multi-node job).
    n_vcs = max(1, min(n_vcs, n_nodes // 2 if n_nodes >= 2 else n_nodes))
    weights = powerlaw_weights(n_vcs, alpha=concentration)
    sizes = np.maximum(2 if n_nodes >= 2 * n_vcs else 1, np.floor(weights * n_nodes).astype(int))
    # Adjust to the exact node total: trim from the largest / grow the smallest.
    diff = n_nodes - int(sizes.sum())
    order = np.argsort(sizes)
    i = 0
    while diff != 0:
        j = order[-1 - (i % n_vcs)] if diff > 0 else order[-1 - (i % n_vcs)]
        if diff > 0:
            sizes[j] += 1
            diff -= 1
        elif sizes[j] > 1:
            sizes[j] -= 1
            diff += 1
        i += 1
    names = _vc_names(cluster_name, n_vcs, rng)
    return tuple(
        VCSpec(name=names[i], num_nodes=int(sizes[i]), gpus_per_node=gpus_per_node)
        for i in range(n_vcs)
    )


def _vc_names(cluster_name: str, n: int, rng: np.random.Generator) -> list[str]:
    """Synthetic VC names in the paper's style (``vc6YE``, ``vcLJZ``...)."""
    alphabet = np.array(list("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"))
    names = set()
    out = []
    while len(out) < n:
        name = "vc" + "".join(rng.choice(alphabet, size=3))
        if name not in names:
            names.add(name)
            out.append(name)
    return out


def helios_cluster_specs(
    seed: int = 0, scale: float = 1.0
) -> dict[str, ClusterSpec]:
    """Build the four Table-1 clusters, optionally scaled down.

    ``scale`` multiplies node counts (min 4 nodes per cluster); VC counts
    scale linearly (floor of 3) so the average VC keeps the real system's
    ~5 nodes — gang scheduling behaves pathologically in 1-node VCs.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    specs: dict[str, ClusterSpec] = {}
    for name, row in HELIOS_CLUSTER_TABLE.items():
        n_nodes = max(4, int(round(row["nodes"] * scale)))
        gpus_per_node = row["gpus"] // row["nodes"]
        n_vcs = max(3, int(round(row["vcs"] * min(1.0, scale))))
        vcs = partition_vcs(name, n_nodes, n_vcs, gpus_per_node, rng)
        specs[name] = ClusterSpec(
            name=name,
            gpus_per_node=gpus_per_node,
            vcs=vcs,
            gpu_model=row["gpu_model"],
            cpu_threads_per_node=row["cpu_threads"],
            ram_gb_per_node=row["ram_gb"],
            network=row["network"],
        )
    return specs


def philly_cluster_spec(seed: int = 1, scale: float = 1.0) -> ClusterSpec:
    """The Microsoft Philly cluster as described in [39] / Table 2.

    ~550 nodes with 4 GPUs each (≈2.2k GPUs), 14 VCs.  Fig 15 of the
    paper shows its node count is over twice Earth's.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    n_nodes = max(4, int(round(552 * scale)))
    n_vcs = max(3, int(round(14 * min(1.0, np.sqrt(scale)))))
    vcs = partition_vcs("Philly", n_nodes, n_vcs, 4, rng)
    return ClusterSpec(
        name="Philly",
        gpus_per_node=4,
        vcs=vcs,
        gpu_model="Mixed",
        cpu_threads_per_node=24,
        ram_gb_per_node=256,
        network="IB + Ethernet",
    )
