"""User population model.

§3.3: each cluster has 200–400 users; user activity is heavy-tailed (the
top 5% of users hold 45–60% of GPU time and >90% of CPU time); only ~25%
of users run CPU jobs at all.  Users submit *recurrent* jobs: a small
pool of named job templates whose instances share duration scale and GPU
size — this is the regularity both the rolling estimator and the GBDT
exploit (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..stats.distributions import powerlaw_weights

__all__ = ["JobTemplate", "UserProfile", "UserPopulation"]

_NAME_STEMS = (
    "train", "finetune", "pretrain", "eval", "test", "debug",
    "preprocess", "extract", "quantize", "infer", "sweep", "ablation",
)
_MODEL_STEMS = (
    "resnet", "vgg", "bert", "gpt", "yolo", "unet", "transformer",
    "lstm", "gan", "detector", "segmenter", "ranker",
)


@dataclass(frozen=True)
class JobTemplate:
    """A recurrent job a user re-submits many times.

    ``median_duration`` is the template's characteristic runtime; actual
    instances scatter log-normally around it (sigma ~0.4-0.6), giving the
    history-based predictability the paper measures.
    """

    template_id: int
    user: str
    vc: str
    base_name: str
    gpu_num: int
    median_duration: float
    weight: float
    is_debug: bool = False


@dataclass
class UserProfile:
    """One user: home VC, activity weight, template pool."""

    user_id: str
    vc: str
    activity: float
    is_cpu_user: bool
    cpu_activity: float
    templates: list[JobTemplate] = field(default_factory=list)


class UserPopulation:
    """Generate users + their job-template pools for one cluster.

    Parameters
    ----------
    cluster_name:
        Used for deterministic user naming.
    vc_names / vc_node_share:
        VC names and their share of cluster nodes (users are assigned to
        VCs proportionally to VC size).
    vc_gpu_dist:
        Per-VC categorical over GPU counts: dict vc -> (sizes, probs).
    vc_whole_node_min:
        Optional per-VC threshold: *non-debug* templates draw sizes >=
        this value and debug templates sizes < it (large-job VCs keep
        their production jobs in whole-node units so packing is clean,
        while debugging happens on slivers).
    vc_duration_scale:
        Per-VC multiplier applied to template median durations (creates
        Fig 4's long-job VCs).
    duration_sampler:
        Callable ``(rng, size) -> medians`` drawing template-level median
        durations from the cluster's duration mixture.
    """

    def __init__(
        self,
        cluster_name: str,
        vc_names: list[str],
        vc_node_share: np.ndarray,
        vc_gpu_dist: dict[str, tuple[np.ndarray, np.ndarray]],
        vc_duration_scale: dict[str, float],
        duration_sampler,
        vc_whole_node_min: dict[str, int] | None = None,
        n_users: int = 300,
        cpu_user_fraction: float = 0.25,
        activity_alpha: float = 1.1,
        cpu_activity_alpha: float = 2.8,
        templates_per_user: tuple[int, int] = (2, 9),
        debug_template_prob: float = 0.15,
        seed: int = 0,
    ) -> None:
        if n_users < 1:
            raise ValueError("need at least one user")
        if not 0.0 <= cpu_user_fraction <= 1.0:
            raise ValueError("cpu_user_fraction must be in [0,1]")
        self.cluster_name = cluster_name
        self.rng = np.random.default_rng(seed)
        self.users: list[UserProfile] = []
        self._whole_node_min = vc_whole_node_min or {}
        self._build(
            vc_names,
            np.asarray(vc_node_share, dtype=float),
            vc_gpu_dist,
            vc_duration_scale,
            duration_sampler,
            n_users,
            cpu_user_fraction,
            activity_alpha,
            cpu_activity_alpha,
            templates_per_user,
            debug_template_prob,
        )

    # ------------------------------------------------------------------
    def _build(
        self,
        vc_names,
        vc_node_share,
        vc_gpu_dist,
        vc_duration_scale,
        duration_sampler,
        n_users,
        cpu_user_fraction,
        activity_alpha,
        cpu_activity_alpha,
        templates_per_user,
        debug_template_prob,
    ) -> None:
        rng = self.rng
        share = vc_node_share / vc_node_share.sum()
        user_vcs = rng.choice(vc_names, size=n_users, p=share)
        # Heavy-tailed GPU activity; even heavier CPU activity (Fig 8).
        activity = powerlaw_weights(n_users, activity_alpha, rng)
        cpu_flags = rng.random(n_users) < cpu_user_fraction
        cpu_act_raw = powerlaw_weights(n_users, cpu_activity_alpha, rng)
        cpu_act = np.where(cpu_flags, cpu_act_raw, 0.0)
        if cpu_act.sum() > 0:
            cpu_act = cpu_act / cpu_act.sum()

        template_counter = 0
        lo, hi = templates_per_user
        for i in range(n_users):
            uid = f"u{self.cluster_name[:2].lower()}{i:04d}"
            profile = UserProfile(
                user_id=uid,
                vc=str(user_vcs[i]),
                activity=float(activity[i]),
                is_cpu_user=bool(cpu_flags[i]),
                cpu_activity=float(cpu_act[i]),
            )
            n_templates = int(rng.integers(lo, hi + 1))
            sizes, probs = vc_gpu_dist[profile.vc]
            dur_scale = vc_duration_scale[profile.vc]
            medians = duration_sampler(rng, n_templates) * dur_scale
            t_weights = powerlaw_weights(n_templates, 0.8, rng)
            wn_min = self._whole_node_min.get(profile.vc, 0)
            # Users of large-job VCs debug their big runs with frequent
            # short trials before committing whole-node GPU time.
            vc_debug_prob = max(debug_template_prob, 0.35) if wn_min else debug_template_prob
            for k in range(n_templates):
                is_debug = rng.random() < vc_debug_prob
                stem = rng.choice(_NAME_STEMS)
                model = rng.choice(_MODEL_STEMS)
                base_name = f"{stem}_{model}_{uid[-3:]}"
                gpu = int(self._draw_size(rng, sizes, probs, wn_min, is_debug))
                # Larger jobs run longer on average: the size coupling is
                # what lets >=8-GPU jobs carry ~60% of GPU time (Fig 6b).
                median = float(medians[k]) * gpu**0.5
                weight = float(t_weights[k])
                if is_debug:
                    # Debug/testing jobs are much shorter than training
                    # runs (§2.3.2 reason 2) and submitted less often
                    # than the production recurrents.
                    median = float(np.clip(median * 0.02, 5.0, 600.0))
                    weight *= 0.55
                profile.templates.append(
                    JobTemplate(
                        template_id=template_counter,
                        user=uid,
                        vc=profile.vc,
                        base_name=base_name,
                        gpu_num=gpu,
                        median_duration=median,
                        weight=weight,
                        is_debug=is_debug,
                    )
                )
                template_counter += 1
            self.users.append(profile)

    # ------------------------------------------------------------------
    @staticmethod
    def _draw_size(
        rng: np.random.Generator,
        sizes: np.ndarray,
        probs: np.ndarray,
        whole_node_min: int,
        is_debug: bool,
    ) -> int:
        """Template GPU size; in large-job VCs production templates take
        whole-node sizes and debug templates the sub-node slivers."""
        if whole_node_min > 0:
            mask = (sizes < whole_node_min) if is_debug else (sizes >= whole_node_min)
            if np.any(mask) and probs[mask].sum() > 0:
                p = probs[mask] / probs[mask].sum()
                return int(rng.choice(sizes[mask], p=p))
        return int(rng.choice(sizes, p=probs))

    @property
    def n_users(self) -> int:
        return len(self.users)

    def all_templates(self) -> list[JobTemplate]:
        return [t for u in self.users for t in u.templates]

    def template_probabilities(self) -> tuple[list[JobTemplate], np.ndarray]:
        """Flattened templates with submission probabilities
        p(template) = user_activity × template_weight."""
        templates = []
        probs = []
        for u in self.users:
            for t in u.templates:
                templates.append(t)
                probs.append(u.activity * t.weight)
        p = np.asarray(probs)
        return templates, p / p.sum()

    def cpu_user_probabilities(self) -> tuple[list[str], np.ndarray]:
        """CPU-capable users and their CPU-activity distribution."""
        users = [u for u in self.users if u.is_cpu_user and u.cpu_activity > 0]
        if not users:
            # Degenerate tiny populations: let the most active user run CPU jobs.
            users = [max(self.users, key=lambda u: u.activity)]
            return [users[0].user_id], np.array([1.0])
        p = np.asarray([u.cpu_activity for u in users])
        return [u.user_id for u in users], p / p.sum()
