"""Trace invariant validation.

Every generated (or loaded) trace must satisfy these invariants before it
is fed to the simulator or analysis; the property-based tests hammer the
generator through this checker.
"""

from __future__ import annotations

import numpy as np

from ..frame import Table
from .cluster import ClusterSpec
from .schema import STATUSES, validate_columns

__all__ = ["validate_trace", "TraceValidationError"]


class TraceValidationError(ValueError):
    """A trace violates a schema or physical invariant."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise TraceValidationError(message)


def validate_trace(
    trace: Table,
    spec: ClusterSpec | None = None,
    replayed: bool = False,
) -> None:
    """Raise :class:`TraceValidationError` on any violated invariant.

    Checks (base): schema columns present; unique job ids; non-negative
    demands; positive durations; statuses in the vocabulary; GPU jobs
    carry node counts consistent with consolidated placement.  With
    ``spec``: VC names exist and no job exceeds its VC's capacity.  With
    ``replayed``: start >= submit, end = start + duration, queue_delay
    consistent.
    """
    validate_columns(trace, replayed=replayed)
    n = len(trace)
    if n == 0:
        return
    _check(len(np.unique(trace["job_id"])) == n, "job ids are not unique")
    _check(bool(np.all(trace["gpu_num"] >= 0)), "negative gpu_num")
    _check(bool(np.all(trace["cpu_num"] >= 0)), "negative cpu_num")
    _check(bool(np.all(trace["duration"] > 0)), "non-positive duration")
    _check(bool(np.all(trace["node_num"] >= 1)), "node_num must be >= 1")
    _check(
        bool(np.all(np.isin(trace["status"], STATUSES))),
        "status outside {completed, canceled, failed}",
    )
    gpu_jobs = trace["gpu_num"] > 0
    _check(
        bool(np.all(trace["cpu_num"][~gpu_jobs] > 0)),
        "CPU jobs must request at least one CPU",
    )

    if spec is not None:
        vc_caps = {vc.name: vc.num_gpus for vc in spec.vcs}
        vc_nodes = {vc.name: vc.num_nodes for vc in spec.vcs}
        names = set(np.unique(trace["vc"]).tolist())
        unknown = names - set(vc_caps)
        _check(not unknown, f"unknown VCs in trace: {sorted(unknown)}")
        for name in names:
            mask = trace["vc"] == name
            _check(
                int(trace["gpu_num"][mask].max(initial=0)) <= vc_caps[name],
                f"job exceeds VC {name} GPU capacity",
            )
            _check(
                int(trace["node_num"][mask].max(initial=0)) <= vc_nodes[name],
                f"job exceeds VC {name} node count",
            )
        # Consolidated placement: node_num == ceil(gpus / gpus_per_node).
        gj = trace.filter(gpu_jobs)
        if len(gj):
            expect = np.maximum(
                1, np.ceil(gj["gpu_num"] / spec.gpus_per_node)
            ).astype(np.int64)
            _check(
                bool(np.all(gj["node_num"] == expect)),
                "node_num inconsistent with consolidated placement",
            )

    if replayed:
        _check(
            bool(np.all(trace["start_time"] >= trace["submit_time"])),
            "job started before submission",
        )
        _check(
            bool(
                np.allclose(
                    trace["end_time"], trace["start_time"] + trace["duration"]
                )
            ),
            "end_time != start_time + duration",
        )
        _check(
            bool(
                np.allclose(
                    trace["queue_delay"], trace["start_time"] - trace["submit_time"]
                )
            ),
            "queue_delay != start_time - submit_time",
        )
