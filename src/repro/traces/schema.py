"""Job trace schema and terminology (§2.3.1 of the paper).

A trace is a :class:`repro.frame.Table` with the columns below.  Statuses
follow the paper's convention: timeout and node-fail are folded into
``failed``.

Columns
-------
job_id:       unique within a trace (string)
cluster:      cluster name (Venus/Earth/Saturn/Uranus/Philly)
vc:           virtual-cluster name
user:         user id string
name:         job name (recurrent jobs share name stems)
gpu_num:      requested GPUs (0 for CPU jobs)
cpu_num:      requested CPU cores
node_num:     number of nodes needed under consolidated placement
submit_time:  epoch seconds (local-midnight aligned)
duration:     execution time in seconds (queuing excluded)
status:       completed | canceled | failed

After replay through the simulator, traces gain ``start_time``,
``end_time`` and ``queue_delay``.
"""

from __future__ import annotations

import numpy as np

from ..frame import Table

__all__ = [
    "COMPLETED",
    "CANCELED",
    "FAILED",
    "STATUSES",
    "TRACE_COLUMNS",
    "REPLAYED_COLUMNS",
    "gpu_time",
    "cpu_time",
    "is_gpu_job",
    "is_cpu_job",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "DAYS_PER_MONTH",
]

COMPLETED = "completed"
CANCELED = "canceled"
FAILED = "failed"
STATUSES = (COMPLETED, CANCELED, FAILED)

SECONDS_PER_HOUR = 3_600
SECONDS_PER_DAY = 86_400
#: The generator uses a fixed 30-day month convention (see ml.encoding).
DAYS_PER_MONTH = 30

TRACE_COLUMNS = (
    "job_id",
    "cluster",
    "vc",
    "user",
    "name",
    "gpu_num",
    "cpu_num",
    "node_num",
    "submit_time",
    "duration",
    "status",
)

REPLAYED_COLUMNS = TRACE_COLUMNS + ("start_time", "end_time", "queue_delay")


def gpu_time(trace: Table) -> np.ndarray:
    """GPU time per job: execution time × number of GPUs (§2.3.1)."""
    return trace["duration"] * trace["gpu_num"]


def cpu_time(trace: Table) -> np.ndarray:
    """CPU time per job: execution time × number of CPUs (§2.3.1)."""
    return trace["duration"] * trace["cpu_num"]


def is_gpu_job(trace: Table) -> np.ndarray:
    """Mask of jobs that require GPUs."""
    return trace["gpu_num"] > 0


def is_cpu_job(trace: Table) -> np.ndarray:
    """Mask of jobs executed without any GPU."""
    return trace["gpu_num"] == 0


def validate_columns(trace: Table, replayed: bool = False) -> None:
    """Raise if the trace is missing schema columns."""
    needed = REPLAYED_COLUMNS if replayed else TRACE_COLUMNS
    missing = [c for c in needed if c not in trace]
    if missing:
        raise ValueError(f"trace missing columns: {missing}")
