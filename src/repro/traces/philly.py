"""Synthetic Philly-like trace generator.

Calibrated to the Philly statistics the paper quotes (Table 2, Fig 1):
DNN-training-only workload, ~1.75 average GPUs per job, much longer
durations than Helios (failed attempts were retried and counted into the
duration under YARN), no CPU jobs, heavy failed GPU-time share (36.1% in
Fig 1b), and a lower baseline node utilization (69%, Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frame import Table
from ..stats.distributions import LogNormal, LogNormalMixture
from .cluster import ClusterSpec, philly_cluster_spec
from .schema import (
    CANCELED,
    COMPLETED,
    FAILED,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
)
from .synth import (
    DIURNAL_SUBMIT,
    WEEKLY_SUBMIT,
    sequence_within_group,
)
from ..stats.distributions import powerlaw_weights

__all__ = ["PhillyParams", "PhillyTraceGenerator"]

#: GPU-size distribution: avg ~1.75 GPUs, max 128 (Table 2).
PHILLY_GPU_SIZES = np.array([1, 2, 4, 8, 16, 32, 64, 128])
PHILLY_GPU_PROBS = np.array([0.75, 0.12, 0.08, 0.04, 0.008, 0.0015, 0.0004, 0.0001])

#: Status mix by size: more failures than Helios; failed jobs are *not*
#: short (retries accumulate runtime), which drives Fig 1b's 36% failed
#: GPU-time share.
PHILLY_STATUS_BY_SIZE = {
    1: (0.58, 0.18, 0.24),
    2: (0.52, 0.21, 0.27),
    4: (0.44, 0.26, 0.30),
    8: (0.36, 0.32, 0.32),
    16: (0.28, 0.38, 0.34),
    32: (0.23, 0.42, 0.35),
    64: (0.19, 0.45, 0.36),
    128: (0.16, 0.47, 0.37),
}

PHILLY_DURATION_MIX = LogNormalMixture(
    components=(
        LogNormal(median=450.0, sigma=1.2, low=10.0),
        LogNormal(median=4_000.0, sigma=1.2, low=60.0),
        LogNormal(median=40_000.0, sigma=1.3, low=1_200.0, high=60 * SECONDS_PER_DAY),
    ),
    weights=(0.40, 0.40, 0.20),
)


@dataclass(frozen=True)
class PhillyParams:
    """Philly workload knobs (defaults follow Table 2 / [39])."""

    days: int = 92  # October 1 - December 31, 2017
    scale: float = 0.25
    seed: int = 100
    start_epoch: int = 0
    target_utilization: float = 0.69  # Table 5 "Node utilization (Original)"
    n_users: int = 200
    instance_sigma: float = 0.5
    max_duration: float = 60.0 * SECONDS_PER_DAY

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def horizon_seconds(self) -> int:
        return self.days * SECONDS_PER_DAY

    @property
    def horizon_hours(self) -> int:
        return self.days * 24


class PhillyTraceGenerator:
    """Single-cluster DNN-training-only workload in the trace schema."""

    def __init__(self, params: PhillyParams | None = None) -> None:
        self.params = params or PhillyParams()
        self.spec: ClusterSpec = philly_cluster_spec(
            seed=self.params.seed, scale=self.params.scale
        )
        self.rng = np.random.default_rng(self.params.seed)
        self._build_profiles()

    def _build_profiles(self) -> None:
        rng = self.rng
        p = self.params
        gpus = np.array([vc.num_gpus for vc in self.spec.vcs], dtype=float)
        raw_lf = np.clip(
            rng.normal(p.target_utilization, 0.14, size=len(self.spec.vcs)), 0.40, 1.0
        )
        mean_lf = float((raw_lf * gpus).sum() / gpus.sum())
        self.vc_load_factor = np.clip(raw_lf * p.target_utilization / mean_lf, 0.35, 1.0)
        # Users with heavy-tailed activity; each tied to one VC.
        self.user_ids = np.array([f"uph{i:04d}" for i in range(p.n_users)])
        share = gpus / gpus.sum()
        self.user_vc = rng.choice([vc.name for vc in self.spec.vcs], size=p.n_users, p=share)
        self.user_activity = powerlaw_weights(p.n_users, 1.1, rng)
        # Per-user recurring template medians and sizes.
        self.n_templates_per_user = rng.integers(2, 7, size=p.n_users)
        total_templates = int(self.n_templates_per_user.sum())
        self.t_user_idx = np.repeat(np.arange(p.n_users), self.n_templates_per_user)
        self.t_median = PHILLY_DURATION_MIX.sample(rng, total_templates)
        sizes, probs = PHILLY_GPU_SIZES, PHILLY_GPU_PROBS / PHILLY_GPU_PROBS.sum()
        self.t_gpu = rng.choice(sizes, size=total_templates, p=probs)
        # Gang scheduling: no template may exceed its VC's total GPUs.
        vc_caps = {vc.name: vc.num_gpus for vc in self.spec.vcs}
        t_caps = np.array([vc_caps[self.user_vc[ui]] for ui in self.t_user_idx])
        over = self.t_gpu > t_caps
        if np.any(over):
            self.t_gpu[over] = 2 ** np.floor(np.log2(t_caps[over])).astype(int)
        t_w = np.concatenate(
            [powerlaw_weights(k, 0.8, rng) for k in self.n_templates_per_user]
        )
        self.t_prob = t_w * self.user_activity[self.t_user_idx]
        self.t_prob = self.t_prob / self.t_prob.sum()
        stems = rng.choice(
            ["cntk_train", "tf_train", "caffe_run", "torch_job", "dnn_sweep"],
            size=total_templates,
        )
        self.t_base = np.array(
            [f"{s}_{i:04d}" for i, s in enumerate(stems)], dtype=str
        )

    # ------------------------------------------------------------------
    def _statuses(self, gpu_nums: np.ndarray) -> np.ndarray:
        rng = self.rng
        out = np.empty(len(gpu_nums), dtype="U9")
        u = rng.random(len(gpu_nums))
        for size, (pc, pk, pf) in PHILLY_STATUS_BY_SIZE.items():
            mask = gpu_nums == size
            if np.any(mask):
                um = u[mask]
                out[mask] = np.where(
                    um < pc, COMPLETED, np.where(um < pc + pk, CANCELED, FAILED)
                )
        out[out == ""] = COMPLETED
        return out

    def _submit_times(self, n: int) -> np.ndarray:
        p = self.params
        hours = np.arange(p.horizon_hours)
        weights = DIURNAL_SUBMIT[hours % 24] * WEEKLY_SUBMIT[(hours // 24) % 7]
        probs = weights / weights.sum()
        hour_idx = self.rng.choice(len(weights), size=n, p=probs)
        return (
            p.start_epoch
            + hour_idx * SECONDS_PER_HOUR
            + self.rng.uniform(0, SECONDS_PER_HOUR, size=n)
        ).astype(np.int64)

    # ------------------------------------------------------------------
    def generate(self) -> Table:
        """Generate the Philly trace: GPU training jobs only."""
        p = self.params
        rng = self.rng
        vc_names = [vc.name for vc in self.spec.vcs]
        t_vc = np.array([self.user_vc[ui] for ui in self.t_user_idx])

        parts = []
        for vi, vc in enumerate(self.spec.vcs):
            budget = vc.num_gpus * p.horizon_seconds * float(self.vc_load_factor[vi])
            mask = t_vc == vc.name
            if not np.any(mask):
                continue
            pool = np.flatnonzero(mask)
            vp = self.t_prob[mask] / self.t_prob[mask].sum()
            pilot = rng.choice(pool, size=min(2000, 4 * len(pool)), p=vp)
            mean_gt = max(
                float(
                    (self.t_gpu[pilot] * self.t_median[pilot]).mean()
                    * np.exp(p.instance_sigma**2 / 2)
                    * 0.85
                ),
                1.0,
            )
            n_est = int(np.ceil(budget / mean_gt * 1.25)) + 8
            chosen = rng.choice(pool, size=n_est, p=vp)
            noise = rng.lognormal(0.0, p.instance_sigma, size=n_est)
            statuses = self._statuses(self.t_gpu[chosen])
            # Canceled cut short; failed keep near-full runtime (retries).
            mod = np.ones(n_est)
            canceled = statuses == CANCELED
            failed = statuses == FAILED
            mod[canceled] = rng.uniform(0.5, 1.2, canceled.sum())
            # YARN retried failed jobs a fixed number of times and the
            # retries count into the duration (§2.3.2) — failures often
            # run *longer* than the intended runtime.
            mod[failed] = np.clip(rng.lognormal(np.log(1.3), 0.6, failed.sum()), 0.1, 3.0)
            durations = np.clip(self.t_median[chosen] * noise * mod, 1.0, p.max_duration)
            gpu_time = durations * self.t_gpu[chosen]
            cut = min(int(np.searchsorted(np.cumsum(gpu_time), budget)) + 1, n_est)
            parts.append((chosen[:cut], durations[:cut], statuses[:cut]))

        template_idx = np.concatenate([pt[0] for pt in parts])
        durations = np.concatenate([pt[1] for pt in parts])
        statuses = np.concatenate([pt[2] for pt in parts])
        n = len(template_idx)
        gpus = self.t_gpu[template_idx]
        users = self.user_ids[self.t_user_idx[template_idx]]
        vcs = t_vc[template_idx]
        submit = self._submit_times(n)
        seq = sequence_within_group(template_idx)
        names = np.array(
            [f"{self.t_base[t]}_{s}" for t, s in zip(template_idx, seq)], dtype=str
        )
        node_num = np.maximum(1, np.ceil(gpus / self.spec.gpus_per_node)).astype(np.int64)
        table = Table(
            {
                "job_id": np.array([f"ph-g{i:07d}" for i in range(n)], dtype=str),
                "cluster": np.full(n, "Philly", dtype="U8"),
                "vc": vcs.astype(str),
                "user": users.astype(str),
                "name": names,
                "gpu_num": gpus.astype(np.int64),
                "cpu_num": (gpus * 4).astype(np.int64),
                "node_num": node_num,
                "submit_time": submit,
                "duration": durations,
                "status": statuses.astype("U9"),
            }
        )
        return table.sort_by("submit_time")
