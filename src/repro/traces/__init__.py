"""Workload substrate: schemas, cluster specs, and trace generators."""

from .cluster import (
    HELIOS_CLUSTER_TABLE,
    ClusterSpec,
    VCSpec,
    helios_cluster_specs,
    partition_vcs,
    philly_cluster_spec,
)
from .io import (
    load_trace,
    month_of,
    save_trace,
    slice_month,
    slice_period,
    split_train_eval,
)
from .philly import PhillyParams, PhillyTraceGenerator
from .schema import (
    CANCELED,
    COMPLETED,
    DAYS_PER_MONTH,
    FAILED,
    REPLAYED_COLUMNS,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    STATUSES,
    TRACE_COLUMNS,
    cpu_time,
    gpu_time,
    is_cpu_job,
    is_gpu_job,
)
from .synth import (
    ClusterWorkloadModel,
    HeliosTraceGenerator,
    SynthParams,
    params_signature,
    sequence_within_group,
)
from .users import JobTemplate, UserPopulation, UserProfile
from .validate import TraceValidationError, validate_trace

__all__ = [
    "CANCELED",
    "COMPLETED",
    "DAYS_PER_MONTH",
    "FAILED",
    "HELIOS_CLUSTER_TABLE",
    "REPLAYED_COLUMNS",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "STATUSES",
    "TRACE_COLUMNS",
    "ClusterSpec",
    "ClusterWorkloadModel",
    "HeliosTraceGenerator",
    "JobTemplate",
    "PhillyParams",
    "PhillyTraceGenerator",
    "SynthParams",
    "params_signature",
    "TraceValidationError",
    "UserPopulation",
    "UserProfile",
    "VCSpec",
    "cpu_time",
    "gpu_time",
    "helios_cluster_specs",
    "is_cpu_job",
    "is_gpu_job",
    "load_trace",
    "month_of",
    "partition_vcs",
    "philly_cluster_spec",
    "save_trace",
    "sequence_within_group",
    "slice_month",
    "slice_period",
    "split_train_eval",
    "validate_trace",
]
