"""Calibrated synthetic Helios workload generator.

The real Helios traces (3.36 M Slurm job logs) are not available offline,
so this module synthesizes workloads that reproduce every distribution
the paper reports (see DESIGN.md §2 for the substitution argument):

* per-cluster shapes from Table 1 (via :mod:`repro.traces.cluster`);
* duration mixtures with second-scale debug jobs through multi-day
  training runs (Figs 1a, 5) — GPU-job durations ~10× CPU-job durations;
* GPU-demand distributions dominated by single-GPU jobs by *count* and by
  large jobs by *GPU time* (Fig 6), with power-of-two sizes;
* final-status mixes where completion falls with GPU count (Fig 7) and
  failed jobs die early while canceled jobs run long (Fig 1b);
* heavy-tailed per-user activity with a small CPU-user subset (Fig 8);
* diurnal/weekly submission rhythms with noon/dinner dips (Fig 2b) and
  stable multi-GPU vs fluctuating single-GPU monthly volumes (Fig 3);
* imbalanced VCs: per-VC load factor, job-size tilt, and duration scale
  (Fig 4), which is what makes queuing co-exist with idle capacity.

Everything is driven by one integer seed and is fully vectorized.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, is_dataclass

import numpy as np

from ..frame import Table
from ..stats.distributions import LogNormal, LogNormalMixture
from .cluster import ClusterSpec, helios_cluster_specs
from .schema import (
    CANCELED,
    COMPLETED,
    DAYS_PER_MONTH,
    FAILED,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
)
from .users import UserPopulation

__all__ = [
    "SynthParams",
    "ClusterWorkloadModel",
    "HeliosTraceGenerator",
    "params_signature",
    "sequence_within_group",
    "synthesize_node_events",
]


def params_signature(params) -> str:
    """Short stable digest of a parameter dataclass (e.g. SynthParams).

    The experiment layer stamps artifact metadata with this so a cached
    exhibit records exactly which scenario generated it; two parameter
    sets collide only if every field is equal.
    """
    if not is_dataclass(params):
        raise TypeError(f"expected a params dataclass, got {type(params)!r}")
    canon = json.dumps(
        {"type": type(params).__name__, **asdict(params)},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]

# ----------------------------------------------------------------------
# Calibration constants (paper-reported targets; see module docstring)
# ----------------------------------------------------------------------

#: Diurnal submission-rate profile (Fig 2b): night trough, lunch/dinner dips.
DIURNAL_SUBMIT = np.array(
    [0.42, 0.36, 0.32, 0.30, 0.28, 0.30, 0.38, 0.52,  # 0-7  night/sunrise
     0.78, 0.98, 1.10, 1.12, 0.88, 1.05, 1.15, 1.15,  # 8-15 workday, lunch dip @12
     1.10, 1.05, 0.82, 0.95, 1.00, 0.90, 0.72, 0.55]  # 16-23 dinner dip @18
)
#: Weekday submission multipliers (research labs run weekends at ~70%).
WEEKLY_SUBMIT = np.array([1.0, 1.05, 1.05, 1.0, 0.95, 0.75, 0.68])

#: GPU counts requested in Helios are almost always powers of two (§3.2.2).
GPU_SIZES = np.array([1, 2, 4, 8, 16, 32, 64, 128, 256])

#: Per-cluster base probability over GPU_SIZES (Earth is single-GPU heavy).
CLUSTER_GPU_PROBS = {
    "Venus": np.array([0.55, 0.13, 0.10, 0.12, 0.05, 0.03, 0.015, 0.004, 0.001]),
    "Earth": np.array([0.90, 0.040, 0.025, 0.020, 0.008, 0.004, 0.002, 0.0008, 0.0002]),
    "Saturn": np.array([0.54, 0.13, 0.10, 0.12, 0.055, 0.033, 0.015, 0.005, 0.002]),
    "Uranus": np.array([0.55, 0.11, 0.10, 0.13, 0.06, 0.03, 0.015, 0.003, 0.002]),
}

#: Final-status probabilities conditioned on GPU demand (Fig 7b): completion
#: falls with size, cancellation rises to ~70% for >=64-GPU jobs.
STATUS_BY_SIZE = {
    # size: (completed, canceled, failed)
    1: (0.64, 0.17, 0.19),
    2: (0.71, 0.15, 0.14),
    4: (0.58, 0.22, 0.20),
    8: (0.50, 0.30, 0.20),
    16: (0.42, 0.38, 0.20),
    32: (0.34, 0.46, 0.20),
    64: (0.23, 0.63, 0.14),
    128: (0.20, 0.66, 0.14),
    256: (0.18, 0.68, 0.14),
}

#: Template-median duration mixture for GPU jobs (seconds).
GPU_DURATION_MIX = LogNormalMixture(
    components=(
        LogNormal(median=120.0, sigma=1.0, low=2.0),
        LogNormal(median=1_500.0, sigma=1.0, low=30.0),
        LogNormal(median=25_000.0, sigma=1.2, low=600.0, high=50 * SECONDS_PER_DAY),
    ),
    weights=(0.45, 0.33, 0.22),
)

#: CPU-job duration mixtures; Earth is dominated by 1-second query jobs (§3.2.1).
CPU_DURATION_MIX = {
    "Earth": LogNormalMixture(
        components=(
            LogNormal(median=1.0, sigma=0.25, low=0.5, high=3.0),
            LogNormal(median=60.0, sigma=1.2, low=2.0),
            LogNormal(median=3_000.0, sigma=1.0, low=60.0, high=10 * SECONDS_PER_DAY),
        ),
        weights=(0.88, 0.10, 0.02),
    ),
    "default": LogNormalMixture(
        components=(
            LogNormal(median=1.5, sigma=0.5, low=0.5, high=10.0),
            LogNormal(median=100.0, sigma=1.2, low=2.0),
            LogNormal(median=2_500.0, sigma=1.2, low=60.0, high=10 * SECONDS_PER_DAY),
        ),
        weights=(0.50, 0.35, 0.15),
    ),
}

#: Target cluster utilization (Fig 2a: 65-90%, Saturn highest).
TARGET_UTILIZATION = {"Venus": 0.74, "Earth": 0.70, "Saturn": 0.82, "Uranus": 0.77}

#: CPU jobs per GPU job (Helios total is ~1.13 CPU jobs per GPU job,
#: concentrated in Earth where most jobs are short CPU queries).
CPU_JOBS_PER_GPU_JOB = {"Venus": 0.55, "Earth": 2.4, "Saturn": 0.85, "Uranus": 0.70}

#: Users per cluster (paper: 200-400 each).
USERS_PER_CLUSTER = {"Venus": 250, "Earth": 320, "Saturn": 400, "Uranus": 280}

CPUS_PER_GPU = 6  # Slurm default CPU allocation proportional to GPUs (§2.1)


@dataclass(frozen=True)
class SynthParams:
    """Top-level knobs for the synthetic Helios workload."""

    months: int = 6
    scale: float = 0.25
    seed: int = 0
    start_epoch: int = 0
    instance_sigma: float = 0.45  # per-job scatter around template medians
    max_duration: float = 50.0 * SECONDS_PER_DAY  # Table 2: Helios max 50 days
    #: Floor on a VC's expected GPU-time per job.  A small VC whose few
    #: users drew only short templates would otherwise need hundreds of
    #: thousands of jobs to fill its GPU-time budget, dwarfing every
    #: other VC's job count (real VCs run minutes-to-days jobs, not
    #: millions of second-scale ones).
    min_mean_gpu_time: float = 6_000.0

    def __post_init__(self) -> None:
        if self.months < 1:
            raise ValueError("months must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def horizon_seconds(self) -> int:
        return self.months * DAYS_PER_MONTH * SECONDS_PER_DAY

    @property
    def horizon_hours(self) -> int:
        return self.months * DAYS_PER_MONTH * 24


def sequence_within_group(group_ids: np.ndarray) -> np.ndarray:
    """Occurrence index of each element within its group (vectorized).

    ``sequence_within_group([5, 3, 5, 5, 3]) == [0, 0, 1, 2, 1]``
    """
    ids = np.asarray(group_ids)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    # Index within each run of equal ids in the sorted layout.
    is_start = np.ones(len(ids), dtype=bool)
    is_start[1:] = sorted_ids[1:] != sorted_ids[:-1]
    run_starts = np.flatnonzero(is_start)
    offsets = np.arange(len(ids)) - np.repeat(run_starts, np.diff(np.append(run_starts, len(ids))))
    out = np.empty(len(ids), dtype=np.int64)
    out[order] = offsets
    return out


class ClusterWorkloadModel:
    """Per-cluster generator: VC profiles + users -> job table.

    The cluster's offered load is budgeted in GPU-seconds per VC
    (``vc_gpus × horizon × load_factor``); jobs are drawn from the VC's
    user/template pools until the budget is met, so the headline cluster
    utilization matches the Fig 2a targets by construction.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        params: SynthParams,
        target_utilization: float,
        cpu_ratio: float,
        n_users: int,
        gpu_size_probs: np.ndarray,
        seed: int,
    ) -> None:
        self.spec = spec
        self.params = params
        self.target_utilization = target_utilization
        self.cpu_ratio = cpu_ratio
        self.rng = np.random.default_rng(seed)
        self._build_vc_profiles(gpu_size_probs)
        whole_node_min = {
            vc.name: (vc.gpus_per_node if self.vc_class[vc.name] == "large" else 0)
            for vc in spec.vcs
        }
        self.population = UserPopulation(
            cluster_name=spec.name,
            vc_names=[vc.name for vc in spec.vcs],
            vc_node_share=np.array([vc.num_nodes for vc in spec.vcs], dtype=float),
            vc_gpu_dist=self.vc_gpu_dist,
            vc_duration_scale=self.vc_duration_scale,
            duration_sampler=lambda rng, size: GPU_DURATION_MIX.sample(rng, size),
            vc_whole_node_min=whole_node_min,
            n_users=n_users,
            seed=int(self.rng.integers(2**31)),
        )

    # ------------------------------------------------------------------
    def _build_vc_profiles(self, base_probs: np.ndarray) -> None:
        """Draw per-VC size class, duration scale and load factor.

        Fig 4 shows VCs are *segregated by job size* (per-VC average GPU
        demand is bimodal: 1.1–2.6 for small-job VCs vs 8.4–15.4 for
        large-job VCs).  Segregation is also what keeps FIFO viable in
        production: large-job VCs run whole-node jobs (which pack
        perfectly), small-job VCs run sub-node jobs (which never wait for
        fully-idle nodes).  Mixing long single-GPU jobs with multi-node
        jobs in one VC starves consolidation indefinitely.
        """
        rng = self.rng
        self.vc_gpu_dist: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self.vc_duration_scale: dict[str, float] = {}
        self.vc_load_factor: dict[str, float] = {}
        self.vc_class: dict[str, str] = {}
        gpus = np.array([vc.num_gpus for vc in self.spec.vcs], dtype=float)
        raw_lf = np.clip(
            rng.normal(self.target_utilization, 0.10, size=len(self.spec.vcs)),
            0.45,
            0.89,
        )
        # Rescale so the GPU-weighted mean load equals the target.
        mean_lf = float((raw_lf * gpus).sum() / gpus.sum())
        raw_lf = np.clip(raw_lf * self.target_utilization / mean_lf, 0.40, 0.90)

        # Classes are assigned deterministically by VC size: the biggest
        # VCs (by cumulative GPU share) host the large jobs, mirroring
        # Fig 4's "VC utilization is positively correlated with the
        # average GPU demands".
        single_heavy = base_probs[0] > 0.8  # Earth-style cluster
        large_cut, mixed_cut = (0.0, 0.12) if single_heavy else (0.38, 0.68)
        order = np.argsort(gpus)[::-1]
        cum_share = np.cumsum(gpus[order]) / gpus.sum()
        classes = np.full(len(order), "small", dtype="U6")
        for rank, vc_i in enumerate(order):
            share_before = cum_share[rank - 1] if rank else 0.0
            if share_before < large_cut and self.spec.vcs[vc_i].num_nodes >= 4:
                classes[vc_i] = "large"
            elif share_before < mixed_cut:
                classes[vc_i] = "mixed"
        for i, vc in enumerate(self.spec.vcs):
            cls = str(classes[i])
            sizes, w = self._class_size_dist(cls, vc, base_probs, rng)
            self.vc_class[vc.name] = cls
            self.vc_gpu_dist[vc.name] = (sizes, w)
            self.vc_duration_scale[vc.name] = float(np.exp(rng.normal(0.0, 0.35)))
            self.vc_load_factor[vc.name] = float(raw_lf[i])

    @staticmethod
    def _class_size_dist(
        cls: str,
        vc,
        base_probs: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """GPU-size distribution for one VC given its class."""
        gpn = vc.gpus_per_node
        sizes = GPU_SIZES
        if cls == "small":
            keep = sizes <= min(2, gpn)
            w = base_probs[keep].copy()
        elif cls == "mixed":
            # Half-node jobs at most: placement never waits for a fully
            # (or nearly fully) idle node.
            keep = sizes <= max(2, gpn // 2)
            w = base_probs[keep].copy()
        else:  # large
            # Whole-node multiples pack perfectly; a small admixture of
            # sub-node debug jobs (short-lived) keeps realism.
            cap = max(gpn, vc.num_gpus // 2)
            keep = (sizes >= gpn) & (sizes <= cap)
            if not np.any(keep):
                keep = sizes <= gpn
                w = base_probs[keep].copy()
            else:
                w = base_probs[keep].copy()
                # renormalize large part to 0.85, small part to 0.15
                small_keep = sizes <= min(4, gpn)
                w = 0.85 * w / w.sum()
                ws = 0.15 * base_probs[small_keep] / base_probs[small_keep].sum()
                out_sizes = np.concatenate([sizes[small_keep], sizes[keep]])
                out_w = np.concatenate([ws, w])
                return out_sizes, out_w / out_w.sum()
        return sizes[keep], w / w.sum()

    # ------------------------------------------------------------------
    def _status_for_sizes(self, gpu_nums: np.ndarray) -> np.ndarray:
        """Sample final statuses conditioned on GPU demand (Fig 7b)."""
        rng = self.rng
        out = np.empty(len(gpu_nums), dtype="U9")
        u = rng.random(len(gpu_nums))
        for size, (pc, pk, pf) in STATUS_BY_SIZE.items():
            mask = gpu_nums == size
            if not np.any(mask):
                continue
            um = u[mask]
            st = np.where(um < pc, COMPLETED, np.where(um < pc + pk, CANCELED, FAILED))
            out[mask] = st
        # Sizes outside the table (clipped odd sizes): treat as nearest pow2.
        unset = out == ""
        if np.any(unset):
            out[unset] = COMPLETED
        return out

    def _status_duration_modifier(self, statuses: np.ndarray) -> np.ndarray:
        """Failed jobs die early; canceled jobs are cut short (§3.2.2)."""
        rng = self.rng
        n = len(statuses)
        mod = np.ones(n)
        failed = statuses == FAILED
        canceled = statuses == CANCELED
        # Most failures are user errors caught quickly.
        mod[failed] = np.clip(rng.lognormal(np.log(0.25), 1.1, failed.sum()), 0.005, 1.0)
        mod[canceled] = rng.uniform(0.35, 1.0, canceled.sum())
        return mod

    # ------------------------------------------------------------------
    def _submit_hour_weights(
        self, monthly_sigma: float, week_mult: np.ndarray | None = None
    ) -> np.ndarray:
        """Hour-of-horizon submission weights.

        diurnal × day-of-week × monthly volume noise × optional per-week
        load multipliers.  The weekly multipliers are the slack/burst
        structure that CES exploits (Fig 14's running-node swings) and
        that Fig 3's month-to-month utilization changes reflect.
        """
        p = self.params
        hours = np.arange(p.horizon_hours)
        hod = hours % 24
        dow = (hours // 24) % 7
        month = hours // (DAYS_PER_MONTH * 24)
        month_mult = np.exp(
            self.rng.normal(0.0, monthly_sigma, size=p.months)
        )
        out = DIURNAL_SUBMIT[hod] * WEEKLY_SUBMIT[dow] * month_mult[month]
        if week_mult is not None:
            week = np.minimum(hours // (7 * 24), len(week_mult) - 1)
            out = out * week_mult[week]
        return out

    def _vc_week_multipliers(self) -> np.ndarray:
        """Per-week load multipliers for one VC (lognormal, sigma 0.35)."""
        n_weeks = int(np.ceil(self.params.horizon_hours / (7 * 24)))
        return np.exp(self.rng.normal(0.0, 0.35, size=n_weeks))

    def _sample_submit_times(self, n: int, weights: np.ndarray) -> np.ndarray:
        probs = weights / weights.sum()
        hour_idx = self.rng.choice(len(weights), size=n, p=probs)
        offset = self.rng.uniform(0, SECONDS_PER_HOUR, size=n)
        return (
            self.params.start_epoch
            + hour_idx * SECONDS_PER_HOUR
            + offset
        ).astype(np.int64)

    # ------------------------------------------------------------------
    def generate_gpu_jobs(self) -> Table:
        """Draw GPU jobs until every VC's GPU-time budget is met."""
        p = self.params
        rng = self.rng
        templates, probs = self.population.template_probabilities()
        t_vc = np.array([t.vc for t in templates])
        t_gpu = np.array([t.gpu_num for t in templates])
        t_median = np.array([t.median_duration for t in templates])
        t_user = np.array([t.user for t in templates])
        t_base = np.array([t.base_name for t in templates])

        all_parts: list[dict[str, np.ndarray]] = []

        for vc in self.spec.vcs:
            # Two submission-time weight tracks per VC: single-GPU volumes
            # fluctuate month-to-month, multi-GPU volumes are stable
            # (Fig 3); both share the VC's weekly slack/burst structure.
            vc_weeks = self._vc_week_multipliers()
            w_single = self._submit_hour_weights(monthly_sigma=0.40, week_mult=vc_weeks)
            w_multi = self._submit_hour_weights(monthly_sigma=0.06, week_mult=vc_weeks)
            budget = vc.num_gpus * p.horizon_seconds * self.vc_load_factor[vc.name]
            mask = t_vc == vc.name
            if not np.any(mask):
                continue
            vp = probs[mask] / probs[mask].sum()
            idx_pool = np.flatnonzero(mask)
            # Pilot estimate of expected GPU-time per job in this VC.
            pilot = rng.choice(idx_pool, size=min(2000, 4 * len(idx_pool)), p=vp)
            pilot_gpu_time = (
                t_gpu[pilot]
                * t_median[pilot]
                * np.exp(p.instance_sigma**2 / 2)
                * 0.8  # average status modifier
            )
            mean_gt = max(float(pilot_gpu_time.mean()), 1.0)
            # Guard against degenerate all-short VCs (see SynthParams).
            dur_boost = max(1.0, p.min_mean_gpu_time / mean_gt)
            mean_gt *= dur_boost
            # Draw in batches until the GPU-time budget is met, then trim.
            chosen_parts, dur_parts, status_parts = [], [], []
            filled = 0.0
            for _attempt in range(6):
                remaining = budget - filled
                if remaining <= 0:
                    break
                n_est = int(np.ceil(remaining / mean_gt * 1.15)) + 8
                chosen = rng.choice(idx_pool, size=n_est, p=vp)
                noise = rng.lognormal(0.0, p.instance_sigma, size=n_est)
                statuses = self._status_for_sizes(t_gpu[chosen])
                mod = self._status_duration_modifier(statuses)
                durations = np.clip(
                    t_median[chosen] * noise * mod * dur_boost, 1.0, p.max_duration
                )
                gpu_time = durations * t_gpu[chosen]
                csum = np.cumsum(gpu_time)
                cut = min(int(np.searchsorted(csum, remaining)) + 1, n_est)
                chosen_parts.append(chosen[:cut])
                dur_parts.append(durations[:cut])
                status_parts.append(statuses[:cut])
                filled += float(csum[cut - 1])
            vc_tmpl = np.concatenate(chosen_parts)
            vc_gpus = t_gpu[vc_tmpl]
            vc_single = vc_gpus == 1
            vc_submit = np.empty(len(vc_tmpl), dtype=np.int64)
            if vc_single.any():
                vc_submit[vc_single] = self._sample_submit_times(
                    int(vc_single.sum()), w_single
                )
            if (~vc_single).any():
                vc_submit[~vc_single] = self._sample_submit_times(
                    int((~vc_single).sum()), w_multi
                )
            all_parts.append(
                {
                    "template": vc_tmpl,
                    "duration": np.concatenate(dur_parts),
                    "status": np.concatenate(status_parts),
                    "submit": vc_submit,
                }
            )

        template_idx = np.concatenate([part["template"] for part in all_parts])
        durations = np.concatenate([part["duration"] for part in all_parts])
        statuses = np.concatenate([part["status"] for part in all_parts])
        submit = np.concatenate([part["submit"] for part in all_parts])
        n = len(template_idx)
        gpus = t_gpu[template_idx]

        seq = sequence_within_group(template_idx)
        names = np.char.add(
            np.char.add(t_base[template_idx], "_"), seq.astype("U12")
        )
        node_num = np.maximum(1, np.ceil(gpus / self.spec.gpus_per_node)).astype(np.int64)
        prefix = self.spec.name[:2].lower() + "-g"
        table = Table(
            {
                "job_id": np.char.add(prefix, np.arange(n).astype("U12")),
                "cluster": np.full(n, self.spec.name, dtype="U8"),
                "vc": t_vc[template_idx],
                "user": t_user[template_idx],
                "name": names,
                "gpu_num": gpus.astype(np.int64),
                "cpu_num": (gpus * CPUS_PER_GPU).astype(np.int64),
                "node_num": node_num,
                "submit_time": submit,
                "duration": durations,
                "status": statuses,
            }
        )
        return table.sort_by("submit_time")

    # ------------------------------------------------------------------
    def generate_cpu_jobs(self, n_gpu_jobs: int) -> Table:
        """CPU-only jobs (preprocessing, queries): no GPUs held."""
        p = self.params
        rng = self.rng
        n = int(round(n_gpu_jobs * self.cpu_ratio))
        if n == 0:
            return Table({c: np.empty(0, dtype=t) for c, t in _EMPTY_DTYPES.items()})
        mix = CPU_DURATION_MIX.get(self.spec.name, CPU_DURATION_MIX["default"])
        users, uprobs = self.population.cpu_user_probabilities()
        user_arr = rng.choice(np.asarray(users), size=n, p=uprobs)
        # The long-tail component (heavy preprocessing pipelines) is run
        # by the heavy CPU users, so the top 5% of users hold the bulk of
        # CPU *time* (Fig 8b) while 1-second query jobs stay 1 second.
        act = dict(zip(users, uprobs))
        rel = np.array([act[u] for u in user_arr]) * len(users)
        w_long = mix.weights[-1]
        tilt = rel**2.5
        p_long = np.clip(w_long * tilt / max(tilt.mean(), 1e-12), 0.0, 0.95)
        is_long = rng.random(n) < p_long
        short_mix = LogNormalMixture(
            components=mix.components[:-1],
            weights=tuple(w / (1 - w_long) for w in mix.weights[:-1]),
        )
        durations = np.empty(n)
        n_long = int(is_long.sum())
        if n_long:
            durations[is_long] = mix.components[-1].sample(rng, n_long)
        if n - n_long:
            durations[~is_long] = short_mix.sample(rng, n - n_long)
        user_vc = {u.user_id: u.vc for u in self.population.users}
        vcs = np.array([user_vc[u] for u in user_arr])
        cpu_num = rng.choice([1, 2, 4, 8, 16], size=n, p=[0.5, 0.2, 0.15, 0.1, 0.05])
        # CPU statuses: overwhelmingly successful (Fig 7a: ~91% completed).
        u = rng.random(n)
        statuses = np.where(u < 0.909, COMPLETED, np.where(u < 0.939, CANCELED, FAILED))
        failed = statuses == FAILED
        durations[failed] = np.clip(durations[failed] * rng.uniform(0.05, 1.0, failed.sum()), 0.5, None)
        weights = self._submit_hour_weights(monthly_sigma=0.25)
        submit = self._sample_submit_times(n, weights)
        stems = rng.choice(
            ["frame_extract", "decompress", "rescale", "pack_dataset", "query_state", "postprocess"],
            size=n,
        )
        stem_user = np.char.add(user_arr.astype(str), stems.astype(str))
        seq = sequence_within_group(stem_user)
        names = np.char.add(
            np.char.add(stems.astype("U20"), "_"), seq.astype("U12")
        )
        prefix = self.spec.name[:2].lower() + "-c"
        table = Table(
            {
                "job_id": np.char.add(prefix, np.arange(n).astype("U12")),
                "cluster": np.full(n, self.spec.name, dtype="U8"),
                "vc": vcs,
                "user": user_arr.astype(str),
                "name": names,
                "gpu_num": np.zeros(n, dtype=np.int64),
                "cpu_num": cpu_num.astype(np.int64),
                "node_num": np.ones(n, dtype=np.int64),
                "submit_time": submit,
                "duration": np.clip(durations, 0.5, p.max_duration),
                "status": statuses.astype("U9"),
            }
        )
        return table.sort_by("submit_time")

    def generate(self) -> Table:
        gpu_jobs = self.generate_gpu_jobs()
        cpu_jobs = self.generate_cpu_jobs(len(gpu_jobs))
        if len(cpu_jobs) == 0:
            return gpu_jobs
        both = Table.concat([gpu_jobs.select(*gpu_jobs.columns), cpu_jobs.select(*gpu_jobs.columns)])
        return both.sort_by("submit_time")


_EMPTY_DTYPES = {
    "job_id": "U24", "cluster": "U8", "vc": "U8", "user": "U12", "name": "U40",
    "gpu_num": np.int64, "cpu_num": np.int64, "node_num": np.int64,
    "submit_time": np.int64, "duration": np.float64, "status": "U9",
}


def synthesize_node_events(
    num_nodes: int,
    horizon_seconds: float,
    seed: int,
    *,
    burst_rate_per_day: float = 0.5,
    burst_nodes_mean: float = 3.0,
    repair_minutes_median: float = 45.0,
    repair_sigma: float = 0.9,
) -> Table:
    """Synthesize correlated node down/up events for one cluster.

    Real datacenter node failures are bursty and rack-correlated: a PDU
    trip or a top-of-rack switch fault takes out a *contiguous run* of
    nodes at once, and repairs follow a heavy-tailed (lognormal)
    time-to-restore.  We model failure *bursts* as a Poisson process over
    the horizon; each burst knocks out ``1 + Geometric`` physically
    adjacent nodes, and each downed node comes back after an independent
    lognormal repair delay.

    The returned :class:`Table` has columns ``time`` (seconds, float),
    ``node`` (global node index, int) and ``up`` (0 = down, 1 = up),
    stably sorted by time.  Per node, events strictly alternate
    down/up starting from up — the invariant
    :func:`repro.sim.normalize_node_events` enforces — because a node
    already down when a later burst hits it is simply skipped.

    Fully deterministic for a given ``(num_nodes, horizon, seed)`` and
    knob set.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if horizon_seconds <= 0:
        raise ValueError(f"horizon_seconds must be positive, got {horizon_seconds}")
    for knob, value in (
        ("burst_rate_per_day", burst_rate_per_day),
        ("burst_nodes_mean", burst_nodes_mean),
        ("repair_minutes_median", repair_minutes_median),
        ("repair_sigma", repair_sigma),
    ):
        if value < 0:
            raise ValueError(f"{knob} must be nonnegative, got {value}")
    rng = np.random.default_rng(seed)
    horizon_days = horizon_seconds / SECONDS_PER_DAY
    n_bursts = int(rng.poisson(burst_rate_per_day * horizon_days))
    burst_times = np.sort(rng.uniform(0.0, horizon_seconds, size=n_bursts))

    times: list[float] = []
    nodes: list[int] = []
    ups: list[int] = []
    next_up = np.zeros(num_nodes, dtype=np.float64)
    repair_median_s = repair_minutes_median * 60.0
    for t in burst_times.tolist():
        size = 1 + int(rng.geometric(1.0 / max(1.0, burst_nodes_mean)))
        start = int(rng.integers(0, num_nodes))
        for node in range(start, min(start + size, num_nodes)):
            if t < next_up[node]:
                continue  # still down from an earlier burst
            repair_s = repair_median_s * float(rng.lognormal(0.0, repair_sigma))
            t_up = t + max(1.0, repair_s)
            next_up[node] = t_up
            times.extend((t, t_up))
            nodes.extend((node, node))
            ups.extend((0, 1))

    order = np.argsort(np.asarray(times, dtype=np.float64), kind="stable")
    return Table(
        {
            "time": np.asarray(times, dtype=np.float64)[order],
            "node": np.asarray(nodes, dtype=np.int64)[order],
            "up": np.asarray(ups, dtype=np.int64)[order],
        }
    )


class HeliosTraceGenerator:
    """Generate the four-cluster Helios workload (Table 1 shape).

    Examples
    --------
    >>> gen = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=7))
    >>> traces = gen.generate()
    >>> sorted(traces) == ['Earth', 'Saturn', 'Uranus', 'Venus']
    True
    """

    def __init__(self, params: SynthParams | None = None) -> None:
        self.params = params or SynthParams()
        self.specs = helios_cluster_specs(seed=self.params.seed, scale=self.params.scale)

    def cluster_model(self, name: str) -> ClusterWorkloadModel:
        if name not in self.specs:
            raise KeyError(f"unknown cluster {name!r}")
        return ClusterWorkloadModel(
            spec=self.specs[name],
            params=self.params,
            target_utilization=TARGET_UTILIZATION[name],
            cpu_ratio=CPU_JOBS_PER_GPU_JOB[name],
            n_users=max(20, int(USERS_PER_CLUSTER[name] * min(1.0, self.params.scale * 2))),
            gpu_size_probs=CLUSTER_GPU_PROBS[name],
            seed=self.params.seed + _CLUSTER_SEED_OFFSET[name],
        )

    def generate_cluster(self, name: str) -> Table:
        """Generate one cluster's full trace (GPU + CPU jobs)."""
        return self.cluster_model(name).generate()

    def generate(self) -> dict[str, Table]:
        """Generate all four cluster traces."""
        return {name: self.generate_cluster(name) for name in self.specs}

    def generate_node_events(self, name: str, **knobs) -> Table:
        """Synthesize correlated node-failure events for one cluster.

        The seed is derived from the generator seed and the cluster name
        so node events are independent of (but reproducible alongside)
        the job trace.
        """
        if name not in self.specs:
            raise KeyError(f"unknown cluster {name!r}")
        spec = self.specs[name]
        digest = hashlib.sha256(
            f"node-events:{self.params.seed}:{name}".encode()
        ).digest()
        seed = int.from_bytes(digest[:8], "little")
        return synthesize_node_events(
            spec.num_nodes, self.params.horizon_seconds, seed, **knobs
        )


_CLUSTER_SEED_OFFSET = {"Venus": 11, "Earth": 23, "Saturn": 37, "Uranus": 53}
