"""The serving loop: framework components behind an event stream.

:class:`PredictionServer` is the paper's §4.1 runtime closed into a
long-running loop.  Requests are routed through the
:class:`~repro.framework.orchestrator.ResourceOrchestrator`:

* **QSSF queue ordering** — each micro-batch of concurrent submits is
  split into per-VC queues and dispatched in one
  ``decide_many("qssf", queues)`` call;
* **job-duration prediction** — optional per-batch predictions from the
  same service (``predict_durations``);
* **CES node control** — every node sample extends the demand series,
  requests an H-bins-ahead forecast (O(1) per bin via maintained prefix
  sums), and steps the shared :class:`~repro.energy.drs.DRSController`
  — the same object the batch :func:`~repro.energy.drs.run_drs` drives,
  so streamed decisions are byte-identical to a batch replay.  The
  serving loop deliberately keeps this *stepwise* controller (bins
  arrive one at a time); it is also the correctness oracle the batched
  sweep engine in :mod:`repro.energy.fast_drs` is parity-tested
  against, so online decisions, batch replays and grid sweeps can never
  disagree.

Between requests the :class:`~repro.framework.engine.ModelUpdateEngine`
ingests finished jobs and node samples; with ``online_updates`` on, the
incremental refit path advances models in place (the forecasters'
``update()``/``extend()`` protocol) while scratch refits remain the
fallback and correctness oracle.  ``online_updates=False`` freezes the
models — the mode the online/batch parity tests run in.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..energy.drs import DRSController, DRSParams
from ..energy.forecaster import ForecastFeatures
from ..frame import Table
from ..framework import (
    CESNodeService,
    ModelUpdateEngine,
    QSSFService,
    ResourceOrchestrator,
    UpdatePolicy,
)
from ..ml.gbdt import GBDTParams
from .stream import FINISH, NODE_SAMPLE, SUBMIT, EventStream
from .telemetry import LatencyRecorder, LatencyStats

__all__ = ["PredictionServer", "ServeConfig", "ShardReport"]


@dataclass(frozen=True)
class ServeConfig:
    """Serving-loop knobs (model sizes, batching, update policy)."""

    lam: float = 0.5
    qssf_gbdt: GBDTParams | None = None
    #: "incremental" (default): QSSF serving refits continue boosting on
    #: the new jobs only; "scratch": full-history refit (the oracle).
    qssf_refit_mode: str = "incremental"
    horizon_bins: int = 18
    bin_seconds: int = 600
    ces_features: ForecastFeatures | None = None
    ces_gbdt: GBDTParams | None = None
    ces_update_every: int = 36
    drs_params: DRSParams | None = None
    batch_window_s: float = 60.0
    predict_durations: bool = False
    online_updates: bool = True
    refit_mode: str = "auto"
    update_interval_s: float = 7 * 86_400.0
    update_max_buffered: int = 50_000
    decide_jobs: int = 1
    record_decisions: bool = False


@dataclass
class ShardReport:
    """Telemetry + decision digests for one served shard."""

    cluster: str
    events: int
    submits: int
    finishes: int
    node_samples: int
    qssf_batches: int
    qssf_decisions: int
    duration_requests: int
    wall_seconds: float
    events_per_s: float
    qssf_latency: LatencyStats
    ces_latency: LatencyStats
    refits: dict[str, dict[str, int]]
    qssf_digest: str
    ces_digest: str
    ces_summary: dict[str, float] = field(default_factory=dict)
    #: populated only under ``record_decisions`` (parity tests)
    decisions: list[tuple[str, tuple[str, ...]]] | None = None
    ces_active: np.ndarray | None = None

    def as_dict(self) -> dict:
        return {
            "cluster": self.cluster,
            "events": self.events,
            "submits": self.submits,
            "finishes": self.finishes,
            "node_samples": self.node_samples,
            "qssf_batches": self.qssf_batches,
            "qssf_decisions": self.qssf_decisions,
            "duration_requests": self.duration_requests,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_s": round(self.events_per_s, 1),
            "qssf_latency": self.qssf_latency.as_dict(),
            "ces_latency": self.ces_latency.as_dict(),
            "refits": self.refits,
            "qssf_digest": self.qssf_digest,
            "ces_digest": self.ces_digest,
            "ces_summary": self.ces_summary,
        }


class _GrowingSeries:
    """Append-only float series with maintained prefix sums.

    ``c1``/``c2`` mirror ``np.cumsum(np.insert(s, 0, 0.0))`` (and the
    squared variant) by sequential addition, so feature rows built from
    them are bit-identical to the batch path's — while appends stay
    amortized O(1) and a per-bin forecast O(row) instead of O(history).
    """

    def __init__(self, initial: np.ndarray | None = None, capacity: int = 1024) -> None:
        n0 = 0 if initial is None else len(initial)
        cap = max(capacity, 2 * n0 + 1)
        self._values = np.empty(cap)
        self._c1 = np.zeros(cap + 1)
        self._c2 = np.zeros(cap + 1)
        self.n = 0
        if initial is not None:
            for x in np.asarray(initial, dtype=float):
                self.append(float(x))

    def _grow(self) -> None:
        cap = 2 * len(self._values)
        new_values = np.empty(cap)
        new_values[: self.n] = self._values[: self.n]
        new_c1 = np.zeros(cap + 1)
        new_c1[: self.n + 1] = self._c1[: self.n + 1]
        new_c2 = np.zeros(cap + 1)
        new_c2[: self.n + 1] = self._c2[: self.n + 1]
        self._values, self._c1, self._c2 = new_values, new_c1, new_c2

    def append(self, x: float) -> int:
        """Append one value; returns its index."""
        if self.n == len(self._values):
            self._grow()
        i = self.n
        self._values[i] = x
        self._c1[i + 1] = self._c1[i] + x
        self._c2[i + 1] = self._c2[i] + x * x
        self.n = i + 1
        return i

    @property
    def values(self) -> np.ndarray:
        return self._values[: self.n]

    @property
    def cumsums(self) -> tuple[np.ndarray, np.ndarray]:
        return self._c1[: self.n + 1], self._c2[: self.n + 1]


class PredictionServer:
    """One shard's serving runtime: orchestrator + update engine + loop."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.orchestrator = ResourceOrchestrator()
        self.engine = ModelUpdateEngine(
            UpdatePolicy(
                interval_seconds=self.config.update_interval_s,
                max_buffered=self.config.update_max_buffered,
            ),
            mode=self.config.refit_mode,
        )
        self._qssf_history: Table | None = None
        self._ces_series: _GrowingSeries | None = None
        self._ces_controller: DRSController | None = None
        self._vc_decisions = 0

    # -- installation --------------------------------------------------

    def install_qssf(self, history: Table) -> QSSFService:
        """Fit QSSF on ``history`` and register it for serving.

        With ``qssf_refit_mode="incremental"`` (default) engine
        refreshes continue boosting the fitted GBDT on the newly
        finished jobs; in ``"scratch"`` mode (the oracle) each refresh
        rebuilds the model on ``history`` + every finished job observed
        since, so a long-running server never forgets its training
        window either way.
        """
        cfg = self.config
        service = QSSFService(
            lam=cfg.lam,
            gbdt_params=cfg.qssf_gbdt,
            refit_mode=cfg.qssf_refit_mode,
        ).fit(history)
        self._qssf_history = history

        def build_history(rows: list[dict]) -> Table:
            return Table.concat([history, Table.from_rows(rows)])

        self.engine.register(
            service,
            build_history,
            update_builder=Table.from_rows,
            prefitted=True,
        )
        self.orchestrator.replace(service)
        return service

    def install_ces(self, demand_history: np.ndarray, total_nodes: int) -> CESNodeService:
        """Fit the node-demand forecaster and arm the DRS controller.

        ``demand_history`` is the training window of the demand series;
        streamed node samples continue it (index ``len(history) + k``,
        calendar t0 pinned at the history start).
        """
        cfg = self.config
        history = np.asarray(demand_history, dtype=float)
        service = CESNodeService(
            horizon_bins=cfg.horizon_bins,
            drs_params=cfg.drs_params,
            update_every=cfg.ces_update_every,
            features=cfg.ces_features,
            gbdt_params=cfg.ces_gbdt,
        ).fit(history)

        def build_series(samples: list[float]) -> np.ndarray:
            return np.concatenate([history, np.asarray(samples, dtype=float)])

        self.engine.register(
            service,
            build_series,
            update_builder=lambda samples: np.asarray(samples, dtype=float),
            prefitted=True,
        )
        self.orchestrator.replace(service)
        self._ces_series = _GrowingSeries(history)
        self._ces_controller = DRSController(
            total_nodes,
            cfg.drs_params or DRSParams.scaled(total_nodes, cfg.bin_seconds),
        )
        return service

    # -- the loop ------------------------------------------------------

    def run(
        self,
        stream: EventStream,
        speedup: float | None = None,
        window_s: float | None = None,
    ) -> ShardReport:
        """Serve one stream to exhaustion; returns the shard report.

        ``speedup`` paces the stream against the wall clock (``None`` =
        as fast as possible); ``window_s`` overrides the configured
        micro-batch window.
        """
        cfg = self.config
        window = cfg.batch_window_s if window_s is None else window_s
        if len(stream):
            self.engine.reset_clock(float(stream.times[0]))
        qssf_lat = LatencyRecorder()
        ces_lat = LatencyRecorder()
        decisions: list[tuple[str, tuple[str, ...]]] = []
        qssf_digest = hashlib.sha256()
        counts = {SUBMIT: 0, FINISH: 0, NODE_SAMPLE: 0}
        qssf_batches = 0
        duration_requests = 0
        jobs_table = stream.jobs

        t_start = time.perf_counter()
        for batch in stream.play(window, speedup):
            counts[batch.kind] += len(batch)
            if batch.kind == SUBMIT:
                qssf_batches += 1
                queue = jobs_table.take(batch.refs)
                t0 = time.perf_counter()
                ordered = self._order_queues(queue)
                qssf_lat.record(time.perf_counter() - t0)
                if cfg.predict_durations:
                    self._predict_durations(queue)
                    duration_requests += len(batch)
                for vc, ids in ordered:
                    qssf_digest.update(vc.encode())
                    qssf_digest.update(b"\x1f".join(i.encode() for i in ids))
                    qssf_digest.update(b"\x00")
                if cfg.record_decisions:
                    decisions.extend(ordered)
            elif batch.kind == FINISH:
                if cfg.online_updates:
                    for ref in batch.refs:
                        self.engine.observe(
                            "qssf", jobs_table.row(int(ref)), now=batch.time
                        )
            else:  # NODE_SAMPLE
                self._serve_node_samples(stream, batch, ces_lat)
        wall = time.perf_counter() - t_start

        events = len(stream)
        refits = {
            name: {
                "refits": self.engine.refit_count(name),
                "incremental": self.engine.incremental_refit_count(name),
            }
            for name in self.engine.services
        }
        ces_digest = hashlib.sha256()
        ces_summary: dict[str, float] = {}
        ces_active = None
        if self._ces_controller is not None and self._ces_controller.steps:
            outcome = self._ces_controller.outcome()
            ces_digest.update(outcome.active.tobytes())
            ces_digest.update(
                f"{outcome.wake_events}:{outcome.nodes_woken}:{outcome.affected_jobs}".encode()
            )
            ces_svc = self.orchestrator.service("ces")
            ces_summary = {
                "wake_events": outcome.wake_events,
                "avg_active": round(float(outcome.active.mean()), 3),
                "avg_parked": round(outcome.avg_parked_nodes, 3),
                "affected_jobs": outcome.affected_jobs,
                # incremental extends driven by observe() between refits
                "forecaster_updates": getattr(ces_svc, "updates_applied", 0),
            }
            ces_active = outcome.active
        return ShardReport(
            cluster=stream.cluster,
            events=events,
            submits=counts[SUBMIT],
            finishes=counts[FINISH],
            node_samples=counts[NODE_SAMPLE],
            qssf_batches=qssf_batches,
            qssf_decisions=self._vc_decisions,
            duration_requests=duration_requests,
            wall_seconds=wall,
            events_per_s=events / wall if wall > 0 else 0.0,
            qssf_latency=qssf_lat.stats(),
            ces_latency=ces_lat.stats(),
            refits=refits,
            qssf_digest=qssf_digest.hexdigest(),
            ces_digest=ces_digest.hexdigest(),
            ces_summary=ces_summary,
            decisions=decisions if cfg.record_decisions else None,
            ces_active=ces_active,
        )

    # -- request routes ------------------------------------------------

    def _order_queues(self, queue: Table) -> list[tuple[str, tuple[str, ...]]]:
        """Split a submit micro-batch into per-VC queues and dispatch one
        ``decide_many`` round; returns (vc, ordered job ids) per queue."""
        vcs = queue["vc"]
        groups: dict[str, list[int]] = {}
        for i, vc in enumerate(vcs):
            groups.setdefault(str(vc), []).append(i)
        states = [queue.take(np.asarray(idx)) for idx in groups.values()]
        ordered = self.orchestrator.decide_many(
            "qssf", states, jobs=self.config.decide_jobs
        )
        self._vc_decisions += len(states)
        return [
            (vc, tuple(str(j) for j in table["job_id"]))
            for vc, table in zip(groups, ordered)
        ]

    def _predict_durations(self, queue: Table) -> np.ndarray:
        """The duration-prediction route (expected GPU time per job)."""
        return self.orchestrator.service("qssf").predict(queue)

    def _serve_node_samples(self, stream, batch, ces_lat: LatencyRecorder) -> None:
        series = self._ces_series
        controller = self._ces_controller
        if series is None or controller is None:
            raise RuntimeError("node samples in stream but CES not installed")
        assert stream.demand is not None
        service = self.orchestrator.service("ces")
        arrivals = stream.arrivals
        for ref in batch.refs:
            b = int(ref)
            value = float(stream.demand[b])
            t0 = time.perf_counter()
            i = series.append(value)
            fc = service.forecaster.predict_at(
                series.values, np.array([i]), cumsums=series.cumsums
            )[0]
            controller.step(value, fc, float(arrivals[b]) if arrivals is not None else 0.0)
            ces_lat.record(time.perf_counter() - t0)
            if self.config.online_updates:
                self.engine.observe("ces", value, now=float(batch.time))
