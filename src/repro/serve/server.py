"""The serving loop: framework components behind an event stream.

:class:`PredictionServer` is the paper's §4.1 runtime closed into a
long-running loop.  Requests are routed through the
:class:`~repro.framework.orchestrator.ResourceOrchestrator`:

* **QSSF queue ordering** — each micro-batch of concurrent submits is
  split into per-VC queues and dispatched in one
  ``decide_many("qssf", queues)`` call;
* **job-duration prediction** — optional per-batch predictions from the
  same service (``predict_durations``);
* **CES node control** — every node sample extends the demand series,
  requests an H-bins-ahead forecast (O(1) per bin via maintained prefix
  sums), and steps the shared :class:`~repro.energy.drs.DRSController`
  — the same object the batch :func:`~repro.energy.drs.run_drs` drives,
  so streamed decisions are byte-identical to a batch replay.  The
  serving loop deliberately keeps this *stepwise* controller (bins
  arrive one at a time); it is also the correctness oracle the batched
  sweep engine in :mod:`repro.energy.fast_drs` is parity-tested
  against, so online decisions, batch replays and grid sweeps can never
  disagree.

Between requests the :class:`~repro.framework.engine.ModelUpdateEngine`
ingests finished jobs and node samples; with ``online_updates`` on, the
incremental refit path advances models in place (the forecasters'
``update()``/``extend()`` protocol) while scratch refits remain the
fallback and correctness oracle.  ``online_updates=False`` freezes the
models — the mode the online/batch parity tests run in.

Fault tolerance (two independent planes):

* **Crash recovery** — ``run(..., checkpoint_every=K,
  checkpoint_sink=sink)`` emits a :class:`ShardCheckpoint` every K
  micro-batches: the batch cursor plus a pickled snapshot of every
  piece of mutable serving state (orchestrator, update engine, demand
  series, DRS controller, decision digests).  A fresh server resumed
  via ``run(..., resume=ckpt)`` replays the remaining batches and
  produces a report whose :meth:`ShardReport.parity_dict` is
  byte-identical to a never-failed run — the crash-recovery parity
  guarantee the chaos tests enforce.
* **Graceful degradation** — a *model* failure (a refit or forecast
  raising mid-stream) must not kill the shard.  QSSF failures step a
  one-rung-at-a-time ladder: incremental refits → scratch refits →
  a rolling-only estimator (``lam=1.0``) → FIFO passthrough.  CES
  failures drop node control to always-on (forecast = every node).
  Decisions keep flowing at every rung; every degraded decision is
  counted in ``ShardReport.degraded``.  *Data corruption* (non-finite
  demand, finish-before-submit) is the opposite case: it raises loudly
  rather than degrading, because serving garbage quietly is worse than
  stopping.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..energy.drs import DRSController, DRSParams
from ..energy.forecaster import ForecastFeatures
from ..frame import Table
from ..framework import (
    CESNodeService,
    ModelUpdateEngine,
    PassthroughQueueService,
    QSSFService,
    ResourceOrchestrator,
    UpdatePolicy,
)
from ..ml.gbdt import GBDTParams, keep_training_state
from ..obs import collect as obs
from ..obs.metrics import Histogram
from .stream import FINISH, NODE_FAIL, NODE_SAMPLE, SUBMIT, EventStream
from .telemetry import LatencyRecorder, LatencyStats

__all__ = [
    "PredictionServer",
    "ServeConfig",
    "ServingSession",
    "ShardCheckpoint",
    "ShardReport",
    "encode_decisions",
]

#: QSSF degradation ladder rungs (``ShardReport.degraded["qssf_rung"]``).
#: 0 = healthy (as configured), 1 = scratch refits only, 2 = rolling-only
#: estimator (lam=1.0, no GBDT), 3 = FIFO passthrough.
QSSF_LADDER = ("as-configured", "scratch-refits", "rolling-only", "fifo-passthrough")


@dataclass(frozen=True)
class ServeConfig:
    """Serving-loop knobs (model sizes, batching, update policy)."""

    lam: float = 0.5
    qssf_gbdt: GBDTParams | None = None
    #: "incremental" (default): QSSF serving refits continue boosting on
    #: the new jobs only; "scratch": full-history refit (the oracle).
    qssf_refit_mode: str = "incremental"
    horizon_bins: int = 18
    bin_seconds: int = 600
    ces_features: ForecastFeatures | None = None
    ces_gbdt: GBDTParams | None = None
    ces_update_every: int = 36
    drs_params: DRSParams | None = None
    batch_window_s: float = 60.0
    predict_durations: bool = False
    online_updates: bool = True
    refit_mode: str = "auto"
    update_interval_s: float = 7 * 86_400.0
    update_max_buffered: int = 50_000
    decide_jobs: int = 1
    record_decisions: bool = False
    #: "local" (default): every shard trains its own refits.  "central":
    #: when a replication channel is attached (serve-net router), due
    #: refits ship observation deltas to a router-side trainer and the
    #: shard installs the versioned snapshot it broadcasts back.  Without
    #: a channel the value is inert and refits stay local.
    replicate: str = "local"

    def __post_init__(self) -> None:
        if self.replicate not in ("local", "central"):
            raise ValueError(
                f"replicate must be 'local' or 'central', got {self.replicate!r}"
            )


@dataclass(frozen=True)
class ShardCheckpoint:
    """One shard's crash-recovery snapshot.

    ``cursor`` is the index of the next micro-batch to process; ``blob``
    pickles the server's full mutable state (models, engine, controller,
    loop counters, decision digests).  Resuming a fresh server from the
    checkpoint and replaying the remaining batches reproduces the
    never-failed run's :meth:`ShardReport.parity_dict` byte-for-byte.
    """

    cluster: str
    cursor: int
    seq: int
    blob: bytes


@dataclass
class ShardReport:
    """Telemetry + decision digests for one served shard."""

    cluster: str
    events: int
    submits: int
    finishes: int
    node_samples: int
    qssf_batches: int
    qssf_decisions: int
    duration_requests: int
    wall_seconds: float
    events_per_s: float
    qssf_latency: LatencyStats
    ces_latency: LatencyStats
    refits: dict[str, dict[str, int]]
    qssf_digest: str
    ces_digest: str
    ces_summary: dict[str, float] = field(default_factory=dict)
    #: populated only under ``record_decisions`` (parity tests)
    decisions: list[tuple[str, tuple[str, ...]]] | None = None
    #: per-submit-batch decision boundaries ``(bi, decisions_so_far)``,
    #: recorded with ``decisions`` — lets replication parity tests slice
    #: a merged-stream run's decisions by micro-batch
    decision_index: list[tuple[int, int]] | None = None
    ces_active: np.ndarray | None = None
    #: supervision retries spent serving this shard (set by the runtime,
    #: not the server — a never-supervised shard reports 0)
    retries: int = 0
    #: degradation-ladder telemetry: rung reached + degraded decisions
    degraded: dict[str, int] = field(default_factory=dict)
    #: node down/up event tallies from the stream's ``node_fail`` events
    node_health: dict[str, int] = field(default_factory=dict)
    #: bounded latency histograms behind ``qssf_latency``/``ces_latency``
    #: — mergeable across shards (``aggregate_reports`` computes fleet
    #: p50/p99 over the merged distribution).  Wall-clock plane: excluded
    #: from ``as_dict`` payloads and the parity surface.
    qssf_hist: Histogram | None = None
    ces_hist: Histogram | None = None
    #: actual in-process training work ``{service: {"count", "seconds"}}``
    #: — replication-plane telemetry (a delegating shard reports 0 counts
    #: while its ``refits`` bookkeeping still advances).  Wall-clock
    #: plane: excluded from ``as_dict`` payloads and the parity surface.
    fits: dict[str, dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "cluster": self.cluster,
            "events": self.events,
            "submits": self.submits,
            "finishes": self.finishes,
            "node_samples": self.node_samples,
            "qssf_batches": self.qssf_batches,
            "qssf_decisions": self.qssf_decisions,
            "duration_requests": self.duration_requests,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_s": round(self.events_per_s, 1),
            "qssf_latency": self.qssf_latency.as_dict(),
            "ces_latency": self.ces_latency.as_dict(),
            "refits": self.refits,
            "qssf_digest": self.qssf_digest,
            "ces_digest": self.ces_digest,
            "ces_summary": self.ces_summary,
        }
        # Fault-tolerance fields appear only when something happened, so
        # fault-free payloads (and their goldens) are byte-identical to
        # the pre-chaos schema.
        if self.retries:
            out["retries"] = self.retries
        if self.degraded:
            out["degraded"] = self.degraded
        if self.node_health:
            out["node_health"] = self.node_health
        return out

    def parity_dict(self) -> dict:
        """The deterministic subset of the report: everything except
        wall-clock metrics (latencies, throughput) and supervision
        retries.  Two runs of the same stream — including a crashed-and-
        resumed one — must agree on this dict exactly."""
        return {
            "cluster": self.cluster,
            "events": self.events,
            "submits": self.submits,
            "finishes": self.finishes,
            "node_samples": self.node_samples,
            "qssf_batches": self.qssf_batches,
            "qssf_decisions": self.qssf_decisions,
            "duration_requests": self.duration_requests,
            "refits": self.refits,
            "qssf_digest": self.qssf_digest,
            "ces_digest": self.ces_digest,
            "ces_summary": self.ces_summary,
            "degraded": self.degraded,
            "node_health": self.node_health,
        }

    def parity_bytes(self) -> bytes:
        """Canonical JSON encoding of :meth:`parity_dict` — the bytes the
        crash-recovery parity tests compare."""
        return json.dumps(
            self.parity_dict(), sort_keys=True, separators=(",", ":")
        ).encode()


class _GrowingSeries:
    """Append-only float series with maintained prefix sums.

    ``c1``/``c2`` mirror ``np.cumsum(np.insert(s, 0, 0.0))`` (and the
    squared variant) by sequential addition, so feature rows built from
    them are bit-identical to the batch path's — while appends stay
    amortized O(1) and a per-bin forecast O(row) instead of O(history).
    """

    def __init__(self, initial: np.ndarray | None = None, capacity: int = 1024) -> None:
        n0 = 0 if initial is None else len(initial)
        cap = max(capacity, 2 * n0 + 1)
        self._values = np.empty(cap)
        self._c1 = np.zeros(cap + 1)
        self._c2 = np.zeros(cap + 1)
        self.n = 0
        if initial is not None:
            for x in np.asarray(initial, dtype=float):
                self.append(float(x))

    def _grow(self) -> None:
        cap = 2 * len(self._values)
        new_values = np.empty(cap)
        new_values[: self.n] = self._values[: self.n]
        new_c1 = np.zeros(cap + 1)
        new_c1[: self.n + 1] = self._c1[: self.n + 1]
        new_c2 = np.zeros(cap + 1)
        new_c2[: self.n + 1] = self._c2[: self.n + 1]
        self._values, self._c1, self._c2 = new_values, new_c1, new_c2

    def append(self, x: float) -> int:
        """Append one value; returns its index."""
        if self.n == len(self._values):
            self._grow()
        i = self.n
        self._values[i] = x
        self._c1[i + 1] = self._c1[i] + x
        self._c2[i + 1] = self._c2[i] + x * x
        self.n = i + 1
        return i

    @property
    def values(self) -> np.ndarray:
        return self._values[: self.n]

    @property
    def cumsums(self) -> tuple[np.ndarray, np.ndarray]:
        return self._c1[: self.n + 1], self._c2[: self.n + 1]


class _AppendRows:
    """Module-level (hence picklable) QSSF history builder: the fitted
    history table plus every finished job observed since."""

    def __init__(self, history: Table) -> None:
        self.history = history

    def __call__(self, rows: list[dict]) -> Table:
        return Table.concat([self.history, Table.from_rows(rows)])


def _rows_table(rows: list[dict]) -> Table:
    return Table.from_rows(rows)


class _AppendSamples:
    """Picklable CES series builder: training window + streamed samples."""

    def __init__(self, history: np.ndarray) -> None:
        self.history = history

    def __call__(self, samples: list[float]) -> np.ndarray:
        return np.concatenate([self.history, np.asarray(samples, dtype=float)])


def _sample_array(samples: list[float]) -> np.ndarray:
    return np.asarray(samples, dtype=float)


def encode_decisions(ordered: list[tuple[str, tuple[str, ...]]]) -> bytes:
    """Canonical byte encoding of one submit batch's queue decisions.

    Batch-boundary free (each ``(vc, ids)`` entry is self-delimiting), so
    the digest over a stream equals the digest over any re-batching of
    the same decisions — the property the replication parity tests use to
    compare a replica's digest against a slice of the merged run's.
    """
    out = bytearray()
    for vc, ids in ordered:
        out += vc.encode()
        out += b"\x1f".join(i.encode() for i in ids)
        out += b"\x00"
    return bytes(out)


def _fresh_loop_state() -> dict[str, Any]:
    return {
        "cursor": 0,
        "counts": {SUBMIT: 0, FINISH: 0, NODE_SAMPLE: 0, NODE_FAIL: 0},
        "qssf_batches": 0,
        "duration_requests": 0,
        "qssf_bytes": bytearray(),
        "decisions": [],
        "decision_index": [],
        "node_down": 0,
        "node_up": 0,
        "down_now": 0,
        "max_down": 0,
        "ckpt_seq": 0,
    }


class PredictionServer:
    """One shard's serving runtime: orchestrator + update engine + loop."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.orchestrator = ResourceOrchestrator()
        self.engine = ModelUpdateEngine(
            UpdatePolicy(
                interval_seconds=self.config.update_interval_s,
                max_buffered=self.config.update_max_buffered,
            ),
            mode=self.config.refit_mode,
        )
        self._qssf_history: Table | None = None
        self._ces_series: _GrowingSeries | None = None
        self._ces_controller: DRSController | None = None
        self._vc_decisions = 0
        #: degradation ladder position (index into :data:`QSSF_LADDER`)
        self._qssf_rung = 0
        self._ces_degraded = False
        #: degradation telemetry, copied into the shard report
        self.degraded: dict[str, int] = {}

    # -- installation --------------------------------------------------

    def install_qssf(self, history: Table) -> QSSFService:
        """Fit QSSF on ``history`` and register it for serving.

        With ``qssf_refit_mode="incremental"`` (default) engine
        refreshes continue boosting the fitted GBDT on the newly
        finished jobs; in ``"scratch"`` mode (the oracle) each refresh
        rebuilds the model on ``history`` + every finished job observed
        since, so a long-running server never forgets its training
        window either way.
        """
        cfg = self.config
        service = QSSFService(
            lam=cfg.lam,
            gbdt_params=cfg.qssf_gbdt,
            refit_mode=cfg.qssf_refit_mode,
        ).fit(history)
        self._qssf_history = history
        self.engine.register(
            service,
            _AppendRows(history),
            update_builder=_rows_table,
            prefitted=True,
        )
        self.orchestrator.replace(service)
        return service

    def install_ces(self, demand_history: np.ndarray, total_nodes: int) -> CESNodeService:
        """Fit the node-demand forecaster and arm the DRS controller.

        ``demand_history`` is the training window of the demand series;
        streamed node samples continue it (index ``len(history) + k``,
        calendar t0 pinned at the history start).
        """
        cfg = self.config
        history = np.asarray(demand_history, dtype=float)
        service = CESNodeService(
            horizon_bins=cfg.horizon_bins,
            drs_params=cfg.drs_params,
            update_every=cfg.ces_update_every,
            features=cfg.ces_features,
            gbdt_params=cfg.ces_gbdt,
        ).fit(history)
        self.engine.register(
            service,
            _AppendSamples(history),
            update_builder=_sample_array,
            prefitted=True,
        )
        self.orchestrator.replace(service)
        self._ces_series = _GrowingSeries(history)
        self._ces_controller = DRSController(
            total_nodes,
            cfg.drs_params or DRSParams.scaled(total_nodes, cfg.bin_seconds),
        )
        return service

    # -- model replication ---------------------------------------------

    def enable_central_refits(self) -> None:
        """Attach this server to a replication channel: due refits for
        replicable services queue versioned sync requests (see
        ``engine.sync_requests()``) instead of training locally.  The
        transport ships them to the central trainer and installs the
        snapshots it returns via :meth:`install_sync`."""
        self.engine.delegated = True

    def install_sync(self, name: str, version: int, blob: bytes) -> bool:
        """Install a centrally-trained model snapshot; version-gated.

        Returns True when the model was swapped in (engine + orchestrator
        hot-swap), False for a stale version or a degraded shard.  A
        shard that stepped its degradation ladder keeps the fallback
        service — the version is consumed so the sync plane unblocks,
        but the remote model is discarded (local degradation wins).
        """
        if name == "qssf" and self._qssf_rung:
            self.engine.skip_snapshot(name, version)
            return False
        service = pickle.loads(blob)
        if not self.engine.install_snapshot(name, version, service):
            return False
        self.orchestrator.replace(service)
        return True

    # -- checkpoint / restore ------------------------------------------

    def _snapshot(self, stream: EventStream, state: dict) -> ShardCheckpoint:
        """Freeze every piece of mutable serving state into a pickle.

        Wall-clock telemetry (latency recorders) is deliberately *not*
        checkpointed — it is excluded from the parity surface.
        """
        payload = {
            "config": self.config,
            "orchestrator": self.orchestrator,
            "engine": self.engine,
            "ces_series": self._ces_series,
            "ces_controller": self._ces_controller,
            "vc_decisions": self._vc_decisions,
            "qssf_history": self._qssf_history,
            "qssf_rung": self._qssf_rung,
            "ces_degraded": self._ces_degraded,
            "degraded": dict(self.degraded),
            "state": {**state, "qssf_bytes": bytes(state["qssf_bytes"]),
                      "counts": dict(state["counts"]),
                      "decisions": list(state["decisions"]),
                      "decision_index": list(state["decision_index"])},
        }
        with keep_training_state():
            blob = pickle.dumps(payload)
        return ShardCheckpoint(
            cluster=stream.cluster,
            cursor=state["cursor"],
            seq=state["ckpt_seq"],
            blob=blob,
        )

    def _restore(self, checkpoint: ShardCheckpoint) -> dict:
        """Replace this server's state with a checkpoint's; returns the
        loop state to resume from."""
        payload = pickle.loads(checkpoint.blob)
        self.config = payload["config"]
        self.orchestrator = payload["orchestrator"]
        self.engine = payload["engine"]
        self._ces_series = payload["ces_series"]
        self._ces_controller = payload["ces_controller"]
        self._vc_decisions = payload["vc_decisions"]
        self._qssf_history = payload["qssf_history"]
        self._qssf_rung = payload["qssf_rung"]
        self._ces_degraded = payload["ces_degraded"]
        self.degraded = dict(payload["degraded"])
        state = dict(payload["state"])
        state["qssf_bytes"] = bytearray(state["qssf_bytes"])
        return state

    # -- graceful degradation ------------------------------------------

    def _degrade_qssf(self) -> None:
        """Step the QSSF ladder exactly one rung (jump to passthrough if
        even the fallback install fails)."""
        rung = min(self._qssf_rung + 1, len(QSSF_LADDER) - 1)
        try:
            if rung == 1:
                # Incremental refits implicated: scratch refits only.
                self.orchestrator.service("qssf").refit_mode = "scratch"
            elif rung == 2:
                # Model refits implicated: rolling-only estimator (lam=1
                # never consults the GBDT), scratch-fit on the original
                # training window.
                svc = QSSFService(lam=1.0, refit_mode="scratch")
                if self._qssf_history is not None:
                    svc.fit(self._qssf_history)
                    self.engine.swap("qssf", svc, prefitted=True)
                else:
                    self.engine.swap("qssf", svc, prefitted=False)
                self.orchestrator.replace(svc)
            else:
                rung = len(QSSF_LADDER) - 1
                svc = PassthroughQueueService()
                self.engine.swap("qssf", svc, prefitted=True)
                self.orchestrator.replace(svc)
        except Exception:
            rung = len(QSSF_LADDER) - 1
            svc = PassthroughQueueService()
            self.engine.swap("qssf", svc, prefitted=True)
            self.orchestrator.replace(svc)
        self._qssf_rung = rung
        self.degraded["qssf_rung"] = rung
        obs.counter_add("serve.degrade.qssf_transitions")

    def _degrade_ces(self) -> None:
        """Drop CES node control to always-on (forecast = every node)."""
        self._ces_degraded = True
        self.degraded["ces_rung"] = 1
        obs.counter_add("serve.degrade.ces_transitions")

    def _count_degraded(self, key: str, n: int = 1) -> None:
        self.degraded[key] = self.degraded.get(key, 0) + n

    # -- the loop ------------------------------------------------------

    def run(
        self,
        stream: EventStream,
        speedup: float | None = None,
        window_s: float | None = None,
        *,
        checkpoint_every: int | None = None,
        checkpoint_sink: Callable[[ShardCheckpoint], None] | None = None,
        resume: ShardCheckpoint | None = None,
        on_batch: Callable[[int], None] | None = None,
    ) -> ShardReport:
        """Serve one stream to exhaustion; returns the shard report.

        ``speedup`` paces the stream against the wall clock (``None`` =
        as fast as possible); ``window_s`` overrides the configured
        micro-batch window.  ``checkpoint_every=K`` (with a
        ``checkpoint_sink``) emits a :class:`ShardCheckpoint` every K
        micro-batches; ``resume`` restores one, skipping every batch
        before its cursor.  ``on_batch(bi)`` is invoked before each
        *processed* batch — the supervisor's heartbeat/fault hook.

        ``run`` is a thin wrapper over :class:`ServingSession`: it owns
        the stream iteration and nothing else, so a caller that receives
        batches from elsewhere (the serve-net socket worker) drives the
        identical loop by pushing into a session directly.
        """
        window = self.config.batch_window_s if window_s is None else window_s
        session = ServingSession(
            self,
            stream,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=checkpoint_sink,
            resume=resume,
        )
        for bi, batch in enumerate(stream.play(window, speedup)):
            if bi < session.cursor:
                continue  # replayed prefix already served pre-crash
            if on_batch is not None:
                on_batch(bi)
            session.process(bi, batch)
        return session.finish()

    def _publish_obs(self, state: dict, report: ShardReport,
                     qssf_lat: LatencyRecorder, ces_lat: LatencyRecorder) -> None:
        """Publish this run's metrics into the global obs recorder.

        Counters are derived from the *checkpointed* loop state and the
        final report — the same numbers the crash-recovery parity
        guarantee covers — and published exactly once, at the end of a
        completed run.  A SIGKILLed attempt publishes nothing (its
        recorder dies with it) and the resumed attempt publishes the
        full totals, so spans/metrics survive checkpoint-resume without
        double-counting replayed batches, and the forked and in-process
        supervisors report identical totals by construction.
        """
        c = report.cluster
        counts = state["counts"]
        obs.counter_add("serve.batches", state["cursor"])
        obs.counter_add("serve.events.submit", counts[SUBMIT])
        obs.counter_add("serve.events.finish", counts[FINISH])
        obs.counter_add("serve.events.node_sample", counts[NODE_SAMPLE])
        obs.counter_add("serve.events.node_fail", counts[NODE_FAIL])
        obs.counter_add("serve.qssf.batches", state["qssf_batches"])
        obs.counter_add("serve.qssf.decisions", self._vc_decisions)
        obs.counter_add("serve.duration_requests", state["duration_requests"])
        obs.counter_add("serve.checkpoints", state["ckpt_seq"])
        for service, counters in report.refits.items():
            for key, n in counters.items():
                obs.counter_add(f"serve.refits.{service}.{key}", n)
        for key, n in self.degraded.items():
            if key.endswith("_rung"):
                obs.gauge_set(f"serve.degraded.{key}[{c}]", n)
            else:
                obs.counter_add(f"serve.degraded.{key}", n)
        for key, n in report.node_health.items():
            if key == "max_down":
                obs.gauge_set(f"serve.node.max_down[{c}]", n)
            else:
                obs.counter_add(f"serve.node.{key}", n)
        obs.gauge_set(f"serve.events_per_s[{c}]", round(report.events_per_s, 1))
        obs.merge_histogram("serve.qssf.decide_s", qssf_lat.hist)
        obs.merge_histogram("serve.ces.step_s", ces_lat.hist)

    # -- request routes ------------------------------------------------

    def _order_queues(self, queue: Table) -> list[tuple[str, tuple[str, ...]]]:
        """Split a submit micro-batch into per-VC queues and dispatch one
        ``decide_many`` round; returns (vc, ordered job ids) per queue."""
        vcs = queue["vc"]
        groups: dict[str, list[int]] = {}
        for i, vc in enumerate(vcs):
            groups.setdefault(str(vc), []).append(i)
        states = [queue.take(np.asarray(idx)) for idx in groups.values()]
        ordered = self.orchestrator.decide_many(
            "qssf", states, jobs=self.config.decide_jobs
        )
        self._vc_decisions += len(states)
        return [
            (vc, tuple(str(j) for j in table["job_id"]))
            for vc, table in zip(groups, ordered)
        ]

    def _order_with_fallback(self, queue: Table) -> list[tuple[str, tuple[str, ...]]]:
        """Order a submit batch, stepping the degradation ladder on each
        failure; decisions never stop flowing."""
        for _ in range(len(QSSF_LADDER)):
            try:
                return self._order_queues(queue)
            except Exception:
                self._count_degraded("qssf_failures")
                self._degrade_qssf()
        return self._passthrough_order(queue)

    def _passthrough_order(self, queue: Table) -> list[tuple[str, tuple[str, ...]]]:
        """Last-resort FIFO ordering without touching any service."""
        vcs = queue["vc"]
        ids = queue["job_id"]
        groups: dict[str, list[str]] = {}
        for vc, jid in zip(vcs, ids):
            groups.setdefault(str(vc), []).append(str(jid))
        self._vc_decisions += len(groups)
        return [(vc, tuple(jids)) for vc, jids in groups.items()]

    def _predict_durations(self, queue: Table) -> np.ndarray:
        """The duration-prediction route (expected GPU time per job)."""
        return self.orchestrator.service("qssf").predict(queue)

    def _serve_node_samples(self, stream, batch, ces_lat: LatencyRecorder) -> None:
        series = self._ces_series
        controller = self._ces_controller
        if series is None or controller is None:
            raise RuntimeError("node samples in stream but CES not installed")
        assert stream.demand is not None
        arrivals = stream.arrivals
        always_on = float(controller.total_nodes)
        for ref in batch.refs:
            b = int(ref)
            value = float(stream.demand[b])
            if not np.isfinite(value):
                # Corruption, not failure: serving a poisoned series
                # quietly would silently wreck every downstream decision.
                raise ValueError(
                    f"corrupt node-demand sample at bin {b}: {value!r}"
                )
            arr = float(arrivals[b]) if arrivals is not None else 0.0
            t0 = time.perf_counter()
            i = series.append(value)
            if self._ces_degraded:
                fc = always_on
                self._count_degraded("ces_steps")
            else:
                try:
                    fc = float(
                        self.orchestrator.service("ces").forecaster.predict_at(
                            series.values, np.array([i]), cumsums=series.cumsums
                        )[0]
                    )
                except Exception:
                    self._degrade_ces()
                    fc = always_on
                    self._count_degraded("ces_steps")
            controller.step(value, fc, arr)
            ces_lat.record(time.perf_counter() - t0)
            if self.config.online_updates and not self._ces_degraded:
                try:
                    self.engine.observe("ces", value, now=float(batch.time))
                except Exception:
                    self._count_degraded("refit_failures")
                    self._degrade_ces()


class ServingSession:
    """Push-driven serving loop state: feed micro-batches one at a time.

    Owns everything :meth:`PredictionServer.run` used to keep as locals
    — the loop-state dict, latency recorders, phase-timing buffers and
    checkpoint cadence — so a caller that *receives* batches (the
    serve-net socket worker, fed frame-by-frame by the router) drives
    the exact loop ``run`` drives when it owns the stream.  ``run`` is
    the wrapper: construct a session, push every batch from
    ``stream.play``, call :meth:`finish` — so every parity guarantee
    (crash recovery, degradation telemetry, obs totals) holds for both
    entry points by construction.

    :meth:`process` is idempotent under re-delivery: a batch index below
    the session cursor (a network duplicate, or the replayed prefix of a
    resumed stream) is skipped without side effects — the property the
    router's retry/rewind protocol relies on.
    """

    def __init__(
        self,
        server: PredictionServer,
        stream: EventStream,
        *,
        checkpoint_every: int | None = None,
        checkpoint_sink: Callable[[ShardCheckpoint], None] | None = None,
        resume: ShardCheckpoint | None = None,
        partial: bool = False,
    ) -> None:
        self.server = server
        self.stream = stream
        #: True when this session serves only a slice of the stream's
        #: batches (a replica): the report counts events actually served
        #: instead of the stream length.
        self.partial = partial
        self._checkpoint_every = checkpoint_every
        self._checkpoint_sink = checkpoint_sink
        self._resumed = resume is not None
        if resume is not None:
            if resume.cluster != stream.cluster:
                raise ValueError(
                    f"checkpoint is for shard {resume.cluster!r}, "
                    f"stream is {stream.cluster!r}"
                )
            self.state = server._restore(resume)
        else:
            self.state = _fresh_loop_state()
            if len(stream):
                server.engine.reset_clock(float(stream.times[0]))
        self._qssf_lat = LatencyRecorder()
        self._ces_lat = LatencyRecorder()
        self._jobs_table = stream.jobs

        # One hoisted enabled-check: the per-batch cost of disabled obs
        # is the two ``phase_hists is not None`` branches below.  Phase
        # timings buffer into small per-kind lists and flush through the
        # vectorized ``record_many`` — a scalar ``Histogram.record`` per
        # batch would alone eat most of the 2% overhead budget.
        self._phase_hists = None
        if obs.is_enabled():
            self._phase_hists = {
                SUBMIT: obs.histogram("serve.phase.submit_s"),
                FINISH: obs.histogram("serve.phase.finish_s"),
                NODE_SAMPLE: obs.histogram("serve.phase.node_sample_s"),
                NODE_FAIL: obs.histogram("serve.phase.node_fail_s"),
            }
            self._phase_buf: dict[int, list[float]] = {
                k: [] for k in self._phase_hists
            }
            self._phase_pending = 0
        self._span_t0 = obs.wall_now()
        self._t_start = time.perf_counter()

    @property
    def cursor(self) -> int:
        """Index of the next micro-batch this session expects."""
        return self.state["cursor"]

    def process(self, bi: int, batch) -> bool:
        """Serve one micro-batch; returns False for an already-served
        index (replayed prefix or network duplicate), True otherwise.
        ``bi`` must equal the cursor when it is not a duplicate —
        serving out of order would corrupt the decision digests."""
        state = self.state
        if bi < state["cursor"]:
            return False
        if bi > state["cursor"]:
            raise ValueError(
                f"batch {bi} out of order: session cursor is {state['cursor']}"
            )
        server = self.server
        cfg = server.config
        if self._phase_hists is not None:
            t_batch = time.perf_counter()
        state["counts"][batch.kind] += len(batch)
        if batch.kind == SUBMIT:
            state["qssf_batches"] += 1
            queue = self._jobs_table.take(batch.refs)
            t0 = time.perf_counter()
            ordered = server._order_with_fallback(queue)
            self._qssf_lat.record(time.perf_counter() - t0)
            if server._qssf_rung:
                server._count_degraded("qssf_decisions", len(ordered))
            if cfg.predict_durations:
                try:
                    server._predict_durations(queue)
                    state["duration_requests"] += len(batch)
                except Exception:
                    server._count_degraded("duration_failures")
                    server._degrade_qssf()
            state["qssf_bytes"] += encode_decisions(ordered)
            if cfg.record_decisions:
                state["decisions"].extend(ordered)
                state["decision_index"].append((bi, len(state["decisions"])))
        elif batch.kind == FINISH:
            if cfg.online_updates:
                for ref in batch.refs:
                    try:
                        server.engine.observe(
                            "qssf", self._jobs_table.row(int(ref)), now=batch.time
                        )
                    except Exception:
                        # A failed refit leaves the engine's pending
                        # buffer intact; step the ladder one rung and
                        # let the next observation retry at it.
                        server._count_degraded("refit_failures")
                        server._degrade_qssf()
        elif batch.kind == NODE_FAIL:
            assert self.stream.node_events is not None
            ups = self.stream.node_events["up"]
            for ref in batch.refs:
                if int(ups[int(ref)]):
                    state["node_up"] += 1
                    state["down_now"] -= 1
                else:
                    state["node_down"] += 1
                    state["down_now"] += 1
                    state["max_down"] = max(state["max_down"], state["down_now"])
        else:  # NODE_SAMPLE
            server._serve_node_samples(self.stream, batch, self._ces_lat)
        state["cursor"] = bi + 1
        if self._phase_hists is not None:
            self._phase_buf[batch.kind].append(time.perf_counter() - t_batch)
            self._phase_pending += 1
            if self._phase_pending >= 1024:  # bounded buffer, batched flush
                self._flush_phases()
        if (
            self._checkpoint_every
            and self._checkpoint_sink is not None
            and (bi + 1) % self._checkpoint_every == 0
        ):
            t_ckpt = time.perf_counter()
            self._checkpoint_sink(self.checkpoint())
            if self._phase_hists is not None:
                obs.histogram("serve.checkpoint_s").record(
                    time.perf_counter() - t_ckpt
                )
        return True

    def checkpoint(self) -> ShardCheckpoint:
        """Snapshot the session now (the cadence in :meth:`process` uses
        this too; callers may also force one, e.g. before a handoff)."""
        self.state["ckpt_seq"] += 1
        return self.server._snapshot(self.stream, self.state)

    def _flush_phases(self) -> None:
        for kind, pending in self._phase_buf.items():
            if pending:
                self._phase_hists[kind].record_many(pending)
                pending.clear()
        self._phase_pending = 0

    def finish(self) -> ShardReport:
        """Close the session and build the shard report (plus the one-
        shot obs publication a completed run makes)."""
        server = self.server
        state = self.state
        wall = time.perf_counter() - self._t_start
        if self._phase_hists is not None:
            self._flush_phases()

        counts = state["counts"]
        events = sum(counts.values()) if self.partial else len(self.stream)
        refits = {
            name: {
                "refits": server.engine.refit_count(name),
                "incremental": server.engine.incremental_refit_count(name),
            }
            for name in server.engine.services
        }
        ces_digest = hashlib.sha256()
        ces_summary: dict[str, float] = {}
        ces_active = None
        if server._ces_controller is not None and server._ces_controller.steps:
            outcome = server._ces_controller.outcome()
            ces_digest.update(outcome.active.tobytes())
            ces_digest.update(
                f"{outcome.wake_events}:{outcome.nodes_woken}:{outcome.affected_jobs}".encode()
            )
            ces_svc = server.orchestrator.service("ces")
            ces_summary = {
                "wake_events": outcome.wake_events,
                "avg_active": round(float(outcome.active.mean()), 3),
                "avg_parked": round(outcome.avg_parked_nodes, 3),
                "affected_jobs": outcome.affected_jobs,
                # incremental extends driven by observe() between refits
                "forecaster_updates": getattr(ces_svc, "updates_applied", 0),
            }
            ces_active = outcome.active
        node_health: dict[str, int] = {}
        if state["node_down"] or state["node_up"]:
            node_health = {
                "node_down": state["node_down"],
                "node_up": state["node_up"],
                "max_down": state["max_down"],
            }
        fits = {
            name: {
                "count": server.engine.fits_performed(name),
                "seconds": server.engine.fit_seconds(name),
            }
            for name in server.engine.services
        }
        report = ShardReport(
            cluster=self.stream.cluster,
            events=events,
            submits=counts[SUBMIT],
            finishes=counts[FINISH],
            node_samples=counts[NODE_SAMPLE],
            qssf_batches=state["qssf_batches"],
            qssf_decisions=server._vc_decisions,
            duration_requests=state["duration_requests"],
            wall_seconds=wall,
            events_per_s=events / wall if wall > 0 else 0.0,
            qssf_latency=self._qssf_lat.stats(),
            ces_latency=self._ces_lat.stats(),
            refits=refits,
            qssf_digest=hashlib.sha256(bytes(state["qssf_bytes"])).hexdigest(),
            ces_digest=ces_digest.hexdigest(),
            ces_summary=ces_summary,
            decisions=(
                list(state["decisions"]) if server.config.record_decisions else None
            ),
            decision_index=(
                list(state["decision_index"])
                if server.config.record_decisions else None
            ),
            ces_active=ces_active,
            degraded=dict(server.degraded),
            node_health=node_health,
            qssf_hist=self._qssf_lat.hist,
            ces_hist=self._ces_lat.hist,
            fits=fits,
        )
        if self._phase_hists is not None:
            server._publish_obs(state, report, self._qssf_lat, self._ces_lat)
            obs.record_span(
                "serve.run", self._span_t0, obs.wall_now(),
                cluster=self.stream.cluster, events=events,
                resumed=self._resumed,
            )
        return report
