"""Event-stream layer: traces → time-ordered serving events.

An :class:`EventStream` is the serving runtime's input: a merged,
time-sorted sequence of three event kinds over one cluster shard:

* ``submit`` — a job arrives (carries its trace row); the server routes
  the micro-batch of concurrent submits to QSSF for queue ordering;
* ``finish`` — a job completes (same row); the server feeds it to the
  Model Update Engine so the duration estimators stay fresh;
* ``node_sample`` — one node-demand observation on a regular time grid;
  the server forecasts demand H bins ahead and steps the DRS controller.

Streams are built either from a raw trace (finish events fall at
``submit + duration`` — the as-if-unqueued approximation, and node
demand comes from :func:`approx_node_demand`) or from a simulator
:class:`~repro.sim.engine.ReplayResult` (finish events at the replayed
``end_time``, node demand from the replay telemetry).

Internally a stream is four parallel numpy arrays (time, kind, ref,
batch id) — no per-event Python objects are materialized until a
consumer iterates, which is what keeps replay throughput in the
hundreds of thousands of events per second.  Events at one instant are
ordered finish < node_sample < submit, matching the simulator's
"finishes before arrivals" invariant.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..frame import Table
from ..sim.engine import ReplayResult
from ..sim.telemetry import running_nodes_series
from ..stats.timeseries import TimeGrid, interval_concurrency

__all__ = [
    "FINISH",
    "NODE_FAIL",
    "NODE_SAMPLE",
    "SUBMIT",
    "Event",
    "EventBatch",
    "EventStream",
    "approx_node_demand",
]

#: kind codes double as the tie-break rank at equal timestamps.
FINISH = 0
NODE_SAMPLE = 1
SUBMIT = 2
#: node down/up health events (refs index the stream's ``node_events``
#: table).  Ranked last so the pre-existing kinds keep their codes and
#: every node-event-free stream batches exactly as before.
NODE_FAIL = 3

_KIND_NAMES = {
    FINISH: "finish",
    NODE_SAMPLE: "node_sample",
    SUBMIT: "submit",
    NODE_FAIL: "node_fail",
}


@dataclass(frozen=True)
class Event:
    """One serving event (materialized on demand; see ``EventStream``)."""

    time: float
    kind: int
    cluster: str
    ref: int  # trace row index (submit/finish) or grid bin index (node_sample)

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES[self.kind]


@dataclass(frozen=True)
class EventBatch:
    """A micro-batch: consecutive same-kind events in one batching window.

    ``refs`` indexes the stream's ``jobs`` table for submit/finish
    batches and the stream's demand grid for node samples.  ``time`` is
    the *latest* event time in the batch — the decision timestamp.
    """

    kind: int
    time: float
    refs: np.ndarray

    def __len__(self) -> int:
        return len(self.refs)


def approx_node_demand(
    trace: Table, grid: TimeGrid, cap: float | None = None
) -> np.ndarray:
    """Node-demand series derived from the trace alone (no simulator).

    Counts the nodes each job occupies over ``[submit, submit +
    duration)`` — the as-if-unqueued approximation of the replay's
    running-nodes telemetry.  Good enough to train and exercise the CES
    forecaster in replay-free (smoke) scenarios.  ``cap`` clips the
    series at the cluster's physical node count: without queueing, the
    overlap concurrency can exceed what the hardware could actually
    host, which would make every DRS bin a forced wake-up.
    """
    submit = trace["submit_time"].astype(float)
    demand = interval_concurrency(
        grid,
        submit,
        submit + trace["duration"].astype(float),
        trace["node_num"].astype(float),
    )
    return demand if cap is None else np.minimum(demand, float(cap))


class EventStream:
    """Time-ordered submit/finish/node-sample events for one shard."""

    def __init__(
        self,
        cluster: str,
        jobs: Table,
        times: np.ndarray,
        kinds: np.ndarray,
        refs: np.ndarray,
        grid: TimeGrid | None = None,
        demand: np.ndarray | None = None,
        arrivals: np.ndarray | None = None,
        node_events: Table | None = None,
    ) -> None:
        if not (len(times) == len(kinds) == len(refs)):
            raise ValueError("times/kinds/refs must align")
        if demand is not None and not np.all(np.isfinite(np.asarray(demand, dtype=float))):
            bad = int(np.flatnonzero(~np.isfinite(np.asarray(demand, dtype=float)))[0])
            raise ValueError(
                f"corrupt node-demand series: non-finite value at bin {bad}"
            )
        self.cluster = cluster
        self.jobs = jobs
        self.times = np.asarray(times, dtype=float)
        self.kinds = np.asarray(kinds, dtype=np.int8)
        self.refs = np.asarray(refs, dtype=np.int64)
        self.grid = grid
        self.demand = demand
        self.arrivals = arrivals
        self.node_events = node_events

    # -- construction --------------------------------------------------

    @classmethod
    def from_trace(
        cls,
        trace: Table,
        cluster: str = "",
        t0: float | None = None,
        t1: float | None = None,
        bin_seconds: int | None = None,
        demand: np.ndarray | None = None,
        node_events: Table | None = None,
    ) -> "EventStream":
        """Stream a raw (un-replayed) trace.

        Submit events fall at ``submit_time``; finish events at ``submit
        + duration`` (dropped when past ``t1``).  With ``bin_seconds``
        set, node-sample events cover ``[t0, t1)``; their values come
        from ``demand`` when given (one per bin — e.g. a capacity-scaled
        series from :func:`approx_node_demand` over the full cluster
        trace), else default to :func:`approx_node_demand` of ``trace``
        itself.  ``node_events`` (a time/node/up table, e.g. from
        :func:`repro.traces.synth.synthesize_node_events`) adds
        ``node_fail`` events, clipped to the stream window.
        """
        submit = trace["submit_time"].astype(float)
        finish = submit + trace["duration"].astype(float)
        lo = float(submit.min()) if t0 is None and len(trace) else (t0 or 0.0)
        hi = float(finish.max()) + 1.0 if t1 is None and len(trace) else (t1 or 1.0)
        grid = arrivals = None
        if bin_seconds is not None:
            grid = TimeGrid.covering(lo, hi, bin_seconds)
            if demand is None:
                demand = approx_node_demand(trace, grid)
            elif len(demand) != grid.bins:
                raise ValueError(
                    f"demand must have one value per bin ({grid.bins}), "
                    f"got {len(demand)}"
                )
            arrivals = _arrivals_per_bin(submit, grid)
        else:
            demand = None
        return cls._assemble(
            cluster, trace, submit, finish, hi, grid, demand, arrivals, node_events
        )

    @classmethod
    def from_replay(
        cls,
        replay: ReplayResult,
        cluster: str = "",
        bin_seconds: int | None = None,
        t0: float = 0.0,
        node_events: Table | None = None,
    ) -> "EventStream":
        """Stream a replayed trace: finishes at the *simulated* end time,
        node demand from the replay's running-nodes telemetry."""
        trace = replay.trace
        submit = trace["submit_time"].astype(float)
        finish = replay.end_times.astype(float)
        hi = float(finish.max()) + 1.0 if len(trace) else t0 + 1.0
        grid = demand = arrivals = None
        if bin_seconds is not None:
            grid = TimeGrid.covering(t0, hi, bin_seconds)
            demand = running_nodes_series(replay, grid)
            arrivals = _arrivals_per_bin(submit, grid)
        return cls._assemble(
            cluster, trace, submit, finish, hi, grid, demand, arrivals, node_events
        )

    @classmethod
    def _assemble(
        cls, cluster, trace, submit, finish, horizon, grid, demand, arrivals,
        node_events=None,
    ):
        n = len(trace)
        if n and np.any(finish < submit):
            bad = int(np.flatnonzero(finish < submit)[0])
            raise ValueError(
                f"corrupt event stream: job {bad} finishes at {finish[bad]:g} "
                f"before its submit at {submit[bad]:g}"
            )
        keep_fin = finish < horizon if n else np.zeros(0, dtype=bool)
        parts_t = [submit, finish[keep_fin]]
        parts_k = [
            np.full(n, SUBMIT, dtype=np.int8),
            np.full(int(keep_fin.sum()), FINISH, dtype=np.int8),
        ]
        parts_r = [np.arange(n, dtype=np.int64), np.flatnonzero(keep_fin)]
        if grid is not None:
            sample_times = grid.edges[:-1] + grid.dt  # sampled at bin close
            parts_t.append(sample_times)
            parts_k.append(np.full(grid.bins, NODE_SAMPLE, dtype=np.int8))
            parts_r.append(np.arange(grid.bins, dtype=np.int64))
        clipped_events = None
        if node_events is not None and len(node_events):
            # Clip the high end only: dropping *leading* events would break
            # the per-node down/up alternation a consumer may validate.
            ev_times = node_events["time"].astype(float)
            keep_ev = ev_times < horizon
            clipped_events = node_events.take(np.flatnonzero(keep_ev))
            parts_t.append(ev_times[keep_ev])
            parts_k.append(np.full(len(clipped_events), NODE_FAIL, dtype=np.int8))
            parts_r.append(np.arange(len(clipped_events), dtype=np.int64))
        times = np.concatenate(parts_t)
        kinds = np.concatenate(parts_k)
        refs = np.concatenate(parts_r)
        order = np.lexsort((refs, kinds, times))
        return cls(
            cluster, trace, times[order], kinds[order], refs[order],
            grid=grid, demand=demand, arrivals=arrivals, node_events=clipped_events,
        )

    # -- inspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    def counts(self) -> dict[str, int]:
        """Event tally by kind name."""
        return {
            name: int(np.count_nonzero(self.kinds == code))
            for code, name in _KIND_NAMES.items()
        }

    def events(self) -> Iterator[Event]:
        """Materialize events one by one (diagnostics; batches are the
        fast path)."""
        for t, k, r in zip(self.times, self.kinds, self.refs):
            yield Event(float(t), int(k), self.cluster, int(r))

    # -- batching ------------------------------------------------------

    def batches(self, window_s: float = 0.0) -> Iterator[EventBatch]:
        """Micro-batches: maximal runs of one kind inside one window.

        ``window_s > 0`` coalesces events whose timestamps fall in the
        same ``window_s``-wide bucket (concurrent requests batched per
        the serving loop's protocol); ``0`` batches only identical
        timestamps.  Batch boundaries are computed vectorized — the
        generator yields index arrays, never per-event objects.
        """
        n = len(self.times)
        if n == 0:
            return
        if window_s > 0:
            bucket = np.floor_divide(self.times, window_s).astype(np.int64)
        else:
            bucket = self.times
        breaks = np.flatnonzero(
            (self.kinds[1:] != self.kinds[:-1]) | (bucket[1:] != bucket[:-1])
        )
        starts = np.concatenate(([0], breaks + 1))
        stops = np.concatenate((breaks + 1, [n]))
        for lo, hi in zip(starts, stops):
            yield EventBatch(
                kind=int(self.kinds[lo]),
                time=float(self.times[hi - 1]),
                refs=self.refs[lo:hi],
            )

    def play(
        self, window_s: float = 0.0, speedup: float | None = None
    ) -> Iterator[EventBatch]:
        """Batches paced against the wall clock.

        ``speedup`` maps stream seconds to wall seconds (e.g. ``3600``
        plays an hour per second); ``None`` (or 0) replays
        as-fast-as-possible — identical to :meth:`batches`.
        """
        if not speedup:
            yield from self.batches(window_s)
            return
        if speedup < 0:
            raise ValueError("speedup must be positive")
        wall_start = _time.monotonic()
        stream_start: float | None = None
        for batch in self.batches(window_s):
            if stream_start is None:
                stream_start = batch.time
            lag = (batch.time - stream_start) / speedup - (
                _time.monotonic() - wall_start
            )
            if lag > 0:
                _time.sleep(lag)
            yield batch


def _arrivals_per_bin(submit: np.ndarray, grid: TimeGrid) -> np.ndarray:
    counts = np.zeros(grid.bins)
    if submit.size:
        np.add.at(counts, grid.index_of(submit), 1.0)
    return counts
