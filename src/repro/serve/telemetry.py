"""Per-shard serving telemetry: throughput and decision-latency stats.

The serving loop records one latency sample per decision (a QSSF
micro-batch ordering or a CES control step).  :class:`LatencyRecorder`
feeds a bounded log-binned :class:`~repro.obs.metrics.Histogram` —
O(1) memory however long the stream runs, and mergeable, so the fleet
rollup in :func:`aggregate_reports` computes p50/p99 over the *merged*
cross-shard distribution instead of discarding per-shard percentiles.
:class:`LatencyStats` stays the JSON-ready summary (p50/p99/mean in
milliseconds) the shard reports and the benchmark suite's BENCH lines
carry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.metrics import Histogram

__all__ = [
    "LatencyRecorder",
    "LatencyStats",
    "aggregate_reports",
    "parity_surface",
]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one decision path's latencies (milliseconds)."""

    count: int
    p50_ms: float
    p99_ms: float
    mean_ms: float

    @classmethod
    def from_seconds(cls, samples: "list[float] | np.ndarray") -> "LatencyStats":
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            return cls(count=0, p50_ms=0.0, p99_ms=0.0, mean_ms=0.0)
        ms = arr * 1e3
        return cls(
            count=int(arr.size),
            p50_ms=float(np.percentile(ms, 50)),
            p99_ms=float(np.percentile(ms, 99)),
            mean_ms=float(ms.mean()),
        )

    @classmethod
    def from_histogram(cls, hist: Histogram) -> "LatencyStats":
        """Summary over a (possibly merged) latency histogram.  The mean
        is exact; p50/p99 carry the histogram's bin quantization (≈ ±4 %
        at the default 30 bins/decade)."""
        if hist.count == 0:
            return cls(count=0, p50_ms=0.0, p99_ms=0.0, mean_ms=0.0)
        return cls(
            count=hist.count,
            p50_ms=hist.quantile(0.5) * 1e3,
            p99_ms=hist.quantile(0.99) * 1e3,
            mean_ms=hist.mean * 1e3,
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
        }


class LatencyRecorder:
    """Collects per-decision wall latencies for one request route.

    Bounded: samples stream into a log-binned histogram instead of the
    pre-obs unbounded ``list[float]``; ``hist`` is mergeable across
    shards/processes.
    """

    def __init__(self) -> None:
        self.hist = Histogram()

    def record(self, seconds: float) -> None:
        self.hist.record(seconds)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_histogram(self.hist)


def parity_surface(reports) -> bytes:
    """Canonical bytes of a fleet's deterministic surface.

    Concatenates every shard report's
    :meth:`~repro.serve.server.ShardReport.parity_bytes` in the given
    order — the byte string the chaos-parity guarantees compare: a run
    that crashed, partitioned, rerouted, and resumed must produce
    exactly these bytes again.
    """
    return b"\n".join(r.parity_bytes() for r in reports)


def _merged_latency(reports, attr: str) -> LatencyStats | None:
    """Merge one latency route's histograms across shard reports.

    ``None`` when no report carries a histogram (pre-obs payloads and
    test doubles), so legacy rollups keep their exact schema.
    """
    hists = [h for r in reports if (h := getattr(r, attr, None)) is not None]
    if not hists:
        return None
    merged = hists[0].copy()
    for h in hists[1:]:
        merged.merge(h)
    return LatencyStats.from_histogram(merged)


def aggregate_reports(reports, wall_seconds: float | None = None) -> dict:
    """Fleet-level rollup of :class:`~repro.serve.server.ShardReport`s.

    ``wall_seconds`` should be the caller-measured wall clock of the
    whole fan-out; without it the rollup assumes shards ran
    sequentially (sums the per-shard walls), which is exact for
    ``jobs=1`` and a conservative floor for a parallel pool.

    When the reports carry latency histograms, the rollup also emits
    ``qssf_latency`` / ``ces_latency`` computed over the **merged**
    distribution — a true fleet p99, not an average of per-shard p99s.
    """
    reports = list(reports)
    events = sum(r.events for r in reports)
    if wall_seconds is None:
        wall_seconds = sum(r.wall_seconds for r in reports)
    # Two shards may replay the same cluster (e.g. a re-sharded stream);
    # their refit counters must add up per service, not overwrite.
    refits: dict[str, dict[str, int]] = {}
    for r in reports:
        agg = refits.setdefault(r.cluster, {})
        for service, counters in r.refits.items():
            svc = agg.setdefault(service, {})
            for key, n in counters.items():
                svc[key] = svc.get(key, 0) + n
    out = {
        "shards": len(reports),
        "events": events,
        "wall_seconds": round(wall_seconds, 4),
        "events_per_s": round(events / wall_seconds, 1) if wall_seconds > 0 else 0.0,
        "qssf_decisions": sum(r.qssf_decisions for r in reports),
        "ces_steps": sum(r.node_samples for r in reports),
        "refits": refits,
    }
    # Merged-distribution latency rollups (getattr: pre-obs report
    # objects and test doubles carry no histograms — keys stay absent).
    for key, attr in (("qssf_latency", "qssf_hist"), ("ces_latency", "ces_hist")):
        stats = _merged_latency(reports, attr)
        if stats is not None:
            out[key] = stats.as_dict()
    # Fault-tolerance rollups (getattr: pre-chaos report objects — and
    # the test doubles modeled on them — lack these fields entirely).
    # Emitted only when nonzero so fault-free payloads keep their schema.
    retries = sum(getattr(r, "retries", 0) or 0 for r in reports)
    if retries:
        out["retries"] = retries
    degraded: dict[str, int] = {}
    for r in reports:
        for key, n in (getattr(r, "degraded", None) or {}).items():
            if key == "qssf_rung" or key == "ces_rung":
                degraded[key] = max(degraded.get(key, 0), n)
            else:
                degraded[key] = degraded.get(key, 0) + n
    if degraded:
        out["degraded"] = degraded
    node_health: dict[str, int] = {}
    for r in reports:
        for key, n in (getattr(r, "node_health", None) or {}).items():
            if key == "max_down":
                node_health[key] = max(node_health.get(key, 0), n)
            else:
                node_health[key] = node_health.get(key, 0) + n
    if node_health:
        out["node_health"] = node_health
    return out
