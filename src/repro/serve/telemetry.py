"""Per-shard serving telemetry: throughput and decision-latency stats.

The serving loop records one latency sample per decision (a QSSF
micro-batch ordering or a CES control step).  :class:`LatencyRecorder`
keeps raw samples; :class:`LatencyStats` is the JSON-ready summary
(p50/p99/mean in milliseconds) the shard reports and the benchmark
suite's BENCH lines carry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyRecorder", "LatencyStats", "aggregate_reports"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one decision path's latencies (milliseconds)."""

    count: int
    p50_ms: float
    p99_ms: float
    mean_ms: float

    @classmethod
    def from_seconds(cls, samples: "list[float] | np.ndarray") -> "LatencyStats":
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            return cls(count=0, p50_ms=0.0, p99_ms=0.0, mean_ms=0.0)
        ms = arr * 1e3
        return cls(
            count=int(arr.size),
            p50_ms=float(np.percentile(ms, 50)),
            p99_ms=float(np.percentile(ms, 99)),
            mean_ms=float(ms.mean()),
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
        }


class LatencyRecorder:
    """Collects per-decision wall latencies for one request route."""

    def __init__(self) -> None:
        self.samples: list[float] = []

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_seconds(self.samples)


def aggregate_reports(reports, wall_seconds: float | None = None) -> dict:
    """Fleet-level rollup of :class:`~repro.serve.server.ShardReport`s.

    ``wall_seconds`` should be the caller-measured wall clock of the
    whole fan-out; without it the rollup assumes shards ran
    sequentially (sums the per-shard walls), which is exact for
    ``jobs=1`` and a conservative floor for a parallel pool.
    """
    reports = list(reports)
    events = sum(r.events for r in reports)
    if wall_seconds is None:
        wall_seconds = sum(r.wall_seconds for r in reports)
    # Two shards may replay the same cluster (e.g. a re-sharded stream);
    # their refit counters must add up per service, not overwrite.
    refits: dict[str, dict[str, int]] = {}
    for r in reports:
        agg = refits.setdefault(r.cluster, {})
        for service, counters in r.refits.items():
            svc = agg.setdefault(service, {})
            for key, n in counters.items():
                svc[key] = svc.get(key, 0) + n
    out = {
        "shards": len(reports),
        "events": events,
        "wall_seconds": round(wall_seconds, 4),
        "events_per_s": round(events / wall_seconds, 1) if wall_seconds > 0 else 0.0,
        "qssf_decisions": sum(r.qssf_decisions for r in reports),
        "ces_steps": sum(r.node_samples for r in reports),
        "refits": refits,
    }
    # Fault-tolerance rollups (getattr: pre-chaos report objects — and
    # the test doubles modeled on them — lack these fields entirely).
    # Emitted only when nonzero so fault-free payloads keep their schema.
    retries = sum(getattr(r, "retries", 0) or 0 for r in reports)
    if retries:
        out["retries"] = retries
    degraded: dict[str, int] = {}
    for r in reports:
        for key, n in (getattr(r, "degraded", None) or {}).items():
            if key == "qssf_rung" or key == "ces_rung":
                degraded[key] = max(degraded.get(key, 0), n)
            else:
                degraded[key] = degraded.get(key, 0) + n
    if degraded:
        out["degraded"] = degraded
    node_health: dict[str, int] = {}
    for r in reports:
        for key, n in (getattr(r, "node_health", None) or {}).items():
            if key == "max_down":
                node_health[key] = max(node_health.get(key, 0), n)
            else:
                node_health[key] = node_health.get(key, 0) + n
    if node_health:
        out["node_health"] = node_health
    return out
