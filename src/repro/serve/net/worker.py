"""Socket shard worker: a forked process serving batches pushed by the
router.

One worker may host several shard sessions (cluster → fitted
:class:`~repro.serve.server.PredictionServer` +
:class:`~repro.serve.server.ServingSession`).  The router drives it
with a tiny RPC vocabulary over one framed socket:

* ``resume``   — build the shard (models fit here, not in the router)
  and open a session, resuming from a piggybacked checkpoint when the
  router holds one; replies ``resume_ok`` with the session cursor.
* ``batch``    — serve a group of consecutive micro-batches (the
  router coalesces its send window into group frames; ``items`` holds
  the group, ``bi`` the first index).  Acks are *cumulative* and
  coalesced: one ``ack`` per drain round covers every batch served in
  it, carrying the session cursor and any checkpoint the session
  emitted (checkpoints ride the ack stream back to the router, which
  keeps only the latest — the state a reroute hands to the next
  worker).  A duplicate (``bi`` below the cursor) folds into the ack
  without side effects; a future index (frames lost in between) is
  answered with ``gap`` naming the expected cursor so the router
  rewinds.
* ``finish``   — close the session; replies ``report`` with the shard
  report (obs state piggybacked the same way the forked supervisor
  carries it).
* ``forget``   — drop a session (the shard was rerouted elsewhere).
* ``ping``/``shutdown`` — liveness probe / clean exit.

Process faults from the installed
:class:`~repro.framework.faults.FaultPlan` fire exactly as under the
supervisor: a :class:`~repro.framework.supervise.WorkerContext` built
with ``real=True`` (the liveness channel is the socket, not a pipe)
SIGKILLs or stalls this process at the planned batch index, keyed by
``(cluster, attempt)`` where ``attempt`` counts the router's resume
attempts for that shard.
"""

from __future__ import annotations

import selectors

from ...framework.faults import FaultPlan, installed_fault_plan
from ...framework.supervise import WorkerContext
from ...obs import collect as obs
from ..runtime import ShardTask, build_shard
from ..server import ServingSession

__all__ = ["ShardHost", "worker_main"]


class ShardHost:
    """One hosted shard: its session plus the fault-injection context."""

    __slots__ = ("session", "ctx", "attempt", "pending_ckpt")

    def __init__(self, task: ShardTask, attempt: int, ckpt,
                 plan: FaultPlan | None) -> None:
        server, stream = build_shard(task)
        self.attempt = attempt
        self.pending_ckpt = None
        faults = plan.process_faults_for(task.cluster, attempt) if plan else ()
        self.ctx = WorkerContext(
            task.cluster, attempt, faults=faults, real=True
        )
        self.ctx.fire_startup_faults()
        self.session = ServingSession(
            server,
            stream,
            checkpoint_every=task.checkpoint_every,
            checkpoint_sink=self._sink,
            resume=ckpt,
        )

    def _sink(self, ckpt) -> None:
        self.pending_ckpt = ckpt

    def take_ckpt(self):
        ckpt, self.pending_ckpt = self.pending_ckpt, None
        return ckpt


def worker_main(sock, name: str, plan: FaultPlan | None = None) -> None:
    """Serve RPCs on ``sock`` until shutdown or router hangup."""
    # Import here keeps FramedConn construction after the fork.
    from .framing import FramedConn

    if plan is None:
        plan = installed_fault_plan()
    conn = FramedConn(sock)
    sel = selectors.DefaultSelector()
    sel.register(sock, selectors.EVENT_READ)
    hosts: dict[str, ShardHost] = {}
    running = True
    while running and not conn.closed:
        sel.select(timeout=0.05)
        conn.pump()
        acks: dict[str, int] = {}
        for msg in conn.receive():
            op = msg.get("op")
            if op == "batch":
                _handle_batch(conn, hosts, msg, acks)
            elif op == "resume":
                _handle_resume(conn, hosts, msg, plan)
            elif op == "finish":
                host = hosts.pop(msg["cluster"], None)
                if host is not None:
                    report = host.session.finish()
                    conn.send({
                        "op": "report",
                        "cluster": msg["cluster"],
                        "worker": name,
                        "report": obs.carry_result(report),
                    })
            elif op == "forget":
                hosts.pop(msg["cluster"], None)
            elif op == "ping":
                conn.send({"op": "pong", "worker": name})
            elif op == "shutdown":
                running = False
        # Acks coalesce per drain round: one cumulative ack per shard
        # covers every batch served this round (the cursor is what the
        # router trusts anyway), halving the return-path frame count.
        for cluster, bi in acks.items():
            host = hosts.get(cluster)
            if host is None:
                continue  # finished or forgotten in this same round
            conn.send({
                "op": "ack",
                "cluster": cluster,
                "bi": bi,
                "cursor": host.session.cursor,
                "ckpt": host.take_ckpt(),
            })
        if conn.want_write:
            conn.pump()
    conn.close()


def _handle_resume(conn, hosts, msg, plan) -> None:
    task: ShardTask = msg["task"]
    cluster = task.cluster
    attempt = int(msg.get("attempt", 0))
    host = hosts.get(cluster)
    if host is None or host.attempt != attempt:
        # A same-attempt re-resume (router retrying a lost reply) keeps
        # the live session; anything else rebuilds from the checkpoint.
        host = ShardHost(task, attempt, msg.get("ckpt"), plan)
        hosts[cluster] = host
    conn.send({
        "op": "resume_ok",
        "cluster": cluster,
        "attempt": attempt,
        "cursor": host.session.cursor,
    })


def _handle_batch(conn, hosts, msg, acks: dict) -> None:
    cluster = msg["cluster"]
    bi0 = int(msg["bi"])
    # The router coalesces consecutive batches into one group frame
    # (``items``); a bare ``batch`` frame is the single-batch case.
    items = msg["items"] if "items" in msg else [msg["batch"]]
    host = hosts.get(cluster)
    if host is None:
        conn.send({"op": "gap", "cluster": cluster, "expected": 0,
                   "reason": "no session"})
        return
    cursor = host.session.cursor
    if bi0 > cursor:
        # Frames between cursor and bi0 were lost: ask for a rewind.
        conn.send({"op": "gap", "cluster": cluster, "expected": cursor})
        acks.pop(cluster, None)
        return
    for i, batch in enumerate(items):
        bi = bi0 + i
        if bi < host.session.cursor:
            continue  # duplicate: folds into the ack, no side effects
        # Fault hook mirrors run_shard's on_batch: progress == batch
        # index, fired only for batches actually about to be served.
        host.ctx.maybe_fault(bi)
        host.session.process(bi, batch)
    # Served and duplicate batches alike fold into this round's
    # cumulative ack (sent after the drain loop).
    acks[cluster] = max(acks.get(cluster, -1), bi0 + len(items) - 1)
