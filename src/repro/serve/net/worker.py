"""Socket shard worker: a forked process serving batches pushed by the
router.

One worker may host several shard sessions (shard id → fitted
:class:`~repro.serve.server.PredictionServer` +
:class:`~repro.serve.server.ServingSession`).  The router drives it
with a tiny RPC vocabulary over one framed socket:

* ``resume``   — build the shard (models fit here, not in the router)
  and open a session, resuming from a piggybacked checkpoint when the
  router holds one; replies ``resume_ok`` with the session cursor.
* ``batch``    — serve a group of consecutive micro-batches (the
  router coalesces its send window into group frames; ``items`` holds
  the group, ``bi`` the first index).  Acks are *cumulative* and
  coalesced: one ``ack`` per drain round covers every batch served in
  it, carrying the session cursor, any checkpoint the session emitted,
  and — under central replication — the shard's model version vector.
  A duplicate (``bi`` below the cursor) folds into the ack without
  side effects; a future index (frames lost in between) is answered
  with ``gap`` naming the expected cursor so the router rewinds.
* ``model_sync`` — a versioned model snapshot broadcast from the
  router-side trainer.  Installs are version-gated: stale versions are
  dropped, early versions stashed until the shard's own refit-due
  point requests them, and the next-expected version hot-swaps in via
  the idempotent ``orchestrator.replace``.  While any version is in
  flight the shard *defers* incoming batches unacked (decisions must
  never run against a model the merged-stream run would not have
  used); the parked frames drain the moment the snapshot installs.
* ``finish``   — close the session; replies ``report`` with the shard
  report (obs state piggybacked the same way the forked supervisor
  carries it).
* ``forget``   — drop a session (the shard was rerouted elsewhere).
* ``ping``/``shutdown`` — liveness probe / clean exit.

In the reverse direction a delegating shard emits
``model_sync_request`` frames (the observation delta since its last
refit).  Requests stay on the engine's outbox until their version
installs, and sent-ness is tracked per host *instance* — a worker
respawned from a checkpoint re-sends every outstanding request, so a
snapshot lost to a crash or partition is always re-requested (the hub
answers duplicates from its version cache).

Process faults from the installed
:class:`~repro.framework.faults.FaultPlan` fire exactly as under the
supervisor: a :class:`~repro.framework.supervise.WorkerContext` built
with ``real=True`` (the liveness channel is the socket, not a pipe)
SIGKILLs or stalls this process at the planned batch index, keyed by
``(shard id, attempt)`` where ``attempt`` counts the router's resume
attempts for that shard.
"""

from __future__ import annotations

import selectors
from collections import deque

from ...framework.faults import FaultPlan, installed_fault_plan
from ...framework.supervise import WorkerContext
from ...obs import collect as obs
from ..runtime import ShardTask, build_shard
from ..server import ServingSession

__all__ = ["ShardHost", "worker_main"]


class ShardHost:
    """One hosted shard: session, fault context, and replication state."""

    __slots__ = ("task", "session", "ctx", "attempt", "pending_ckpt",
                 "deferred", "stash", "sent_syncs")

    def __init__(self, task: ShardTask, attempt: int, ckpt,
                 plan: FaultPlan | None) -> None:
        server, stream = build_shard(task)
        if task.config.replicate == "central":
            server.enable_central_refits()
        self.task = task
        self.attempt = attempt
        self.pending_ckpt = None
        #: batch groups parked while a model sync is in flight
        self.deferred: deque[tuple[int, list]] = deque()
        #: early snapshot broadcasts, service -> {version: blob}
        self.stash: dict[str, dict[int, bytes]] = {}
        #: sync requests already forwarded by *this* host instance — a
        #: rebuilt host (respawn/reroute) starts empty and re-sends
        self.sent_syncs: set[tuple[str, int]] = set()
        faults = plan.process_faults_for(task.shard_id, attempt) if plan else ()
        self.ctx = WorkerContext(
            task.shard_id, attempt, faults=faults, real=True
        )
        self.ctx.fire_startup_faults()
        self.session = ServingSession(
            server,
            stream,
            checkpoint_every=task.checkpoint_every,
            checkpoint_sink=self._sink,
            resume=ckpt,
            partial=task.replica_count > 1,
        )

    def _sink(self, ckpt) -> None:
        self.pending_ckpt = ckpt

    def take_ckpt(self):
        ckpt, self.pending_ckpt = self.pending_ckpt, None
        return ckpt

    # -- replication ---------------------------------------------------

    @property
    def engine(self):
        return self.session.server.engine

    def blocked(self) -> bool:
        """True while any service awaits a snapshot install: batches
        defer rather than serve against a not-yet-synced model."""
        return self.engine.sync_pending()

    def offer(self, name: str, version: int, blob: bytes) -> None:
        """Accept one snapshot broadcast (stash or install)."""
        self.stash.setdefault(name, {})[version] = blob
        self.pump_sync()

    def pump_sync(self) -> None:
        """Install every stashed snapshot that is now due, in version
        order; prune stale stash entries."""
        progressed = True
        while progressed:
            progressed = False
            for name, versions in self.stash.items():
                requested, installed = self.engine.sync_versions(name)
                for v in [v for v in versions if v <= installed]:
                    del versions[v]  # stale: already installed or skipped
                nxt = installed + 1
                if nxt in versions and nxt <= requested:
                    blob = versions.pop(nxt)
                    self.session.server.install_sync(name, nxt, blob)
                    progressed = True

    def unsent_syncs(self) -> list[dict]:
        """Outstanding sync requests this host has not yet forwarded."""
        out = []
        for req in self.engine.sync_requests():
            key = (req["service"], req["version"])
            if key not in self.sent_syncs:
                self.sent_syncs.add(key)
                out.append(req)
        return out


def worker_main(sock, name: str, plan: FaultPlan | None = None) -> None:
    """Serve RPCs on ``sock`` until shutdown or router hangup."""
    # Import here keeps FramedConn construction after the fork.
    from .framing import FramedConn

    if plan is None:
        plan = installed_fault_plan()
    conn = FramedConn(sock)
    sel = selectors.DefaultSelector()
    sel.register(sock, selectors.EVENT_READ)
    hosts: dict[str, ShardHost] = {}
    running = True
    while running and not conn.closed:
        sel.select(timeout=0.05)
        conn.pump()
        acks: dict[str, int] = {}
        for msg in conn.receive():
            op = msg.get("op")
            if op == "batch":
                _handle_batch(conn, hosts, msg, acks)
            elif op == "model_sync":
                _handle_model_sync(hosts, msg)
            elif op == "resume":
                _handle_resume(conn, hosts, msg, plan)
            elif op == "finish":
                host = hosts.pop(msg["cluster"], None)
                if host is not None:
                    report = host.session.finish()
                    conn.send({
                        "op": "report",
                        "cluster": msg["cluster"],
                        "worker": name,
                        "report": obs.carry_result(report),
                    })
            elif op == "forget":
                hosts.pop(msg["cluster"], None)
            elif op == "ping":
                conn.send({"op": "pong", "worker": name})
            elif op == "shutdown":
                running = False
        # Replication round: install any now-due stashed snapshots,
        # drain batches parked behind completed syncs, and forward new
        # sync requests (including the re-sends of a resumed host).
        for key, host in hosts.items():
            host.pump_sync()
            while host.deferred and not host.blocked():
                bi0, items = host.deferred.popleft()
                _process_items(conn, host, key, bi0, items, acks)
            for req in host.unsent_syncs():
                conn.send({
                    "op": "model_sync_request",
                    "cluster": key,
                    "service": req["service"],
                    "version": req["version"],
                    "deltas": req["deltas"],
                    "now": req["now"],
                    "mode": req["mode"],
                })
        # Acks coalesce per drain round: one cumulative ack per shard
        # covers every batch served this round (the cursor is what the
        # router trusts anyway), halving the return-path frame count.
        for cluster, bi in acks.items():
            host = hosts.get(cluster)
            if host is None:
                continue  # finished or forgotten in this same round
            ack = {
                "op": "ack",
                "cluster": cluster,
                "bi": bi,
                "cursor": host.session.cursor,
                "ckpt": host.take_ckpt(),
            }
            if host.engine.delegated:
                # The version vector rides the cumulative ack stream.
                ack["sync"] = {
                    svc: host.engine.sync_versions(svc)
                    for svc in host.engine.services
                }
            conn.send(ack)
        if conn.want_write:
            conn.pump()
    conn.close()


def _handle_resume(conn, hosts, msg, plan) -> None:
    task: ShardTask = msg["task"]
    shard = task.shard_id
    attempt = int(msg.get("attempt", 0))
    host = hosts.get(shard)
    if host is None or host.attempt != attempt:
        # A same-attempt re-resume (router retrying a lost reply) keeps
        # the live session; anything else rebuilds from the checkpoint.
        host = ShardHost(task, attempt, msg.get("ckpt"), plan)
        hosts[shard] = host
    conn.send({
        "op": "resume_ok",
        "cluster": shard,
        "attempt": attempt,
        "cursor": host.session.cursor,
    })


def _handle_model_sync(hosts, msg) -> None:
    """Apply one snapshot broadcast to every matching hosted replica
    (the frame is keyed by *cluster*; a worker may host several of its
    replicas, each version-gated independently)."""
    for host in hosts.values():
        if host.task.cluster == msg["cluster"]:
            host.offer(msg["service"], int(msg["version"]), msg["blob"])


def _handle_batch(conn, hosts, msg, acks: dict) -> None:
    cluster = msg["cluster"]
    bi0 = int(msg["bi"])
    # The router coalesces consecutive batches into one group frame
    # (``items``); a bare ``batch`` frame is the single-batch case.
    items = msg["items"] if "items" in msg else [msg["batch"]]
    host = hosts.get(cluster)
    if host is None:
        conn.send({"op": "gap", "cluster": cluster, "expected": 0,
                   "reason": "no session"})
        return
    if host.deferred or host.blocked():
        # A model sync is in flight: park the group unacked, ordered
        # behind anything already deferred.  The router's bounded
        # window throttles how much can pile up here.
        host.deferred.append((bi0, items))
        return
    _process_items(conn, host, cluster, bi0, items, acks)


def _process_items(conn, host, cluster, bi0, items, acks: dict) -> None:
    cursor = host.session.cursor
    if bi0 > cursor:
        # Frames between cursor and bi0 were lost: ask for a rewind.
        conn.send({"op": "gap", "cluster": cluster, "expected": cursor})
        acks.pop(cluster, None)
        return
    served = -1
    for i, batch in enumerate(items):
        bi = bi0 + i
        if bi < host.session.cursor:
            served = bi
            continue  # duplicate: folds into the ack, no side effects
        # Fault hook mirrors run_shard's on_batch: progress == batch
        # index, fired only for batches actually about to be served.
        host.ctx.maybe_fault(bi)
        host.session.process(bi, batch)
        served = bi
        if host.blocked() and i + 1 < len(items):
            # This batch cut a sync request: the rest of the group
            # parks (front of the queue — order is everything) until
            # the snapshot installs.
            host.deferred.appendleft((bi + 1, items[i + 1:]))
            break
    # Served and duplicate batches alike fold into this round's
    # cumulative ack (sent after the drain loop).
    if served >= 0:
        acks[cluster] = max(acks.get(cluster, -1), served)
