"""Length-prefixed message framing with deterministic fault injection.

Wire format (zero dependencies beyond the stdlib): every frame is

    [4-byte big-endian payload length] [1 tag byte] [payload]

with tag ``b"P"`` for pickle (the internal router↔worker protocol —
checkpoints and reports carry numpy arrays and dataclasses) and
``b"J"`` for UTF-8 JSON (external front-door clients that should not
unpickle anything).  The length covers tag + payload, so a reader can
split frames without understanding either encoding.

:class:`FramedConn` wraps a non-blocking socket with send/receive
buffering — the single-threaded router pumps many of them from one
loop.  :class:`NetFaultFilter` sits between :meth:`FramedConn.send` /
``receive`` and the socket, injecting the network fault kinds from
:mod:`repro.framework.faults` (``drop`` / ``delay`` / ``duplicate`` /
``partition``) keyed by ``(link label, epoch, frame sequence)`` — the
same deterministic, replayable keying the process-fault plane uses, so
a chaos run's lost and late frames land identically every time.  Faults
are installed on the **router's** side of each link only: one filter
per link sees every frame in both directions.
"""

from __future__ import annotations

import json
import pickle
import struct
import time

from ...framework.faults import FaultPlan, FaultSpec

__all__ = ["FramedConn", "NetFaultFilter", "pack", "unpack"]

_HEADER = struct.Struct(">I")
_MAX_FRAME = 1 << 31  # sanity bound: a frame this big is a protocol bug

TAG_PICKLE = b"P"
TAG_JSON = b"J"


def pack(msg: object, fmt: str = "pickle") -> bytes:
    """Encode one message into a framed byte string."""
    if fmt == "pickle":
        payload = TAG_PICKLE + pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    elif fmt == "json":
        payload = TAG_JSON + json.dumps(msg, sort_keys=True).encode()
    else:
        raise ValueError(f"unknown frame format {fmt!r}")
    return _HEADER.pack(len(payload)) + payload


def unpack(body: bytes) -> object:
    """Decode one frame body (tag byte + payload)."""
    tag, payload = body[:1], body[1:]
    if tag == TAG_PICKLE:
        return pickle.loads(payload)
    if tag == TAG_JSON:
        return json.loads(payload.decode())
    raise ValueError(f"unknown frame tag {tag!r}")


class NetFaultFilter:
    """Deterministic frame-level fault injection for one link epoch.

    Frames are counted per direction (``out_seq`` for sends, ``in_seq``
    for receives), starting at 0 each epoch — re-keying on respawn via
    :meth:`rekey` mirrors how process faults key on the retry attempt.

    Outgoing kinds, all honoring the ``[at, at+span)`` window: ``drop``
    discards those frames; ``duplicate`` sends each of them twice;
    ``delay`` holds each for ``delay_s`` before it goes out (later
    frames overtake it — the reorder consumers must tolerate).
    ``partition`` silences **both** directions for ``span`` frames
    counted per side.
    """

    def __init__(self, plan: FaultPlan | None, label: str, epoch: int = 0) -> None:
        self.plan = plan
        self.label = label
        self.out_seq = 0
        self.in_seq = 0
        self.dropped = 0
        self._held: list[tuple[float, bytes]] = []
        self._faults: tuple[FaultSpec, ...] = ()
        self.rekey(epoch)

    def rekey(self, epoch: int) -> None:
        """Start a new link epoch: reset both counters, reload faults."""
        self.epoch = epoch
        self.out_seq = 0
        self.in_seq = 0
        self._held.clear()
        self._faults = (
            self.plan.net_faults_for(self.label, epoch) if self.plan else ()
        )

    def _blocked(self, seq: int, kinds: tuple[str, ...]) -> bool:
        return any(
            f.kind in kinds and f.at <= seq < f.at + f.span for f in self._faults
        )

    def outgoing(self, frame: bytes, now: float) -> list[bytes]:
        """Frames to put on the wire right now for one sent frame."""
        seq = self.out_seq
        self.out_seq += 1
        if self._blocked(seq, ("drop", "partition")):
            self.dropped += 1
            return []
        # Every kind honors the [at, at+span) window — a span-N delay
        # holds N consecutive frames, a span-N duplicate doubles N.
        for f in self._faults:
            if f.kind == "delay" and f.at <= seq < f.at + f.span:
                self._held.append((now + f.delay_s, frame))
                return []
            if f.kind == "duplicate" and f.at <= seq < f.at + f.span:
                return [frame, frame]
        return [frame]

    def due(self, now: float) -> list[bytes]:
        """Delayed frames whose release time has arrived."""
        if not self._held:
            return []
        ready = [frame for when, frame in self._held if when <= now]
        if ready:
            self._held = [(when, f) for when, f in self._held if when > now]
        return ready

    def incoming(self) -> bool:
        """Whether the next received frame is delivered (partitions
        swallow inbound frames too)."""
        seq = self.in_seq
        self.in_seq += 1
        if self._blocked(seq, ("partition",)):
            self.dropped += 1
            return False
        return True


class FramedConn:
    """Buffered, non-blocking framed messaging over one socket.

    ``send`` frames and queues; :meth:`pump` flushes what the kernel
    will take and releases any fault-delayed frames; :meth:`receive`
    drains the socket and returns every complete decoded message.  A
    peer hangup or socket error sets ``closed`` — the router treats
    that like a dead worker.
    """

    def __init__(self, sock, faults: NetFaultFilter | None = None) -> None:
        sock.setblocking(False)
        self.sock = sock
        self.faults = faults
        self.closed = False
        self.frames_sent = 0
        self.frames_received = 0
        self._out = bytearray()
        self._in = bytearray()

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, msg: object, fmt: str = "pickle") -> None:
        frame = pack(msg, fmt)
        if self.faults is None:
            self._out += frame
        else:
            for f in self.faults.outgoing(frame, time.monotonic()):
                self._out += f
        self.frames_sent += 1
        self.pump()

    def pump(self) -> None:
        """Flush buffered output; release due delayed frames."""
        if self.closed:
            return
        if self.faults is not None:
            for frame in self.faults.due(time.monotonic()):
                self._out += frame
        while self._out:
            try:
                n = self.sock.send(self._out)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self.closed = True
                return
            if n <= 0:
                return
            del self._out[:n]

    @property
    def want_write(self) -> bool:
        return bool(self._out) or bool(self.faults and self.faults._held)

    def receive(self) -> list[object]:
        """Every complete message currently readable (possibly none)."""
        while not self.closed:
            try:
                chunk = self.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.closed = True
                break
            if not chunk:
                self.closed = True
                break
            self._in += chunk
        msgs: list[object] = []
        while len(self._in) >= _HEADER.size:
            (length,) = _HEADER.unpack_from(self._in)
            if length > _MAX_FRAME:
                self.closed = True
                break
            if len(self._in) < _HEADER.size + length:
                break
            body = bytes(self._in[_HEADER.size:_HEADER.size + length])
            del self._in[:_HEADER.size + length]
            if self.faults is None or self.faults.incoming():
                msgs.append(unpack(body))
                self.frames_received += 1
        return msgs

    def close(self) -> None:
        self.closed = True
        try:
            self.sock.close()
        except OSError:
            pass
