"""repro.serve.net — the resilient multi-host serving control plane.

A socket front door (:mod:`.frontdoor`) accepts submit/finish/node
events, consistent-hash routes shards onto forked socket workers
(:mod:`.worker`, :mod:`.hashring`) behind bounded per-shard queues with
explicit backpressure, and survives chaos — dropped, delayed,
duplicated, and partitioned links as well as SIGKILLed workers — via
the router's circuit-breaker ladder (:mod:`.router`): retry with
deterministic backoff → degrade to a sibling shard from the latest
checkpoint → FIFO passthrough.  The headline guarantee extends the
in-shard one: kill *or partition* any worker mid-stream and the merged
report parity surface stays byte-identical to a fault-free run.

Framing (:mod:`.framing`) is length-prefixed JSON-or-pickle over the
stdlib ``socket``/``selectors`` — zero new dependencies — and doubles
as the deterministic injection point for the network fault kinds in
:mod:`repro.framework.faults`.

Cross-host model replication (:mod:`.replicate`) rides the same
framing: shards in a replica group delegate refits to a router-side
:class:`~repro.serve.net.replicate.ModelUpdateHub` that trains each
``(cluster, service)`` update once and broadcasts versioned snapshots,
with the consistency guarantee that replicated shard decisions stay
byte-identical to a single-shard merged-stream run — including under
SIGKILL or partition mid-broadcast.
"""

from .framing import FramedConn, NetFaultFilter, pack, unpack
from .frontdoor import FrontDoor, FrontDoorClient, serve_clusters_net
from .hashring import HashRing
from .replicate import ModelUpdateHub, replica_slice
from .router import NetConfig, NetStats, Router
from .worker import worker_main

__all__ = [
    "FramedConn",
    "FrontDoor",
    "FrontDoorClient",
    "HashRing",
    "ModelUpdateHub",
    "NetConfig",
    "NetFaultFilter",
    "NetStats",
    "Router",
    "pack",
    "replica_slice",
    "serve_clusters_net",
    "unpack",
    "worker_main",
]
