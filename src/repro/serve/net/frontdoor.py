"""The socket front door: where events enter the serving control plane.

Two entry modes share one :class:`~repro.serve.net.router.Router`:

* **Local drive** (:meth:`FrontDoor.run`, or the
  :func:`serve_clusters_net` convenience) — the front door builds each
  shard's event stream itself and routes every micro-batch to the
  worker pool; the network-parity sibling of
  :func:`repro.serve.runtime.serve_clusters`.
* **Listen** (:meth:`FrontDoor.serve`) — a TCP accept loop on
  loopback/LAN: external clients ``open`` a shard, push submit/finish/
  node events in stream order, and ``close``; the front door admits
  each event against the shard's bounded queue and answers ``busy``
  with a retry-after once it is full — backpressure is explicit and
  the router never buffers unacked work without bound.  The protocol is
  strict request-reply over the same length-prefixed framing workers
  use, JSON-friendly so clients never need to unpickle.

:class:`FrontDoorClient` is the matching blocking client (also the
load generator the loopback benchmark drives).
"""

from __future__ import annotations

import hashlib
import selectors
import socket
import struct
import time

import numpy as np

from ...experiments import common
from ...framework.faults import FaultPlan, installed_fault_plan
from ...framework.supervise import Supervision, backoff_delay
from ...obs import collect as obs
from ..runtime import ShardTask
from ..server import ServeConfig
from ..stream import EventBatch
from .framing import FramedConn, pack, unpack
from .router import NetConfig, NetStats, Router

__all__ = ["FrontDoor", "FrontDoorClient", "serve_clusters_net"]

_HEADER = struct.Struct(">I")


class FrontDoor:
    """Socket front door over a router + worker pool."""

    def __init__(self, tasks, net: NetConfig | None = None,
                 fault_plan: FaultPlan | None = None) -> None:
        self.router = Router(tasks, net=net, fault_plan=fault_plan)
        self.port: int | None = None

    def run(self) -> tuple[list, NetStats]:
        """Local-drive mode: stream every configured shard through the
        pool to completion; reports in task order."""
        return self.router.drive()

    # -- listen mode ----------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 0,
              ready=None) -> tuple[list, NetStats]:
        """Accept clients until every opened shard is served and all
        clients have disconnected.  ``ready`` (a ``threading.Event``) is
        set once the socket is bound — ``self.port`` then holds the
        ephemeral port."""
        router = self.router
        if any(t.replica_count > 1 for t in router.tasks.values()):
            # Clients address shards by cluster name; fanning one event
            # stream across a replica group is a drive-mode feature.
            raise ValueError("listen mode does not support replica groups")
        router.start()
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind((host, port))
        lsock.listen(16)
        lsock.setblocking(False)
        self.port = lsock.getsockname()[1]
        if ready is not None:
            ready.set()
        sel = selectors.DefaultSelector()
        sel.register(lsock, selectors.EVENT_READ)
        clients: list[FramedConn] = []
        opened = False
        try:
            while True:
                sel.select(timeout=router.cfg.poll_interval_s)
                try:
                    csock, _ = lsock.accept()
                    clients.append(FramedConn(csock))
                except (BlockingIOError, InterruptedError):
                    pass
                for client in clients:
                    client.pump()
                    for msg in client.receive():
                        if self._client_msg(client, msg):
                            opened = True
                clients = [c for c in clients if not c.closed]
                router.step()
                if opened and not clients and router.done():
                    break
        finally:
            sel.close()
            lsock.close()
            router.shutdown()
        return [
            router.routes[c].report
            for c in router.order
            if c in router.routes
        ], router.stats

    def _client_msg(self, client: FramedConn, msg: dict) -> bool:
        """Handle one client request; returns True when it opened a shard."""
        router = self.router
        op = msg.get("op")
        cluster = msg.get("cluster")
        if op == "open":
            task = router.tasks.get(cluster)
            if task is None:
                client.send({"op": "error", "cluster": cluster,
                             "error": "unknown cluster"}, fmt="json")
                return False
            if cluster not in router.routes:
                router.open_route(task, batches=[], total=None)
            client.send({"op": "opened", "cluster": cluster}, fmt="json")
            return True
        if op == "event":
            route = router.routes.get(cluster)
            if route is None:
                client.send({"op": "error", "cluster": cluster,
                             "error": "not opened"}, fmt="json")
                return False
            # Admission control: the per-shard queue is everything
            # buffered but not yet acked by a worker.  Full → reject
            # with a retry-after; the client owns the retry loop.
            if len(route.batches) - route.acked >= router.cfg.queue_bound:
                router.stats.busy_rejections += 1
                obs.counter_add("net.busy_rejections")
                client.send({
                    "op": "busy", "cluster": cluster, "bi": msg["bi"],
                    "retry_after_s": 4 * router.cfg.poll_interval_s,
                }, fmt="json")
                return False
            bi = int(msg["bi"])
            if bi != len(route.batches):
                client.send({"op": "error", "cluster": cluster,
                             "error": f"out of order: expected {len(route.batches)}"},
                            fmt="json")
                return False
            route.batches.append(EventBatch(
                kind=int(msg["kind"]),
                time=float(msg["time"]),
                refs=np.asarray(msg["refs"], dtype=np.int64),
            ))
            client.send({"op": "accepted", "cluster": cluster, "bi": bi},
                        fmt="json")
            return False
        if op == "close":
            route = router.routes.get(cluster)
            if route is not None:
                route.total = len(route.batches)
                client.send({"op": "closed", "cluster": cluster,
                             "total": route.total}, fmt="json")
            return False
        if op == "status":
            route = router.routes.get(cluster)
            reply = {"op": "status", "cluster": cluster,
                     "phase": route.phase if route else "unknown"}
            if route is not None and route.report is not None:
                reply["parity_sha"] = hashlib.sha256(
                    route.report.parity_bytes()
                ).hexdigest()
            client.send(reply, fmt="json")
            return False
        if op == "stats":
            client.send({"op": "stats", **router.stats.as_dict()}, fmt="json")
            return False
        if op == "bye":
            client.pump()
            client.close()
            return False
        client.send({"op": "error", "error": f"unknown op {op!r}"}, fmt="json")
        return False


class FrontDoorClient:
    """Blocking request-reply client for a listening front door.

    Busy-retry shape: each rejected push waits the larger of the
    server's ``retry_after_s`` hint and the shared
    :func:`~repro.framework.supervise.backoff_delay` (capped exponential
    with deterministic ``stable_seed`` jitter), never longer than
    ``retry_cap_s``, and gives up with a clear error after
    ``max_retries`` attempts instead of retrying forever.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 60.0,
                 max_retries: int = 100, retry_base_s: float = 0.01,
                 retry_cap_s: float = 0.5) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        self._buf = bytearray()
        self._sup = Supervision(
            timeout_s=None,
            max_retries=max_retries,
            backoff_base_s=retry_base_s,
            backoff_cap_s=retry_cap_s,
        )

    def request(self, msg: dict, fmt: str = "json") -> dict:
        self.sock.sendall(pack(msg, fmt=fmt))
        return self._read_frame()

    def _read_frame(self) -> dict:
        while True:
            if len(self._buf) >= _HEADER.size:
                (length,) = _HEADER.unpack_from(self._buf)
                if len(self._buf) >= _HEADER.size + length:
                    body = bytes(self._buf[_HEADER.size:_HEADER.size + length])
                    del self._buf[:_HEADER.size + length]
                    return unpack(body)
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("front door hung up")
            self._buf += chunk

    def send_event(self, cluster: str, bi: int, batch: EventBatch) -> dict:
        """Push one event batch, honoring busy/retry-after backpressure.

        Raises :class:`TimeoutError` once the retry budget is spent —
        a full queue that never drains is a stalled shard, and sleeping
        on it forever would just hide that.
        """
        msg = {
            "op": "event", "cluster": cluster, "bi": bi,
            "kind": int(batch.kind), "time": float(batch.time),
            "refs": [int(r) for r in batch.refs],
        }
        sup = self._sup
        last_hint = 0.0
        for attempt in range(sup.max_retries + 1):
            reply = self.request(msg)
            if reply.get("op") != "busy":
                return reply
            last_hint = float(reply.get("retry_after_s", 0.0))
            if attempt == sup.max_retries:
                break
            delay = max(
                last_hint,
                backoff_delay(f"frontdoor:{cluster}:{bi}", attempt + 1, sup),
            )
            time.sleep(min(delay, sup.backoff_cap_s))
        raise TimeoutError(
            f"front door stayed busy for {cluster} bi={bi} after "
            f"{sup.max_retries} retries (last retry_after_s={last_hint:g})"
        )

    def wait_done(self, cluster: str, timeout_s: float = 600.0,
                  poll_s: float = 0.05) -> dict:
        """Poll until the shard's route reports done; returns the final
        status reply (carrying ``parity_sha``)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            reply = self.request({"op": "status", "cluster": cluster})
            if reply.get("phase") == "done":
                return reply
            time.sleep(poll_s)
        raise TimeoutError(f"shard {cluster} not done after {timeout_s:g}s")

    def close(self) -> None:
        try:
            self.sock.sendall(pack({"op": "bye"}, fmt="json"))
        except OSError:
            pass
        self.sock.close()


def serve_clusters_net(
    clusters,
    config: ServeConfig | None = None,
    *,
    workers: int = 2,
    queue_bound: int = 32,
    history_days: int = 30,
    stream_days: float = 3.0,
    max_jobs: int | None = None,
    source: str = "trace",
    checkpoint_every: int | None = None,
    fault_plan: FaultPlan | None = None,
    net: NetConfig | None = None,
    replicas: int = 1,
) -> tuple[list, NetStats]:
    """Serve one shard per cluster through the socket control plane.

    The networked sibling of
    :func:`~repro.serve.runtime.serve_clusters`: same tasks, same
    reports (the parity surface is byte-identical to a direct run), but
    batches travel over sockets to consistent-hash-routed workers with
    bounded queues, retries, reroutes, and chaos injection.
    ``fault_plan`` defaults to the environment-installed plan.

    ``replicas > 1`` splits every cluster's stream across a replica
    group (see :func:`~repro.serve.net.replicate.replica_slice`);
    combined with ``config.replicate="central"`` the router trains each
    refit once and broadcasts the model to all replicas.  Returns
    ``(reports, stats)``; reports come back grouped per cluster in
    ``clusters`` order, replicas in index order.
    """
    cfg = config or ServeConfig()
    netcfg = net or NetConfig(workers=workers, queue_bound=queue_bound)
    plan = fault_plan if fault_plan is not None else installed_fault_plan()
    tasks = [
        ShardTask(
            cluster=c,
            config=cfg,
            history_days=history_days,
            stream_days=stream_days,
            max_jobs=max_jobs,
            source=source,
            checkpoint_every=checkpoint_every,
            replica_index=j,
            replica_count=replicas,
        )
        for c in clusters
        for j in range(replicas)
    ]
    # Warm the shared trace memos so forked workers inherit them
    # copy-on-write instead of regenerating the cluster per process.
    for c in clusters:
        common.cluster_gpu_trace(c)
    return FrontDoor(tasks, net=netcfg, fault_plan=plan).run()
