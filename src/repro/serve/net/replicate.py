"""Cross-host model replication: one trainer, many serving replicas.

The paper's prediction services assume *one* trained model consistently
applied across a cluster; with every serve-net shard fitting its own
copy, refit CPU multiplies by the replica count and decisions can
diverge between hosts.  This module centralizes training:

* :class:`ModelUpdateHub` — the router-side trainer.  It holds one
  fitted :class:`~repro.serve.server.PredictionServer` per cluster (the
  same deterministic ``build_shard`` the workers run) and answers
  versioned **sync requests**: a shard whose
  :class:`~repro.framework.engine.ModelUpdateEngine` runs delegated
  ships the observation delta since its previous refit; the hub replays
  the delta into its copy, performs the one real refit (same
  incremental/scratch decision the shard would have made), and returns
  a pickled model snapshot under
  :func:`~repro.ml.gbdt.keep_training_state` so continued boosting
  survives the wire.  Requests are idempotent per version — duplicates
  (retries, respawned workers re-requesting) get the cached blob, so
  the model is trained exactly once per version no matter how many
  replicas ask.

* :func:`replica_slice` — the deterministic stream partition for a
  replica group: submit batches round-robin by submit rank (each job is
  decided exactly once, by exactly one replica), finish batches
  broadcast to every replica (each must feed its rolling estimator with
  every finished job, or decisions would diverge from the merged-stream
  run), node batches to replica 0 only (the CES controller is a
  sequential stateful owner; ``CESNodeService.replicable`` is False and
  its refits stay owner-local).

Consistency argument (the byte-parity guarantee the chaos tests
assert): the hub's service copy sees exactly the events the shard's saw
— the initial history via ``build_shard``, then every delta in version
order — so the snapshot for version *v* equals the model a local refit
at *v* would have produced.  On install the shard re-feeds the events
it observed after cutting delta *v* (its engine's pending buffer) into
the incoming service, and defers serving while any version is in
flight, so no decision is ever made against a model the merged-stream
single-shard run would not have used.
"""

from __future__ import annotations

from ..runtime import ShardTask, build_shard
from ..server import PredictionServer
from ..stream import FINISH, SUBMIT

__all__ = ["ModelUpdateHub", "replica_slice"]


def replica_slice(batches: list, index: int, count: int) -> list:
    """The micro-batches replica ``index`` of ``count`` serves.

    Deterministic in the batch sequence alone: submit batches partition
    round-robin by submit rank, finish batches go to every replica,
    node-sample/node-fail batches to replica 0 (the CES owner).  Batch
    indices are re-numbered implicitly — a replica's session sees its
    own slice as a dense ``0..n`` sequence.
    """
    if count == 1:
        return list(batches)
    out = []
    rank = 0
    for batch in batches:
        if batch.kind == SUBMIT:
            take = rank % count == index
            rank += 1
        elif batch.kind == FINISH:
            take = True
        else:
            take = index == 0
        if take:
            out.append(batch)
    return out


class ModelUpdateHub:
    """Router-side central trainer: one model lineage per (cluster,
    service), versioned snapshots, idempotent sync."""

    def __init__(self) -> None:
        self._servers: dict[str, PredictionServer] = {}
        #: (cluster, service) -> {"applied": version, "blobs": {v: blob}}
        self._lineages: dict[tuple[str, str], dict] = {}
        self.refits = 0
        self.cached_hits = 0

    def ensure(self, task: ShardTask) -> PredictionServer:
        """Build (once) the hub's fitted server for a task's cluster.

        Replicas of one cluster share a lineage; ``build_shard`` is
        deterministic, so the hub's initial models are byte-identical to
        the ones each worker fits for itself.
        """
        server = self._servers.get(task.cluster)
        if server is None:
            server, _ = build_shard(task)
            self._servers[task.cluster] = server
        return server

    def sync(self, task: ShardTask, name: str, version: int,
             deltas: list, now: float, mode: str | None = None,
             ) -> tuple[bytes, bool]:
        """Train (or fetch) the snapshot for one sync version.

        Returns ``(blob, fresh)`` — ``fresh`` False when the version was
        already trained and the cached blob is returned (duplicate
        request from a retry or a re-resumed worker).  A version more
        than one ahead of the lineage is a protocol bug: versions are
        cut at deterministic stream positions, so the first requester of
        version *v* is always at ``applied + 1``.
        """
        server = self.ensure(task)
        rec = self._lineages.setdefault(
            (task.cluster, name), {"applied": 0, "blobs": {}}
        )
        if version <= rec["applied"]:
            self.cached_hits += 1
            return rec["blobs"][version], False
        if version != rec["applied"] + 1:
            raise RuntimeError(
                f"sync version gap for {task.cluster}/{name}: "
                f"got v{version}, lineage at v{rec['applied']}"
            )
        engine = server.engine
        engine.ingest(name, list(deltas))
        engine.refit(name, float(now), mode=mode)
        blob = engine.snapshot_blob(name)
        rec["applied"] = version
        rec["blobs"][version] = blob
        self.refits += 1
        return blob, True

    def fits_performed(self, cluster: str, name: str) -> int:
        """Real model fits the hub executed for one lineage."""
        server = self._servers.get(cluster)
        return server.engine.fits_performed(name) if server else 0

    def fit_seconds(self, cluster: str, name: str) -> float:
        server = self._servers.get(cluster)
        return server.engine.fit_seconds(name) if server else 0.0
