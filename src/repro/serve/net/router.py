"""The serving control plane's router: links, routes, and resilience.

The router owns a pool of forked socket workers (one
:class:`WorkerLink` each, talking framed messages over a socketpair)
and a :class:`RouteState` per shard.  Shards are placed on workers by
consistent hashing (:mod:`.hashring`), batches stream to the owning
worker behind a bounded in-flight window (``queue_bound`` — the
explicit backpressure: the router never buffers unacked work beyond
it), and every route walks a circuit-breaker ladder when its worker
stops making progress:

1. **healthy** — stream batches, collect acks (checkpoints piggyback).
2. **retrying** — the per-RPC deadline expired: rewind to the acked
   cursor and resend after a capped exponential backoff whose jitter is
   deterministic (:func:`~repro.framework.supervise.backoff_delay` over
   ``stable_seed``, never the wall clock).  Workers skip duplicate
   batch indices, so resends are idempotent by construction.
3. **degraded-to-sibling** — the retry budget is spent or the link died
   (socket EOF, dead process, expired heartbeat): the link is taken
   down (and respawned with a fresh epoch when budget remains), and
   each of its routes is re-resumed *from its latest checkpoint* on the
   next alive worker in its hash-ring preference order.
4. **FIFO passthrough** — no worker can host the shard (fork
   unavailable, or reroute budget exhausted): the router serves the
   remaining batches in-process — decisions never stop flowing,
   mirroring the in-shard degradation ladder.

With central replication (``ServeConfig.replicate = "central"``) the
router also hosts the :class:`~repro.serve.net.replicate.ModelUpdateHub`:
delegating shards send ``model_sync_request`` frames (versioned
observation deltas) at their refit-due points, the hub trains once per
(cluster, service, version), and the router broadcasts the snapshot as
a ``model_sync`` frame to every worker hosting a replica of the
cluster.  Cumulative acks carry each shard's model version vector; a
worker that misses a broadcast re-requests by version, so SIGKILL or
partition mid-broadcast converges to the same lineage.

Network faults (``drop``/``delay``/``duplicate``/``partition``) inject
at each link's framing layer, keyed by ``("link:<worker>", epoch,
frame seq)`` — see :class:`~repro.serve.net.framing.NetFaultFilter`.
Observability: queue-depth and RPC-latency histograms plus
retry/reroute/breaker counters flow through :mod:`repro.obs`.
"""

from __future__ import annotations

import multiprocessing
import selectors
import socket
import time
from dataclasses import dataclass, field

from ...framework.faults import FaultPlan
from ...framework.parallel import fork_available
from ...framework.supervise import HeartbeatMonitor, Supervision, backoff_delay
from ...obs import collect as obs
from ..runtime import ShardTask, build_shard, build_stream
from ..server import ServingSession
from .framing import FramedConn, NetFaultFilter
from .hashring import HashRing
from .replicate import ModelUpdateHub, replica_slice
from .worker import worker_main

__all__ = ["NetConfig", "NetStats", "Router", "RouteState", "WorkerLink"]


@dataclass(frozen=True)
class NetConfig:
    """Control-plane knobs: pool size, backpressure, deadlines, retry
    shape.  ``max_retries``/``backoff_base_s``/``backoff_cap_s`` are the
    same knobs the forked supervisor exposes — the CLI threads one set
    of flags into both planes."""

    workers: int = 2
    #: max unacked batches in flight per shard (the bounded queue)
    queue_bound: int = 32
    #: progress deadline per streamed RPC window
    rpc_deadline_s: float = 60.0
    #: deadline for resume (the worker fits models before replying)
    resume_deadline_s: float = 600.0
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    poll_interval_s: float = 0.005
    #: None disables heartbeat enforcement (acks already prove progress)
    heartbeat_timeout_s: float | None = None
    vnodes: int = 64

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {self.queue_bound}")
        if self.rpc_deadline_s <= 0 or self.resume_deadline_s <= 0:
            raise ValueError("deadlines must be positive")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def supervision(self) -> Supervision:
        """The equivalent supervise knobs (used for backoff computation)."""
        return Supervision(
            timeout_s=None,
            max_retries=self.max_retries,
            backoff_base_s=self.backoff_base_s,
            backoff_cap_s=self.backoff_cap_s,
            poll_interval_s=self.poll_interval_s,
        )


@dataclass
class NetStats:
    """Wall-clock-plane counters for one router run (never part of the
    parity surface — chaos runs rack these up, fault-free runs don't)."""

    frames_sent: int = 0
    acks: int = 0
    retries: int = 0
    gap_rewinds: int = 0
    reroutes: int = 0
    respawns: int = 0
    link_failures: int = 0
    passthroughs: int = 0
    busy_rejections: int = 0
    dropped_frames: int = 0
    max_queue_depth: int = 0
    #: replication plane: central refits performed, duplicate sync
    #: requests answered from the version cache, snapshot broadcast
    #: frames sent, and total snapshot payload bytes
    model_syncs: int = 0
    sync_cached: int = 0
    snapshot_frames: int = 0
    snapshot_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "frames_sent": self.frames_sent,
            "acks": self.acks,
            "retries": self.retries,
            "gap_rewinds": self.gap_rewinds,
            "reroutes": self.reroutes,
            "respawns": self.respawns,
            "link_failures": self.link_failures,
            "passthroughs": self.passthroughs,
            "busy_rejections": self.busy_rejections,
            "dropped_frames": self.dropped_frames,
            "max_queue_depth": self.max_queue_depth,
            "model_syncs": self.model_syncs,
            "sync_cached": self.sync_cached,
            "snapshot_frames": self.snapshot_frames,
            "snapshot_bytes": self.snapshot_bytes,
        }


class WorkerLink:
    """One worker process + its framed socket, from the router's side."""

    __slots__ = ("name", "epoch", "proc", "conn", "alive", "spawns", "hb",
                 "last_ping")

    def __init__(self, name: str, epoch: int, proc, conn: FramedConn,
                 hb: HeartbeatMonitor, spawns: int = 0) -> None:
        self.name = name
        self.epoch = epoch
        self.proc = proc
        self.conn = conn
        self.alive = True
        self.spawns = spawns
        self.hb = hb
        self.last_ping = 0.0


#: route phases, in ladder order
_PHASES = ("resuming", "streaming", "finishing", "local", "done")


class RouteState:
    """One shard's routing state: cursors, checkpoint, breaker position."""

    __slots__ = (
        "cluster", "task", "batches", "total", "worker", "attempt",
        "retries", "reroutes", "next_send", "acked", "ckpt", "report",
        "phase", "deadline", "backoff_until", "need_resume", "sent_at",
        "sync_seen",
    )

    def __init__(self, task: ShardTask, batches: list | None = None,
                 total: int | None = None) -> None:
        # The wire/route key: equals the cluster name for a
        # whole-cluster shard, ``cluster@index`` for a replica.
        self.cluster = task.shard_id
        self.task = task
        self.batches = batches if batches is not None else []
        self.total = total
        self.worker: str | None = None
        self.attempt = 0
        self.retries = 0
        self.reroutes = 0
        self.next_send = 0
        self.acked = 0
        self.ckpt = None
        self.report = None
        self.phase = "resuming"
        self.deadline: float | None = None
        self.backoff_until = 0.0
        self.need_resume = False
        self.sent_at: dict[int, float] = {}
        #: the shard's model version vector as of its last cumulative
        #: ack: ``{service: (requested, installed)}`` — replication
        #: observability (which shard is waiting on which snapshot)
        self.sync_seen: dict[str, tuple[int, int]] = {}


def _worker_entry(sock, name: str, plan) -> None:
    worker_main(sock, name, plan)


class Router:
    """Single-threaded event-loop router over a forked worker pool."""

    def __init__(self, tasks, net: NetConfig | None = None,
                 fault_plan: FaultPlan | None = None) -> None:
        tasks = list(tasks)
        self.cfg = net or NetConfig()
        self.plan = fault_plan
        self.order = [t.shard_id for t in tasks]
        self.tasks = {t.shard_id: t for t in tasks}
        if len(self.tasks) != len(tasks):
            raise ValueError("duplicate shard in tasks")
        # Central replication: one hub lineage per cluster, built lazily
        # on the first sync request (or passthrough serve).
        self.hub = (
            ModelUpdateHub()
            if any(t.config.replicate == "central" for t in tasks)
            else None
        )
        self.stats = NetStats()
        self.routes: dict[str, RouteState] = {}
        self.links: dict[str, WorkerLink] = {}
        self.ring: HashRing | None = None
        self._sup = self.cfg.supervision()
        self._mp = multiprocessing.get_context("fork") if fork_available() else None
        enabled = obs.is_enabled()
        self._qdepth = obs.histogram("net.queue_depth") if enabled else None
        self._rpc_hist = obs.histogram("net.rpc_s") if enabled else None
        self._hb_hist = obs.histogram("net.heartbeat_gap_s") if enabled else None

    # -- pool lifecycle ------------------------------------------------

    def start(self) -> None:
        if self._mp is None:
            return  # no fork: every route takes the passthrough rung
        for i in range(self.cfg.workers):
            name = f"w{i}"
            self.links[name] = self._spawn(name, epoch=0, spawns=0)
        self.ring = HashRing(list(self.links), vnodes=self.cfg.vnodes)

    def _spawn(self, name: str, epoch: int, spawns: int) -> WorkerLink:
        parent_sock, child_sock = socket.socketpair()
        proc = self._mp.Process(
            target=_worker_entry, args=(child_sock, name, self.plan), daemon=True
        )
        proc.start()
        child_sock.close()
        conn = FramedConn(
            parent_sock, NetFaultFilter(self.plan, f"link:{name}", epoch)
        )
        hb = HeartbeatMonitor(self.cfg.heartbeat_timeout_s, hist=self._hb_hist)
        return WorkerLink(name, epoch, proc, conn, hb, spawns=spawns)

    def shutdown(self) -> None:
        deadline = time.monotonic() + 2.0
        for link in self.links.values():
            if link.alive:
                link.conn.send({"op": "shutdown"})
        for link in self.links.values():
            if not link.alive:
                continue  # reaped (and counted) in _link_down already
            while link.conn.want_write and time.monotonic() < deadline:
                link.conn.pump()
                time.sleep(0.001)
            self.stats.dropped_frames += link.conn.faults.dropped
            link.proc.join(timeout=2.0)
            if link.proc.is_alive():
                link.proc.kill()
                link.proc.join()
            link.conn.close()
            link.alive = False

    # -- route lifecycle -----------------------------------------------

    def open_route(self, task: ShardTask, batches: list | None = None,
                   total: int | None = None) -> RouteState:
        route = RouteState(task, batches=batches, total=total)
        self.routes[task.shard_id] = route
        if not self.links:
            self._go_local(route)
            return route
        route.worker = self.ring.owner(task.shard_id)
        self._send_resume(route, time.monotonic())
        return route

    def _send_resume(self, route: RouteState, now: float) -> None:
        link = self.links[route.worker]
        link.conn.send({
            "op": "resume",
            "cluster": route.cluster,
            "task": route.task,
            "attempt": route.attempt,
            "ckpt": route.ckpt,
        })
        route.phase = "resuming"
        route.need_resume = False
        route.sent_at.clear()
        route.deadline = now + self.cfg.resume_deadline_s

    # -- the event loop ------------------------------------------------

    def done(self) -> bool:
        return all(r.phase == "done" for r in self.routes.values())

    def step(self) -> bool:
        """One pump: drain links, advance routes, enforce deadlines.
        Returns whether any message moved (the idle signal the drive
        loop uses to decide between spinning on and backing off)."""
        now = time.monotonic()
        busy = False
        for link in list(self.links.values()):
            if not link.alive:
                continue
            link.conn.pump()
            for msg in link.conn.receive():
                busy = True
                self._handle(link, msg, now)
            if link.conn.closed or not link.proc.is_alive():
                self._link_down(link, now, reason="hangup")
            elif link.hb.expired(now):
                self._link_down(link, now, reason="heartbeat")
            elif self.cfg.heartbeat_timeout_s is not None:
                if now - link.last_ping > self.cfg.heartbeat_timeout_s / 3.0:
                    link.conn.send({"op": "ping"})
                    link.last_ping = now
        for route in self.routes.values():
            if route.phase == "local":
                self._serve_local(route)
                busy = True
            elif self._advance(route, now):
                busy = True
        now = time.monotonic()
        for route in self.routes.values():
            if (
                route.phase in ("resuming", "streaming", "finishing")
                and route.deadline is not None
                and now > route.deadline
            ):
                self._route_stalled(route, now)
        return busy

    def _idle_wait(self) -> None:
        """Block until a link socket turns readable or the poll
        interval elapses: the drive loop wakes on the first ack
        instead of sleeping blind and adding up to a full poll
        interval of latency per ack round."""
        sel = selectors.DefaultSelector()
        try:
            armed = False
            for link in self.links.values():
                if link.alive and not link.conn.closed:
                    sel.register(link.conn.sock, selectors.EVENT_READ)
                    armed = True
            if armed:
                sel.select(self.cfg.poll_interval_s)
            else:
                time.sleep(self.cfg.poll_interval_s)
        finally:
            sel.close()

    def drive(self) -> tuple[list, NetStats]:
        """Local-drive mode: build every shard's stream here, route all
        batches, run to completion; reports in task order."""
        t0 = obs.wall_now()
        self.start()
        # One stream build per *cluster*: replicas share the merged batch
        # sequence and each takes its deterministic slice of it.
        full_batches: dict[str, list] = {}
        for shard in self.order:
            task = self.tasks[shard]
            full = full_batches.get(task.cluster)
            if full is None:
                full = list(build_stream(task).batches(task.config.batch_window_s))
                full_batches[task.cluster] = full
            batches = replica_slice(full, task.replica_index, task.replica_count)
            self.open_route(task, batches=batches, total=len(batches))
        try:
            while not self.done():
                # Back off only when a step moved nothing: while acks
                # are streaming, polling again immediately keeps the
                # in-flight window full instead of draining it 5 ms at
                # a time.
                if not self.step():
                    self._idle_wait()
        finally:
            self.shutdown()
        if obs.is_enabled():
            obs.record_span(
                "net.drive", t0, obs.wall_now(),
                clusters=self.order, workers=self.cfg.workers,
            )
        return [self.routes[c].report for c in self.order], self.stats

    # -- message handling ----------------------------------------------

    def _handle(self, link: WorkerLink, msg: dict, now: float) -> None:
        link.hb.beat(now)
        op = msg.get("op")
        if op == "pong":
            return
        route = self.routes.get(msg.get("cluster"))
        if route is None or route.worker != link.name:
            return  # stale: the shard moved on
        if op == "resume_ok":
            if route.phase == "resuming" and msg.get("attempt") == route.attempt:
                # The worker's cursor is authoritative: it restarted from
                # the checkpoint, so acked progress past it is rewound.
                cursor = int(msg["cursor"])
                route.acked = cursor
                route.next_send = cursor
                route.phase = "streaming"
                route.deadline = now + self.cfg.rpc_deadline_s
        elif op == "ack":
            # Acks are cumulative (a worker coalesces one per drain
            # round): bi covers every batch at or below it.
            bi = int(msg["bi"])
            sent = route.sent_at.pop(bi, None)
            if sent is not None and self._rpc_hist is not None:
                self._rpc_hist.record(now - sent)
            for k in [k for k in route.sent_at if k <= bi]:
                del route.sent_at[k]
            route.acked = max(route.acked, bi + 1)
            ckpt = msg.get("ckpt")
            if ckpt is not None and (route.ckpt is None or ckpt.seq >= route.ckpt.seq):
                route.ckpt = ckpt
            sync = msg.get("sync")
            if sync:
                route.sync_seen = sync
            route.deadline = now + self.cfg.rpc_deadline_s
            self.stats.acks += 1
        elif op == "gap":
            # Frames to this worker were lost: rewind to its cursor.
            expected = int(msg["expected"])
            route.acked = max(route.acked, expected)
            if expected < route.next_send:
                route.next_send = expected
                route.sent_at.clear()
                self.stats.gap_rewinds += 1
                obs.counter_add("net.gap_rewinds")
            route.deadline = now + self.cfg.rpc_deadline_s
        elif op == "model_sync_request":
            # A delegating shard hit a refit-due point: train (or fetch)
            # the version centrally and broadcast the snapshot to every
            # worker hosting a replica of the cluster.  Counts as
            # progress — the shard defers serving until the install.
            self._central_sync(route, msg, now)
            route.deadline = now + self.cfg.rpc_deadline_s
        elif op == "report":
            if route.phase == "finishing":
                report, snap = obs.split_carrier(msg["report"])
                obs.merge_snapshot(snap)
                route.report = report
                route.phase = "done"
                route.deadline = None

    # -- model replication ----------------------------------------------

    def _central_sync(self, route: RouteState, msg: dict, now: float) -> None:
        if self.hub is None:
            return  # replication not configured: stale/bogus request
        task = route.task
        name = msg["service"]
        version = int(msg["version"])
        blob, fresh = self.hub.sync(
            task, name, version, msg["deltas"], float(msg["now"]),
            msg.get("mode"),
        )
        if fresh:
            self.stats.model_syncs += 1
            obs.counter_add("net.model_syncs")
        else:
            self.stats.sync_cached += 1
        self._broadcast_snapshot(task.cluster, name, version, blob)

    def _broadcast_snapshot(self, cluster: str, name: str, version: int,
                            blob: bytes) -> None:
        """Send one snapshot to every alive worker hosting a replica of
        ``cluster`` (deduplicated per link — a worker applies the frame
        to all its matching shards).  Workers that miss the broadcast
        (partition, crash) re-request by version on their own."""
        sent: set[str] = set()
        for route in self.routes.values():
            if route.task.cluster != cluster or route.worker is None:
                continue
            if route.phase not in ("resuming", "streaming", "finishing"):
                continue
            link = self.links.get(route.worker)
            if link is None or not link.alive or link.name in sent:
                continue
            sent.add(link.name)
            link.conn.send({
                "op": "model_sync",
                "cluster": cluster,
                "service": name,
                "version": version,
                "blob": blob,
            })
            self.stats.snapshot_frames += 1
            self.stats.snapshot_bytes += len(blob)

    # -- route advancement ----------------------------------------------

    def _advance(self, route: RouteState, now: float) -> bool:
        """Returns whether this route sent anything (the busy signal)."""
        if route.phase not in ("resuming", "streaming"):
            return False
        if now < route.backoff_until:
            return False
        if route.phase == "resuming":
            if route.need_resume:
                self._send_resume(route, now)
                return True
            return False
        link = self.links.get(route.worker)
        if link is None or not link.alive:
            return False  # _link_down is about to reroute this route
        sent_any = False
        # Batches coalesce into group frames: one pickle + one syscall
        # per group instead of per batch.  The group cap stays well
        # below the window so several frames ride in flight — losing
        # one still leaves later frames to trigger the worker's gap
        # reply instead of stalling until the RPC deadline.
        group_cap = max(1, min(32, self.cfg.queue_bound // 4))
        while (
            route.next_send < len(route.batches)
            and route.next_send - route.acked < self.cfg.queue_bound
        ):
            bi = route.next_send
            end = min(
                len(route.batches),
                route.acked + self.cfg.queue_bound,
                bi + group_cap,
            )
            link.conn.send({
                "op": "batch",
                "cluster": route.cluster,
                "bi": bi,
                "items": route.batches[bi:end],
            })
            route.sent_at[end - 1] = now
            route.next_send = end
            sent_any = True
            self.stats.frames_sent += 1
            depth = route.next_send - route.acked
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            if self._qdepth is not None:
                self._qdepth.record(depth)
        outstanding = route.next_send > route.acked
        if outstanding:
            if sent_any and route.deadline is None:
                route.deadline = now + self.cfg.rpc_deadline_s
        elif (
            route.total is not None
            and route.acked >= route.total
        ):
            link.conn.send({"op": "finish", "cluster": route.cluster})
            route.phase = "finishing"
            route.deadline = now + self.cfg.resume_deadline_s
            return True
        else:
            route.deadline = None  # caught up; nothing to wait for
        return sent_any

    # -- the breaker ladder ---------------------------------------------

    def _route_stalled(self, route: RouteState, now: float) -> None:
        route.retries += 1
        self.stats.retries += 1
        obs.counter_add("net.retries")
        link = self.links.get(route.worker)
        if route.retries > self.cfg.max_retries or link is None or not link.alive:
            # Rung 3: the link is unresponsive past its budget — take it
            # down (a partitioned worker is alive but unreachable; the
            # respawn/reroute path treats both identically).
            if link is not None and link.alive:
                self._link_down(link, now, reason="unresponsive")
            else:
                self._reroute(route, now, avoid=route.worker)
            return
        # Rung 2: rewind to the acked cursor and resend after backoff.
        delay = backoff_delay(f"net:{route.cluster}", route.retries, self._sup)
        route.backoff_until = now + delay
        route.next_send = route.acked
        route.sent_at.clear()
        if route.phase == "resuming":
            route.need_resume = True
            route.deadline = now + delay + self.cfg.resume_deadline_s
        else:
            if route.phase == "finishing":
                route.phase = "streaming"  # re-advance resends finish
            route.deadline = now + delay + self.cfg.rpc_deadline_s
        link.conn.send({"op": "ping"})

    def _link_down(self, link: WorkerLink, now: float, reason: str) -> None:
        if not link.alive:
            return
        link.alive = False
        self.stats.link_failures += 1
        obs.counter_add(f"net.link_down.{reason}")
        self.stats.dropped_frames += link.conn.faults.dropped
        if link.proc.is_alive():
            link.proc.kill()
        link.proc.join()
        link.conn.close()
        if link.spawns < self.cfg.max_retries:
            # Fresh epoch: new process, re-keyed fault filter.
            self.links[link.name] = self._spawn(
                link.name, epoch=link.epoch + 1, spawns=link.spawns + 1
            )
            self.stats.respawns += 1
            obs.counter_add("net.respawns")
        for route in self.routes.values():
            if route.worker == link.name and route.phase in (
                "resuming", "streaming", "finishing"
            ):
                self._reroute(route, now, avoid=link.name)

    def _reroute(self, route: RouteState, now: float, avoid: str | None) -> None:
        route.reroutes += 1
        route.attempt += 1
        route.retries = 0
        self.stats.reroutes += 1
        obs.counter_add("net.reroutes")
        if route.attempt > self.cfg.max_retries + len(self.links):
            self._go_local(route)
            return
        alive = [
            w for w in self.ring.preference(route.cluster)
            if self.links[w].alive
        ]
        if not alive:
            self._go_local(route)
            return
        # Degrade to a sibling when one exists; a respawned self is the
        # fallback home.
        route.worker = next((w for w in alive if w != avoid), alive[0])
        route.next_send = route.acked
        route.backoff_until = 0.0
        self._send_resume(route, now)

    def _go_local(self, route: RouteState) -> None:
        # Rung 4: FIFO passthrough — the router serves the shard itself.
        route.phase = "local"
        route.worker = None
        self.stats.passthroughs += 1
        obs.counter_add("net.passthrough")

    def _serve_local(self, route: RouteState) -> None:
        """Serve a passthrough route to completion in-process, resuming
        from its latest checkpoint (same parity path as a worker).

        A route opened with an explicit batch list (drive mode) replays
        exactly those batches — a replica's slice, not the full stream —
        and, under central replication, drains the engine's sync
        requests through the hub after every batch so the passthrough
        rung keeps the same model lineage a socket worker would.
        """
        task = route.task
        server, stream = build_shard(task)
        if route.total is None:
            # Listen-mode passthrough: no authoritative batch list held
            # here; replay the locally-built stream (pre-replication
            # behavior, whole-cluster shards only).
            route.report = server.run(
                stream,
                speedup=task.speedup,
                resume=route.ckpt,
            )
            route.phase = "done"
            route.deadline = None
            return
        central = self.hub is not None and task.config.replicate == "central"
        if central:
            server.enable_central_refits()
        session = ServingSession(
            server,
            stream,
            resume=route.ckpt,
            partial=task.replica_count > 1,
        )
        if central:
            self._drain_local_sync(task, server)
        for bi, batch in enumerate(route.batches):
            if bi < session.cursor:
                continue
            session.process(bi, batch)
            if central:
                self._drain_local_sync(task, server)
        route.report = session.finish()
        route.phase = "done"
        route.deadline = None

    def _drain_local_sync(self, task: ShardTask, server) -> None:
        """Synchronous sync loop for an in-process shard: every
        outstanding request trains at the hub and installs immediately
        (installs prune the outbox, so this terminates)."""
        while True:
            requests = server.engine.sync_requests()
            if not requests:
                return
            req = requests[0]
            blob, fresh = self.hub.sync(
                task, req["service"], int(req["version"]),
                req["deltas"], float(req["now"]), req.get("mode"),
            )
            if fresh:
                self.stats.model_syncs += 1
            else:
                self.stats.sync_cached += 1
            server.install_sync(req["service"], int(req["version"]), blob)
