"""Consistent-hash routing of shard keys onto workers.

A classic virtual-node hash ring over ``md5`` (stable across processes
and Python versions — ``hash()`` is salted and useless here).  Each
worker contributes ``vnodes`` points on the ring; a key routes to the
first point clockwise from its own hash.  :meth:`HashRing.preference`
returns *every* worker in ring order from that point — the failover
order the router walks when a shard's home worker dies, so reroutes are
deterministic and adding a worker only moves ~1/N of the keys.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(text: str) -> int:
    return int.from_bytes(hashlib.md5(text.encode()).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over a set of node names."""

    def __init__(self, nodes, vnodes: int = 64) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ValueError("hash ring needs at least one node")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes = tuple(nodes)
        points = []
        for node in nodes:
            for i in range(vnodes):
                points.append((_point(f"{node}#{i}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def owner(self, key: str) -> str:
        """The node owning ``key``."""
        i = bisect.bisect_right(self._hashes, _point(key)) % len(self._hashes)
        return self._owners[i]

    def preference(self, key: str) -> list[str]:
        """Every node in failover order for ``key`` (owner first)."""
        start = bisect.bisect_right(self._hashes, _point(key))
        seen: list[str] = []
        n = len(self._owners)
        for step in range(n):
            node = self._owners[(start + step) % n]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self.nodes):
                    break
        return seen
