"""Scale-out: serve multi-cluster shards on a forked worker pool.

Each cluster is one shard — its own :class:`PredictionServer` (models
fitted on that cluster's history) consuming that cluster's event
stream.  Shards are independent, so they fan out over
:func:`repro.framework.parallel.run_forked`; the parent warms the
shared trace memos first so workers inherit them copy-on-write instead
of regenerating six months of synthetic workload per process.

With ``supervised=True`` the fan-out instead runs under
:func:`repro.framework.supervise.run_supervised`: each shard gets its
own watched worker process with heartbeats, timeouts and bounded
retries.  A shard that crashes (SIGKILL, OOM) mid-stream is restarted
and — when ``checkpoint_every`` is set — resumed from its last
:class:`~repro.serve.server.ShardCheckpoint`, producing a report whose
parity surface is byte-identical to a never-failed run.

The shard scenario mirrors the batch experiments: QSSF trains on the
``history_days`` before the evaluation month, the CES forecaster on the
same window's node-demand series, and the stream replays the first
``stream_days`` of the evaluation month.

Two stream sources exist:

* ``source="trace"`` — the as-if-unqueued approximation: finishes at
  ``submit + duration``, node demand from capacity-scaled overlap
  concurrency.  No simulator in the loop; the original smoke path.
* ``source="replay"`` — a *live* simulated replay: the shard window is
  replayed through the fast :class:`~repro.sim.engine.Simulator` under
  the production FIFO policy, finish events fall at the *simulated* end
  times, and node demand (both the CES training history and the
  streamed samples) comes from the replay's running-nodes telemetry —
  queueing, placement, and capacity effects included.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..experiments import common
from ..framework.faults import FaultPlan
from ..framework.parallel import run_forked
from ..framework.supervise import (
    Supervision,
    SupervisionLog,
    WorkerContext,
    run_supervised,
)
from ..obs import collect as obs
from ..sched import FIFOScheduler
from ..sim import Simulator, running_nodes_series
from ..stats.timeseries import TimeGrid
from ..traces import SECONDS_PER_DAY, slice_period
from .server import PredictionServer, ServeConfig, ShardReport
from .stream import EventStream, approx_node_demand

__all__ = ["ShardTask", "build_shard", "build_stream", "run_shard", "serve_clusters"]

_SOURCES = ("trace", "replay")


@dataclass(frozen=True)
class ShardTask:
    """One cluster shard's serving scenario (picklable for the pool)."""

    cluster: str
    config: ServeConfig = field(default_factory=ServeConfig)
    history_days: int = 30
    stream_days: float = 3.0
    max_jobs: int | None = None
    speedup: float | None = None
    source: str = "trace"
    #: checkpoint cadence in micro-batches (None = no checkpoints);
    #: only meaningful under supervised serving, where the supervisor
    #: resumes a restarted shard from its last checkpoint.
    checkpoint_every: int | None = None
    #: replica-group position: the serve-net router splits one cluster's
    #: stream across ``replica_count`` shards (submit batches round-robin
    #: by rank, finish batches broadcast, node batches to replica 0 — the
    #: CES owner).  The default (0 of 1) is a whole-cluster shard.
    replica_index: int = 0
    replica_count: int = 1

    def __post_init__(self) -> None:
        if self.replica_count < 1:
            raise ValueError(f"replica_count must be >= 1, got {self.replica_count}")
        if not 0 <= self.replica_index < self.replica_count:
            raise ValueError(
                f"replica_index must be in [0, {self.replica_count}), "
                f"got {self.replica_index}"
            )
        if self.history_days < 1:
            raise ValueError("history_days must be >= 1")
        if self.stream_days <= 0:
            raise ValueError("stream_days must be positive")
        if self.max_jobs is not None and self.max_jobs <= 0:
            raise ValueError(f"max_jobs must be positive, got {self.max_jobs}")
        if self.speedup is not None and self.speedup <= 0:
            raise ValueError(f"speedup must be positive, got {self.speedup}")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )
        if self.source not in _SOURCES:
            raise ValueError(
                f"source must be one of {_SOURCES}, got {self.source!r}"
            )

    @property
    def shard_id(self) -> str:
        """Route/fault key: the cluster name for a whole-cluster shard,
        ``cluster@index`` for a replica — so single-replica behavior
        (fault-plan keys, route labels) is unchanged byte-for-byte."""
        if self.replica_count == 1:
            return self.cluster
        return f"{self.cluster}@{self.replica_index}"


def build_shard(task: ShardTask) -> tuple[PredictionServer, EventStream]:
    """Fit one shard's server and build its event stream.

    Uses the shared experiment scenario's memoized traces, so repeated
    builds (and the smoke exhibits) never regenerate a cluster.
    """
    cfg = task.config
    gpu = common.cluster_gpu_trace(task.cluster)
    eval_start = common.EVAL_MONTH * common.MONTH_SECONDS
    hist_start = eval_start - task.history_days * SECONDS_PER_DAY
    stream_end = eval_start + task.stream_days * SECONDS_PER_DAY

    history = slice_period(gpu, hist_start, eval_start)
    server = PredictionServer(cfg)
    server.install_qssf(history)
    total_nodes = common.cluster_spec(task.cluster).num_nodes

    if task.source == "replay":
        ces_history, stream = _replay_stream(
            task, gpu, hist_start, eval_start, stream_end
        )
    else:
        ces_history, stream = _trace_stream(
            task, gpu, hist_start, eval_start, stream_end, total_nodes
        )
    server.install_ces(ces_history, total_nodes)
    return server, stream


def build_stream(task: ShardTask) -> EventStream:
    """Build only a shard's event stream — no model fitting.

    The serve-net router's half of a shard: it needs the micro-batches
    to route over the wire, not the fitted models (those live in the
    worker that calls :func:`build_shard` on the same task — both sides
    derive the identical stream deterministically).
    """
    eval_start = common.EVAL_MONTH * common.MONTH_SECONDS
    hist_start = eval_start - task.history_days * SECONDS_PER_DAY
    stream_end = eval_start + task.stream_days * SECONDS_PER_DAY
    gpu = common.cluster_gpu_trace(task.cluster)
    if task.source == "replay":
        return _replay_stream(task, gpu, hist_start, eval_start, stream_end)[1]
    total_nodes = common.cluster_spec(task.cluster).num_nodes
    return _trace_stream(
        task, gpu, hist_start, eval_start, stream_end, total_nodes
    )[1]


def _trace_stream(
    task, gpu, hist_start, eval_start, stream_end, total_nodes
) -> tuple[np.ndarray, EventStream]:
    """Replay-free stream: as-if-unqueued finishes and scaled demand.
    Returns the CES training history alongside the stream."""
    cfg = task.config
    window = slice_period(gpu, eval_start, stream_end).sort_by("submit_time")
    if task.max_jobs is not None:
        window = window.head(task.max_jobs)
    # Node-demand series: as-if-unqueued concurrency over the *full*
    # trace (jobs running into a window count toward it), rescaled so
    # the history peak matches the physical node count — the capacity
    # normalization a queueing simulator would impose, at stream cost.
    hist_grid = TimeGrid.covering(hist_start, eval_start, cfg.bin_seconds)
    raw_hist = approx_node_demand(gpu, hist_grid)
    scale = total_nodes / max(float(raw_hist.max()), 1.0)
    ces_history = _scale_demand(raw_hist, scale, total_nodes)

    stream_grid = TimeGrid.covering(eval_start, stream_end, cfg.bin_seconds)
    return ces_history, EventStream.from_trace(
        window,
        cluster=task.cluster,
        t0=eval_start,
        t1=stream_end,
        bin_seconds=cfg.bin_seconds,
        demand=_scale_demand(
            approx_node_demand(gpu, stream_grid), scale, total_nodes
        ),
    )


def _replay_stream(
    task, gpu, hist_start, eval_start, stream_end
) -> tuple[np.ndarray, EventStream]:
    """Live-replay stream: one fast simulator pass over the shard window.

    The replay covers history + stream window in a single run, so the
    stream's opening cluster state carries the history's queued and
    running jobs.  CES trains on the replay's running-nodes telemetry
    over the history bins (the returned history series); the stream's
    demand samples come from the same telemetry
    (``EventStream.from_replay``), and finish events fall at the
    simulated end times.
    """
    cfg = task.config
    spec = common.cluster_spec(task.cluster)
    window = slice_period(gpu, hist_start, stream_end)
    replay = Simulator(spec, FIFOScheduler()).run(window)

    hist_grid = TimeGrid.covering(hist_start, eval_start, cfg.bin_seconds)
    ces_history = running_nodes_series(replay, hist_grid)

    submit = replay.trace["submit_time"].astype(float)
    idx = np.flatnonzero((submit >= eval_start) & (submit < stream_end))
    idx = idx[np.argsort(submit[idx], kind="stable")]
    if task.max_jobs is not None:
        idx = idx[: task.max_jobs]
    # Window jobs only, but against the full replay's node telemetry
    # (jobs carried over from the history window still occupy nodes).
    return ces_history, EventStream.from_replay(
        replay.restrict(idx),
        cluster=task.cluster,
        bin_seconds=cfg.bin_seconds,
        t0=eval_start,
    )


def _scale_demand(raw: np.ndarray, scale: float, total_nodes: int) -> np.ndarray:
    """Capacity-normalize an as-if-unqueued demand series (whole nodes)."""
    return np.minimum(np.round(raw * scale), float(total_nodes))


def run_shard(task: ShardTask, context: WorkerContext | None = None) -> ShardReport:
    """Build and serve one shard to exhaustion (the pool's task unit).

    Under supervision ``context`` wires the serving loop into the
    fault-tolerance plane: checkpoints flow to the supervisor via
    ``context.save`` (so a restarted attempt resumes mid-stream from
    ``context.checkpoint``), and each micro-batch heartbeats — and
    gives any installed :class:`~repro.framework.faults.FaultPlan` its
    deterministic injection point — through ``context.maybe_fault``.
    """
    resumed = context is not None and context.checkpoint is not None
    with obs.trace("serve.shard", cluster=task.cluster, source=task.source,
                   resumed=resumed):
        with obs.trace("serve.build_shard", cluster=task.cluster):
            server, stream = build_shard(task)
        if context is None:
            return server.run(
                stream,
                speedup=task.speedup,
                checkpoint_every=task.checkpoint_every,
            )
        return server.run(
            stream,
            speedup=task.speedup,
            checkpoint_every=task.checkpoint_every,
            checkpoint_sink=context.save,
            resume=context.checkpoint,
            on_batch=context.maybe_fault,
        )


def serve_clusters(
    clusters: tuple[str, ...] | list[str],
    config: ServeConfig | None = None,
    jobs: int = 1,
    history_days: int = 30,
    stream_days: float = 3.0,
    max_jobs: int | None = None,
    speedup: float | None = None,
    source: str = "trace",
    *,
    supervised: bool = False,
    supervision: Supervision | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint_every: int | None = None,
    log: SupervisionLog | None = None,
) -> list[ShardReport]:
    """Serve one shard per cluster, fanned out over the fork pool.

    Reports come back in ``clusters`` order.  With ``jobs > 1`` the
    parent warms each cluster's GPU trace before forking, so every
    worker inherits the traces copy-on-write.  ``source="replay"``
    streams each shard from a live simulator replay instead of the
    raw-trace approximation.

    ``supervised=True`` runs each shard under a watched worker process
    (heartbeats, timeouts, bounded retries) with crash recovery from
    periodic checkpoints every ``checkpoint_every`` micro-batches; a
    ``fault_plan`` injects deterministic failures for chaos testing,
    and ``log`` collects the per-attempt supervision events.  Each
    report's ``retries`` field carries the restarts its shard needed.
    """
    cfg = config or ServeConfig()
    tasks = [
        ShardTask(
            cluster=c,
            config=cfg,
            history_days=history_days,
            stream_days=stream_days,
            max_jobs=max_jobs,
            speedup=speedup,
            source=source,
            checkpoint_every=checkpoint_every if supervised else None,
        )
        for c in clusters
    ]
    with obs.trace("serve.fanout", clusters=list(clusters), jobs=jobs,
                   supervised=supervised):
        if jobs > 1 or supervised:
            for c in clusters:
                common.cluster_gpu_trace(c)
        if not supervised:
            return run_forked(run_shard, tasks, jobs)
        log = log if log is not None else SupervisionLog()
        reports = run_supervised(
            run_shard,
            tasks,
            jobs,
            labels=[t.cluster for t in tasks],
            supervision=supervision,
            fault_plan=fault_plan,
            with_context=True,
            log=log,
        )
        for task, report in zip(tasks, reports):
            report.retries = log.retries(task.cluster)
        return reports
