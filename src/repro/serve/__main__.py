"""CLI for the streaming prediction-service runtime.

Usage::

    python -m repro.serve                             # serve all 4 clusters
    python -m repro.serve --clusters Venus,Earth      # shard subset
    python -m repro.serve --jobs 4                    # one worker per shard
    python -m repro.serve --speedup 3600              # 1 stream-hour / wall-second
    python -m repro.serve --days 7 --history-days 60  # bigger windows
    python -m repro.serve --json report.json          # machine-readable report

Each cluster becomes one shard: a :class:`PredictionServer` fitted on
the cluster's history serving that cluster's replayed event stream,
with per-shard throughput and decision-latency telemetry.
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from pathlib import Path

from .. import obs
from ..experiments.common import CLUSTERS
from ..framework import FaultPlan, SupervisionLog
from .runtime import serve_clusters
from .server import ServeConfig
from .telemetry import aggregate_reports

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve replayed trace streams through the prediction framework.",
    )
    parser.add_argument(
        "--clusters", default=",".join(CLUSTERS), metavar="A,B,...",
        help=f"comma-separated cluster shards (default {','.join(CLUSTERS)})",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for shard fan-out (default 1; 0 = one per CPU)",
    )
    parser.add_argument(
        "--speedup", type=float, default=None, metavar="X",
        help="stream-seconds per wall-second (default: as fast as possible)",
    )
    parser.add_argument(
        "--days", type=float, default=3.0, metavar="D",
        help="stream window: first D days of the evaluation month (default 3)",
    )
    parser.add_argument(
        "--history-days", type=int, default=30, metavar="D",
        help="training window before the evaluation month (default 30)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="cap streamed jobs per shard (default: no cap)",
    )
    parser.add_argument(
        "--bin-seconds", type=int, default=600, metavar="S",
        help="node-sample bin width (default 600)",
    )
    parser.add_argument(
        "--lam", type=float, default=0.5, metavar="L",
        help="QSSF rolling/ML blend (default 0.5; 1.0 skips the GBDT)",
    )
    parser.add_argument(
        "--no-online-updates", action="store_true",
        help="freeze models: serve decisions without observing the stream",
    )
    parser.add_argument(
        "--supervised", action="store_true",
        help="run each shard under a watched worker (heartbeats, retries, "
             "crash recovery)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="checkpoint every K micro-batches (supervised shards resume "
             "from the last checkpoint after a crash)",
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="JSON|PATH",
        help="deterministic fault-injection plan (inline JSON or a file "
             "path); implies --supervised",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write per-shard + aggregate telemetry to PATH",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the aggregate line",
    )
    parser.add_argument(
        "--obs-out", type=Path, default=None, metavar="DIR",
        help="enable tracing+metrics and dump trace.jsonl + "
             "trace.chrome.json (Perfetto-loadable) under DIR; inspect "
             "with 'python -m repro.obs summarize DIR/trace.jsonl'",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    clusters = tuple(c.strip() for c in args.clusters.split(",") if c.strip())
    if not clusters:
        print(
            f"error: no clusters given; known clusters: {', '.join(CLUSTERS)}",
            file=sys.stderr,
        )
        return 2
    unknown = [c for c in clusters if c not in CLUSTERS]
    if unknown:
        for name in unknown:
            close = difflib.get_close_matches(name, CLUSTERS, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            print(f"error: unknown cluster {name!r}{hint}", file=sys.stderr)
        print(f"known clusters: {', '.join(CLUSTERS)}", file=sys.stderr)
        return 2

    fault_plan = None
    if args.fault_plan is not None:
        text = args.fault_plan
        path = Path(text)
        if path.exists():
            text = path.read_text()
        try:
            fault_plan = FaultPlan.from_json(text)
        except Exception as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
    supervised = args.supervised or fault_plan is not None

    from ..experiments.common import QSSF_GBDT

    config = ServeConfig(
        lam=args.lam,
        qssf_gbdt=QSSF_GBDT,
        bin_seconds=args.bin_seconds,
        online_updates=not args.no_online_updates,
    )
    log = SupervisionLog() if supervised else None
    if args.obs_out is not None:
        obs.enable()
    reports = serve_clusters(
        clusters,
        config=config,
        jobs=args.jobs,
        history_days=args.history_days,
        stream_days=args.days,
        max_jobs=args.max_jobs,
        speedup=args.speedup,
        supervised=supervised,
        fault_plan=fault_plan,
        checkpoint_every=args.checkpoint_every,
        log=log,
    )

    for report in reports:
        if args.quiet:
            continue
        lat = report.qssf_latency
        print(
            f"[{report.cluster:7s}] {report.events:7d} events in "
            f"{report.wall_seconds:7.2f}s ({report.events_per_s:9.0f} ev/s)  "
            f"qssf p50/p99 {lat.p50_ms:.2f}/{lat.p99_ms:.2f} ms  "
            f"ces p50/p99 {report.ces_latency.p50_ms:.2f}/"
            f"{report.ces_latency.p99_ms:.2f} ms  "
            f"wakes {report.ces_summary.get('wake_events', 0)}"
        )
    agg = aggregate_reports(reports)
    print(
        f"{agg['shards']} shards, {agg['events']} events, "
        f"{agg['events_per_s']:.0f} ev/s aggregate, "
        f"{agg['qssf_decisions']} queue orderings, {agg['ces_steps']} CES steps"
    )
    if "qssf_latency" in agg and not args.quiet:
        print(
            f"fleet qssf p50/p99 {agg['qssf_latency']['p50_ms']:.2f}/"
            f"{agg['qssf_latency']['p99_ms']:.2f} ms over the merged "
            f"distribution ({agg['qssf_latency']['count']} decisions)"
        )

    if log is not None and log.events:
        print(
            f"supervision: {log.retries()} retried attempt(s) across "
            f"{len(log.events)} event(s)"
        )

    if args.json is not None:
        payload = {"shards": [r.as_dict() for r in reports], "aggregate": agg}
        if log is not None:
            payload["supervision"] = log.as_dict()
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {args.json}")

    if args.obs_out is not None:
        jsonl_path, chrome_path = obs.dump(args.obs_out)
        print(f"obs trace written to {jsonl_path} and {chrome_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
