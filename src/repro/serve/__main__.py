"""CLI for the streaming prediction-service runtime.

Usage::

    python -m repro.serve                             # serve all 4 clusters
    python -m repro.serve --clusters Venus,Earth      # shard subset
    python -m repro.serve --jobs 4                    # one worker per shard
    python -m repro.serve --speedup 3600              # 1 stream-hour / wall-second
    python -m repro.serve --days 7 --history-days 60  # bigger windows
    python -m repro.serve --json report.json          # machine-readable report
    python -m repro.serve --net --workers 2           # socket control plane
    python -m repro.serve --listen 7341               # TCP front door
    python -m repro.serve --connect HOST:7341         # replay into a front door

Each cluster becomes one shard: a :class:`PredictionServer` fitted on
the cluster's history serving that cluster's replayed event stream,
with per-shard throughput and decision-latency telemetry.  ``--net``
routes the shards through the :mod:`repro.serve.net` control plane
(consistent-hash placement, bounded queues, retries/reroutes);
``--listen`` exposes the same plane as a TCP front door and
``--connect`` drives a remote one as a load-generating client.
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from pathlib import Path

from .. import obs
from ..experiments.common import CLUSTERS
from ..framework import FaultPlan, Supervision, SupervisionLog
from .runtime import serve_clusters
from .server import ServeConfig
from .telemetry import aggregate_reports

__all__ = ["main", "build_parser", "load_fault_plan"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve replayed trace streams through the prediction framework.",
    )
    parser.add_argument(
        "--clusters", default=",".join(CLUSTERS), metavar="A,B,...",
        help=f"comma-separated cluster shards (default {','.join(CLUSTERS)})",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for shard fan-out (default 1; 0 = one per CPU)",
    )
    parser.add_argument(
        "--speedup", type=float, default=None, metavar="X",
        help="stream-seconds per wall-second (default: as fast as possible)",
    )
    parser.add_argument(
        "--days", type=float, default=3.0, metavar="D",
        help="stream window: first D days of the evaluation month (default 3)",
    )
    parser.add_argument(
        "--history-days", type=int, default=30, metavar="D",
        help="training window before the evaluation month (default 30)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="cap streamed jobs per shard (default: no cap)",
    )
    parser.add_argument(
        "--bin-seconds", type=int, default=600, metavar="S",
        help="node-sample bin width (default 600)",
    )
    parser.add_argument(
        "--lam", type=float, default=0.5, metavar="L",
        help="QSSF rolling/ML blend (default 0.5; 1.0 skips the GBDT)",
    )
    parser.add_argument(
        "--no-online-updates", action="store_true",
        help="freeze models: serve decisions without observing the stream",
    )
    parser.add_argument(
        "--supervised", action="store_true",
        help="run each shard under a watched worker (heartbeats, retries, "
             "crash recovery)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="checkpoint every K micro-batches (supervised shards resume "
             "from the last checkpoint after a crash)",
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="JSON|PATH",
        help="deterministic fault-injection plan (inline JSON or a file "
             "path); implies --supervised",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retry budget per shard attempt, for both the supervisor and "
             "the net router (default 2)",
    )
    parser.add_argument(
        "--retry-base", type=float, default=0.05, metavar="S",
        help="exponential-backoff base in seconds (default 0.05)",
    )
    parser.add_argument(
        "--retry-cap", type=float, default=2.0, metavar="S",
        help="exponential-backoff cap in seconds (default 2.0)",
    )
    parser.add_argument(
        "--net", action="store_true",
        help="serve through the socket control plane (consistent-hash "
             "routed shard workers, bounded queues, retries/reroutes)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="shard worker processes behind the net router (default 2)",
    )
    parser.add_argument(
        "--queue-bound", type=int, default=32, metavar="N",
        help="max unacked batches in flight per shard; the front door "
             "answers busy/retry-after past it (default 32)",
    )
    parser.add_argument(
        "--replicate", choices=("local", "central"), default="local",
        help="model refit topology under --net: 'local' fits on every "
             "shard worker; 'central' trains once at the router-side "
             "Model Update Hub and broadcasts versioned snapshots to "
             "all replicas (default local)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1, metavar="K",
        help="serve each cluster's stream across K replica shards "
             "(submits round-robin, finishes broadcast; requires --net "
             "drive mode; default 1)",
    )
    parser.add_argument(
        "--listen", default=None, metavar="[HOST:]PORT",
        help="run the socket front door as a TCP server and wait for "
             "clients to stream events in (implies --net)",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="replay this process's shard streams into a listening front "
             "door as a client load generator",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write per-shard + aggregate telemetry to PATH",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the aggregate line",
    )
    parser.add_argument(
        "--obs-out", type=Path, default=None, metavar="DIR",
        help="enable tracing+metrics and dump trace.jsonl + "
             "trace.chrome.json (Perfetto-loadable) under DIR; inspect "
             "with 'python -m repro.obs summarize DIR/trace.jsonl'",
    )
    return parser


def load_fault_plan(text: str) -> FaultPlan:
    """Parse a ``--fault-plan`` value: inline JSON, or a path to it.

    Anything that does not start with ``{`` is treated as a file path;
    every failure mode (missing file, directory, unreadable file,
    malformed JSON, invalid plan) raises :class:`ValueError` with a
    one-line diagnostic — never a raw traceback.
    """
    if not text.lstrip().startswith("{"):
        path = Path(text)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise ValueError(
                f"fault-plan file {str(path)!r} not found "
                "(inline plans must be JSON objects starting with '{')"
            ) from None
        except OSError as exc:
            raise ValueError(f"cannot read fault-plan file {path}: {exc}") from None
    try:
        return FaultPlan.from_json(text)
    except ValueError as exc:  # includes json.JSONDecodeError
        raise ValueError(str(exc)) from None
    except Exception as exc:
        raise ValueError(f"invalid fault plan: {exc}") from None


def _parse_endpoint(text: str, default_host: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    return (host or default_host, int(port))


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    clusters = tuple(c.strip() for c in args.clusters.split(",") if c.strip())
    if not clusters:
        print(
            f"error: no clusters given; known clusters: {', '.join(CLUSTERS)}",
            file=sys.stderr,
        )
        return 2
    unknown = [c for c in clusters if c not in CLUSTERS]
    if unknown:
        for name in unknown:
            close = difflib.get_close_matches(name, CLUSTERS, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            print(f"error: unknown cluster {name!r}{hint}", file=sys.stderr)
        print(f"known clusters: {', '.join(CLUSTERS)}", file=sys.stderr)
        return 2

    fault_plan = None
    if args.fault_plan is not None:
        try:
            fault_plan = load_fault_plan(args.fault_plan)
        except ValueError as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
    net_mode = args.net or args.listen is not None
    if args.replicas < 1:
        print(f"error: --replicas must be >= 1, got {args.replicas}",
              file=sys.stderr)
        return 2
    if (args.replicas > 1 or args.replicate == "central") and not net_mode:
        print("error: --replicas/--replicate central need --net",
              file=sys.stderr)
        return 2
    if args.replicas > 1 and args.listen is not None:
        print("error: --replicas > 1 is a --net drive-mode feature "
              "(listen mode addresses shards by cluster)", file=sys.stderr)
        return 2
    supervised = (args.supervised or fault_plan is not None) and not net_mode
    try:
        supervision = Supervision(
            max_retries=args.max_retries,
            backoff_base_s=args.retry_base,
            backoff_cap_s=args.retry_cap,
        )
    except ValueError as exc:
        print(f"error: bad retry knobs: {exc}", file=sys.stderr)
        return 2

    from ..experiments.common import QSSF_GBDT

    config = ServeConfig(
        lam=args.lam,
        qssf_gbdt=QSSF_GBDT,
        bin_seconds=args.bin_seconds,
        online_updates=not args.no_online_updates,
        replicate=args.replicate,
    )
    if args.obs_out is not None:
        obs.enable()
    if args.connect is not None:
        return _run_connect(args, clusters, config)

    log = SupervisionLog() if supervised else None
    net_stats = None
    if net_mode:
        from .net import FrontDoor, NetConfig, serve_clusters_net

        netcfg = NetConfig(
            workers=args.workers,
            queue_bound=args.queue_bound,
            max_retries=args.max_retries,
            backoff_base_s=args.retry_base,
            backoff_cap_s=args.retry_cap,
        )
        if args.listen is not None:
            return _run_listen(args, clusters, config, netcfg, fault_plan)
        reports, net_stats = serve_clusters_net(
            clusters,
            config,
            history_days=args.history_days,
            stream_days=args.days,
            max_jobs=args.max_jobs,
            checkpoint_every=args.checkpoint_every,
            fault_plan=fault_plan,
            net=netcfg,
            replicas=args.replicas,
        )
    else:
        reports = serve_clusters(
            clusters,
            config=config,
            jobs=args.jobs,
            history_days=args.history_days,
            stream_days=args.days,
            max_jobs=args.max_jobs,
            speedup=args.speedup,
            supervised=supervised,
            supervision=supervision if supervised else None,
            fault_plan=fault_plan,
            checkpoint_every=args.checkpoint_every,
            log=log,
        )

    for report in reports:
        if args.quiet:
            continue
        lat = report.qssf_latency
        print(
            f"[{report.cluster:7s}] {report.events:7d} events in "
            f"{report.wall_seconds:7.2f}s ({report.events_per_s:9.0f} ev/s)  "
            f"qssf p50/p99 {lat.p50_ms:.2f}/{lat.p99_ms:.2f} ms  "
            f"ces p50/p99 {report.ces_latency.p50_ms:.2f}/"
            f"{report.ces_latency.p99_ms:.2f} ms  "
            f"wakes {report.ces_summary.get('wake_events', 0)}"
        )
    agg = aggregate_reports(reports)
    print(
        f"{agg['shards']} shards, {agg['events']} events, "
        f"{agg['events_per_s']:.0f} ev/s aggregate, "
        f"{agg['qssf_decisions']} queue orderings, {agg['ces_steps']} CES steps"
    )
    if "qssf_latency" in agg and not args.quiet:
        print(
            f"fleet qssf p50/p99 {agg['qssf_latency']['p50_ms']:.2f}/"
            f"{agg['qssf_latency']['p99_ms']:.2f} ms over the merged "
            f"distribution ({agg['qssf_latency']['count']} decisions)"
        )

    if log is not None and log.events:
        print(
            f"supervision: {log.retries()} retried attempt(s) across "
            f"{len(log.events)} event(s)"
        )
    if net_stats is not None:
        s = net_stats.as_dict()
        print(
            f"net: {s['frames_sent']} frames, {s['retries']} retries, "
            f"{s['reroutes']} reroutes, {s['respawns']} respawns, "
            f"max queue depth {s['max_queue_depth']}"
        )

    if args.json is not None:
        payload = {"shards": [r.as_dict() for r in reports], "aggregate": agg}
        if log is not None:
            payload["supervision"] = log.as_dict()
        if net_stats is not None:
            payload["net"] = net_stats.as_dict()
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {args.json}")

    if args.obs_out is not None:
        jsonl_path, chrome_path = obs.dump(args.obs_out)
        print(f"obs trace written to {jsonl_path} and {chrome_path}")
    return 0


def _shard_tasks(args, clusters, config):
    from .runtime import ShardTask

    return [
        ShardTask(
            cluster=c,
            config=config,
            history_days=args.history_days,
            stream_days=args.days,
            max_jobs=args.max_jobs,
            speedup=args.speedup,
            checkpoint_every=args.checkpoint_every,
        )
        for c in clusters
    ]


class _ReadyBanner:
    """Duck-typed ``threading.Event`` that prints the bound endpoint."""

    def __init__(self, door, workers: int, queue_bound: int) -> None:
        self.door, self.workers, self.queue_bound = door, workers, queue_bound

    def set(self) -> None:
        print(f"front door listening on port {self.door.port} "
              f"({self.workers} workers, queue bound {self.queue_bound})",
              flush=True)


def _run_listen(args, clusters, config, netcfg, fault_plan) -> int:
    """Front-door TCP server: serve until every opened shard completes."""
    from .net import FrontDoor

    host, port = _parse_endpoint(args.listen, default_host="127.0.0.1")
    door = FrontDoor(_shard_tasks(args, clusters, config), net=netcfg,
                     fault_plan=fault_plan)
    banner = _ReadyBanner(door, args.workers, args.queue_bound)
    reports, stats = door.serve(host=host, port=port, ready=banner)
    print(f"served {len(reports)} shard(s); "
          f"{stats.busy_rejections} busy rejection(s)")
    return 0


def _run_connect(args, clusters, config) -> int:
    """Client load generator: replay shard streams into a front door."""
    from .net import FrontDoorClient
    from .runtime import build_stream

    host, port = _parse_endpoint(args.connect, default_host="127.0.0.1")
    client = FrontDoorClient(host, port)
    try:
        for task in _shard_tasks(args, clusters, config):
            reply = client.request({"op": "open", "cluster": task.cluster})
            if reply.get("op") != "opened":
                print(f"error: {reply}", file=sys.stderr)
                return 1
            batches = list(
                build_stream(task).batches(task.config.batch_window_s)
            )
            for bi, batch in enumerate(batches):
                client.send_event(task.cluster, bi, batch)
            client.request({"op": "close", "cluster": task.cluster})
            status = client.wait_done(task.cluster)
            print(f"[{task.cluster:7s}] {len(batches)} batches served; "
                  f"parity {status.get('parity_sha', '')[:16]}")
    finally:
        client.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
