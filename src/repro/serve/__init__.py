"""repro.serve — streaming prediction-service runtime (§4.1 as a system).

The batch reproduction replays traces offline; this subsystem turns the
same framework components into a *long-running service*:

* :mod:`repro.serve.stream` — converts any trace (Helios VCs, Philly,
  multi-cluster mixes) into a time-ordered stream of submit / finish /
  node-sample events, replayable at a wall-clock speedup or
  as-fast-as-possible, shardable by cluster;
* :mod:`repro.serve.server` — the serving loop: routes prediction and
  decision requests (QSSF queue ordering, job-duration prediction, CES
  node on/off control) through the Resource Orchestrator with
  micro-batching, while the Model Update Engine advances models online
  via the incremental ``update()``/``observe`` protocol;
* :mod:`repro.serve.runtime` — multi-cluster scale-out: shards fan out
  over :mod:`repro.framework.parallel`'s fork pool with per-shard
  throughput/latency telemetry;
* :mod:`repro.serve.telemetry` — events/s and p50/p99 decision-latency
  accounting.

CLI: ``python -m repro.serve --clusters Venus,Earth --days 3 --jobs 2``.
"""

from .server import (
    PredictionServer,
    ServeConfig,
    ServingSession,
    ShardCheckpoint,
    ShardReport,
)
from .stream import Event, EventStream, approx_node_demand
from .runtime import ShardTask, build_shard, build_stream, run_shard, serve_clusters
from .telemetry import LatencyStats, aggregate_reports, parity_surface
from .net import FrontDoor, FrontDoorClient, NetConfig, NetStats, serve_clusters_net

__all__ = [
    "Event",
    "EventStream",
    "FrontDoor",
    "FrontDoorClient",
    "LatencyStats",
    "NetConfig",
    "NetStats",
    "PredictionServer",
    "ServeConfig",
    "ServingSession",
    "ShardCheckpoint",
    "ShardReport",
    "ShardTask",
    "aggregate_reports",
    "approx_node_demand",
    "build_shard",
    "build_stream",
    "parity_surface",
    "run_shard",
    "serve_clusters",
    "serve_clusters_net",
]
