"""Small numpy LSTM regressor (the deep-learning comparator of §4.3.2).

A single LSTM layer + linear head trained with Adam on sliding windows of
the (standardized) series, full BPTT over the window.  Sized for the
node-count forecasting task (series of a few thousand points, hidden
width ≈ 16–32) — this is a faithful stand-in for the paper's LSTM
baseline [11], not a general deep-learning framework.

The training inner loop is batched: input projections for every timestep
of a minibatch are computed in one vectorized op, the BPTT tape lives in
preallocated ``(T, batch, hidden)`` arrays rather than per-step dicts,
and the weight gradients are accumulated with two ``(T·batch)``-row
GEMMs after the backward recursion instead of per-timestep rank-1
updates.  :meth:`LSTMForecaster.update` warm-starts from the previous
fit — weights, Adam moments and the data RNG carry forward, the
standardization is frozen — and fine-tunes for a short
``update_epochs`` budget, which is what makes rolling-origin
re-evaluation cheap.

Like the GBDT (``ml/gbdt.py``) and the simulator (``sim/fast.py``) the
fit path has two modes.  ``mode="reference"`` fine-tunes with the
scratch per-window schedule: ``update_epochs`` shuffled minibatch epochs
over *every* window of the grown series.  ``mode="fast"`` (default)
fold-batches instead: only the windows whose target is a newly appended
point are built, stacked into one batch, and driven through
``update_epochs`` full-batch Adam steps — one forward/backward pair per
step, no RNG draws.  The two disagree only within the tolerance band the
rolling-origin tests pin (the GBDT modes, by contrast, are
byte-identical); ``fit`` is the same minibatch schedule in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LSTMParams", "LSTMForecaster"]

_FIT_MODES = ("fast", "reference")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


@dataclass(frozen=True)
class LSTMParams:
    window: int = 48
    hidden: int = 16
    epochs: int = 30
    batch_size: int = 32
    lr: float = 1e-2
    random_state: int = 0
    #: fine-tune epochs per :meth:`LSTMForecaster.update` call.
    update_epochs: int = 3

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.hidden < 1:
            raise ValueError("hidden must be >= 1")
        if self.update_epochs < 1:
            raise ValueError("update_epochs must be >= 1")


class LSTMForecaster:
    """Sequence-to-one LSTM: window of past values -> next value."""

    def __init__(
        self, params: LSTMParams | None = None, *, mode: str = "fast"
    ) -> None:
        if mode not in _FIT_MODES:
            raise ValueError(f"mode must be one of {_FIT_MODES}, got {mode!r}")
        self.params = params or LSTMParams()
        self.mode = mode
        self._weights: dict[str, np.ndarray] | None = None
        self._mu: float = 0.0
        self._sd: float = 1.0
        self._history: np.ndarray | None = None
        self.loss_curve_: list[float] = []
        self._rng: np.random.Generator | None = None
        self._adam_m: dict[str, np.ndarray] | None = None
        self._adam_v: dict[str, np.ndarray] | None = None
        self._adam_step: int = 0

    # ------------------------------------------------------------------
    def _init_weights(self, rng: np.random.Generator) -> dict[str, np.ndarray]:
        h = self.params.hidden
        scale = 1.0 / np.sqrt(h)
        # Gate order: input, forget, cell, output — stacked into one matrix.
        return {
            "Wx": rng.normal(0, scale, size=(1, 4 * h)),
            "Wh": rng.normal(0, scale, size=(h, 4 * h)),
            "b": np.concatenate([np.zeros(h), np.ones(h), np.zeros(2 * h)]),
            "Wy": rng.normal(0, scale, size=(h, 1)),
            "by": np.zeros(1),
        }

    def _forward(
        self, xb: np.ndarray, w: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, tuple]:
        """xb: (batch, window). Returns predictions (batch,) and tape."""
        batch, T = xb.shape
        h = self.params.hidden
        # Input is scalar per step, so the whole batch's input projections
        # (plus bias) are one broadcasted multiply: (batch, T, 4h).
        xproj = xb[:, :, None] * w["Wx"][0] + w["b"]
        ht = np.zeros((batch, h))
        ct = np.zeros((batch, h))
        gate_i = np.empty((T, batch, h))
        gate_f = np.empty((T, batch, h))
        gate_g = np.empty((T, batch, h))
        gate_o = np.empty((T, batch, h))
        cell = np.empty((T, batch, h))
        h_prev = np.empty((T, batch, h))
        Wh = w["Wh"]
        for t in range(T):
            z = xproj[:, t] + ht @ Wh
            i = _sigmoid(z[:, 0 * h : 1 * h])
            f = _sigmoid(z[:, 1 * h : 2 * h])
            g = np.tanh(z[:, 2 * h : 3 * h])
            o = _sigmoid(z[:, 3 * h : 4 * h])
            h_prev[t] = ht
            ct = f * ct + i * g
            ht = o * np.tanh(ct)
            gate_i[t], gate_f[t], gate_g[t], gate_o[t] = i, f, g, o
            cell[t] = ct
        pred = (ht @ w["Wy"] + w["by"]).ravel()
        return pred, (gate_i, gate_f, gate_g, gate_o, cell, h_prev, ht)

    def _backward(
        self,
        xb: np.ndarray,
        err: np.ndarray,
        tape: tuple,
        w: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        batch, T = xb.shape
        h = self.params.hidden
        gate_i, gate_f, gate_g, gate_o, cell, h_prev, h_last = tape
        dyhat = (2.0 * err / batch).reshape(-1, 1)  # d MSE / d pred
        grad_Wy = h_last.T @ dyhat
        grad_by = dyhat.sum(axis=0)
        dh = dyhat @ w["Wy"].T
        dc = np.zeros((batch, h))
        c_zero = np.zeros((batch, h))
        dz = np.empty((T, batch, 4 * h))
        WhT = w["Wh"].T
        for t in range(T - 1, -1, -1):
            i, f, g, o = gate_i[t], gate_f[t], gate_g[t], gate_o[t]
            c_prev_t = cell[t - 1] if t > 0 else c_zero
            tanh_c = np.tanh(cell[t])
            do = dh * tanh_c
            dc = dc + dh * o * (1 - tanh_c * tanh_c)
            dzt = dz[t]
            dzt[:, 0 * h : 1 * h] = dc * g * i * (1 - i)
            dzt[:, 1 * h : 2 * h] = dc * c_prev_t * f * (1 - f)
            dzt[:, 2 * h : 3 * h] = dc * i * (1 - g * g)
            dzt[:, 3 * h : 4 * h] = do * o * (1 - o)
            dh = dzt @ WhT
            dc = dc * f
        # Weight gradients in two GEMMs over the stacked (T·batch) rows.
        dz_flat = dz.reshape(T * batch, 4 * h)
        grad_Wx = (xb.T.reshape(T * batch) @ dz_flat).reshape(1, 4 * h)
        grad_Wh = h_prev.reshape(T * batch, h).T @ dz_flat
        grad_b = dz_flat.sum(axis=0)
        return {
            "Wx": grad_Wx,
            "Wh": grad_Wh,
            "b": grad_b,
            "Wy": grad_Wy,
            "by": grad_by,
        }

    # ------------------------------------------------------------------
    def _window_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Sliding windows of the standardized history + next-value targets."""
        p = self.params
        z = (self._history - self._mu) / self._sd
        n_samples = z.size - p.window
        idx = np.arange(p.window)[None, :] + np.arange(n_samples)[:, None]
        return z[idx], z[p.window :]

    def _apply_adam(self, grads: dict[str, np.ndarray]) -> None:
        """One Adam step (clipped grads, bias-corrected moments)."""
        p = self.params
        w = self._weights
        m_state, v_state = self._adam_m, self._adam_v
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam_step += 1
        step = self._adam_step
        for k in w:
            g = np.clip(grads[k], -5.0, 5.0)
            m_state[k] = beta1 * m_state[k] + (1 - beta1) * g
            v_state[k] = beta2 * v_state[k] + (1 - beta2) * g * g
            m_hat = m_state[k] / (1 - beta1**step)
            v_hat = v_state[k] / (1 - beta2**step)
            w[k] -= p.lr * m_hat / (np.sqrt(v_hat) + eps)

    def _train(self, epochs: int) -> None:
        """Run minibatch Adam for ``epochs`` over the current history."""
        p = self.params
        X, target = self._window_matrix()
        n_samples = X.shape[0]
        w = self._weights
        rng = self._rng
        for _epoch in range(epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            for lo in range(0, n_samples, p.batch_size):
                batch_idx = order[lo : lo + p.batch_size]
                xb, tb = X[batch_idx], target[batch_idx]
                pred, tape = self._forward(xb, w)
                err = pred - tb
                epoch_loss += float(np.sum(err**2))
                self._apply_adam(self._backward(xb, err, tape, w))
            self.loss_curve_.append(epoch_loss / n_samples)

    def _train_tail(self, n_new: int) -> None:
        """Fold-batched fine-tune: one stacked batch of the windows whose
        target is one of the ``n_new`` appended points, driven through
        ``update_epochs`` full-batch Adam steps.  Consumes no RNG draws,
        so interleaving updates never perturbs a later reference fit."""
        p = self.params
        z = (self._history - self._mu) / self._sd
        t_idx = np.arange(max(p.window, z.size - n_new), z.size)
        if t_idx.size == 0:
            return
        xb = z[(t_idx - p.window)[:, None] + np.arange(p.window)]
        tb = z[t_idx]
        w = self._weights
        for _epoch in range(p.update_epochs):
            pred, tape = self._forward(xb, w)
            err = pred - tb
            self.loss_curve_.append(float(np.sum(err**2)) / t_idx.size)
            self._apply_adam(self._backward(xb, err, tape, w))

    def fit(self, y: np.ndarray) -> "LSTMForecaster":
        p = self.params
        y = np.asarray(y, dtype=float)
        if y.ndim != 1:
            raise ValueError("y must be 1-D")
        if y.size < p.window + 2:
            raise ValueError(f"series too short: need > {p.window + 2}, got {y.size}")
        self._history = y.copy()
        self._mu = float(y.mean())
        self._sd = float(y.std()) or 1.0
        self._rng = np.random.default_rng(p.random_state)
        self._weights = self._init_weights(self._rng)
        self._adam_m = {k: np.zeros_like(v) for k, v in self._weights.items()}
        self._adam_v = {k: np.zeros_like(v) for k, v in self._weights.items()}
        self._adam_step = 0
        self.loss_curve_ = []
        self._train(p.epochs)
        return self

    def update(self, new_points: np.ndarray) -> "LSTMForecaster":
        """Warm-start fine-tune on the history extended by ``new_points``.

        Weights and Adam moments continue from the previous fit; the
        standardization constants stay frozen so the network keeps
        seeing inputs on the scale it was trained on.  In ``"fast"``
        mode the fine-tune is fold-batched (one stacked batch of the
        new-target windows, ``update_epochs`` full-batch Adam steps);
        in ``"reference"`` mode it runs ``update_epochs`` shuffled
        minibatch epochs over *all* windows of the grown series, with
        the shuffling RNG carried forward.
        """
        if self._weights is None or self._history is None:
            raise RuntimeError("model not fitted; call fit() before update()")
        new_points = np.asarray(new_points, dtype=float)
        if new_points.ndim != 1:
            raise ValueError("new_points must be 1-D")
        if new_points.size == 0:
            return self
        self._history = np.concatenate([self._history, new_points])
        if self.mode == "fast":
            self._train_tail(new_points.size)
        else:
            self._train(self.params.update_epochs)
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast from the end of the fit series."""
        if self._weights is None or self._history is None:
            raise RuntimeError("model not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        p = self.params
        buf = np.empty(p.window + horizon)
        buf[: p.window] = (self._history[-p.window :] - self._mu) / self._sd
        for t in range(horizon):
            xb = buf[t : t + p.window].reshape(1, -1)
            pred, _ = self._forward(xb, self._weights)
            buf[p.window + t] = pred[0]
        return buf[p.window :] * self._sd + self._mu
