"""Small numpy LSTM regressor (the deep-learning comparator of §4.3.2).

A single LSTM layer + linear head trained with Adam on sliding windows of
the (standardized) series, full BPTT over the window.  Sized for the
node-count forecasting task (series of a few thousand points, hidden
width ≈ 16–32) — this is a faithful stand-in for the paper's LSTM
baseline [11], not a general deep-learning framework.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LSTMParams", "LSTMForecaster"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


@dataclass(frozen=True)
class LSTMParams:
    window: int = 48
    hidden: int = 16
    epochs: int = 30
    batch_size: int = 32
    lr: float = 1e-2
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.hidden < 1:
            raise ValueError("hidden must be >= 1")


class LSTMForecaster:
    """Sequence-to-one LSTM: window of past values -> next value."""

    def __init__(self, params: LSTMParams | None = None) -> None:
        self.params = params or LSTMParams()
        self._weights: dict[str, np.ndarray] | None = None
        self._mu: float = 0.0
        self._sd: float = 1.0
        self._history: np.ndarray | None = None
        self.loss_curve_: list[float] = []

    # ------------------------------------------------------------------
    def _init_weights(self, rng: np.random.Generator) -> dict[str, np.ndarray]:
        h = self.params.hidden
        scale = 1.0 / np.sqrt(h)
        # Gate order: input, forget, cell, output — stacked into one matrix.
        return {
            "Wx": rng.normal(0, scale, size=(1, 4 * h)),
            "Wh": rng.normal(0, scale, size=(h, 4 * h)),
            "b": np.concatenate([np.zeros(h), np.ones(h), np.zeros(2 * h)]),
            "Wy": rng.normal(0, scale, size=(h, 1)),
            "by": np.zeros(1),
        }

    def _forward(
        self, xb: np.ndarray, w: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, list[dict[str, np.ndarray]]]:
        """xb: (batch, window). Returns predictions (batch,) and tape."""
        batch, T = xb.shape
        h = self.params.hidden
        ht = np.zeros((batch, h))
        ct = np.zeros((batch, h))
        tape: list[dict[str, np.ndarray]] = []
        for t in range(T):
            xt = xb[:, t : t + 1]
            z = xt @ w["Wx"] + ht @ w["Wh"] + w["b"]
            i = _sigmoid(z[:, 0 * h : 1 * h])
            f = _sigmoid(z[:, 1 * h : 2 * h])
            g = np.tanh(z[:, 2 * h : 3 * h])
            o = _sigmoid(z[:, 3 * h : 4 * h])
            ct_new = f * ct + i * g
            ht_new = o * np.tanh(ct_new)
            tape.append(
                {"x": xt, "h_prev": ht, "c_prev": ct, "i": i, "f": f, "g": g, "o": o, "c": ct_new}
            )
            ht, ct = ht_new, ct_new
        pred = (ht @ w["Wy"] + w["by"]).ravel()
        tape.append({"h_last": ht})
        return pred, tape

    def _backward(
        self,
        xb: np.ndarray,
        err: np.ndarray,
        tape: list[dict[str, np.ndarray]],
        w: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        batch, T = xb.shape
        h = self.params.hidden
        grads = {k: np.zeros_like(v) for k, v in w.items()}
        dyhat = (2.0 * err / batch).reshape(-1, 1)  # d MSE / d pred
        h_last = tape[-1]["h_last"]
        grads["Wy"] = h_last.T @ dyhat
        grads["by"] = dyhat.sum(axis=0)
        dh = dyhat @ w["Wy"].T
        dc = np.zeros((batch, h))
        for t in range(T - 1, -1, -1):
            s = tape[t]
            tanh_c = np.tanh(s["c"])
            do = dh * tanh_c
            dc = dc + dh * s["o"] * (1 - tanh_c**2)
            di = dc * s["g"]
            dg = dc * s["i"]
            df = dc * s["c_prev"]
            dc_prev = dc * s["f"]
            dz = np.concatenate(
                [
                    di * s["i"] * (1 - s["i"]),
                    df * s["f"] * (1 - s["f"]),
                    dg * (1 - s["g"] ** 2),
                    do * s["o"] * (1 - s["o"]),
                ],
                axis=1,
            )
            grads["Wx"] += s["x"].T @ dz
            grads["Wh"] += s["h_prev"].T @ dz
            grads["b"] += dz.sum(axis=0)
            dh = dz @ w["Wh"].T
            dc = dc_prev
        return grads

    # ------------------------------------------------------------------
    def fit(self, y: np.ndarray) -> "LSTMForecaster":
        p = self.params
        y = np.asarray(y, dtype=float)
        if y.ndim != 1:
            raise ValueError("y must be 1-D")
        if y.size < p.window + 2:
            raise ValueError(f"series too short: need > {p.window + 2}, got {y.size}")
        self._history = y.copy()
        self._mu = float(y.mean())
        self._sd = float(y.std()) or 1.0
        z = (y - self._mu) / self._sd

        # Sliding windows -> (n_samples, window) inputs, next-value targets.
        n_samples = z.size - p.window
        idx = np.arange(p.window)[None, :] + np.arange(n_samples)[:, None]
        X = z[idx]
        target = z[p.window :]

        rng = np.random.default_rng(p.random_state)
        w = self._init_weights(rng)
        m_state = {k: np.zeros_like(v) for k, v in w.items()}
        v_state = {k: np.zeros_like(v) for k, v in w.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_curve_ = []
        for _epoch in range(p.epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            for lo in range(0, n_samples, p.batch_size):
                batch_idx = order[lo : lo + p.batch_size]
                xb, tb = X[batch_idx], target[batch_idx]
                pred, tape = self._forward(xb, w)
                err = pred - tb
                epoch_loss += float(np.sum(err**2))
                grads = self._backward(xb, err, tape, w)
                step += 1
                for k in w:
                    g = np.clip(grads[k], -5.0, 5.0)
                    m_state[k] = beta1 * m_state[k] + (1 - beta1) * g
                    v_state[k] = beta2 * v_state[k] + (1 - beta2) * g * g
                    m_hat = m_state[k] / (1 - beta1**step)
                    v_hat = v_state[k] / (1 - beta2**step)
                    w[k] -= p.lr * m_hat / (np.sqrt(v_hat) + eps)
            self.loss_curve_.append(epoch_loss / n_samples)
        self._weights = w
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast from the end of the fit series."""
        if self._weights is None or self._history is None:
            raise RuntimeError("model not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        p = self.params
        buf = list((self._history[-p.window :] - self._mu) / self._sd)
        out = np.empty(horizon)
        for t in range(horizon):
            xb = np.asarray(buf[-p.window :]).reshape(1, -1)
            pred, _ = self._forward(xb, self._weights)
            out[t] = pred[0]
            buf.append(pred[0])
        return out * self._sd + self._mu
