"""Histogram-based regression tree (the GBDT base learner).

This is the LightGBM-style design the paper's GBDT [42] relies on:

1. Features are pre-binned into at most ``max_bins`` quantile bins
   (:class:`Binner`), so split search scans bins, not raw values.
2. Trees grow level-by-level; at each level the candidate splits for *all*
   frontier nodes are evaluated from per-(node, feature, bin) histograms
   of sample counts and gradient sums.
3. For squared loss the optimal leaf value is the mean residual, and the
   split gain is the variance-reduction form
   ``S_l²/n_l + S_r²/n_r − S²/n``.

Histogram building has two implementations behind ``fit(mode=...)``,
mirroring the fast/reference split of :mod:`repro.sim.fast`:

* ``"fast"`` (default) — one fused ``np.bincount`` pass per level keyed
  by ``node_slot · (m · n_bins) + feature · n_bins + bin``, with the
  per-feature key offsets precomputed once per GBDT fit in a
  :class:`HistogramCache` (the binned matrix is frozen across boosting
  stages, so the cache is built once and reused by every tree).
* ``"reference"`` — the original per-feature Python loop (two
  ``np.bincount`` calls per feature per level), kept verbatim as the
  byte-parity correctness oracle.

Both modes accumulate per-bin statistics in the same row order, take the
same cumulative sums and break gain ties identically (lowest feature,
then lowest bin), so the grown trees are bit-for-bit identical.

The tree is stored as flat arrays so prediction is a vectorized walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Binner", "HistogramCache", "TreeParams", "RegressionTree"]

_FIT_MODES = ("fast", "reference")


class Binner:
    """Quantile binning of a float feature matrix.

    Bin semantics: value ``x`` falls in bin ``searchsorted(edges, x,
    'left')``; a split "bin <= t" therefore means ``x <= edges[t]`` on raw
    values.  Edges are per-feature interior quantile boundaries (at most
    ``max_bins - 1`` of them, deduplicated).

    NaN handling: quantile edges are computed over the non-NaN values,
    and every feature reserves a dedicated *missing-value bin* at index
    ``edges.size + 1`` — one past the highest regular bin — that NaN
    values are routed to deterministically.  Because the missing bin is
    the top index, a split "bin <= t" over regular thresholds always
    sends missing values right, and the threshold ``t == edges.size``
    isolates missing from every real value; split search needs no
    special casing.  The bin is reserved whether or not the fit data
    contained NaNs, so transform-time missing values never alias a real
    quantile bin.
    """

    def __init__(self, max_bins: int = 256) -> None:
        if not 2 <= max_bins <= 65_535:
            raise ValueError("max_bins must be in [2, 65535]")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "Binner":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        qs = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        self.edges_ = []
        for j in range(X.shape[1]):
            col = X[:, j]
            col = col[~np.isnan(col)]
            if col.size == 0:
                self.edges_.append(np.empty(0))
                continue
            edges = np.unique(np.quantile(col, qs))
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("Binner not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape, dtype=np.int32)
        for j, edges in enumerate(self.edges_):
            col = X[:, j]
            if edges.size == 0:
                out[:, j] = 0
            else:
                out[:, j] = np.searchsorted(edges, col, side="left")
            nan = np.isnan(col)
            if nan.any():
                out[nan, j] = edges.size + 1
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def missing_bin(self, feature: int) -> int:
        """The reserved missing-value bin index of one feature."""
        if self.edges_ is None:
            raise RuntimeError("Binner not fitted")
        return self.edges_[feature].size + 1

    @property
    def n_bins(self) -> int:
        """Upper bound of bin index + 1 across features.

        Includes each feature's reserved missing-value bin, so histogram
        widths sized from this cover NaN rows too.
        """
        if self.edges_ is None:
            raise RuntimeError("Binner not fitted")
        return max((e.size + 2 for e in self.edges_), default=1)


class HistogramCache:
    """Fused-key view of a frozen binned matrix, shared across trees.

    Stores ``base[i, f] = f * n_bins + X_binned[i, f]`` so the fast fit
    path can build every (node, feature, bin) histogram of a level with
    a single ``np.bincount`` keyed by ``slot * (m * n_bins) + base``.
    A GBDT fit builds the cache once from the binned training matrix and
    hands it to every boosting stage — the per-feature key arithmetic
    (and the int64 upcast of the whole matrix) happens once per fit
    instead of once per feature per level per tree.  ``append`` extends
    it in step with ``fit_more``'s row growth.
    """

    def __init__(self, X_binned: np.ndarray, n_bins: int) -> None:
        X_binned = np.asarray(X_binned)
        if X_binned.ndim != 2:
            raise ValueError("X_binned must be 2-D")
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        self.n_bins = int(n_bins)
        self._offsets = (
            np.arange(X_binned.shape[1], dtype=np.int64) * self.n_bins
        )
        self.base = X_binned.astype(np.int64) + self._offsets

    @property
    def n_rows(self) -> int:
        return self.base.shape[0]

    @property
    def n_features(self) -> int:
        return self.base.shape[1]

    def append(self, X_binned_new: np.ndarray) -> None:
        """Extend the cache with freshly binned rows (continued boosting)."""
        X_binned_new = np.asarray(X_binned_new)
        if X_binned_new.ndim != 2 or X_binned_new.shape[1] != self.n_features:
            raise ValueError("appended rows must match the cached feature count")
        self.base = np.vstack(
            [self.base, X_binned_new.astype(np.int64) + self._offsets]
        )


@dataclass(frozen=True)
class TreeParams:
    """Growth hyper-parameters for a single regression tree."""

    max_depth: int = 6
    min_samples_leaf: int = 20
    min_gain: float = 1e-12

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")


@dataclass
class _FlatTree:
    """Array-of-structs tree storage."""

    feature: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    threshold_bin: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    left: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    right: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    value: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    is_leaf: np.ndarray = field(default_factory=lambda: np.empty(0, bool))


class RegressionTree:
    """Least-squares regression tree over pre-binned features.

    ``fit`` consumes the *binned* integer matrix produced by
    :class:`Binner`; ``predict_binned`` likewise.  The owning GBDT handles
    raw-value binning so the edges are shared across all trees.
    """

    def __init__(self, params: TreeParams | None = None) -> None:
        self.params = params or TreeParams()
        self._tree = _FlatTree()
        self.n_features_: int | None = None
        self.split_gains_: dict[int, float] = {}

    # ------------------------------------------------------------------
    def fit(
        self,
        X_binned: np.ndarray,
        y: np.ndarray,
        sample_indices: np.ndarray | None = None,
        n_bins: int | None = None,
        mode: str = "fast",
        cache: HistogramCache | None = None,
    ) -> "RegressionTree":
        """Grow the tree.  ``n_bins`` (any upper bound on bin index + 1,
        e.g. ``Binner.n_bins``) skips the per-tree matrix max-scan the
        boosting loop would otherwise repeat for every stage.

        ``mode`` selects the histogram builder (``"fast"`` fused pass /
        ``"reference"`` per-feature loop — bit-identical trees either
        way); ``cache`` optionally supplies the fast path's precomputed
        :class:`HistogramCache` over the *full* (pre-``sample_indices``)
        matrix, which the boosting loop reuses across stages.
        """
        if mode not in _FIT_MODES:
            raise ValueError(f"mode must be one of {_FIT_MODES}, got {mode!r}")
        X_binned = np.asarray(X_binned)
        y = np.asarray(y, dtype=float)
        if X_binned.ndim != 2 or X_binned.shape[0] != y.shape[0]:
            raise ValueError("X_binned/y shape mismatch")
        base = None
        if mode == "fast" and cache is not None:
            if cache.base.shape != X_binned.shape:
                raise ValueError("cache does not match X_binned's shape")
            if n_bins is None:
                n_bins = cache.n_bins
            elif n_bins != cache.n_bins:
                raise ValueError("cache was built with a different n_bins")
            base = cache.base
        if sample_indices is not None:
            X_binned = X_binned[sample_indices]
            y = y[sample_indices]
            if base is not None:
                base = base[sample_indices]
        n, m = X_binned.shape
        self.n_features_ = m
        if n_bins is None:
            n_bins = int(X_binned.max()) + 1 if n else 1
        p = self.params

        # Growing arrays (python lists; appended per created node).
        feature: list[int] = [-1]
        thresh: list[int] = [-1]
        left: list[int] = [-1]
        right: list[int] = [-1]
        value: list[float] = [float(y.mean()) if n else 0.0]
        is_leaf: list[bool] = [True]

        if n == 0 or n_bins < 2:
            # No data, or every feature landed in a single bin: stump.
            self._finalize(feature, thresh, left, right, value, is_leaf)
            return self

        if mode == "fast" and base is None:
            base = X_binned.astype(np.int64) + np.arange(m, dtype=np.int64) * n_bins

        node_of = np.zeros(n, dtype=np.int64)
        frontier = [0]  # node ids eligible for splitting at current depth

        for _depth in range(p.max_depth):
            if mode == "fast" and frontier:
                # Nodes with fewer than 2*min_samples_leaf rows can never
                # satisfy a valid split (both children need min_samples_leaf),
                # so the reference loop scores them all -inf.  Skipping their
                # histograms entirely yields the identical tree for free.
                node_counts = np.bincount(node_of, minlength=len(value))
                frontier = [
                    nid
                    for nid in frontier
                    if node_counts[nid] >= 2 * p.min_samples_leaf
                ]
            if not frontier:
                break
            frontier_arr = np.asarray(frontier)
            # Map node id -> dense slot for this level.
            slot_of = np.full(len(value), -1, dtype=np.int64)
            slot_of[frontier_arr] = np.arange(len(frontier_arr))
            active = slot_of[node_of] >= 0
            act_slots = slot_of[node_of[active]]
            act_y = y[active]
            k = len(frontier_arr)

            tot_cnt = np.bincount(act_slots, minlength=k).astype(float)
            tot_sum = np.bincount(act_slots, weights=act_y, minlength=k)

            if mode == "fast":
                best_gain, best_feat, best_bin = self._best_splits_fast(
                    base, active, act_slots, act_y, k, m, n_bins,
                    tot_cnt, tot_sum,
                )
            else:
                best_gain, best_feat, best_bin = self._best_splits_reference(
                    X_binned, active, act_slots, act_y, k, m, n_bins,
                    tot_cnt, tot_sum,
                )

            # Create children for nodes with a worthwhile split.
            split_mask = best_gain > p.min_gain
            next_frontier: list[int] = []
            child_left = np.full(k, -1, dtype=np.int64)
            for slot in np.flatnonzero(split_mask):
                node = int(frontier_arr[slot])
                lid, rid = len(value), len(value) + 1
                feature[node] = int(best_feat[slot])
                thresh[node] = int(best_bin[slot])
                left[node] = lid
                right[node] = rid
                is_leaf[node] = False
                self.split_gains_[node] = float(best_gain[slot])
                for _ in range(2):
                    feature.append(-1)
                    thresh.append(-1)
                    left.append(-1)
                    right.append(-1)
                    value.append(0.0)
                    is_leaf.append(True)
                child_left[slot] = lid
                next_frontier.extend((lid, rid))

            if not next_frontier:
                break

            # Route samples of split nodes to their children (vectorized).
            slots = slot_of[node_of]
            moving = (slots >= 0) & split_mask[np.clip(slots, 0, k - 1)]
            mv_slots = slots[moving]
            fvals = X_binned[moving, best_feat[mv_slots]]
            go_left = fvals <= best_bin[mv_slots]
            node_of[moving] = np.where(
                go_left, child_left[mv_slots], child_left[mv_slots] + 1
            )
            frontier = next_frontier

        # Leaf values = mean target of samples landing there.
        leaf_cnt = np.bincount(node_of, minlength=len(value)).astype(float)
        leaf_sum = np.bincount(node_of, weights=y, minlength=len(value))
        for nid in range(len(value)):
            if is_leaf[nid] and leaf_cnt[nid] > 0:
                value[nid] = leaf_sum[nid] / leaf_cnt[nid]
        self._finalize(feature, thresh, left, right, value, is_leaf)
        return self

    def _best_splits_fast(
        self, base, active, act_slots, act_y, k, m, n_bins, tot_cnt, tot_sum
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One fused histogram pass for every (node, feature) of a level.

        Keys ``slot * (m * n_bins) + f * n_bins + bin`` feed a single
        ``np.bincount`` per statistic; within each (slot, feature, bin)
        cell the accumulation visits rows in the same order as the
        reference per-feature loop, so the sums are bit-identical.  The
        flat argmax breaks gain ties exactly like the reference's strict
        ``>`` scan: lowest feature first, then lowest bin.
        """
        p = self.params
        key = base[active]  # fresh copy — safe to offset in place
        key += (act_slots * (m * n_bins))[:, None]
        key = key.ravel()
        minlength = k * m * n_bins
        cnt = np.bincount(key, minlength=minlength).reshape(k, m, n_bins)
        sm = np.bincount(
            key, weights=np.repeat(act_y, m), minlength=minlength
        ).reshape(k, m, n_bins)
        np.cumsum(cnt, axis=2, out=cnt)
        np.cumsum(sm, axis=2, out=sm)
        lc = cnt[:, :, :-1]  # left counts per threshold
        ls = sm[:, :, :-1]
        rc = tot_cnt[:, None, None] - lc
        rs = tot_sum[:, None, None] - ls
        valid = (lc >= p.min_samples_leaf) & (rc >= p.min_samples_leaf)
        # Same expressions and evaluation order as the reference loop,
        # rewritten with out= buffers so each level allocates O(1) large
        # temporaries instead of ~a dozen.
        with np.errstate(invalid="ignore", divide="ignore"):
            gain = ls * ls
            gain /= np.maximum(lc, 1)
            rhs = rs * rs
            rhs /= np.maximum(rc, 1)
            gain += rhs
            gain -= (tot_sum * tot_sum / np.maximum(tot_cnt, 1))[:, None, None]
        np.logical_not(valid, out=valid)
        gain[valid] = -np.inf
        flat = gain.reshape(k, m * (n_bins - 1))
        best_idx = np.argmax(flat, axis=1)
        best_gain = flat[np.arange(k), best_idx]
        return best_gain, best_idx // (n_bins - 1), best_idx % (n_bins - 1)

    def _best_splits_reference(
        self, X_binned, active, act_slots, act_y, k, m, n_bins, tot_cnt, tot_sum
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-feature histogram loop — the byte-parity oracle."""
        p = self.params
        best_gain = np.full(k, -np.inf)
        best_feat = np.full(k, -1, dtype=np.int64)
        best_bin = np.full(k, -1, dtype=np.int64)

        for f in range(m):
            bins_f = X_binned[active, f].astype(np.int64)
            key = act_slots * n_bins + bins_f
            cnt = np.bincount(key, minlength=k * n_bins).reshape(k, n_bins)
            sm = np.bincount(
                key, weights=act_y, minlength=k * n_bins
            ).reshape(k, n_bins)
            lc = np.cumsum(cnt, axis=1)[:, :-1]  # left counts per threshold
            ls = np.cumsum(sm, axis=1)[:, :-1]
            rc = tot_cnt[:, None] - lc
            rs = tot_sum[:, None] - ls
            valid = (lc >= p.min_samples_leaf) & (rc >= p.min_samples_leaf)
            with np.errstate(invalid="ignore", divide="ignore"):
                gain = (
                    ls * ls / np.maximum(lc, 1)
                    + rs * rs / np.maximum(rc, 1)
                    - (tot_sum * tot_sum / np.maximum(tot_cnt, 1))[:, None]
                )
            gain[~valid] = -np.inf
            f_best_bin = np.argmax(gain, axis=1)
            f_best_gain = gain[np.arange(k), f_best_bin]
            better = f_best_gain > best_gain
            best_gain[better] = f_best_gain[better]
            best_feat[better] = f
            best_bin[better] = f_best_bin[better]
        return best_gain, best_feat, best_bin

    def _finalize(self, feature, thresh, left, right, value, is_leaf) -> None:
        self._tree = _FlatTree(
            feature=np.asarray(feature, np.int32),
            threshold_bin=np.asarray(thresh, np.int32),
            left=np.asarray(left, np.int32),
            right=np.asarray(right, np.int32),
            value=np.asarray(value, np.float64),
            is_leaf=np.asarray(is_leaf, bool),
        )

    # ------------------------------------------------------------------
    def predict_binned(self, X_binned: np.ndarray) -> np.ndarray:
        """Predict from pre-binned features (vectorized tree walk)."""
        t = self._tree
        if t.value.size == 0:
            raise RuntimeError("tree not fitted")
        X_binned = np.asarray(X_binned)
        node = np.zeros(X_binned.shape[0], dtype=np.int64)
        # Depth-bounded loop: every iteration advances all non-leaf rows.
        for _ in range(self.params.max_depth + 1):
            active = ~t.is_leaf[node]
            if not np.any(active):
                break
            cur = node[active]
            fvals = X_binned[active, t.feature[cur]]
            go_left = fvals <= t.threshold_bin[cur]
            node[active] = np.where(go_left, t.left[cur], t.right[cur])
        return t.value[node]

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(self._tree.value.size)

    @property
    def n_leaves(self) -> int:
        return int(self._tree.is_leaf.sum())

    @property
    def depth(self) -> int:
        """Actual depth reached (0 = stump that never split)."""
        t = self._tree
        depth = np.zeros(t.value.size, dtype=int)
        for nid in range(t.value.size):
            if not t.is_leaf[nid]:
                depth[t.left[nid]] = depth[nid] + 1
                depth[t.right[nid]] = depth[nid] + 1
        return int(depth.max()) if depth.size else 0

    def feature_gains(self) -> np.ndarray:
        """Total split gain attributed to each feature."""
        if self.n_features_ is None:
            raise RuntimeError("tree not fitted")
        gains = np.zeros(self.n_features_)
        t = self._tree
        for nid, g in self.split_gains_.items():
            gains[t.feature[nid]] += g
        return gains
