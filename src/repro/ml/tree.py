"""Histogram-based regression tree (the GBDT base learner).

This is the LightGBM-style design the paper's GBDT [42] relies on:

1. Features are pre-binned into at most ``max_bins`` quantile bins
   (:class:`Binner`), so split search scans bins, not raw values.
2. Trees grow level-by-level; at each level the candidate splits for *all*
   frontier nodes are evaluated with two ``np.bincount`` passes per feature
   (sum of gradients, sample counts) keyed by ``node_id * n_bins + bin``.
3. For squared loss the optimal leaf value is the mean residual, and the
   split gain is the variance-reduction form
   ``S_l²/n_l + S_r²/n_r − S²/n``.

The tree is stored as flat arrays so prediction is a vectorized walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Binner", "TreeParams", "RegressionTree"]


class Binner:
    """Quantile binning of a float feature matrix.

    Bin semantics: value ``x`` falls in bin ``searchsorted(edges, x,
    'left')``; a split "bin <= t" therefore means ``x <= edges[t]`` on raw
    values.  Edges are per-feature interior quantile boundaries (at most
    ``max_bins - 1`` of them, deduplicated).
    """

    def __init__(self, max_bins: int = 256) -> None:
        if not 2 <= max_bins <= 65_535:
            raise ValueError("max_bins must be in [2, 65535]")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "Binner":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        qs = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        self.edges_ = []
        for j in range(X.shape[1]):
            col = X[:, j]
            col = col[~np.isnan(col)]
            if col.size == 0:
                self.edges_.append(np.empty(0))
                continue
            edges = np.unique(np.quantile(col, qs))
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("Binner not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape, dtype=np.int32)
        for j, edges in enumerate(self.edges_):
            if edges.size == 0:
                out[:, j] = 0
            else:
                out[:, j] = np.searchsorted(edges, X[:, j], side="left")
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_bins(self) -> int:
        """Upper bound of bin index + 1 across features."""
        if self.edges_ is None:
            raise RuntimeError("Binner not fitted")
        return max((e.size + 1 for e in self.edges_), default=1)


@dataclass(frozen=True)
class TreeParams:
    """Growth hyper-parameters for a single regression tree."""

    max_depth: int = 6
    min_samples_leaf: int = 20
    min_gain: float = 1e-12

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")


@dataclass
class _FlatTree:
    """Array-of-structs tree storage."""

    feature: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    threshold_bin: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    left: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    right: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    value: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    is_leaf: np.ndarray = field(default_factory=lambda: np.empty(0, bool))


class RegressionTree:
    """Least-squares regression tree over pre-binned features.

    ``fit`` consumes the *binned* integer matrix produced by
    :class:`Binner`; ``predict_binned`` likewise.  The owning GBDT handles
    raw-value binning so the edges are shared across all trees.
    """

    def __init__(self, params: TreeParams | None = None) -> None:
        self.params = params or TreeParams()
        self._tree = _FlatTree()
        self.n_features_: int | None = None
        self.split_gains_: dict[int, float] = {}

    # ------------------------------------------------------------------
    def fit(
        self,
        X_binned: np.ndarray,
        y: np.ndarray,
        sample_indices: np.ndarray | None = None,
        n_bins: int | None = None,
    ) -> "RegressionTree":
        """Grow the tree.  ``n_bins`` (any upper bound on bin index + 1,
        e.g. ``Binner.n_bins``) skips the per-tree matrix max-scan the
        boosting loop would otherwise repeat for every stage."""
        X_binned = np.asarray(X_binned)
        y = np.asarray(y, dtype=float)
        if X_binned.ndim != 2 or X_binned.shape[0] != y.shape[0]:
            raise ValueError("X_binned/y shape mismatch")
        if sample_indices is not None:
            X_binned = X_binned[sample_indices]
            y = y[sample_indices]
        n, m = X_binned.shape
        self.n_features_ = m
        if n_bins is None:
            n_bins = int(X_binned.max()) + 1 if n else 1
        p = self.params

        # Growing arrays (python lists; appended per created node).
        feature: list[int] = [-1]
        thresh: list[int] = [-1]
        left: list[int] = [-1]
        right: list[int] = [-1]
        value: list[float] = [float(y.mean()) if n else 0.0]
        is_leaf: list[bool] = [True]

        if n == 0 or n_bins < 2:
            # No data, or every feature landed in a single bin: stump.
            self._finalize(feature, thresh, left, right, value, is_leaf)
            return self

        node_of = np.zeros(n, dtype=np.int64)
        frontier = [0]  # node ids eligible for splitting at current depth

        for _depth in range(p.max_depth):
            if not frontier:
                break
            frontier_arr = np.asarray(frontier)
            # Map node id -> dense slot for this level.
            slot_of = np.full(len(value), -1, dtype=np.int64)
            slot_of[frontier_arr] = np.arange(len(frontier_arr))
            active = slot_of[node_of] >= 0
            act_slots = slot_of[node_of[active]]
            act_y = y[active]
            k = len(frontier_arr)

            tot_cnt = np.bincount(act_slots, minlength=k).astype(float)
            tot_sum = np.bincount(act_slots, weights=act_y, minlength=k)

            best_gain = np.full(k, -np.inf)
            best_feat = np.full(k, -1, dtype=np.int64)
            best_bin = np.full(k, -1, dtype=np.int64)

            for f in range(m):
                bins_f = X_binned[active, f].astype(np.int64)
                key = act_slots * n_bins + bins_f
                cnt = np.bincount(key, minlength=k * n_bins).reshape(k, n_bins)
                sm = np.bincount(
                    key, weights=act_y, minlength=k * n_bins
                ).reshape(k, n_bins)
                lc = np.cumsum(cnt, axis=1)[:, :-1]  # left counts per threshold
                ls = np.cumsum(sm, axis=1)[:, :-1]
                rc = tot_cnt[:, None] - lc
                rs = tot_sum[:, None] - ls
                valid = (lc >= p.min_samples_leaf) & (rc >= p.min_samples_leaf)
                with np.errstate(invalid="ignore", divide="ignore"):
                    gain = (
                        ls * ls / np.maximum(lc, 1)
                        + rs * rs / np.maximum(rc, 1)
                        - (tot_sum * tot_sum / np.maximum(tot_cnt, 1))[:, None]
                    )
                gain[~valid] = -np.inf
                f_best_bin = np.argmax(gain, axis=1)
                f_best_gain = gain[np.arange(k), f_best_bin]
                better = f_best_gain > best_gain
                best_gain[better] = f_best_gain[better]
                best_feat[better] = f
                best_bin[better] = f_best_bin[better]

            # Create children for nodes with a worthwhile split.
            split_mask = best_gain > p.min_gain
            next_frontier: list[int] = []
            child_left = np.full(k, -1, dtype=np.int64)
            for slot in np.flatnonzero(split_mask):
                node = int(frontier_arr[slot])
                lid, rid = len(value), len(value) + 1
                feature[node] = int(best_feat[slot])
                thresh[node] = int(best_bin[slot])
                left[node] = lid
                right[node] = rid
                is_leaf[node] = False
                self.split_gains_[node] = float(best_gain[slot])
                for _ in range(2):
                    feature.append(-1)
                    thresh.append(-1)
                    left.append(-1)
                    right.append(-1)
                    value.append(0.0)
                    is_leaf.append(True)
                child_left[slot] = lid
                next_frontier.extend((lid, rid))

            if not next_frontier:
                break

            # Route samples of split nodes to their children (vectorized).
            slots = slot_of[node_of]
            moving = (slots >= 0) & split_mask[np.clip(slots, 0, k - 1)]
            mv_slots = slots[moving]
            fvals = X_binned[moving, best_feat[mv_slots]]
            go_left = fvals <= best_bin[mv_slots]
            node_of[moving] = np.where(
                go_left, child_left[mv_slots], child_left[mv_slots] + 1
            )
            frontier = next_frontier

        # Leaf values = mean target of samples landing there.
        leaf_cnt = np.bincount(node_of, minlength=len(value)).astype(float)
        leaf_sum = np.bincount(node_of, weights=y, minlength=len(value))
        for nid in range(len(value)):
            if is_leaf[nid] and leaf_cnt[nid] > 0:
                value[nid] = leaf_sum[nid] / leaf_cnt[nid]
        self._finalize(feature, thresh, left, right, value, is_leaf)
        return self

    def _finalize(self, feature, thresh, left, right, value, is_leaf) -> None:
        self._tree = _FlatTree(
            feature=np.asarray(feature, np.int32),
            threshold_bin=np.asarray(thresh, np.int32),
            left=np.asarray(left, np.int32),
            right=np.asarray(right, np.int32),
            value=np.asarray(value, np.float64),
            is_leaf=np.asarray(is_leaf, bool),
        )

    # ------------------------------------------------------------------
    def predict_binned(self, X_binned: np.ndarray) -> np.ndarray:
        """Predict from pre-binned features (vectorized tree walk)."""
        t = self._tree
        if t.value.size == 0:
            raise RuntimeError("tree not fitted")
        X_binned = np.asarray(X_binned)
        node = np.zeros(X_binned.shape[0], dtype=np.int64)
        # Depth-bounded loop: every iteration advances all non-leaf rows.
        for _ in range(self.params.max_depth + 1):
            active = ~t.is_leaf[node]
            if not np.any(active):
                break
            cur = node[active]
            fvals = X_binned[active, t.feature[cur]]
            go_left = fvals <= t.threshold_bin[cur]
            node[active] = np.where(go_left, t.left[cur], t.right[cur])
        return t.value[node]

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(self._tree.value.size)

    @property
    def n_leaves(self) -> int:
        return int(self._tree.is_leaf.sum())

    @property
    def depth(self) -> int:
        """Actual depth reached (0 = stump that never split)."""
        t = self._tree
        depth = np.zeros(t.value.size, dtype=int)
        for nid in range(t.value.size):
            if not t.is_leaf[nid]:
                depth[t.left[nid]] = depth[nid] + 1
                depth[t.right[nid]] = depth[nid] + 1
        return int(depth.max()) if depth.size else 0

    def feature_gains(self) -> np.ndarray:
        """Total split gain attributed to each feature."""
        if self.n_features_ is None:
            raise RuntimeError("tree not fitted")
        gains = np.zeros(self.n_features_)
        t = self._tree
        for nid, g in self.split_gains_.items():
            gains[t.feature[nid]] += g
        return gains
