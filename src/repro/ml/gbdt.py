"""Gradient-Boosted Decision Trees for regression (squared loss).

Scratch numpy implementation of the model class the paper uses for both
services (LightGBM [42] in the original): histogram trees, shrinkage,
stochastic row subsampling, and optional early stopping on a validation
split.  For squared loss the negative gradient is simply the residual, so
each stage fits a :class:`~repro.ml.tree.RegressionTree` to residuals.

Like the simulator (``sim/fast.py``) the fit path has two modes:
``mode="fast"`` (default) precomputes a :class:`~repro.ml.tree.HistogramCache`
over the frozen binned matrix once per fit and reuses it across every
boosting stage, driving the fused single-``bincount`` split search;
``mode="reference"`` runs the scratch per-feature histogram loop.  Both
produce byte-identical ensembles — the reference path is the oracle the
parity tests and benchmarks compare against.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from .tree import Binner, HistogramCache, RegressionTree, TreeParams

__all__ = ["GBDTParams", "GBDTRegressor", "keep_training_state"]

#: nesting depth of :func:`keep_training_state` contexts
_KEEP_TRAINING_STATE = 0


@contextmanager
def keep_training_state():
    """Make GBDT pickles carry their ``fit_more`` continuation buffers.

    By default :meth:`GBDTRegressor.__getstate__` strips the binned
    training matrix (it dominates the object's footprint and is useless
    for plain prediction across a process boundary).  A crash-recovery
    checkpoint is the exception: a restored serving shard must be able
    to *continue incremental boosting* exactly where the dead one
    stopped, so the serving layer pickles its model snapshots inside
    this context.
    """
    global _KEEP_TRAINING_STATE
    _KEEP_TRAINING_STATE += 1
    try:
        yield
    finally:
        _KEEP_TRAINING_STATE -= 1

_FIT_MODES = ("fast", "reference")


@dataclass(frozen=True)
class GBDTParams:
    """Boosting hyper-parameters."""

    n_estimators: int = 200
    learning_rate: float = 0.1
    max_depth: int = 6
    min_samples_leaf: int = 20
    subsample: float = 1.0
    max_bins: int = 256
    early_stopping_rounds: int | None = None
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")


class GBDTRegressor:
    """Boosted regression ensemble.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> X = rng.normal(size=(500, 3))
    >>> y = X[:, 0] ** 2 + X[:, 1]
    >>> model = GBDTRegressor(GBDTParams(n_estimators=50)).fit(X, y)
    >>> float(np.mean((model.predict(X) - y) ** 2)) < 0.2
    True
    """

    def __init__(
        self, params: GBDTParams | None = None, *, mode: str = "fast"
    ) -> None:
        if mode not in _FIT_MODES:
            raise ValueError(f"mode must be one of {_FIT_MODES}, got {mode!r}")
        self.params = params or GBDTParams()
        self.mode = mode
        self.binner_: Binner | None = None
        self.base_score_: float = 0.0
        self.trees_: list[RegressionTree] = []
        self.train_scores_: list[float] = []
        self.valid_scores_: list[float] = []
        self.best_iteration_: int | None = None
        # Training state kept for fit_more (continued boosting): the
        # binned training matrix, targets, current ensemble predictions
        # on those rows, and the subsampling RNG.
        self._Xb_train: np.ndarray | None = None
        self._y_train: np.ndarray | None = None
        self._pred_train: np.ndarray | None = None
        self._rng: np.random.Generator | None = None
        # Fast-mode per-feature offset cache over the frozen binned matrix,
        # built once per fit and reused by every boosting stage.
        self._hist_cache: HistogramCache | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "GBDTRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X/y shape mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        p = self.params
        rng = np.random.default_rng(p.random_state)

        self.binner_ = Binner(max_bins=p.max_bins)
        Xb = self.binner_.fit_transform(X)
        self.base_score_ = float(y.mean())
        pred = np.full(y.shape[0], self.base_score_)

        Xb_val = yv = pred_val = None
        if eval_set is not None:
            Xv, yv = eval_set
            Xb_val = self.binner_.transform(np.asarray(Xv, dtype=float))
            yv = np.asarray(yv, dtype=float)
            pred_val = np.full(yv.shape[0], self.base_score_)

        tree_params = TreeParams(
            max_depth=p.max_depth, min_samples_leaf=p.min_samples_leaf
        )
        self.trees_ = []
        self.train_scores_ = []
        self.valid_scores_ = []
        best_val = np.inf
        best_iter = 0
        n_bins = self.binner_.n_bins
        self._hist_cache = (
            HistogramCache(Xb, n_bins) if self.mode == "fast" else None
        )

        for it in range(p.n_estimators):
            tree = self._boost_round(Xb, y, pred, rng, tree_params, n_bins)

            if pred_val is not None:
                pred_val += p.learning_rate * tree.predict_binned(Xb_val)
                val_mse = float(np.mean((yv - pred_val) ** 2))
                self.valid_scores_.append(val_mse)
                if val_mse < best_val - 1e-12:
                    best_val = val_mse
                    best_iter = it
                elif (
                    p.early_stopping_rounds is not None
                    and it - best_iter >= p.early_stopping_rounds
                ):
                    break
        self.best_iteration_ = (
            best_iter if (eval_set is not None and self.valid_scores_) else None
        )
        self._Xb_train = Xb
        self._y_train = y
        self._pred_train = pred
        self._rng = rng
        return self

    def _boost_round(
        self,
        Xb: np.ndarray,
        y: np.ndarray,
        pred: np.ndarray,
        rng: np.random.Generator,
        tree_params: TreeParams,
        n_bins: int,
    ) -> RegressionTree:
        """One boosting stage, shared by :meth:`fit` and :meth:`fit_more`:
        fit a tree to the residuals (optionally row-subsampled), advance
        ``pred`` in place, record the tree and its training MSE."""
        p = self.params
        n = y.shape[0]
        residual = y - pred
        idx = None
        if p.subsample < 1.0:
            k = max(1, int(round(p.subsample * n)))
            idx = rng.choice(n, size=k, replace=False)
        tree = RegressionTree(tree_params).fit(
            Xb,
            residual,
            sample_indices=idx,
            n_bins=n_bins,
            mode=self.mode,
            cache=self._hist_cache,
        )
        pred += p.learning_rate * tree.predict_binned(Xb)
        self.trees_.append(tree)
        self.train_scores_.append(float(np.mean((y - pred) ** 2)))
        return tree

    def __getstate__(self) -> dict:
        """Drop the fit_more continuation buffers when pickling.

        The binned training matrix / targets / running predictions exist
        only so an *in-process* model can continue boosting cheaply; they
        are the bulk of the object's footprint and are never useful
        across a process boundary (orchestrator precursor shipping,
        artifact payloads).  An unpickled model predicts normally but
        refuses ``fit_more`` until re-fitted.  Inside a
        :func:`keep_training_state` context (serving checkpoints) the
        buffers are kept, so a restored model continues boosting.
        """
        state = self.__dict__.copy()
        if not _KEEP_TRAINING_STATE:
            state["_Xb_train"] = None
            state["_y_train"] = None
            state["_pred_train"] = None
            state["_hist_cache"] = None
        return state

    # ------------------------------------------------------------------
    def fit_more(
        self,
        X_new: np.ndarray,
        y_new: np.ndarray,
        n_more: int,
    ) -> "GBDTRegressor":
        """Continue boosting: append rows, then fit ``n_more`` new stages.

        The new rows are binned with the *frozen* :class:`Binner` from the
        initial fit, routed through the existing ensemble once to seed
        their predictions, and the boosting recursion resumes on the full
        grown matrix — so an incremental stage costs the same as a stage
        of the original fit, and no feature re-binning of old rows ever
        happens.  Used by the rolling-origin evaluation engine to advance
        the GBDT comparator by one fold in O(n_more · n_rows) instead of
        re-running the whole boosting schedule.

        Not available after an early-stopped fit (the truncated ensemble
        would disagree with the cached training predictions).
        """
        if self.binner_ is None or self._Xb_train is None:
            raise RuntimeError("model not fitted; call fit() before fit_more()")
        if self.best_iteration_ is not None:
            raise RuntimeError("cannot continue an early-stopped fit")
        if n_more < 0:
            raise ValueError("n_more must be >= 0")
        p = self.params
        X_new = np.asarray(X_new, dtype=float)
        y_new = np.asarray(y_new, dtype=float)
        if X_new.ndim == 1:
            X_new = X_new.reshape(1, -1)
        if X_new.shape[0] != y_new.shape[0]:
            raise ValueError("X/y shape mismatch")
        if X_new.shape[0]:
            Xb_new = self.binner_.transform(X_new)
            pred_new = np.full(X_new.shape[0], self.base_score_)
            for tree in self.trees_:
                pred_new += p.learning_rate * tree.predict_binned(Xb_new)
            self._Xb_train = np.vstack([self._Xb_train, Xb_new])
            if self._hist_cache is not None:
                self._hist_cache.append(Xb_new)
            self._y_train = np.concatenate([self._y_train, y_new])
            self._pred_train = np.concatenate([self._pred_train, pred_new])

        Xb, y, pred = self._Xb_train, self._y_train, self._pred_train
        tree_params = TreeParams(
            max_depth=p.max_depth, min_samples_leaf=p.min_samples_leaf
        )
        n_bins = self.binner_.n_bins
        for _ in range(n_more):
            self._boost_round(Xb, y, pred, self._rng, tree_params, n_bins)
        return self

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray, n_trees: int | None = None) -> np.ndarray:
        """Predict; optionally truncate the ensemble to ``n_trees`` stages.

        When early stopping selected a best iteration, prediction uses the
        ensemble up to that iteration by default.
        """
        if self.binner_ is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        Xb = self.binner_.transform(X)
        if n_trees is None:
            n_trees = (
                self.best_iteration_ + 1
                if self.best_iteration_ is not None
                else len(self.trees_)
            )
        out = np.full(X.shape[0], self.base_score_)
        lr = self.params.learning_rate
        for tree in self.trees_[:n_trees]:
            out += lr * tree.predict_binned(Xb)
        return out

    def staged_mse(self) -> list[float]:
        """Training MSE after each boosting stage (monotone check hook)."""
        return list(self.train_scores_)

    def feature_importances(self) -> np.ndarray:
        """Gain-based importances, normalized to sum to 1.

        When early stopping selected a best iteration, only the trees
        :meth:`predict` actually uses (up to and including that
        iteration) contribute — gains from stages past the truncation
        point would describe an ensemble that never predicts.
        """
        if not self.trees_:
            raise RuntimeError("model not fitted")
        n_trees = (
            self.best_iteration_ + 1
            if self.best_iteration_ is not None
            else len(self.trees_)
        )
        total = np.zeros(self.trees_[0].n_features_)
        for tree in self.trees_[:n_trees]:
            total += tree.feature_gains()
        s = total.sum()
        return total / s if s > 0 else total
