"""Learning substrate: GBDT, encoders, text similarity, forecasters.

Everything is implemented from scratch on numpy (no sklearn/LightGBM in
the offline environment); see DESIGN.md §2 for the substitution notes.
"""

from .arima import ARIMAForecaster
from .encoding import TIME_FEATURE_NAMES, FrequencyEncoder, OrdinalEncoder, time_features
from .ets import HoltWintersForecaster
from .fourier import FourierForecaster
from .gbdt import GBDTParams, GBDTRegressor
from .linear import RidgeRegressor
from .lstm import LSTMForecaster, LSTMParams
from .model_selection import (
    compare_forecasters,
    evaluate_forecaster,
    grid_search,
    rolling_origin_splits,
    supports_update,
    time_split,
    train_test_split,
)
from .text import NameBucketizer, levenshtein, levenshtein_ratio, similar_names
from .tree import Binner, RegressionTree, TreeParams

__all__ = [
    "ARIMAForecaster",
    "Binner",
    "FourierForecaster",
    "FrequencyEncoder",
    "GBDTParams",
    "GBDTRegressor",
    "HoltWintersForecaster",
    "LSTMForecaster",
    "LSTMParams",
    "NameBucketizer",
    "OrdinalEncoder",
    "RegressionTree",
    "RidgeRegressor",
    "TIME_FEATURE_NAMES",
    "TreeParams",
    "compare_forecasters",
    "evaluate_forecaster",
    "grid_search",
    "levenshtein",
    "levenshtein_ratio",
    "rolling_origin_splits",
    "similar_names",
    "supports_update",
    "time_features",
    "time_split",
    "train_test_split",
]
