"""Trend + Fourier-seasonality regression — the Prophet model class.

Prophet [67] decomposes a series into trend + periodic seasonalities fit
with regularized regression; this implements the same decomposable model:
linear trend plus sine/cosine pairs at harmonics of each declared period,
solved in closed form by ridge.

:meth:`FourierForecaster.update` extends the fit over appended points by
pushing only their design rows into the ridge model's running moments
(see :class:`~repro.ml.linear.RidgeRegressor`), so a rolling-origin fold
update is O(step · features²) instead of a full re-fit.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .linear import RidgeRegressor

__all__ = ["FourierForecaster"]


class FourierForecaster:
    """Additive trend + multi-period Fourier seasonal forecaster.

    Parameters
    ----------
    periods:
        Season lengths in *samples* (e.g. for hourly data, ``(24, 168)``
        gives daily + weekly seasonality — the dominant cycles in cluster
        usage per §3.1).
    harmonics:
        Fourier harmonics per period.
    alpha:
        Ridge penalty for the seasonal/trend coefficients.
    """

    def __init__(
        self,
        periods: Sequence[float] = (24.0, 168.0),
        harmonics: int = 3,
        alpha: float = 1.0,
    ) -> None:
        if harmonics < 1:
            raise ValueError("harmonics must be >= 1")
        if any(p <= 1 for p in periods):
            raise ValueError("periods must be > 1 sample")
        self.periods = tuple(float(p) for p in periods)
        self.harmonics = harmonics
        self.alpha = alpha
        self._model: RidgeRegressor | None = None
        self._n: int = 0

    def _design(self, t: np.ndarray) -> np.ndarray:
        cols = [t.astype(float)]
        for period in self.periods:
            for k in range(1, self.harmonics + 1):
                w = 2.0 * np.pi * k * t / period
                cols.append(np.sin(w))
                cols.append(np.cos(w))
        return np.stack(cols, axis=1)

    def fit(self, y: np.ndarray) -> "FourierForecaster":
        y = np.asarray(y, dtype=float)
        if y.ndim != 1:
            raise ValueError("y must be 1-D")
        min_len = 2 * self.harmonics * len(self.periods) + 2
        if y.size < min_len:
            raise ValueError(f"series too short: need >= {min_len}, got {y.size}")
        self._n = y.size
        t = np.arange(y.size)
        self._model = RidgeRegressor(alpha=self.alpha).fit(self._design(t), y)
        return self

    def update(self, new_points: np.ndarray) -> "FourierForecaster":
        """Fold appended observations into the ridge moments and re-solve.

        Equivalent (to floating-point accumulation order) to re-fitting
        on the concatenated series, at O(len(new_points)) design-row cost.
        """
        if self._model is None:
            raise RuntimeError("model not fitted; call fit() before update()")
        y = np.asarray(new_points, dtype=float)
        if y.ndim != 1:
            raise ValueError("new_points must be 1-D")
        if y.size == 0:
            return self
        t = np.arange(self._n, self._n + y.size)
        self._model.update(self._design(t), y)
        self._n += y.size
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("model not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        t = np.arange(self._n, self._n + horizon)
        return self._model.predict(self._design(t))

    def fitted(self) -> np.ndarray:
        """In-sample fitted values (for decomposition inspection)."""
        if self._model is None:
            raise RuntimeError("model not fitted")
        return self._model.predict(self._design(np.arange(self._n)))
