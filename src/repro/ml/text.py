"""Job-name similarity: Levenshtein distance and name bucketing.

§4.2.2: "For the extremely sparse and high-dimensional features of job
names, we utilize the Levenshtein distance to cluster the names and
bucketize similar ones, which converts them into relatively dense
numerical values."  QSSF's ``SimilarName`` lookup (Algorithm 1, line 15)
uses the same distance.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "levenshtein",
    "levenshtein_ratio",
    "similar_names",
    "NameBucketizer",
]


def levenshtein(a: str, b: str) -> int:
    """Edit distance (insert/delete/substitute, unit costs).

    Vectorized DP over the shorter string's dimension: one numpy row per
    character of ``a``, O(len(a) * len(b)) with tight constant factor.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):  # keep the inner numpy row as the longer string
        a, b = b, a
    b_arr = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    idx = np.arange(len(b) + 1, dtype=np.int64)
    prev = idx.copy()
    cur = np.empty_like(prev)
    for i, ch in enumerate(a, start=1):
        cur[0] = i
        sub = prev[:-1] + (b_arr != ord(ch))
        dele = prev[1:] + 1
        np.minimum(sub, dele, out=cur[1:])
        # Insertion edges create a left-to-right dependency
        # cur[j] = min(cur[j], cur[j-1] + 1), which resolves in closed form
        # as cur[j] = j + running_min(cur - j).
        cur = idx + np.minimum.accumulate(cur - idx)
        prev, cur = cur, prev
    return int(prev[-1])


def levenshtein_ratio(a: str, b: str) -> float:
    """Normalized similarity in [0, 1]: 1 - distance / max_len."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def similar_names(
    name: str, candidates: list[str], threshold: float = 0.7
) -> list[str]:
    """Candidates whose similarity ratio with ``name`` is >= threshold.

    A cheap length filter prunes candidates that cannot reach the
    threshold before running the DP.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    out = []
    n = len(name)
    for cand in candidates:
        m = len(cand)
        longest = max(n, m, 1)
        if 1.0 - abs(n - m) / longest < threshold:
            continue  # even a perfect overlap cannot reach the threshold
        if levenshtein_ratio(name, cand) >= threshold:
            out.append(cand)
    return out


class NameBucketizer:
    """Greedy single-link clustering of job names by Levenshtein ratio.

    Fit assigns each distinct name to the first existing bucket whose
    *representative* is similar enough, otherwise opens a new bucket; this
    converts sparse name strings into dense integer bucket ids for the
    GBDT (the paper's "bucketize similar ones").

    Names are canonicalized (lower-case, digit runs collapsed to ``#``)
    first, so ``train_v1`` / ``train_v23`` share a canonical form — this
    mirrors how users number recurrent jobs.
    """

    def __init__(self, threshold: float = 0.75, max_buckets: int = 100_000) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.max_buckets = max_buckets
        self.representatives_: list[str] = []
        self._cache: dict[str, int] = {}
        # Blocking index: only representatives sharing a coarse (prefix,
        # length-band) key are compared, keeping fit near-linear in the
        # number of distinct canonical names.
        self._blocks: dict[tuple[str, int], list[int]] = {}

    @staticmethod
    def canonicalize(name: str) -> str:
        """Lower-case and collapse digit runs: ``Train_12a`` -> ``train_#a``."""
        out = []
        in_digits = False
        for ch in name.lower():
            if ch.isdigit():
                if not in_digits:
                    out.append("#")
                in_digits = True
            else:
                out.append(ch)
                in_digits = False
        return "".join(out)

    def fit(self, names: list[str] | np.ndarray) -> "NameBucketizer":
        for name in names:
            self._assign(str(name))
        return self

    @staticmethod
    def _block_key(canon: str) -> tuple[str, int]:
        return canon[:3], len(canon) // 3

    def _assign(self, name: str) -> int:
        canon = self.canonicalize(name)
        hit = self._cache.get(canon)
        if hit is not None:
            return hit
        key = self._block_key(canon)
        for bucket_id in self._blocks.get(key, ()):
            if levenshtein_ratio(canon, self.representatives_[bucket_id]) >= self.threshold:
                self._cache[canon] = bucket_id
                return bucket_id
        if len(self.representatives_) >= self.max_buckets:
            bucket_id = len(self.representatives_) - 1  # overflow bucket
        else:
            self.representatives_.append(canon)
            bucket_id = len(self.representatives_) - 1
            self._blocks.setdefault(key, []).append(bucket_id)
        self._cache[canon] = bucket_id
        return bucket_id

    def transform(self, names: list[str] | np.ndarray) -> np.ndarray:
        """Bucket ids; unseen names are assigned (and remembered) online."""
        return np.asarray([self._assign(str(n)) for n in names], dtype=np.int64)

    def fit_transform(self, names: list[str] | np.ndarray) -> np.ndarray:
        return self.fit(names).transform(names)

    @property
    def n_buckets(self) -> int:
        return len(self.representatives_)
