"""Closed-form ridge regression (used by the Fourier forecaster and as a
cheap baseline estimator)."""

from __future__ import annotations

import numpy as np

__all__ = ["RidgeRegressor"]


class RidgeRegressor:
    """L2-regularized least squares with an unpenalized intercept.

    Solves ``min ||y - Xw - b||^2 + alpha ||w||^2`` via the normal
    equations on centered data (scipy/numpy ``solve``; the design matrices
    we use are small and well-conditioned after standardization).

    ``fit`` also stores the raw data moments (``X'X``, ``X'y``, column
    sums), so :meth:`update` can append rows in O(rows · features²) and
    re-solve — the standardization statistics are rebuilt algebraically
    from the running moments, making an incremental fit equivalent to a
    batch fit over the concatenated data up to floating-point error.
    """

    def __init__(self, alpha: float = 1.0, standardize: bool = True) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.standardize = standardize
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._mu: np.ndarray | None = None
        self._sd: np.ndarray | None = None
        # Raw (unstandardized) moment accumulators for incremental fits.
        self._XtX: np.ndarray | None = None
        self._Xty: np.ndarray | None = None
        self._xsum: np.ndarray | None = None
        self._ysum: float = 0.0
        self._n: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X/y shape mismatch")
        if X.shape[0] == 0:
            raise ValueError("empty training data")
        self._XtX = X.T @ X
        self._Xty = X.T @ y
        self._xsum = X.sum(axis=0)
        self._ysum = float(y.sum())
        self._n = X.shape[0]
        if self.standardize:
            self._mu = X.mean(axis=0)
            sd = X.std(axis=0)
            self._sd = np.where(sd > 0, sd, 1.0)
            Xs = (X - self._mu) / self._sd
        else:
            self._mu = np.zeros(X.shape[1])
            self._sd = np.ones(X.shape[1])
            Xs = X
        y_mean = y.mean()
        yc = y - y_mean
        n_features = Xs.shape[1]
        gram = Xs.T @ Xs + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xs.T @ yc)
        self.intercept_ = float(y_mean)
        return self

    def update(self, X_new: np.ndarray, y_new: np.ndarray) -> "RidgeRegressor":
        """Fold new rows into the moments and re-solve.

        Costs O(rows · features²) regardless of how much data the model
        has already seen.  Standardization statistics are recomputed from
        the running sums, so the solution matches a batch re-fit on all
        rows seen so far (up to floating-point accumulation order).
        """
        if self.coef_ is None or self._XtX is None:
            raise RuntimeError("model not fitted; call fit() before update()")
        X_new = np.asarray(X_new, dtype=float)
        y_new = np.asarray(y_new, dtype=float)
        if X_new.ndim != 2 or X_new.shape[0] != y_new.shape[0]:
            raise ValueError("X/y shape mismatch")
        if X_new.shape[1] != self._XtX.shape[0]:
            raise ValueError("feature count changed between fit and update")
        if X_new.shape[0] == 0:
            return self
        self._XtX += X_new.T @ X_new
        self._Xty += X_new.T @ y_new
        self._xsum += X_new.sum(axis=0)
        self._ysum += float(y_new.sum())
        self._n += X_new.shape[0]
        self._solve_from_moments()
        return self

    def _solve_from_moments(self) -> None:
        """Centered/standardized ridge solve from the raw accumulators.

        Uses the identities ``Σ(x-μ)(x-μ)' = X'X − n·μμ'`` and
        ``Σ(x-μ)(y-ȳ) = X'y − μ·Σy``.
        """
        n = self._n
        mu = self._xsum / n
        y_mean = self._ysum / n
        if self.standardize:
            cov = self._XtX - n * np.outer(mu, mu)
            sd = np.sqrt(np.maximum(np.diag(cov) / n, 0.0))
            sd = np.where(sd > 0, sd, 1.0)
            self._mu = mu
            self._sd = sd
            gram = cov / np.outer(sd, sd)
            rhs = (self._Xty - mu * self._ysum) / sd
        else:
            self._mu = np.zeros(mu.shape)
            self._sd = np.ones(mu.shape)
            gram = self._XtX
            rhs = self._Xty - y_mean * self._xsum
        gram = gram + self.alpha * np.eye(gram.shape[0])
        self.coef_ = np.linalg.solve(gram, rhs)
        self.intercept_ = float(y_mean)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=float)
        Xs = (X - self._mu) / self._sd
        return Xs @ self.coef_ + self.intercept_
