"""Closed-form ridge regression (used by the Fourier forecaster and as a
cheap baseline estimator)."""

from __future__ import annotations

import numpy as np

__all__ = ["RidgeRegressor"]


class RidgeRegressor:
    """L2-regularized least squares with an unpenalized intercept.

    Solves ``min ||y - Xw - b||^2 + alpha ||w||^2`` via the normal
    equations on centered data (scipy/numpy ``solve``; the design matrices
    we use are small and well-conditioned after standardization).
    """

    def __init__(self, alpha: float = 1.0, standardize: bool = True) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.standardize = standardize
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._mu: np.ndarray | None = None
        self._sd: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X/y shape mismatch")
        if X.shape[0] == 0:
            raise ValueError("empty training data")
        if self.standardize:
            self._mu = X.mean(axis=0)
            sd = X.std(axis=0)
            self._sd = np.where(sd > 0, sd, 1.0)
            Xs = (X - self._mu) / self._sd
        else:
            self._mu = np.zeros(X.shape[1])
            self._sd = np.ones(X.shape[1])
            Xs = X
        y_mean = y.mean()
        yc = y - y_mean
        n_features = Xs.shape[1]
        gram = Xs.T @ Xs + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xs.T @ yc)
        self.intercept_ = float(y_mean)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=float)
        Xs = (X - self._mu) / self._sd
        return Xs @ self.coef_ + self.intercept_
