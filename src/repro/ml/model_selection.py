"""Splits and model comparison utilities.

The QSSF model "trains on April–August and evaluates on September"
(§4.2.3) — a time-ordered split; the CES forecaster comparison uses
rolling-origin evaluation over the node series.

Rolling-origin evaluation is implemented as an *incremental* fold-walking
engine: expanding-window folds differ only by the ``step`` points between
consecutive origins, so a model exposing the incremental-fit protocol —
an ``update(new_points)`` method next to ``fit``/``forecast`` — is fitted
once and advanced fold to fold in O(step) work instead of being re-fitted
from scratch O(n) at every origin.  Scratch re-fitting remains both the
fallback for models without ``update`` and the correctness oracle the
tolerance tests compare against (``mode="scratch"``).

The fold walk composes with the models' own fast fit paths: the GBDT
continues boosting on its frozen histogram cache and the LSTM (in its
default ``mode="fast"``) turns each fold's ``update(new_points)`` into
one fold-batched BPTT batch — so an entire rolling-origin walk drives a
single batched fine-tune per fold rather than window-by-window tapes.

:func:`compare_forecasters` additionally fans independent models out over
the framework's forked worker pool (``jobs``); results are identical to
the serial path because each evaluation is deterministic and
self-contained.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Sequence

import numpy as np

from ..stats.metrics import smape

__all__ = [
    "time_split",
    "train_test_split",
    "rolling_origin_splits",
    "supports_update",
    "evaluate_forecaster",
    "compare_forecasters",
]


def time_split(
    times: np.ndarray, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean masks ``(train, test)`` around a timestamp cutoff."""
    t = np.asarray(times, dtype=float)
    train = t < cutoff
    return train, ~train


def train_test_split(
    n: int, test_fraction: float = 0.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random index split (shuffled)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    return order[n_test:], order[:n_test]


def rolling_origin_splits(
    n: int, initial: int, horizon: int, step: int | None = None
) -> Iterator[tuple[slice, slice]]:
    """Yield ``(train_slice, test_slice)`` pairs walking forward in time.

    Train is always the full history up to the origin (expanding window).
    """
    if initial < 1 or horizon < 1:
        raise ValueError("initial and horizon must be >= 1")
    step = step or horizon
    origin = initial
    while origin + horizon <= n:
        yield slice(0, origin), slice(origin, origin + horizon)
        origin += step


def supports_update(model: object) -> bool:
    """True when ``model`` implements the incremental-fit protocol."""
    return callable(getattr(model, "update", None))


def evaluate_forecaster(
    make_model: Callable[[], object],
    series: np.ndarray,
    initial: int,
    horizon: int,
    step: int | None = None,
    metric: Callable[[np.ndarray, np.ndarray], float] = smape,
    mode: str = "auto",
) -> float:
    """Mean rolling-origin forecast error of a fit/forecast model.

    ``mode`` selects how the expanding window advances between folds:

    * ``"auto"`` (default) — use the model's ``update(new_points)`` when
      it implements the incremental protocol, else re-fit from scratch;
    * ``"incremental"`` — require ``update`` (raises otherwise);
    * ``"scratch"`` — always re-fit from scratch (the correctness
      oracle; this is the pre-incremental behavior, bit for bit).
    """
    if mode not in ("auto", "incremental", "scratch"):
        raise ValueError(f"unknown mode {mode!r}")
    series = np.asarray(series, dtype=float)
    folds = list(rolling_origin_splits(series.size, initial, horizon, step))
    if not folds:
        raise ValueError("no evaluation folds; series too short for initial+horizon")

    model = make_model()
    incremental = mode != "scratch" and supports_update(model)
    if mode == "incremental" and not incremental:
        raise TypeError(
            f"{type(model).__name__} does not implement update(); "
            "use mode='auto' or 'scratch'"
        )

    errors = []
    fitted_upto = 0
    for train_sl, test_sl in folds:
        if fitted_upto == 0:
            model.fit(series[train_sl])  # type: ignore[attr-defined]
        elif incremental:
            model.update(series[fitted_upto : train_sl.stop])  # type: ignore[attr-defined]
        else:
            model = make_model()
            model.fit(series[train_sl])  # type: ignore[attr-defined]
        fitted_upto = train_sl.stop
        fc = model.forecast(horizon)  # type: ignore[attr-defined]
        errors.append(metric(series[test_sl], fc))
    return float(np.mean(errors))


#: Comparison context inherited by forked workers (fork shares the parent
#: address space copy-on-write, which is how unpicklable model factories
#: reach the pool).
_ACTIVE_COMPARISON: dict | None = None


def _compare_task(name: str) -> tuple[str, float]:
    ctx = _ACTIVE_COMPARISON
    assert ctx is not None, "comparison context not installed"
    return name, evaluate_forecaster(
        ctx["models"][name],
        ctx["series"],
        ctx["initial"],
        ctx["horizon"],
        ctx["step"],
        mode=ctx["mode"],
    )


def compare_forecasters(
    models: Mapping[str, Callable[[], object]],
    series: np.ndarray,
    initial: int,
    horizon: int,
    step: int | None = None,
    mode: str = "auto",
    jobs: int = 1,
) -> dict[str, float]:
    """Rolling-origin SMAPE for each named model factory (§4.3.2 table).

    Independent models fan out across a forked worker pool when
    ``jobs > 1`` (``0`` = one per CPU); each worker inherits the factories
    copy-on-write and runs the same deterministic evaluation the serial
    path runs, so the returned scores are identical for any worker count.
    """
    # Imported here: repro.framework pulls in the service plugins, which
    # import the energy forecaster, which imports repro.ml — a cycle if
    # resolved at module-import time.
    from ..framework.parallel import run_forked

    global _ACTIVE_COMPARISON
    _ACTIVE_COMPARISON = {
        "models": dict(models),
        "series": np.asarray(series, dtype=float),
        "initial": initial,
        "horizon": horizon,
        "step": step,
        "mode": mode,
    }
    try:
        scored = dict(run_forked(_compare_task, list(models), jobs))
    finally:
        _ACTIVE_COMPARISON = None
    return {name: scored[name] for name in models}


def grid_search(
    factory: Callable[..., object],
    grid: Mapping[str, Sequence],
    score: Callable[[object], float],
) -> tuple[dict, float]:
    """Exhaustive minimization of ``score(factory(**combo))`` over a grid."""
    import itertools

    names = list(grid)
    best: tuple[dict, float] = ({}, np.inf)
    for combo in itertools.product(*(grid[n] for n in names)):
        kwargs = dict(zip(names, combo))
        value = score(factory(**kwargs))
        if value < best[1]:
            best = (kwargs, value)
    if not np.isfinite(best[1]):
        raise ValueError("grid search found no finite score")
    return best
