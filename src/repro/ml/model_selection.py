"""Splits and model comparison utilities.

The QSSF model "trains on April–August and evaluates on September"
(§4.2.3) — a time-ordered split; the CES forecaster comparison uses
rolling-origin evaluation over the node series.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Sequence

import numpy as np

from ..stats.metrics import smape

__all__ = [
    "time_split",
    "train_test_split",
    "rolling_origin_splits",
    "evaluate_forecaster",
    "compare_forecasters",
]


def time_split(
    times: np.ndarray, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean masks ``(train, test)`` around a timestamp cutoff."""
    t = np.asarray(times, dtype=float)
    train = t < cutoff
    return train, ~train


def train_test_split(
    n: int, test_fraction: float = 0.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random index split (shuffled)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    return order[n_test:], order[:n_test]


def rolling_origin_splits(
    n: int, initial: int, horizon: int, step: int | None = None
) -> Iterator[tuple[slice, slice]]:
    """Yield ``(train_slice, test_slice)`` pairs walking forward in time.

    Train is always the full history up to the origin (expanding window).
    """
    if initial < 1 or horizon < 1:
        raise ValueError("initial and horizon must be >= 1")
    step = step or horizon
    origin = initial
    while origin + horizon <= n:
        yield slice(0, origin), slice(origin, origin + horizon)
        origin += step


def evaluate_forecaster(
    make_model: Callable[[], object],
    series: np.ndarray,
    initial: int,
    horizon: int,
    step: int | None = None,
    metric: Callable[[np.ndarray, np.ndarray], float] = smape,
) -> float:
    """Mean rolling-origin forecast error of a fit/forecast model."""
    series = np.asarray(series, dtype=float)
    errors = []
    for train_sl, test_sl in rolling_origin_splits(series.size, initial, horizon, step):
        model = make_model()
        model.fit(series[train_sl])  # type: ignore[attr-defined]
        fc = model.forecast(horizon)  # type: ignore[attr-defined]
        errors.append(metric(series[test_sl], fc))
    if not errors:
        raise ValueError("no evaluation folds; series too short for initial+horizon")
    return float(np.mean(errors))


def compare_forecasters(
    models: Mapping[str, Callable[[], object]],
    series: np.ndarray,
    initial: int,
    horizon: int,
    step: int | None = None,
) -> dict[str, float]:
    """Rolling-origin SMAPE for each named model factory (§4.3.2 table)."""
    return {
        name: evaluate_forecaster(factory, series, initial, horizon, step)
        for name, factory in models.items()
    }


def grid_search(
    factory: Callable[..., object],
    grid: Mapping[str, Sequence],
    score: Callable[[object], float],
) -> tuple[dict, float]:
    """Exhaustive minimization of ``score(factory(**combo))`` over a grid."""
    import itertools

    names = list(grid)
    best: tuple[dict, float] = ({}, np.inf)
    for combo in itertools.product(*(grid[n] for n in names)):
        kwargs = dict(zip(names, combo))
        value = score(factory(**kwargs))
        if value < best[1]:
            best = (kwargs, value)
    if not np.isfinite(best[1]):
        raise ValueError("grid search found no finite score")
    return best
