"""AR(p) with differencing — the ARIMA(p, d, 0) model class.

One of the classical comparators the paper tried for the CES node-count
forecaster (§4.3.2, [32]).  Coefficients are estimated by conditional
least squares on the lag matrix; forecasting is the standard recursive
plug-in, with differencing inverted at the end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ARIMAForecaster"]


def _difference(y: np.ndarray, d: int) -> tuple[np.ndarray, list[np.ndarray]]:
    """Apply d rounds of first differencing; keep tails for inversion."""
    tails: list[np.ndarray] = []
    cur = y
    for _ in range(d):
        tails.append(cur[-1:].copy())
        cur = np.diff(cur)
    return cur, tails


def _undifference(fc: np.ndarray, tails: list[np.ndarray]) -> np.ndarray:
    """Invert the differencing applied by :func:`_difference`."""
    cur = fc
    for tail in reversed(tails):
        cur = tail[-1] + np.cumsum(cur)
    return cur


class ARIMAForecaster:
    """ARIMA(p, d, 0) point forecaster.

    Parameters
    ----------
    p:
        Autoregressive order (number of lags).
    d:
        Differencing order (0 or 1 are typical for node-count series).
    """

    def __init__(self, p: int = 24, d: int = 1) -> None:
        if p < 1:
            raise ValueError("p must be >= 1")
        if d < 0:
            raise ValueError("d must be >= 0")
        self.p = p
        self.d = d
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._history: np.ndarray | None = None

    def fit(self, y: np.ndarray) -> "ARIMAForecaster":
        y = np.asarray(y, dtype=float)
        if y.ndim != 1:
            raise ValueError("y must be 1-D")
        if y.size < self.p + self.d + 2:
            raise ValueError(
                f"series too short: need > {self.p + self.d + 2} points, got {y.size}"
            )
        self._history = y.copy()
        z, _ = _difference(y, self.d)
        n = z.size - self.p
        # Lag matrix: row t = [z_{t+p-1}, ..., z_t] predicting z_{t+p}.
        lags = np.stack([z[self.p - k - 1 : self.p - k - 1 + n] for k in range(self.p)], axis=1)
        target = z[self.p :]
        X = np.hstack([np.ones((n, 1)), lags])
        beta, *_ = np.linalg.lstsq(X, target, rcond=None)
        self.intercept_ = float(beta[0])
        self.coef_ = beta[1:]
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast continuing the fitted series."""
        if self.coef_ is None or self._history is None:
            raise RuntimeError("model not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        z, tails = _difference(self._history, self.d)
        buf = list(z[-self.p :])
        out = np.empty(horizon)
        for h in range(horizon):
            recent = np.asarray(buf[-self.p :][::-1])  # most recent first
            nxt = self.intercept_ + float(self.coef_ @ recent)
            out[h] = nxt
            buf.append(nxt)
        return _undifference(out, tails)
