"""AR(p) with differencing — the ARIMA(p, d, 0) model class.

One of the classical comparators the paper tried for the CES node-count
forecaster (§4.3.2, [32]).  Coefficients are estimated by conditional
least squares on the lag matrix; forecasting is the standard recursive
plug-in, with differencing inverted at the end.

The estimator is incremental: ``fit`` accumulates the normal-equation
moments ``X'X`` and ``X'y`` row by row, and :meth:`ARIMAForecaster.update`
continues the same accumulation over appended points, so a rolling-origin
fold update costs O(step · p²) instead of a full O(n · p²) re-fit.
Because both paths add the identical per-row outer products in the
identical order, ``fit(head); update(tail)`` is *bit-exact* with
``fit(head + tail)`` — the property the incremental-evaluation engine's
tests pin down.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ARIMAForecaster"]


def _difference(y: np.ndarray, d: int) -> tuple[np.ndarray, list[np.ndarray]]:
    """Apply d rounds of first differencing; keep tails for inversion."""
    tails: list[np.ndarray] = []
    cur = y
    for _ in range(d):
        tails.append(cur[-1:].copy())
        cur = np.diff(cur)
    return cur, tails


def _undifference(fc: np.ndarray, tails: list[np.ndarray]) -> np.ndarray:
    """Invert the differencing applied by :func:`_difference`."""
    cur = fc
    for tail in reversed(tails):
        cur = tail[-1] + np.cumsum(cur)
    return cur


class ARIMAForecaster:
    """ARIMA(p, d, 0) point forecaster with incremental refitting.

    Parameters
    ----------
    p:
        Autoregressive order (number of lags).
    d:
        Differencing order (0 or 1 are typical for node-count series).
    """

    def __init__(self, p: int = 24, d: int = 1) -> None:
        if p < 1:
            raise ValueError("p must be >= 1")
        if d < 0:
            raise ValueError("d must be >= 0")
        self.p = p
        self.d = d
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._history: np.ndarray | None = None
        # Normal-equation accumulators over the lag rows seen so far.
        self._XtX: np.ndarray | None = None
        self._Xty: np.ndarray | None = None
        self._n_rows: int = 0

    def fit(self, y: np.ndarray) -> "ARIMAForecaster":
        y = np.asarray(y, dtype=float)
        if y.ndim != 1:
            raise ValueError("y must be 1-D")
        if y.size < self.p + self.d + 2:
            raise ValueError(
                f"series too short: need > {self.p + self.d + 2} points, got {y.size}"
            )
        self._history = y.copy()
        k = self.p + 1
        self._XtX = np.zeros((k, k))
        self._Xty = np.zeros(k)
        self._n_rows = 0
        z, _ = _difference(y, self.d)
        self._accumulate(z)
        self._solve()
        return self

    def update(self, new_points: np.ndarray) -> "ARIMAForecaster":
        """Extend the series and refit from the running moments.

        Appends ``new_points`` to the history, accumulates only the lag
        rows they introduce into ``X'X`` / ``X'y``, and re-solves — an
        O(len(new_points) · p²) operation that yields coefficients
        bit-identical to a scratch :meth:`fit` on the full series.
        """
        if self.coef_ is None or self._history is None:
            raise RuntimeError("model not fitted; call fit() before update()")
        new_points = np.asarray(new_points, dtype=float)
        if new_points.ndim != 1:
            raise ValueError("new_points must be 1-D")
        if new_points.size == 0:
            return self
        self._history = np.concatenate([self._history, new_points])
        # Differencing is local, so old z values are unchanged by the
        # append; only the rows past ``_n_rows`` are new.
        z, _ = _difference(self._history, self.d)
        self._accumulate(z)
        self._solve()
        return self

    # ------------------------------------------------------------------
    def _accumulate(self, z: np.ndarray) -> None:
        """Add lag rows ``[_n_rows, z.size - p)`` into the moments.

        Rows are added one at a time in series order: strictly sequential
        floating-point accumulation is what makes an interrupted fit
        (fit + updates) bit-exact with a batch fit over the same data.
        """
        p = self.p
        n_rows = z.size - p
        row = np.empty(p + 1)
        row[0] = 1.0
        outer = np.empty((p + 1, p + 1))
        for i in range(self._n_rows, n_rows):
            row[1:] = z[i : i + p][::-1]  # most recent lag first
            np.outer(row, row, out=outer)
            self._XtX += outer
            self._Xty += row * z[i + p]
        self._n_rows = max(self._n_rows, n_rows)

    def _solve(self) -> None:
        """Least-squares coefficients from the accumulated moments.

        ``pinv(X'X) @ X'y`` equals the minimum-norm ``lstsq`` solution
        (Moore-Penrose identity), so degenerate lag matrices — e.g. a
        constant differenced series — stay well-defined.
        """
        beta = np.linalg.pinv(self._XtX) @ self._Xty
        self.intercept_ = float(beta[0])
        self.coef_ = beta[1:]

    def forecast(self, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast continuing the fitted series."""
        if self.coef_ is None or self._history is None:
            raise RuntimeError("model not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        z, tails = _difference(self._history, self.d)
        p = self.p
        # One preallocated rolling buffer: [last p observations | forecasts].
        buf = np.empty(p + horizon)
        buf[:p] = z[-p:]
        coef_oldest_first = self.coef_[::-1]
        for h in range(horizon):
            buf[p + h] = self.intercept_ + buf[h : h + p] @ coef_oldest_first
        return _undifference(buf[p:], tails)
