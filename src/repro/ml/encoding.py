"""Feature encoders for the QSSF duration model.

§4.2.2: "we encode all the category features (e.g., user name, VC name,
job name) ... For the time-related features (e.g., job submission time),
we parse them into several time attributes, such as month, day of the
week, hour, minute."
"""

from __future__ import annotations

import numpy as np

__all__ = ["OrdinalEncoder", "FrequencyEncoder", "time_features", "TIME_FEATURE_NAMES"]


class OrdinalEncoder:
    """Map category values to dense integer codes; unseen -> -1.

    Codes are assigned by first-seen order during ``fit`` so encodings are
    deterministic for a deterministic input stream.
    """

    def __init__(self) -> None:
        self.mapping_: dict = {}

    def fit(self, values: np.ndarray) -> "OrdinalEncoder":
        for v in np.asarray(values).tolist():
            if v not in self.mapping_:
                self.mapping_[v] = len(self.mapping_)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        m = self.mapping_
        return np.asarray([m.get(v, -1) for v in np.asarray(values).tolist()], dtype=np.int64)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    @property
    def n_categories(self) -> int:
        return len(self.mapping_)


class FrequencyEncoder:
    """Replace each category with its training-set relative frequency.

    Gives the GBDT an informative numeric signal for high-cardinality
    features (users with many jobs behave differently from rare users).
    Unseen categories encode to 0.
    """

    def __init__(self) -> None:
        self.freq_: dict = {}

    def fit(self, values: np.ndarray) -> "FrequencyEncoder":
        arr = np.asarray(values)
        uniq, counts = np.unique(arr, return_counts=True)
        total = float(arr.shape[0]) or 1.0
        self.freq_ = {v: c / total for v, c in zip(uniq.tolist(), counts.tolist())}
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        f = self.freq_
        return np.asarray([f.get(v, 0.0) for v in np.asarray(values).tolist()])

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


TIME_FEATURE_NAMES = ("month", "day", "weekday", "hour", "minute")


def time_features(epoch_seconds: np.ndarray) -> np.ndarray:
    """Decompose epoch timestamps into calendar attributes.

    Returns an ``(n, 5)`` array of ``(month, day-of-month, weekday, hour,
    minute)``.  The trace generator emits epochs aligned to local midnight
    of day 0, so plain integer arithmetic with a fixed 30-day month
    convention is used for month/day (the learner only needs consistent,
    monotone encodings — not civil-calendar exactness).
    """
    t = np.asarray(epoch_seconds, dtype=np.int64)
    day_index = t // 86_400
    month = (day_index // 30).astype(np.int64)
    day = (day_index % 30).astype(np.int64)
    weekday = (day_index % 7).astype(np.int64)
    hour = (t // 3_600) % 24
    minute = (t // 60) % 60
    return np.stack([month, day, weekday, hour, minute], axis=1)
