"""Holt-Winters additive exponential smoothing (level/trend/season).

Classical seasonal smoother included in the CES forecaster comparison;
parameters are chosen by a coarse grid search on in-sample one-step MSE
when not given explicitly.

Smoothing state is carried forward by
:meth:`HoltWintersForecaster.update`: appending ``step`` points advances
the level/trend/season recursion in O(step), keeping the smoothing
parameters selected by the initial fit — the warm path of the
incremental rolling-origin evaluation engine.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["HoltWintersForecaster"]


class HoltWintersForecaster:
    """Additive Holt-Winters with optional parameter grid search."""

    def __init__(
        self,
        season_length: int = 24,
        alpha: float | None = None,
        beta: float | None = None,
        gamma: float | None = None,
    ) -> None:
        if season_length < 2:
            raise ValueError("season_length must be >= 2")
        self.season_length = season_length
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._level: float = 0.0
        self._trend: float = 0.0
        self._season: np.ndarray | None = None
        self._n: int = 0
        self.params_: tuple[float, float, float] | None = None

    # ------------------------------------------------------------------
    def _run(
        self, y: np.ndarray, alpha: float, beta: float, gamma: float
    ) -> tuple[float, float, np.ndarray, float]:
        """One smoothing pass; returns final state + one-step-ahead MSE."""
        m = self.season_length
        level = float(y[:m].mean())
        trend = float((y[m : 2 * m].mean() - y[:m].mean()) / m) if y.size >= 2 * m else 0.0
        season = y[:m] - level
        sse = 0.0
        count = 0
        for t in range(m, y.size):
            s_idx = t % m
            pred = level + trend + season[s_idx]
            err = y[t] - pred
            sse += err * err
            count += 1
            new_level = alpha * (y[t] - season[s_idx]) + (1 - alpha) * (level + trend)
            trend = beta * (new_level - level) + (1 - beta) * trend
            season[s_idx] = gamma * (y[t] - new_level) + (1 - gamma) * season[s_idx]
            level = new_level
        mse = sse / max(count, 1)
        return level, trend, season, mse

    def fit(self, y: np.ndarray) -> "HoltWintersForecaster":
        y = np.asarray(y, dtype=float)
        if y.ndim != 1:
            raise ValueError("y must be 1-D")
        if y.size < 2 * self.season_length:
            raise ValueError(
                f"series too short: need >= {2 * self.season_length}, got {y.size}"
            )
        if None not in (self.alpha, self.beta, self.gamma):
            grid = [(self.alpha, self.beta, self.gamma)]
        else:
            values = (0.05, 0.2, 0.5, 0.8)
            grid = list(itertools.product(values, (0.01, 0.1), (0.05, 0.2, 0.5)))
        best = (np.inf, None)
        for a, b, g in grid:
            *_, mse = self._run(y.copy(), a, b, g)
            if mse < best[0]:
                best = (mse, (a, b, g))
        assert best[1] is not None
        a, b, g = best[1]
        self.params_ = (a, b, g)
        self._level, self._trend, self._season, _ = self._run(y.copy(), a, b, g)
        self._n = y.size
        return self

    def update(self, new_points: np.ndarray) -> "HoltWintersForecaster":
        """Advance the smoothing recursion over appended points.

        Runs the same level/trend/season updates :meth:`fit` ran, starting
        from the stored state and keeping the smoothing parameters chosen
        by the initial grid search — O(len(new_points)) per call.  The
        result is exactly what a scratch fit with the same parameters on
        the concatenated series would produce.
        """
        if self._season is None or self.params_ is None:
            raise RuntimeError("model not fitted; call fit() before update()")
        y = np.asarray(new_points, dtype=float)
        if y.ndim != 1:
            raise ValueError("new_points must be 1-D")
        a, b, g = self.params_
        m = self.season_length
        level, trend, season = self._level, self._trend, self._season
        for j in range(y.size):
            s_idx = (self._n + j) % m
            new_level = a * (y[j] - season[s_idx]) + (1 - a) * (level + trend)
            trend = b * (new_level - level) + (1 - b) * trend
            season[s_idx] = g * (y[j] - new_level) + (1 - g) * season[s_idx]
            level = new_level
        self._level, self._trend = level, trend
        self._n += y.size
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._season is None:
            raise RuntimeError("model not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        m = self.season_length
        h = np.arange(1, horizon + 1)
        season_idx = (self._n + np.arange(horizon)) % m
        return self._level + self._trend * h + self._season[season_idx]
