"""Job placement policies.

The paper's default is *ConsolidateAllocate* (§4.2.2): pack each job onto
as few nodes as possible to minimize communication overhead.  A 16-GPU
job on 8-GPU nodes must wait for two fully-idle nodes; a 4-GPU job takes
the best-fitting partially-free node.

Admission is gated on the VC's maintained free-level counters
(:attr:`~repro.sim.cluster.VCState.level_counts`): whether a placement
exists — and at which free level the best-fit remainder lands — is an
O(gpus_per_node) counter lookup, so a *failed* attempt (the common case
for a blocked head-of-line queue) never scans the per-node ``free``
array.  Only a successful placement pays the O(nodes) index scan.
"""

from __future__ import annotations

import numpy as np

from .cluster import VCState

__all__ = ["consolidate_place", "best_fit_level", "can_place"]

_EMPTY = np.empty(0, dtype=np.int64)


def best_fit_level(level_counts: list[int], full: int, rem: int, gpn: int) -> int:
    """Best-fit free level for the ``rem`` remainder, or -1 if infeasible.

    ``level_counts[l]`` counts nodes with exactly ``l`` free GPUs; the
    ``full`` nodes claimed whole are excluded from level ``gpn``.
    Returns 0 when ``rem == 0`` (nothing to place).

    The fast engine's ``place()`` (:mod:`repro.sim.fast`) *inlines* this
    same level search rather than calling it — a per-attempt function
    call is precisely what its hot loop avoids.  Keep the two in
    lockstep when changing the predicate; the parity suite
    (``tests/test_sim_parity.py``) is the guard.
    """
    if rem == 0:
        return 0
    for level in range(rem, gpn):
        if level_counts[level] > 0:
            return level
    if level_counts[gpn] - full > 0:
        return gpn
    return -1


def consolidate_place(
    vc: VCState, gpu_num: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Find a consolidated placement for ``gpu_num`` GPUs in ``vc``.

    Returns ``(local_node_indices, gpus_per_chosen_node)`` or ``None`` if
    the job cannot be placed right now.  Placement rules:

    * ``gpu_num // gpus_per_node`` fully-idle nodes for the whole part;
    * the remainder goes to the partially-free node with the *least*
      free GPUs that still fits (best fit → least fragmentation).
    """
    if gpu_num <= 0:
        raise ValueError("gpu_num must be positive for placement")
    gpn = vc.gpus_per_node
    full, rem = divmod(gpu_num, gpn)
    counts = vc.level_counts

    # O(gpn) admission gate: no free-array scan on failure.
    if full > 0 and counts[gpn] < full:
        return None
    level = best_fit_level(counts, full, rem, gpn)
    if level < 0:
        return None

    free = vc.free
    full_idx = _EMPTY
    if full > 0:
        fully_free = np.flatnonzero(free == gpn)
        full_idx = fully_free[:full]

    if rem == 0:
        return full_idx, np.full(len(full_idx), gpn, dtype=np.int64)

    # Best-fit node for the remainder: the first node sitting at the
    # gate-computed level (excluding the nodes claimed whole, which is
    # only possible when the level is gpn itself).
    if level == gpn:
        best = fully_free[full] if full > 0 else int(np.argmax(free == gpn))
    else:
        best = int(np.argmax(free == level))
    nodes = np.concatenate([full_idx, [best]])
    gpus = np.concatenate([np.full(len(full_idx), gpn, dtype=np.int64), [rem]])
    return nodes, gpus


def can_place(vc: VCState, gpu_num: int) -> bool:
    """Whether a consolidated placement currently exists (no side effects)."""
    if gpu_num <= 0:
        raise ValueError("gpu_num must be positive for placement")
    full, rem = divmod(gpu_num, vc.gpus_per_node)
    counts = vc.level_counts
    if full > 0 and counts[vc.gpus_per_node] < full:
        return False
    return best_fit_level(counts, full, rem, vc.gpus_per_node) >= 0
