"""Job placement policies.

The paper's default is *ConsolidateAllocate* (§4.2.2): pack each job onto
as few nodes as possible to minimize communication overhead.  A 16-GPU
job on 8-GPU nodes must wait for two fully-idle nodes; a 4-GPU job takes
the best-fitting partially-free node.
"""

from __future__ import annotations

import numpy as np

from .cluster import VCState

__all__ = ["consolidate_place", "can_place"]


def consolidate_place(
    vc: VCState, gpu_num: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Find a consolidated placement for ``gpu_num`` GPUs in ``vc``.

    Returns ``(local_node_indices, gpus_per_chosen_node)`` or ``None`` if
    the job cannot be placed right now.  Placement rules:

    * ``gpu_num // gpus_per_node`` fully-idle nodes for the whole part;
    * the remainder goes to the partially-free node with the *least*
      free GPUs that still fits (best fit → least fragmentation).
    """
    if gpu_num <= 0:
        raise ValueError("gpu_num must be positive for placement")
    gpn = vc.gpus_per_node
    full, rem = divmod(gpu_num, gpn)
    free = vc.free

    full_idx = np.empty(0, dtype=np.int64)
    if full > 0:
        fully_free = np.flatnonzero(free == gpn)
        if len(fully_free) < full:
            return None
        full_idx = fully_free[:full]

    if rem == 0:
        return full_idx, np.full(len(full_idx), gpn, dtype=np.int64)

    # Best-fit node for the remainder, excluding the chosen full nodes.
    fits = free >= rem
    if full > 0:
        fits[full_idx] = False
    candidates = np.flatnonzero(fits)
    if len(candidates) == 0:
        return None
    best = candidates[np.argmin(free[candidates])]
    nodes = np.concatenate([full_idx, [best]])
    gpus = np.concatenate([np.full(len(full_idx), gpn, dtype=np.int64), [rem]])
    return nodes, gpus


def can_place(vc: VCState, gpu_num: int) -> bool:
    """Whether a consolidated placement currently exists (no side effects)."""
    return consolidate_place(vc, gpu_num) is not None
