"""Runtime cluster state: per-VC node-level GPU accounting.

Helios VCs are hard partitions — nodes belong to exactly one VC and jobs
never cross VCs (§2.1) — so each :class:`VCState` owns a disjoint slice
of globally-indexed nodes.  GPU allocation is exclusive (no sharing) and
gang-scheduled: a job acquires all its GPUs at once or not at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.cluster import ClusterSpec

__all__ = ["Allocation", "VCState", "ClusterState"]


@dataclass(frozen=True)
class Allocation:
    """GPUs held by one job: parallel arrays of node ids and GPU counts."""

    vc: str
    node_ids: np.ndarray  # global node indices
    gpus: np.ndarray      # GPUs taken on each node

    @property
    def total_gpus(self) -> int:
        return int(self.gpus.sum())

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)


class VCState:
    """Free-GPU ledger for one VC's nodes.

    Besides the per-node ``free`` array, the state maintains incremental
    *free-level counters*: ``level_counts[l]`` is the number of nodes
    with exactly ``l`` free GPUs.  They turn the placement admission
    check ("are there ``k`` fully-idle nodes plus a best-fit node for
    the remainder?") into an O(gpus_per_node) counter lookup instead of
    an O(nodes) scan per attempt — the common case in a head-of-line
    event loop is a *failed* attempt, which now never touches ``free``.
    ``free_gpus`` is likewise an O(1) maintained total.
    """

    def __init__(self, name: str, node_ids: np.ndarray, gpus_per_node: int) -> None:
        self.name = name
        self.node_ids = np.asarray(node_ids, dtype=np.int64)
        self.gpus_per_node = gpus_per_node
        self.free = np.full(len(node_ids), gpus_per_node, dtype=np.int64)
        #: level_counts[l] == number of nodes with exactly l free GPUs
        self.level_counts = [0] * gpus_per_node + [len(node_ids)]
        self._free_gpus = len(node_ids) * gpus_per_node

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def free_gpus(self) -> int:
        return self._free_gpus

    @property
    def busy_gpus(self) -> int:
        return self.total_gpus - self.free_gpus

    def take(self, local_nodes: np.ndarray, gpus: np.ndarray) -> Allocation:
        """Claim GPUs on (distinct) local node indices; returns the
        allocation."""
        gpus = np.asarray(gpus, dtype=np.int64)
        if np.any(self.free[local_nodes] < gpus):
            raise RuntimeError(f"over-allocation in VC {self.name}")
        free = self.free
        counts = self.level_counts
        for i, g in zip(np.asarray(local_nodes).tolist(), gpus.tolist()):
            f = int(free[i])
            counts[f] -= 1
            counts[f - g] += 1
            free[i] = f - g
            self._free_gpus -= g
        return Allocation(
            vc=self.name,
            node_ids=self.node_ids[local_nodes].copy(),
            gpus=gpus.copy(),
        )

    def release(self, alloc: Allocation) -> None:
        """Return an allocation's GPUs to the free pool.

        GPUs released onto a *failed* node update its encoded free level
        only — the node stays blacklisted, its capacity out of the pool,
        until :meth:`restore_node` brings it back.
        """
        # Map global node ids back to local indices (VC nodes are few).
        local = np.searchsorted(self.node_ids, alloc.node_ids)
        if np.any(self.node_ids[local] != alloc.node_ids):
            raise RuntimeError("allocation does not belong to this VC")
        free = self.free
        counts = self.level_counts
        gpn = self.gpus_per_node
        for i, g in zip(local.tolist(), alloc.gpus.tolist()):
            f = int(free[i])
            if f < 0:
                # Down node: -1 - true_free encoding; just track the level.
                if (-1 - f) + g > gpn:
                    raise RuntimeError(f"double free in VC {self.name}")
                free[i] = f - g  # -1 - (true_free + g)
                continue
            if f + g > gpn:
                raise RuntimeError(f"double free in VC {self.name}")
            counts[f] -= 1
            counts[f + g] += 1
            free[i] = f + g
            self._free_gpus += g

    def fail_node(self, local: int) -> None:
        """Blacklist a node: no new placements; running jobs keep their
        GPUs and drain to completion.

        The node's free level is encoded as ``-1 - true_free`` so the
        placement scans (which match exact non-negative levels) can
        never pick it, and its free GPUs leave the counters/pool.
        """
        f = int(self.free[local])
        if f < 0:
            raise RuntimeError(
                f"node {int(self.node_ids[local])} in VC {self.name} is already down"
            )
        self.level_counts[f] -= 1
        self._free_gpus -= f
        self.free[local] = -1 - f

    def restore_node(self, local: int) -> None:
        """Bring a failed node back: its (possibly drained-into) free
        GPUs rejoin the counters and the pool."""
        encoded = int(self.free[local])
        if encoded >= 0:
            raise RuntimeError(
                f"node {int(self.node_ids[local])} in VC {self.name} is already up"
            )
        f = -1 - encoded
        self.level_counts[f] += 1
        self._free_gpus += f
        self.free[local] = f


class ClusterState:
    """All VC states of one cluster, with a global node index space."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.vcs: dict[str, VCState] = {}
        next_node = 0
        for vc in spec.vcs:
            ids = np.arange(next_node, next_node + vc.num_nodes)
            self.vcs[vc.name] = VCState(vc.name, ids, vc.gpus_per_node)
            next_node += vc.num_nodes
        self.num_nodes = next_node

    def vc(self, name: str) -> VCState:
        try:
            return self.vcs[name]
        except KeyError:
            raise KeyError(f"unknown VC {name!r}") from None

    @property
    def total_gpus(self) -> int:
        return sum(vc.total_gpus for vc in self.vcs.values())

    @property
    def busy_gpus(self) -> int:
        return sum(vc.busy_gpus for vc in self.vcs.values())

    def utilization(self) -> float:
        """Instantaneous cluster utilization = busy GPUs / total GPUs."""
        total = self.total_gpus
        return self.busy_gpus / total if total else 0.0
