"""Array-backed replay core (the ``mode="fast"`` engine).

Same discrete-event semantics as the reference loop in
:mod:`repro.sim.engine` — byte-identical :class:`ReplayResult` payloads,
asserted by the parity suite — but organised for throughput:

* **Struct-of-arrays job state.**  ``submit / duration / remaining /
  priority / start / end / run_started / epoch / preemptions`` live in
  flat per-field arrays (numpy at the boundary, Python scalar storage
  inside the loop) instead of one heap-allocated ``SimJob`` per job.
* **Integer-interned VCs.**  Jobs carry a VC *index*; per-VC state is a
  list indexed by it — no string hashing per event.
* **O(1) admission gate.**  Each VC maintains free-level counters
  (how many nodes sit at each free-GPU level), so a failed placement
  attempt — the common case for a blocked head-of-line queue — is a
  counter lookup.  Only a successful placement scans for node indices.
* **Finish-only event heap + presorted arrivals.**  Arrivals are known
  upfront; they are merged from a sorted array, so the heap holds only
  in-flight finish events (half the pushes, much smaller heap).
* **Batched same-timestamp admission.**  A burst of same-instant
  arrivals into a blocked VC re-checks the stalled head once (O(1))
  instead of re-scanning placement per arrival; the stall memo is
  invalidated whenever the VC frees capacity.
* **Preallocated telemetry buffers.**  Node-interval segments append
  into grow-by-doubling flat arrays instead of a list of tuples that is
  re-concatenated at the end.

The reference loop remains the correctness oracle; keep the two in
lockstep when touching event semantics.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..frame import Table
from ..traces.cluster import ClusterSpec

__all__ = ["IntervalBuffer", "replay_fast"]


class IntervalBuffer:
    """Grow-by-doubling columnar store for executed node segments."""

    def __init__(self, capacity: int = 1024) -> None:
        self._node = np.empty(capacity, dtype=np.int64)
        self._start = np.empty(capacity, dtype=np.float64)
        self._end = np.empty(capacity, dtype=np.float64)
        self._gpus = np.empty(capacity, dtype=np.int64)
        self.n = 0

    def _grow(self, need: int) -> None:
        cap = len(self._node)
        while cap < need:
            cap *= 2
        for name in ("_node", "_start", "_end", "_gpus"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self.n] = old[: self.n]
            setattr(self, name, new)

    def append(self, node: int, start: float, end: float, gpus: int) -> None:
        i = self.n
        if i == len(self._node):
            self._grow(i + 1)
        self._node[i] = node
        self._start[i] = start
        self._end[i] = end
        self._gpus[i] = gpus
        self.n = i + 1

    def table(self) -> Table:
        n = self.n
        return Table(
            {
                "node": self._node[:n].copy(),
                "start": self._start[:n].copy(),
                "end": self._end[:n].copy(),
                "gpus": self._gpus[:n].copy(),
            }
        )


def replay_fast(
    spec: ClusterSpec,
    trace: Table,
    priorities: np.ndarray,
    preemptive: bool,
    collect: bool,
    node_events=None,
):
    """Run the fast event loop; returns the raw state the caller wraps
    into a :class:`~repro.sim.engine.ReplayResult`.

    Returns ``(start, end, preemptions, intervals_table, num_nodes,
    total_gpus)`` where the first three are Python lists in trace row
    order (the SoA state, handed back for the result arrays).

    ``node_events`` is the *normalized* output of
    :func:`repro.sim.engine.normalize_node_events` — ``(time, vc_index,
    local_node, up)`` tuples in processing order.  A down node's free
    level is encoded as ``-1 - true_free`` so the exact-level placement
    scans can never match it; its free GPUs leave the counters/pool
    until the matching up event.
    """
    n = len(trace)

    # -- SoA job state (one flat array per field, no per-job objects) --
    submit = trace["submit_time"].astype(float).tolist()
    gpu_num = trace["gpu_num"].astype(np.int64).tolist()
    remaining = trace["duration"].astype(float).tolist()
    priority = np.asarray(priorities, dtype=float).tolist()
    start = [-1.0] * n
    end = [float("nan")] * n
    run_started = [float("nan")] * n
    epoch = [0] * n
    preempt = [0] * n

    # -- integer-interned VCs + per-VC state ---------------------------
    vc_index = {vc.name: k for k, vc in enumerate(spec.vcs)}
    names = trace["vc"].tolist() if n else []
    vc_id = [vc_index[v] for v in names]

    n_vcs = len(spec.vcs)
    gpn = [vc.gpus_per_node for vc in spec.vcs]
    free: list[list[int]] = []      # per-VC free GPUs per node
    counts: list[list[int]] = []    # per-VC free-level counters
    free_gpus = [0] * n_vcs
    base = [0] * n_vcs              # global node-id offset per VC
    next_node = 0
    for k, vc in enumerate(spec.vcs):
        free.append([vc.gpus_per_node] * vc.num_nodes)
        counts.append([0] * vc.gpus_per_node + [vc.num_nodes])
        free_gpus[k] = vc.num_nodes * vc.gpus_per_node
        base[k] = next_node
        next_node += vc.num_nodes
    num_nodes = next_node
    total_gpus = sum(vc.num_nodes * vc.gpus_per_node for vc in spec.vcs)

    queues: list[list] = [[] for _ in range(n_vcs)]
    #: jidx -> (local_nodes, gpus) — insertion-ordered like the
    #: reference's running dict (victim scan order depends on it)
    running: list[dict[int, tuple[list[int], list[int]]]] = [
        {} for _ in range(n_vcs)
    ]
    #: head jidx known not to fit given the VC's current free state
    stalled = [-1] * n_vcs

    intervals = IntervalBuffer() if collect else None

    # -- event sources: presorted arrivals + finish-only heap ----------
    arrivals = np.argsort(
        trace["submit_time"].astype(float), kind="stable"
    ).tolist()
    fheap: list[tuple[float, int, int, int]] = []  # (end, seq, jidx, epoch)
    heappush = heapq.heappush
    heappop = heapq.heappop

    seq = n
    qseq = 0

    def place(k: int, need: int):
        """Counter-gated consolidated placement.

        Inlines :func:`repro.sim.placement.best_fit_level` plus the node
        index scans — one semantics, two copies kept in lockstep by the
        parity suite (calling out per attempt is what this loop avoids).
        """
        g = gpn[k]
        full = need // g
        rem = need - full * g
        cnt = counts[k]
        if full and cnt[g] < full:
            return None
        level = 0
        if rem:
            level = -1
            for lv in range(rem, g):
                if cnt[lv] > 0:
                    level = lv
                    break
            else:
                if cnt[g] - full > 0:
                    level = g
            if level < 0:
                return None
        # Success: scan for concrete node indices (rare vs attempts).
        fr = free[k]
        nodes: list[int] = []
        if full:
            found = 0
            for i, f in enumerate(fr):
                if f == g:
                    nodes.append(i)
                    found += 1
                    if found == full:
                        break
        gpus = [g] * len(nodes)
        if rem:
            if level == g:
                skip = full
                for i, f in enumerate(fr):
                    if f == g:
                        if skip:
                            skip -= 1
                            continue
                        nodes.append(i)
                        break
            else:
                nodes.append(fr.index(level))
            gpus.append(rem)
        return nodes, gpus

    def start_job(j: int, now: float, placed) -> None:
        nonlocal seq
        k = vc_id[j]
        nodes, gpus = placed
        fr = free[k]
        cnt = counts[k]
        for i, g in zip(nodes, gpus):
            f = fr[i]
            cnt[f] -= 1
            cnt[f - g] += 1
            fr[i] = f - g
            free_gpus[k] -= g
        if start[j] < 0:
            start[j] = now
        run_started[j] = now
        e = now + remaining[j]
        end[j] = e
        ep = epoch[j] + 1
        epoch[j] = ep
        running[k][j] = (nodes, gpus)
        heappush(fheap, (e, seq, j, ep))
        seq += 1

    def release_job(j: int, now: float) -> None:
        """Free the job's GPUs and log the executed segment."""
        k = vc_id[j]
        nodes, gpus = running[k].pop(j)
        fr = free[k]
        cnt = counts[k]
        for i, g in zip(nodes, gpus):
            f = fr[i]
            if f < 0:
                # Node failed while the job ran: GPUs return to the node's
                # encoded level only, never the pool (-1-(t+g) == f-g).
                fr[i] = f - g
                continue
            cnt[f] -= 1
            cnt[f + g] += 1
            fr[i] = f + g
            free_gpus[k] += g
        stalled[k] = -1  # capacity freed: a stalled head may fit now
        rs = run_started[j]
        if intervals is not None and now > rs:
            b = base[k]
            for i, g in zip(nodes, gpus):
                intervals.append(b + i, rs, now, g)

    def try_preempt(j: int, now: float) -> bool:
        """SRTF: evict longest-remaining running jobs to fit ``j``."""
        nonlocal qseq
        k = vc_id[j]
        rem_j = remaining[j]
        victims = sorted(
            (v for v in running[k] if (end[v] - now) > rem_j),
            key=lambda v: end[v] - now,
            reverse=True,
        )
        needed = gpu_num[j] - free_gpus[k]
        freed = 0
        chosen: list[int] = []
        for v in victims:
            if freed >= needed:
                break
            chosen.append(v)
            alloc = running[k][v]
            freed += sum(alloc[1])
        if freed < needed:
            return False
        q = queues[k]
        for v in chosen:
            r = end[v] - now
            remaining[v] = r if r > 0.0 else 0.0
            epoch[v] += 1  # invalidate the in-flight finish event
            release_job(v, now)
            preempt[v] += 1
            heappush(q, (remaining[v], qseq, v))
            qseq += 1
        return True

    def drain_vc(k: int, now: float) -> None:
        """Head-of-line scheduling for one VC queue."""
        q = queues[k]
        while q:
            j = q[0][2]
            if j == stalled[k]:
                return  # same blocked head, no capacity freed since
            placed = place(k, gpu_num[j])
            if placed is None:
                if not (preemptive and try_preempt(j, now)):
                    stalled[k] = j
                    break
                placed = place(k, gpu_num[j])
                if placed is None:
                    break  # fragmentation: freed GPUs not consolidatable
            heappop(q)
            start_job(j, now, placed)

    def fail_node(k: int, i: int) -> None:
        fr = free[k]
        f = fr[i]
        counts[k][f] -= 1
        free_gpus[k] -= f
        fr[i] = -1 - f

    def restore_node(k: int, i: int, now: float) -> None:
        fr = free[k]
        f = -1 - fr[i]
        counts[k][f] += 1
        free_gpus[k] += f
        fr[i] = f
        stalled[k] = -1  # returned capacity: a stalled head may fit now
        drain_vc(k, now)

    # -- the loop: merged finish-heap / arrival-array event stream -----
    ai = 0
    if not node_events:
        # Hot path: two-way merge, no per-iteration node-event checks.
        while ai < n or fheap:
            if fheap and (ai >= n or fheap[0][0] <= submit[arrivals[ai]]):
                now, _, j, ep = heappop(fheap)
                k = vc_id[j]
                if ep != epoch[j] or j not in running[k]:
                    continue  # stale event from a preempted run
                remaining[j] = 0.0
                release_job(j, now)
                drain_vc(k, now)
            else:
                j = arrivals[ai]
                ai += 1
                now = submit[j]
                k = vc_id[j]
                heappush(queues[k], (priority[j], qseq, j))
                qseq += 1
                drain_vc(k, now)
    else:
        # Three-way merge; same-instant order matches the reference
        # heap ranks: finish < node event < arrival.
        ev = node_events
        n_ev = len(ev)
        ei = 0
        inf = float("inf")
        while ai < n or ei < n_ev or fheap:
            t_f = fheap[0][0] if fheap else inf
            t_e = ev[ei][0] if ei < n_ev else inf
            t_a = submit[arrivals[ai]] if ai < n else inf
            if t_f <= t_e and t_f <= t_a:
                now, _, j, ep = heappop(fheap)
                k = vc_id[j]
                if ep != epoch[j] or j not in running[k]:
                    continue  # stale event from a preempted run
                remaining[j] = 0.0
                release_job(j, now)
                drain_vc(k, now)
            elif t_e <= t_a:
                now, k, local, up = ev[ei]
                ei += 1
                if up:
                    restore_node(k, local, now)
                else:
                    fail_node(k, local)
            else:
                j = arrivals[ai]
                ai += 1
                now = submit[j]
                k = vc_id[j]
                heappush(queues[k], (priority[j], qseq, j))
                qseq += 1
                drain_vc(k, now)

    itable = (
        intervals.table()
        if intervals is not None
        else Table(
            {
                "node": np.empty(0, dtype=np.int64),
                "start": np.empty(0),
                "end": np.empty(0),
                "gpus": np.empty(0, dtype=np.int64),
            }
        )
    )
    return start, end, preempt, itable, num_nodes, total_gpus
