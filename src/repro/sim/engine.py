"""Trace-driven discrete-event simulator.

Replays a job trace through a cluster under a scheduling policy,
following the paper's workflow: arrival → VC queue → gang-scheduled
placement → run to the recorded duration (completion/cancel/failure all
consume their logged runtime).  Preemption is supported only for the
SRTF oracle baseline; Helios itself does not preempt (§2.1).

Event loop invariants:

* every VC has an independent priority queue (VCQueue, §2.1) keyed by
  ``(priority, arrival_seq)`` — lower priority value runs first;
* scheduling is head-of-line: if the best-priority job does not fit,
  the VC waits (no backfill — the paper evaluates prediction alone);
* finishes are processed before arrivals at the same instant so freed
  resources are visible immediately.

Two engines implement those semantics:

* ``mode="fast"`` (default) — the array-backed core in
  :mod:`repro.sim.fast`: struct-of-arrays job state, integer-interned
  VCs, counter-gated O(1) admission, a finish-only event heap, and
  preallocated telemetry buffers.
* ``mode="reference"`` — the original per-job object loop below, kept
  as the correctness oracle.  The fast path must produce byte-identical
  :class:`ReplayResult` payloads (the parity suite asserts this on all
  Helios clusters plus Philly, preemptive SRTF included).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace

import numpy as np

from ..frame import Table
from ..traces.cluster import ClusterSpec
from .cluster import Allocation, ClusterState
from .fast import replay_fast
from .placement import consolidate_place

__all__ = ["SimJob", "ReplayResult", "Simulator"]

_FINISH = 0  # processed before arrivals at the same time
_ARRIVAL = 1

_MODES = ("fast", "reference")


@dataclass
class SimJob:
    """Mutable per-job simulation record (reference engine only)."""

    __slots__ = (
        "idx", "vc", "gpu_num", "submit", "duration", "remaining",
        "priority", "start", "end", "run_started", "alloc", "epoch",
        "preemptions",
    )

    idx: int
    vc: str
    gpu_num: int
    submit: float
    duration: float
    remaining: float
    priority: float
    start: float
    end: float
    run_started: float
    alloc: Allocation | None
    epoch: int
    preemptions: int


@dataclass
class ReplayResult:
    """Outcome of a replay: per-job timing plus node-interval telemetry."""

    trace: Table
    start_times: np.ndarray
    end_times: np.ndarray
    queue_delays: np.ndarray
    preemptions: np.ndarray
    #: (node, start, end, gpus): one row per executed allocation segment.
    node_intervals: Table
    num_nodes: int
    total_gpus: int

    def replayed_trace(self) -> Table:
        """The input trace with start/end/queue-delay columns attached."""
        return (
            self.trace.with_column("start_time", self.start_times)
            .with_column("end_time", self.end_times)
            .with_column("queue_delay", self.queue_delays)
        )

    @property
    def jct(self) -> np.ndarray:
        """Job completion time = queueing + execution (§4.2)."""
        return self.end_times - self.trace["submit_time"]

    def restrict(self, mask: np.ndarray) -> "ReplayResult":
        """Per-job view restricted to ``mask`` rows of the trace.

        Cluster-level telemetry (``node_intervals``, node/GPU totals) is
        kept whole: it describes everything that ran, including jobs
        outside the window — exactly what a serving stream wants when it
        replays a sub-window of jobs against the *full* cluster state
        (see :meth:`repro.serve.stream.EventStream.from_replay`).
        """
        mask = np.asarray(mask)
        return replace(
            self,
            trace=self.trace.filter(mask) if mask.dtype == bool
            else self.trace.take(mask),
            start_times=self.start_times[mask],
            end_times=self.end_times[mask],
            queue_delays=self.queue_delays[mask],
            preemptions=self.preemptions[mask],
        )


class Simulator:
    """Discrete-event replay of one cluster's GPU jobs.

    Parameters
    ----------
    spec:
        Cluster topology (nodes per VC, GPUs per node).
    scheduler:
        Policy object from :mod:`repro.sched` providing ``priorities()``
        (one value per job, lower runs first) and a ``preemptive`` flag.
    collect_node_intervals:
        Record per-node busy segments (needed by telemetry/CES).
    mode:
        ``"fast"`` (default) runs the array-backed core;
        ``"reference"`` runs the original per-job loop (the oracle).
    """

    def __init__(
        self,
        spec: ClusterSpec,
        scheduler,
        collect_node_intervals: bool = True,
        mode: str = "fast",
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.spec = spec
        self.scheduler = scheduler
        self.collect_node_intervals = collect_node_intervals
        self.mode = mode

    # ------------------------------------------------------------------
    def run(self, trace: Table) -> ReplayResult:
        """Replay ``trace`` (GPU jobs only; CPU rows are rejected)."""
        if len(trace) and int(trace["gpu_num"].min()) < 1:
            raise ValueError("simulator replays GPU jobs; filter CPU jobs out first")
        self._check_capacity(trace)
        priorities = np.asarray(self.scheduler.priorities(trace), dtype=float)
        if priorities.shape != (len(trace),):
            raise ValueError("scheduler.priorities must return one value per job")
        preemptive = getattr(self.scheduler, "preemptive", False)
        if self.mode == "reference":
            return self._run_reference(trace, priorities, preemptive)
        start, end, preempt, itable, num_nodes, total_gpus = replay_fast(
            self.spec, trace, priorities, preemptive,
            self.collect_node_intervals,
        )
        return self._result(
            trace,
            np.array(start),
            np.array(end),
            np.array(preempt, dtype=np.int64),
            itable,
            num_nodes,
            total_gpus,
        )

    # ------------------------------------------------------------------
    def _run_reference(
        self, trace: Table, priorities: np.ndarray, preemptive: bool
    ) -> ReplayResult:
        state = ClusterState(self.spec)
        jobs = self._build_jobs(trace, priorities)
        n = len(jobs)

        heap: list[tuple[float, int, int, int, int]] = [
            (j.submit, _ARRIVAL, i, j.idx, 0) for i, j in enumerate(jobs)
        ]
        heapq.heapify(heap)
        seq = n

        queues: dict[str, list[tuple[float, int, int]]] = {
            vc.name: [] for vc in self.spec.vcs
        }
        running: dict[str, dict[int, SimJob]] = {vc.name: {} for vc in self.spec.vcs}
        intervals: list[tuple[np.ndarray, float, float, np.ndarray]] = []
        collect = self.collect_node_intervals

        def start_job(job: SimJob, now: float) -> None:
            nonlocal seq
            placed = consolidate_place(state.vc(job.vc), job.gpu_num)
            assert placed is not None
            nodes, gpus = placed
            job.alloc = state.vc(job.vc).take(nodes, gpus)
            if job.start < 0:
                job.start = now
            job.run_started = now
            job.end = now + job.remaining
            job.epoch += 1
            running[job.vc][job.idx] = job
            heapq.heappush(heap, (job.end, _FINISH, seq, job.idx, job.epoch))
            seq += 1

        def release_job(job: SimJob, now: float) -> None:
            """Free the job's GPUs and log the executed segment."""
            alloc = job.alloc
            assert alloc is not None
            state.vc(job.vc).release(alloc)
            if collect and now > job.run_started:
                intervals.append((alloc.node_ids, job.run_started, now, alloc.gpus))
            del running[job.vc][job.idx]
            job.alloc = None

        def try_preempt(job: SimJob, now: float) -> bool:
            """SRTF: evict longest-remaining running jobs to fit ``job``."""
            vc_state = state.vc(job.vc)
            victims = sorted(
                (v for v in running[job.vc].values() if (v.end - now) > job.remaining),
                key=lambda v: v.end - now,
                reverse=True,
            )
            needed = job.gpu_num - vc_state.free_gpus
            freed = 0
            chosen: list[SimJob] = []
            for v in victims:
                if freed >= needed:
                    break
                chosen.append(v)
                freed += v.alloc.total_gpus if v.alloc else 0
            if freed < needed:
                return False
            nonlocal qseq
            for v in chosen:
                v.remaining = max(v.end - now, 0.0)
                v.epoch += 1  # invalidate the in-flight finish event
                release_job(v, now)
                v.preemptions += 1
                heapq.heappush(queues[job.vc], (v.remaining, qseq, v.idx))
                qseq += 1
            return True

        def drain_vc(vc_name: str, now: float) -> None:
            """Head-of-line scheduling for one VC queue."""
            q = queues[vc_name]
            vc_state = state.vc(vc_name)
            while q:
                _, _, jidx = q[0]
                job = jobs[jidx]
                if consolidate_place(vc_state, job.gpu_num) is None:
                    if not (preemptive and try_preempt(job, now)):
                        break
                    if consolidate_place(vc_state, job.gpu_num) is None:
                        break  # fragmentation: freed GPUs not consolidatable
                heapq.heappop(q)
                start_job(job, now)

        qseq = 0
        while heap:
            now, kind, _, jidx, epoch = heapq.heappop(heap)
            job = jobs[jidx]
            if kind == _FINISH:
                if epoch != job.epoch or job.alloc is None:
                    continue  # stale event from a preempted run
                job.remaining = 0.0
                release_job(job, now)
                drain_vc(job.vc, now)
            else:  # arrival
                heapq.heappush(queues[job.vc], (job.priority, qseq, jidx))
                qseq += 1
                drain_vc(job.vc, now)

        if intervals:
            node_ids = np.concatenate([iv[0] for iv in intervals])
            starts = np.concatenate([np.full(len(iv[0]), iv[1]) for iv in intervals])
            ends = np.concatenate([np.full(len(iv[0]), iv[2]) for iv in intervals])
            gpus = np.concatenate([iv[3] for iv in intervals])
        else:
            node_ids = np.empty(0, dtype=np.int64)
            starts = ends = np.empty(0)
            gpus = np.empty(0, dtype=np.int64)
        return self._result(
            trace,
            np.array([j.start for j in jobs]),
            np.array([j.end for j in jobs]),
            np.array([j.preemptions for j in jobs], dtype=np.int64),
            Table({"node": node_ids, "start": starts, "end": ends, "gpus": gpus}),
            state.num_nodes,
            state.total_gpus,
        )

    # ------------------------------------------------------------------
    def _check_capacity(self, trace: Table) -> None:
        if not len(trace):
            return
        caps = {vc.name: vc.num_gpus for vc in self.spec.vcs}
        # One grouped-max pass instead of a boolean-mask scan per VC.
        uniq, inverse = np.unique(trace["vc"], return_inverse=True)
        biggest = np.zeros(len(uniq), dtype=np.int64)
        np.maximum.at(biggest, inverse, trace["gpu_num"].astype(np.int64))
        for name, demand in zip(uniq.tolist(), biggest.tolist()):
            if name not in caps:
                raise ValueError(f"trace references unknown VC {name!r}")
            if demand > caps[name]:
                raise ValueError(
                    f"job demands {demand} GPUs but VC {name} has {caps[name]}"
                )

    def _build_jobs(self, trace: Table, priorities: np.ndarray) -> list[SimJob]:
        submit = trace["submit_time"].astype(float)
        duration = trace["duration"].astype(float)
        gpus = trace["gpu_num"].astype(int)
        vcs = trace["vc"]
        return [
            SimJob(
                idx=i, vc=str(vcs[i]), gpu_num=int(gpus[i]), submit=float(submit[i]),
                duration=float(duration[i]), remaining=float(duration[i]),
                priority=float(priorities[i]), start=-1.0, end=np.nan,
                run_started=np.nan, alloc=None, epoch=0, preemptions=0,
            )
            for i in range(len(trace))
        ]

    def _result(
        self, trace, start, end, preemptions, node_intervals, num_nodes, total_gpus
    ) -> ReplayResult:
        n = len(trace)
        submit = trace["submit_time"].astype(float) if n else np.empty(0)
        if n and (np.any(start < 0) or np.any(~np.isfinite(end))):
            raise RuntimeError("some jobs never ran: trace exceeds cluster capacity")
        return ReplayResult(
            trace=trace,
            start_times=start,
            end_times=end,
            queue_delays=start - submit,
            preemptions=preemptions,
            node_intervals=node_intervals,
            num_nodes=num_nodes,
            total_gpus=total_gpus,
        )
