"""Trace-driven discrete-event simulator.

Replays a job trace through a cluster under a scheduling policy,
following the paper's workflow: arrival → VC queue → gang-scheduled
placement → run to the recorded duration (completion/cancel/failure all
consume their logged runtime).  Preemption is supported only for the
SRTF oracle baseline; Helios itself does not preempt (§2.1).

Event loop invariants:

* every VC has an independent priority queue (VCQueue, §2.1) keyed by
  ``(priority, arrival_seq)`` — lower priority value runs first;
* scheduling is head-of-line: if the best-priority job does not fit,
  the VC waits (no backfill — the paper evaluates prediction alone);
* finishes are processed before arrivals at the same instant so freed
  resources are visible immediately.

Two engines implement those semantics:

* ``mode="fast"`` (default) — the array-backed core in
  :mod:`repro.sim.fast`: struct-of-arrays job state, integer-interned
  VCs, counter-gated O(1) admission, a finish-only event heap, and
  preallocated telemetry buffers.
* ``mode="reference"`` — the original per-job object loop below, kept
  as the correctness oracle.  The fast path must produce byte-identical
  :class:`ReplayResult` payloads (the parity suite asserts this on all
  Helios clusters plus Philly, preemptive SRTF included).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, replace

import numpy as np

from ..frame import Table
from ..obs import collect as obs
from ..traces.cluster import ClusterSpec
from .cluster import Allocation, ClusterState
from .fast import replay_fast
from .placement import consolidate_place

__all__ = ["SimJob", "ReplayResult", "Simulator", "normalize_node_events"]

#: same-instant processing order: finishes free resources first, node
#: health changes next, arrivals see the settled state.
_FINISH = 0
_NODE_EVENT = 1
_ARRIVAL = 2

_MODES = ("fast", "reference")


def normalize_node_events(spec: ClusterSpec, node_events) -> list[tuple[float, int, int, int]]:
    """Validate and order node down/up events against ``spec``.

    ``node_events`` is a Table-like with columns ``time`` / ``node``
    (global node id in the :class:`ClusterState` numbering) / ``up``
    (0 = down, 1 = up).  Returns ``(time, vc_index, local_node, up)``
    tuples in stable time order.  Both engines consume this one
    normalized form, so an invalid schedule (unknown node, non-finite
    time, broken per-node down/up alternation) raises the *identical*
    error in fast and reference modes — the property the parity fuzz
    asserts.
    """
    if node_events is None or len(node_events) == 0:
        return []
    times = np.asarray(node_events["time"], dtype=float)
    nodes = np.asarray(node_events["node"], dtype=np.int64)
    ups = np.asarray(node_events["up"], dtype=np.int64)
    if not (len(times) == len(nodes) == len(ups)):
        raise ValueError("node_events time/node/up columns must align")
    if not np.all(np.isfinite(times)):
        raise ValueError("node_events times must be finite")
    num_nodes = sum(vc.num_nodes for vc in spec.vcs)
    out_of_range = (nodes < 0) | (nodes >= num_nodes)
    if np.any(out_of_range):
        bad = int(nodes[int(np.argmax(out_of_range))])
        raise ValueError(
            f"node_events references node {bad} outside [0, {num_nodes})"
        )
    if np.any((ups != 0) & (ups != 1)):
        raise ValueError("node_events 'up' column must be 0 (down) or 1 (up)")
    bounds = np.cumsum([0] + [vc.num_nodes for vc in spec.vcs])
    is_up = np.ones(num_nodes, dtype=bool)
    out: list[tuple[float, int, int, int]] = []
    for i in np.argsort(times, kind="stable").tolist():
        node = int(nodes[i])
        up = int(ups[i])
        if up and is_up[node]:
            raise ValueError(
                f"node_events: node {node} comes up at t={times[i]:g} "
                "but is not down"
            )
        if not up and not is_up[node]:
            raise ValueError(
                f"node_events: node {node} goes down at t={times[i]:g} "
                "but is already down"
            )
        is_up[node] = bool(up)
        vck = int(np.searchsorted(bounds, node, side="right") - 1)
        out.append((float(times[i]), vck, node - int(bounds[vck]), up))
    return out


@dataclass
class SimJob:
    """Mutable per-job simulation record (reference engine only)."""

    __slots__ = (
        "idx", "vc", "gpu_num", "submit", "duration", "remaining",
        "priority", "start", "end", "run_started", "alloc", "epoch",
        "preemptions",
    )

    idx: int
    vc: str
    gpu_num: int
    submit: float
    duration: float
    remaining: float
    priority: float
    start: float
    end: float
    run_started: float
    alloc: Allocation | None
    epoch: int
    preemptions: int


@dataclass
class ReplayResult:
    """Outcome of a replay: per-job timing plus node-interval telemetry."""

    trace: Table
    start_times: np.ndarray
    end_times: np.ndarray
    queue_delays: np.ndarray
    preemptions: np.ndarray
    #: (node, start, end, gpus): one row per executed allocation segment.
    node_intervals: Table
    num_nodes: int
    total_gpus: int

    def replayed_trace(self) -> Table:
        """The input trace with start/end/queue-delay columns attached."""
        return (
            self.trace.with_column("start_time", self.start_times)
            .with_column("end_time", self.end_times)
            .with_column("queue_delay", self.queue_delays)
        )

    @property
    def jct(self) -> np.ndarray:
        """Job completion time = queueing + execution (§4.2)."""
        return self.end_times - self.trace["submit_time"]

    def restrict(self, mask: np.ndarray) -> "ReplayResult":
        """Per-job view restricted to ``mask`` rows of the trace.

        Cluster-level telemetry (``node_intervals``, node/GPU totals) is
        kept whole: it describes everything that ran, including jobs
        outside the window — exactly what a serving stream wants when it
        replays a sub-window of jobs against the *full* cluster state
        (see :meth:`repro.serve.stream.EventStream.from_replay`).
        """
        mask = np.asarray(mask)
        return replace(
            self,
            trace=self.trace.filter(mask) if mask.dtype == bool
            else self.trace.take(mask),
            start_times=self.start_times[mask],
            end_times=self.end_times[mask],
            queue_delays=self.queue_delays[mask],
            preemptions=self.preemptions[mask],
        )


class Simulator:
    """Discrete-event replay of one cluster's GPU jobs.

    Parameters
    ----------
    spec:
        Cluster topology (nodes per VC, GPUs per node).
    scheduler:
        Policy object from :mod:`repro.sched` providing ``priorities()``
        (one value per job, lower runs first) and a ``preemptive`` flag.
    collect_node_intervals:
        Record per-node busy segments (needed by telemetry/CES).
    mode:
        ``"fast"`` (default) runs the array-backed core;
        ``"reference"`` runs the original per-job loop (the oracle).
    """

    def __init__(
        self,
        spec: ClusterSpec,
        scheduler,
        collect_node_intervals: bool = True,
        mode: str = "fast",
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.spec = spec
        self.scheduler = scheduler
        self.collect_node_intervals = collect_node_intervals
        self.mode = mode

    # ------------------------------------------------------------------
    def run(self, trace: Table, node_events=None) -> ReplayResult:
        """Replay ``trace`` (GPU jobs only; CPU rows are rejected).

        ``node_events`` (a time/node/up table, see
        :func:`normalize_node_events`) injects node failures: a down
        node is blacklisted for new placements while its running jobs
        drain to completion; an up event returns its capacity and
        re-drains the VC queue.
        """
        if not obs.is_enabled():
            return self._run(trace, node_events)
        t0 = time.perf_counter()
        t0_wall = obs.wall_now()
        result = self._run(trace, node_events)
        self._publish_obs(node_events, result, time.perf_counter() - t0)
        obs.record_span(
            "sim.replay", t0_wall, obs.wall_now(),
            mode=self.mode, cluster=self.spec.name, jobs=len(trace),
        )
        return result

    def _publish_obs(self, node_events, result: ReplayResult,
                     wall: float) -> None:
        """Per-replay engine metrics: throughput, queueing, node churn."""
        n = len(result.trace)
        n_node = 0 if node_events is None else len(node_events)
        sim_events = 2 * n + n_node  # one arrival + one finish per job
        obs.counter_add("sim.jobs", n)
        obs.counter_add("sim.events", sim_events)
        obs.counter_add("sim.preemptions", int(result.preemptions.sum()))
        if n_node:
            ups = np.asarray(node_events["up"], dtype=np.int64)
            obs.counter_add("sim.node_up", int((ups == 1).sum()))
            obs.counter_add("sim.node_down", int((ups == 0).sum()))
        if wall > 0:
            obs.gauge_set(f"sim.events_per_s.{self.mode}",
                          round(sim_events / wall, 1))
        # Queueing delays reach days, not milliseconds: span 1 ms – 1e6 s.
        obs.histogram("sim.queue_delay_s", lo=1e-3, decades=9).record_many(
            result.queue_delays
        )
        if n:
            # Queue depth sampled at each submit: +1 at submit, -1 at
            # start, cumulative-summed in time order (submits before
            # starts at ties, so a job counts itself and never yields a
            # transiently negative depth).
            submits = np.asarray(result.trace["submit_time"], dtype=float)
            times = np.concatenate([submits, result.start_times])
            delta = np.concatenate(
                [np.ones(n, dtype=np.int64), -np.ones(n, dtype=np.int64)]
            )
            order = np.lexsort((-delta, times))
            depth = np.cumsum(delta[order])
            at_submit = np.empty(2 * n, dtype=np.int64)
            at_submit[order] = np.arange(2 * n)
            obs.histogram("sim.queue_depth", lo=1.0, decades=6).record_many(
                depth[at_submit[:n]]
            )

    def _run(self, trace: Table, node_events=None) -> ReplayResult:
        if len(trace) and int(trace["gpu_num"].min()) < 1:
            raise ValueError("simulator replays GPU jobs; filter CPU jobs out first")
        self._check_capacity(trace)
        events = normalize_node_events(self.spec, node_events)
        priorities = np.asarray(self.scheduler.priorities(trace), dtype=float)
        if priorities.shape != (len(trace),):
            raise ValueError("scheduler.priorities must return one value per job")
        preemptive = getattr(self.scheduler, "preemptive", False)
        if self.mode == "reference":
            return self._run_reference(trace, priorities, preemptive, events)
        start, end, preempt, itable, num_nodes, total_gpus = replay_fast(
            self.spec, trace, priorities, preemptive,
            self.collect_node_intervals, node_events=events,
        )
        return self._result(
            trace,
            np.array(start),
            np.array(end),
            np.array(preempt, dtype=np.int64),
            itable,
            num_nodes,
            total_gpus,
        )

    # ------------------------------------------------------------------
    def _run_reference(
        self,
        trace: Table,
        priorities: np.ndarray,
        preemptive: bool,
        node_events: list[tuple[float, int, int, int]] | None = None,
    ) -> ReplayResult:
        state = ClusterState(self.spec)
        jobs = self._build_jobs(trace, priorities)
        n = len(jobs)
        node_events = node_events or []

        heap: list[tuple[float, int, int, int, int]] = [
            (j.submit, _ARRIVAL, i, j.idx, 0) for i, j in enumerate(jobs)
        ]
        # Node events ride the same heap; the idx slot indexes node_events.
        heap.extend(
            (t, _NODE_EVENT, i, i, 0) for i, (t, _, _, _) in enumerate(node_events)
        )
        heapq.heapify(heap)
        seq = n

        queues: dict[str, list[tuple[float, int, int]]] = {
            vc.name: [] for vc in self.spec.vcs
        }
        running: dict[str, dict[int, SimJob]] = {vc.name: {} for vc in self.spec.vcs}
        intervals: list[tuple[np.ndarray, float, float, np.ndarray]] = []
        collect = self.collect_node_intervals

        def start_job(job: SimJob, now: float) -> None:
            nonlocal seq
            placed = consolidate_place(state.vc(job.vc), job.gpu_num)
            assert placed is not None
            nodes, gpus = placed
            job.alloc = state.vc(job.vc).take(nodes, gpus)
            if job.start < 0:
                job.start = now
            job.run_started = now
            job.end = now + job.remaining
            job.epoch += 1
            running[job.vc][job.idx] = job
            heapq.heappush(heap, (job.end, _FINISH, seq, job.idx, job.epoch))
            seq += 1

        def release_job(job: SimJob, now: float) -> None:
            """Free the job's GPUs and log the executed segment."""
            alloc = job.alloc
            assert alloc is not None
            state.vc(job.vc).release(alloc)
            if collect and now > job.run_started:
                intervals.append((alloc.node_ids, job.run_started, now, alloc.gpus))
            del running[job.vc][job.idx]
            job.alloc = None

        def try_preempt(job: SimJob, now: float) -> bool:
            """SRTF: evict longest-remaining running jobs to fit ``job``."""
            vc_state = state.vc(job.vc)
            victims = sorted(
                (v for v in running[job.vc].values() if (v.end - now) > job.remaining),
                key=lambda v: v.end - now,
                reverse=True,
            )
            needed = job.gpu_num - vc_state.free_gpus
            freed = 0
            chosen: list[SimJob] = []
            for v in victims:
                if freed >= needed:
                    break
                chosen.append(v)
                freed += v.alloc.total_gpus if v.alloc else 0
            if freed < needed:
                return False
            nonlocal qseq
            for v in chosen:
                v.remaining = max(v.end - now, 0.0)
                v.epoch += 1  # invalidate the in-flight finish event
                release_job(v, now)
                v.preemptions += 1
                heapq.heappush(queues[job.vc], (v.remaining, qseq, v.idx))
                qseq += 1
            return True

        def drain_vc(vc_name: str, now: float) -> None:
            """Head-of-line scheduling for one VC queue."""
            q = queues[vc_name]
            vc_state = state.vc(vc_name)
            while q:
                _, _, jidx = q[0]
                job = jobs[jidx]
                if consolidate_place(vc_state, job.gpu_num) is None:
                    if not (preemptive and try_preempt(job, now)):
                        break
                    if consolidate_place(vc_state, job.gpu_num) is None:
                        break  # fragmentation: freed GPUs not consolidatable
                heapq.heappop(q)
                start_job(job, now)

        qseq = 0
        while heap:
            now, kind, _, jidx, epoch = heapq.heappop(heap)
            if kind == _NODE_EVENT:
                _, vck, local, up = node_events[jidx]
                vc_name = self.spec.vcs[vck].name
                if up:
                    state.vc(vc_name).restore_node(local)
                    drain_vc(vc_name, now)
                else:
                    state.vc(vc_name).fail_node(local)
                continue
            job = jobs[jidx]
            if kind == _FINISH:
                if epoch != job.epoch or job.alloc is None:
                    continue  # stale event from a preempted run
                job.remaining = 0.0
                release_job(job, now)
                drain_vc(job.vc, now)
            else:  # arrival
                heapq.heappush(queues[job.vc], (job.priority, qseq, jidx))
                qseq += 1
                drain_vc(job.vc, now)

        if intervals:
            node_ids = np.concatenate([iv[0] for iv in intervals])
            starts = np.concatenate([np.full(len(iv[0]), iv[1]) for iv in intervals])
            ends = np.concatenate([np.full(len(iv[0]), iv[2]) for iv in intervals])
            gpus = np.concatenate([iv[3] for iv in intervals])
        else:
            node_ids = np.empty(0, dtype=np.int64)
            starts = ends = np.empty(0)
            gpus = np.empty(0, dtype=np.int64)
        return self._result(
            trace,
            np.array([j.start for j in jobs]),
            np.array([j.end for j in jobs]),
            np.array([j.preemptions for j in jobs], dtype=np.int64),
            Table({"node": node_ids, "start": starts, "end": ends, "gpus": gpus}),
            state.num_nodes,
            state.total_gpus,
        )

    # ------------------------------------------------------------------
    def _check_capacity(self, trace: Table) -> None:
        if not len(trace):
            return
        caps = {vc.name: vc.num_gpus for vc in self.spec.vcs}
        # One grouped-max pass instead of a boolean-mask scan per VC.
        uniq, inverse = np.unique(trace["vc"], return_inverse=True)
        biggest = np.zeros(len(uniq), dtype=np.int64)
        np.maximum.at(biggest, inverse, trace["gpu_num"].astype(np.int64))
        for name, demand in zip(uniq.tolist(), biggest.tolist()):
            if name not in caps:
                raise ValueError(f"trace references unknown VC {name!r}")
            if demand > caps[name]:
                raise ValueError(
                    f"job demands {demand} GPUs but VC {name} has {caps[name]}"
                )

    def _build_jobs(self, trace: Table, priorities: np.ndarray) -> list[SimJob]:
        submit = trace["submit_time"].astype(float)
        duration = trace["duration"].astype(float)
        gpus = trace["gpu_num"].astype(int)
        vcs = trace["vc"]
        return [
            SimJob(
                idx=i, vc=str(vcs[i]), gpu_num=int(gpus[i]), submit=float(submit[i]),
                duration=float(duration[i]), remaining=float(duration[i]),
                priority=float(priorities[i]), start=-1.0, end=np.nan,
                run_started=np.nan, alloc=None, epoch=0, preemptions=0,
            )
            for i in range(len(trace))
        ]

    def _result(
        self, trace, start, end, preemptions, node_intervals, num_nodes, total_gpus
    ) -> ReplayResult:
        n = len(trace)
        submit = trace["submit_time"].astype(float) if n else np.empty(0)
        if n and (np.any(start < 0) or np.any(~np.isfinite(end))):
            raise RuntimeError("some jobs never ran: trace exceeds cluster capacity")
        return ReplayResult(
            trace=trace,
            start_times=start,
            end_times=end,
            queue_delays=start - submit,
            preemptions=preemptions,
            node_intervals=node_intervals,
            num_nodes=num_nodes,
            total_gpus=total_gpus,
        )
