"""Discrete-event cluster simulator substrate."""

from .cluster import Allocation, ClusterState, VCState
from .engine import ReplayResult, SimJob, Simulator, normalize_node_events
from .placement import can_place, consolidate_place
from .telemetry import (
    busy_gpus_series,
    node_busy_intervals,
    running_nodes_series,
    utilization_series,
)

__all__ = [
    "Allocation",
    "ClusterState",
    "ReplayResult",
    "SimJob",
    "Simulator",
    "VCState",
    "busy_gpus_series",
    "can_place",
    "consolidate_place",
    "node_busy_intervals",
    "normalize_node_events",
    "running_nodes_series",
    "utilization_series",
]
