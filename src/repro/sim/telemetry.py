"""Post-replay telemetry: utilization and node-occupancy time series.

These feed the cluster characterization (Figs 2–4) and the CES service
(Figs 14–15 need "running nodes over time").
"""

from __future__ import annotations

import numpy as np

from ..frame import Table
from ..stats.timeseries import TimeGrid, interval_concurrency, interval_load
from .engine import ReplayResult

__all__ = [
    "utilization_series",
    "busy_gpus_series",
    "running_nodes_series",
    "node_busy_intervals",
]


def busy_gpus_series(result: ReplayResult, grid: TimeGrid) -> np.ndarray:
    """Mean busy GPUs per bin (interval-weighted).

    Uses the executed node segments, not job [start, end] spans — under
    preemption a job's span includes re-queue gaps during which it holds
    no GPUs.
    """
    iv = result.node_intervals
    if len(iv) == 0:
        if len(result.trace) == 0:
            return np.zeros(grid.bins)
        raise ValueError(
            "no node intervals recorded; run the Simulator with "
            "collect_node_intervals=True for telemetry"
        )
    return interval_load(grid, iv["start"], iv["end"], iv["gpus"].astype(float))


def utilization_series(result: ReplayResult, grid: TimeGrid) -> np.ndarray:
    """Cluster utilization per bin = busy GPUs / total GPUs (§2.3.1)."""
    total = result.total_gpus
    if total == 0:
        return np.zeros(grid.bins)
    return busy_gpus_series(result, grid) / total


def node_busy_intervals(result: ReplayResult) -> Table:
    """Merge per-(node, job) segments into per-node busy intervals.

    A node is *busy* while it hosts at least one GPU job.  Overlapping or
    adjacent segments on the same node are coalesced with a sweep over
    (node, time) sorted events — O(S log S) in the number of segments.
    """
    iv = result.node_intervals
    if len(iv) == 0:
        return Table({"node": np.empty(0, np.int64), "start": np.empty(0), "end": np.empty(0)})
    nodes = iv["node"]
    starts = iv["start"]
    ends = iv["end"]
    # Event sweep per node: +1 at start, -1 at end, sorted by (node, t, -delta).
    ev_node = np.concatenate([nodes, nodes])
    ev_time = np.concatenate([starts, ends])
    ev_delta = np.concatenate([np.ones(len(nodes)), -np.ones(len(nodes))])
    order = np.lexsort((-ev_delta, ev_time, ev_node))
    ev_node, ev_time, ev_delta = ev_node[order], ev_time[order], ev_delta[order]
    # Running depth per node: cumulative sum reset at node boundaries.
    csum = np.cumsum(ev_delta)
    new_node = np.ones(len(ev_node), dtype=bool)
    new_node[1:] = ev_node[1:] != ev_node[:-1]
    # Subtract the cumulative total before each node's first event.
    base = np.zeros(len(ev_node))
    starts_idx = np.flatnonzero(new_node)
    base[starts_idx] = csum[starts_idx - 1] if len(ev_node) else 0.0
    base[starts_idx[0]] = 0.0
    depth = csum - np.repeat(base[starts_idx], np.diff(np.append(starts_idx, len(ev_node))))
    # Busy interval opens when depth goes 0 -> 1 and closes at 1 -> 0.
    prev_depth = depth - ev_delta
    opens = (ev_delta > 0) & (prev_depth == 0)
    closes = (ev_delta < 0) & (depth == 0)
    out_nodes = ev_node[opens]
    out_start = ev_time[opens]
    out_end = ev_time[closes]
    return Table({"node": out_nodes, "start": out_start, "end": out_end})


def running_nodes_series(result: ReplayResult, grid: TimeGrid) -> np.ndarray:
    """Number of nodes hosting >=1 job, sampled at each bin start.

    This is the paper's "Running" curve in Figs 14–15 and the demand
    signal the CES forecaster learns.
    """
    busy = node_busy_intervals(result)
    if len(busy) == 0:
        return np.zeros(grid.bins)
    return interval_concurrency(grid, busy["start"], busy["end"])
