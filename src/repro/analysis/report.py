"""ASCII rendering of tables and curves for the experiment harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers format them readably in terminal output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..frame import Table

__all__ = ["render_table", "render_series", "render_cdf_points", "render_kv"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _fmt(value) -> str:
    if isinstance(value, (float, np.floating)):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(table: Table | Sequence[Mapping], title: str = "") -> str:
    """Monospace table with a header row."""
    if isinstance(table, Table):
        rows = list(table.iter_rows())
        columns = table.columns
    else:
        rows = [dict(r) for r in table]
        columns = list(rows[0].keys()) if rows else []
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(columns[j]), max(len(row[j]) for row in cells))
        for j in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(values: np.ndarray, title: str = "", width: int = 72) -> str:
    """Unicode sparkline of a series (down-sampled to ``width``)."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return f"{title}: (empty)"
    if v.size > width:
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array([v[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(np.nanmin(v)), float(np.nanmax(v))
    span = hi - lo
    if span == 0:
        bars = _BLOCKS[4] * v.size
    else:
        idx = ((v - lo) / span * (len(_BLOCKS) - 1)).round().astype(int)
        bars = "".join(_BLOCKS[i] for i in idx)
    head = f"{title} " if title else ""
    return f"{head}[{lo:.3g}..{hi:.3g}] {bars}"


def render_cdf_points(
    xs: np.ndarray, ys: np.ndarray, probe_points: Sequence[float], title: str = ""
) -> str:
    """Report a CDF at a few probe x-values (how the paper quotes CDFs)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    parts = []
    for p in probe_points:
        idx = np.searchsorted(xs, p)
        frac = ys[min(idx, len(ys) - 1)]
        parts.append(f"F({p:g})={frac * 100:.1f}%")
    head = f"{title}: " if title else ""
    return head + "  ".join(parts)


def render_kv(mapping: Mapping, title: str = "") -> str:
    """Aligned key: value block."""
    if not mapping:
        return f"{title}\n(empty)" if title else "(empty)"
    width = max(len(str(k)) for k in mapping)
    lines = [title] if title else []
    for k, v in mapping.items():
        lines.append(f"{str(k).ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)
