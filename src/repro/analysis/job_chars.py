"""Job-level characterization (§3.2: Figs 1, 5, 6, 7)."""

from __future__ import annotations

import numpy as np

from ..frame import Table
from ..stats.distributions import EmpiricalCDF
from ..traces.schema import CANCELED, COMPLETED, FAILED, STATUSES, gpu_time, is_cpu_job, is_gpu_job

__all__ = [
    "duration_cdf",
    "gpu_time_by_status",
    "job_size_cdfs",
    "status_distribution",
    "status_by_gpu_demand",
    "duration_summary",
]


def duration_cdf(trace: Table, kind: str = "gpu", points: int = 120) -> tuple[np.ndarray, np.ndarray]:
    """Fig 1a / Fig 5: log-x CDF of job durations for GPU or CPU jobs."""
    if kind == "gpu":
        sub = trace.filter(is_gpu_job(trace))
    elif kind == "cpu":
        sub = trace.filter(is_cpu_job(trace))
    else:
        raise ValueError("kind must be 'gpu' or 'cpu'")
    if len(sub) == 0:
        raise ValueError(f"no {kind} jobs in trace")
    return EmpiricalCDF(sub["duration"]).curve(points=points, log_x=True)


def gpu_time_by_status(trace: Table) -> dict[str, float]:
    """Fig 1b: share of total GPU time per final status."""
    gj = trace.filter(is_gpu_job(trace))
    gt = gpu_time(gj)
    total = gt.sum()
    if total <= 0:
        return {s: 0.0 for s in STATUSES}
    return {s: float(gt[gj["status"] == s].sum() / total) for s in STATUSES}


def job_size_cdfs(trace: Table, sizes=(1, 4, 8, 16, 32, 64)) -> Table:
    """Fig 6: cumulative share of jobs and of GPU time up to each size."""
    gj = trace.filter(is_gpu_job(trace))
    if len(gj) == 0:
        raise ValueError("no GPU jobs in trace")
    gt = gpu_time(gj)
    n = len(gj)
    total_gt = gt.sum()
    rows = []
    for s in sizes:
        mask = gj["gpu_num"] <= s
        rows.append(
            {
                "size": s,
                "job_fraction": float(mask.mean()),
                "gpu_time_fraction": float(gt[mask].sum() / total_gt),
            }
        )
    return Table.from_rows(rows)


def status_distribution(trace: Table) -> Table:
    """Fig 7a: final-status shares for CPU vs GPU jobs."""
    rows = []
    for kind, mask in (("cpu", is_cpu_job(trace)), ("gpu", is_gpu_job(trace))):
        sub = trace.filter(mask)
        n = max(len(sub), 1)
        row = {"kind": kind}
        for s in STATUSES:
            row[s] = float(np.sum(sub["status"] == s) / n)
        rows.append(row)
    return Table.from_rows(rows)


def status_by_gpu_demand(trace: Table, sizes=(1, 2, 4, 8, 16, 32, 64)) -> Table:
    """Fig 7b: status shares per GPU-demand bucket (powers of two)."""
    gj = trace.filter(is_gpu_job(trace))
    rows = []
    for s in sizes:
        sub = gj.filter(gj["gpu_num"] == s)
        if len(sub) == 0:
            continue
        n = len(sub)
        rows.append(
            {
                "gpu_num": s,
                "n_jobs": n,
                COMPLETED: float(np.sum(sub["status"] == COMPLETED) / n),
                CANCELED: float(np.sum(sub["status"] == CANCELED) / n),
                FAILED: float(np.sum(sub["status"] == FAILED) / n),
            }
        )
    return Table.from_rows(rows)


def duration_summary(trace: Table) -> dict[str, float]:
    """Headline duration statistics quoted in §3.2.1 / Table 2."""
    gj = trace.filter(is_gpu_job(trace))
    cj = trace.filter(is_cpu_job(trace))
    out = {
        "n_gpu_jobs": float(len(gj)),
        "n_cpu_jobs": float(len(cj)),
    }
    if len(gj):
        out.update(
            gpu_mean=float(gj["duration"].mean()),
            gpu_median=float(np.median(gj["duration"])),
            gpu_max=float(gj["duration"].max()),
            avg_gpus=float(gj["gpu_num"].mean()),
            max_gpus=float(gj["gpu_num"].max()),
            frac_under_1000s=float(np.mean(gj["duration"] < 1000.0)),
        )
    if len(cj):
        out.update(
            cpu_mean=float(cj["duration"].mean()),
            cpu_median=float(np.median(cj["duration"])),
        )
    return out
