"""User-level characterization (§3.3: Figs 8, 9)."""

from __future__ import annotations

import numpy as np

from ..frame import Table, group_reduce
from ..sim.engine import ReplayResult
from ..traces.schema import COMPLETED, cpu_time, gpu_time, is_cpu_job, is_gpu_job

__all__ = [
    "user_resource_curve",
    "user_queue_curve",
    "user_completion_rates",
    "marquee_users",
]


def _lorenz(per_user_totals: np.ndarray, points: int = 101) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative share curve: fraction of users (desc) vs share of total."""
    totals = np.sort(per_user_totals)[::-1]
    if totals.sum() <= 0:
        raise ValueError("no resource consumption to rank")
    cum = np.concatenate([[0.0], np.cumsum(totals) / totals.sum()])
    user_frac = np.linspace(0, 1, len(cum))
    grid = np.linspace(0, 1, points)
    return grid, np.interp(grid, user_frac, cum)


def user_resource_curve(trace: Table, kind: str = "gpu", points: int = 101):
    """Fig 8: fraction of users (sorted by consumption) vs share of
    GPU/CPU time they hold."""
    if kind == "gpu":
        sub = trace.filter(is_gpu_job(trace))
        weights = gpu_time(sub)
    elif kind == "cpu":
        sub = trace.filter(is_cpu_job(trace))
        weights = cpu_time(sub)
    else:
        raise ValueError("kind must be 'gpu' or 'cpu'")
    if len(sub) == 0:
        raise ValueError(f"no {kind} jobs in trace")
    _, totals = group_reduce(sub["user"], weights, "sum")
    return _lorenz(totals, points)


def user_queue_curve(result: ReplayResult, points: int = 101):
    """Fig 9a: fraction of users vs share of total queuing time."""
    users = result.trace["user"]
    _, totals = group_reduce(users, result.queue_delays, "sum")
    return _lorenz(totals, points)


def user_completion_rates(trace: Table, min_jobs: int = 5) -> Table:
    """Fig 9b: per-user GPU-job completion ratios (users with enough jobs)."""
    gj = trace.filter(is_gpu_job(trace))
    users, counts = group_reduce(gj["user"], None, "count")
    _, completed = group_reduce(
        gj["user"], (gj["status"] == COMPLETED).astype(float), "sum"
    )
    keep = counts >= min_jobs
    rates = completed[keep] / counts[keep]
    return Table(
        {
            "user": np.asarray(users)[keep],
            "n_jobs": counts[keep],
            "completion_rate": rates,
        }
    )


def marquee_users(result: ReplayResult, top_fraction: float = 0.01) -> dict:
    """§3.3: the few users who bear a disproportionate share of queueing
    ("marquee users") — returns their count and queue-time share."""
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    users = result.trace["user"]
    uniq, totals = group_reduce(users, result.queue_delays, "sum")
    if totals.sum() <= 0:
        return {"n_users": 0, "queue_share": 0.0, "users": []}
    k = max(1, int(np.ceil(top_fraction * len(uniq))))
    order = np.argsort(totals)[::-1]
    share = float(totals[order[:k]].sum() / totals.sum())
    return {
        "n_users": k,
        "queue_share": share,
        "users": np.asarray(uniq)[order[:k]].tolist(),
    }
