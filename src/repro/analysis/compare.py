"""Helios vs Philly trace comparison (Table 2 / §2.3.2)."""

from __future__ import annotations

import numpy as np

from ..frame import Table
from ..traces.schema import is_cpu_job, is_gpu_job

__all__ = ["trace_summary", "helios_philly_table"]


def trace_summary(trace: Table, n_clusters: int, n_vcs: int, duration_label: str) -> dict:
    """One column of Table 2 for a trace."""
    gj = trace.filter(is_gpu_job(trace))
    cj = trace.filter(is_cpu_job(trace))
    out = {
        "clusters": n_clusters,
        "vcs": n_vcs,
        "jobs": len(trace),
        "gpu_jobs": len(gj),
        "cpu_jobs": len(cj),
        "duration": duration_label,
    }
    if len(gj):
        out.update(
            avg_gpus=float(gj["gpu_num"].mean()),
            max_gpus=int(gj["gpu_num"].max()),
            avg_duration_s=float(gj["duration"].mean()),
            max_duration_s=float(gj["duration"].max()),
        )
    return out


def helios_philly_table(
    helios_traces: dict[str, Table],
    philly_trace: Table,
    helios_vcs: int,
    philly_vcs: int,
    helios_months: int,
    philly_days: int,
) -> Table:
    """Table 2: side-by-side Helios vs Philly statistics."""
    helios_all = Table.concat(
        [t.select(*t.columns) for t in helios_traces.values()]
    )
    h = trace_summary(
        helios_all, len(helios_traces), helios_vcs, f"{helios_months} months"
    )
    p = trace_summary(philly_trace, 1, philly_vcs, f"{philly_days} days")
    metrics = [
        "clusters", "vcs", "jobs", "gpu_jobs", "cpu_jobs", "duration",
        "avg_gpus", "max_gpus", "avg_duration_s", "max_duration_s",
    ]
    return Table(
        {
            "metric": np.array(metrics),
            "helios": np.array([str(h.get(m, "-")) for m in metrics]),
            "philly": np.array([str(p.get(m, "-")) for m in metrics]),
        }
    )
