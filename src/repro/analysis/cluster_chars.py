"""Cluster-level characterization (§3.1: Figs 2, 3, 4)."""

from __future__ import annotations

import numpy as np

from ..frame import Table, group_reduce
from ..sim.engine import ReplayResult
from ..sim.telemetry import utilization_series
from ..stats.timeseries import TimeGrid, hourly_profile
from ..traces.io import month_of
from ..traces.schema import SECONDS_PER_DAY, is_gpu_job

__all__ = [
    "hourly_utilization_profile",
    "hourly_submission_profile",
    "monthly_job_counts",
    "monthly_utilization",
    "vc_utilization_stats",
    "vc_queue_and_duration",
]


def hourly_utilization_profile(result: ReplayResult, bin_seconds: int = 3600) -> np.ndarray:
    """Fig 2a: average cluster utilization per hour-of-day (length 24)."""
    horizon = float(result.end_times.max()) if len(result.end_times) else 0.0
    if horizon <= 0:
        return np.zeros(24)
    grid = TimeGrid.covering(0.0, horizon, bin_seconds)
    util = utilization_series(result, grid)
    hours = (grid.centers.astype(np.int64) // 3600) % 24
    sums = np.bincount(hours, weights=util, minlength=24)
    counts = np.bincount(hours, minlength=24)
    return np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)


def hourly_submission_profile(trace: Table, months: float) -> np.ndarray:
    """Fig 2b: average GPU-job submissions per hour-of-day."""
    gj = trace.filter(is_gpu_job(trace))
    counts = hourly_profile(gj["submit_time"])
    days = max(months * 30.0, 1e-9)
    return counts / days


def monthly_job_counts(trace: Table, start_epoch: int = 0) -> Table:
    """Fig 3 top: submitted single- vs multi-GPU jobs per month."""
    gj = trace.filter(is_gpu_job(trace))
    months = month_of(gj["submit_time"], start_epoch)
    single = gj["gpu_num"] == 1
    uniq = np.unique(months)
    rows = []
    for m in uniq:
        mask = months == m
        rows.append(
            {
                "month": int(m),
                "single_gpu_jobs": int(np.sum(mask & single)),
                "multi_gpu_jobs": int(np.sum(mask & ~single)),
            }
        )
    return Table.from_rows(rows)


def monthly_utilization(
    result: ReplayResult, months: int, start_epoch: int = 0,
    split_by_size: bool = False,
) -> Table:
    """Fig 3: average utilization per month, optionally split into the
    single-GPU vs multi-GPU contribution (Fig 3 bottom)."""
    total = result.total_gpus
    month_s = 30 * SECONDS_PER_DAY
    iv = result.node_intervals
    rows = []
    tr = result.replayed_trace()
    single_mask = tr["gpu_num"] == 1
    for m in range(months):
        t0 = start_epoch + m * month_s
        grid = TimeGrid(t0, month_s, 1)
        from ..stats.timeseries import interval_load

        overall = interval_load(grid, tr["start_time"], tr["end_time"], tr["gpu_num"].astype(float))[0] / total
        row = {"month": m, "utilization": float(overall)}
        if split_by_size:
            s = interval_load(
                grid,
                tr["start_time"][single_mask],
                tr["end_time"][single_mask],
                tr["gpu_num"][single_mask].astype(float),
            )[0] / total
            row["single_gpu_utilization"] = float(s)
            row["multi_gpu_utilization"] = float(overall - s)
        rows.append(row)
    return Table.from_rows(rows)


def vc_utilization_stats(
    result: ReplayResult, spec, bin_seconds: int = 600, top_k: int = 10
) -> Table:
    """Fig 4 top: per-VC utilization quartiles + average GPU demand.

    VCs are ordered by size (descending) and truncated to ``top_k``.
    """
    from ..stats.timeseries import interval_load

    tr = result.replayed_trace()
    horizon = float(result.end_times.max()) if len(result.end_times) else 1.0
    grid = TimeGrid.covering(0.0, horizon, bin_seconds)
    vcs = sorted(spec.vcs, key=lambda vc: vc.num_gpus, reverse=True)[:top_k]
    rows = []
    for vc in vcs:
        mask = tr["vc"] == vc.name
        util = interval_load(
            grid, tr["start_time"][mask], tr["end_time"][mask],
            tr["gpu_num"][mask].astype(float),
        ) / vc.num_gpus
        q1, med, q3 = np.quantile(util, [0.25, 0.5, 0.75])
        rows.append(
            {
                "vc": vc.name,
                "num_gpus": vc.num_gpus,
                "util_q1": float(q1),
                "util_median": float(med),
                "util_q3": float(q3),
                "avg_gpu_demand": float(tr["gpu_num"][mask].mean()) if mask.any() else 0.0,
            }
        )
    return Table.from_rows(rows)


def vc_queue_and_duration(result: ReplayResult, top_k: int = 10) -> Table:
    """Fig 4 bottom: min-max normalized average queue delay and duration
    per VC (the paper's evidence that queuing ∝ job duration)."""
    tr = result.replayed_trace()
    vcs, qmean = group_reduce(tr["vc"], result.queue_delays, "mean")
    _, dmean = group_reduce(tr["vc"], tr["duration"], "mean")
    _, counts = group_reduce(tr["vc"], None, "count")
    order = np.argsort(counts)[::-1][:top_k]

    def _norm(x):
        x = x[order]
        span = x.max() - x.min()
        return (x - x.min()) / span if span > 0 else np.zeros_like(x)

    return Table(
        {
            "vc": np.asarray(vcs)[order],
            "norm_queue_delay": _norm(qmean),
            "norm_duration": _norm(dmean),
            "avg_queue_delay": qmean[order],
            "avg_duration": dmean[order],
        }
    )
