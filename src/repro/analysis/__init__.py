"""Trace characterization (§3 of the paper) and report rendering."""

from .cluster_chars import (
    hourly_submission_profile,
    hourly_utilization_profile,
    monthly_job_counts,
    monthly_utilization,
    vc_queue_and_duration,
    vc_utilization_stats,
)
from .compare import helios_philly_table, trace_summary
from .job_chars import (
    duration_cdf,
    duration_summary,
    gpu_time_by_status,
    job_size_cdfs,
    status_by_gpu_demand,
    status_distribution,
)
from .report import render_cdf_points, render_kv, render_series, render_table
from .user_chars import (
    marquee_users,
    user_completion_rates,
    user_queue_curve,
    user_resource_curve,
)

__all__ = [
    "duration_cdf",
    "duration_summary",
    "gpu_time_by_status",
    "helios_philly_table",
    "hourly_submission_profile",
    "hourly_utilization_profile",
    "job_size_cdfs",
    "marquee_users",
    "monthly_job_counts",
    "monthly_utilization",
    "render_cdf_points",
    "render_kv",
    "render_series",
    "render_table",
    "status_by_gpu_demand",
    "status_distribution",
    "trace_summary",
    "user_completion_rates",
    "user_queue_curve",
    "user_resource_curve",
    "vc_queue_and_duration",
    "vc_utilization_stats",
]
