#!/usr/bin/env python
"""CES case study: forecast node demand, park idle nodes, save energy.

Reproduces the §4.3 protocol on the Earth cluster:

1. generate three months of the Earth workload and replay it (FIFO);
2. extract the running-nodes series (10-minute bins);
3. train the GBDT node-demand forecaster on the first two months;
4. drive the Algorithm-2 DRS controller over the last three weeks;
5. compare against reactive (vanilla) DRS and always-on, and estimate
   the electricity saved.

Run:  python examples/energy_saving.py
"""

from repro.analysis import render_kv, render_series
from repro.energy import CESService
from repro.sched import FIFOScheduler
from repro.sim import Simulator
from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job

MONTH = 30 * 86_400


def main() -> None:
    generator = HeliosTraceGenerator(SynthParams(months=3, scale=0.2, seed=7))
    spec = generator.specs["Earth"]
    trace = generator.generate_cluster("Earth")
    gpu_jobs = trace.filter(is_gpu_job(trace))
    print(f"replaying {len(gpu_jobs):,} GPU jobs on {spec.num_nodes} nodes ...")
    replay = Simulator(spec, FIFOScheduler()).run(gpu_jobs)

    service = CESService()
    report = service.evaluate(
        replay,
        eval_start=2 * MONTH,
        eval_end=3 * MONTH - 9 * 86_400,  # a 3-week control window
        cluster="Earth",
    )

    split = report.eval_start_bin
    print()
    print(render_series(report.demand[split:], "Running  "))
    print(render_series(report.ces.active, "Active   "))
    print(render_series(report.prediction, "Predicted"))
    print()
    print(render_kv(report.summary(), "CES evaluation (Table-5 style)"))
    print()
    print(render_kv(
        {
            "eval_window_saved_kwh": report.saved_kwh_eval,
            "annualized_saved_kwh": report.annual_saved_kwh,
            "vanilla_wakes_per_day": report.vanilla.daily_wake_ups,
            "ces_wakes_per_day": report.ces.daily_wake_ups,
        },
        "energy + churn",
    ))


if __name__ == "__main__":
    main()
