#!/usr/bin/env python
"""Quickstart: generate a Helios-style workload, replay it, inspect it.

Walks the core pipeline in ~30 seconds:

1. synthesize one month of the Venus cluster (Table-1 shape, scaled);
2. replay its GPU jobs through the discrete-event simulator under the
   production FIFO policy;
3. print the headline characterization numbers the paper reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import duration_summary, gpu_time_by_status, render_kv
from repro.sched import FIFOScheduler, compute_metrics
from repro.sim import Simulator, utilization_series
from repro.stats import TimeGrid
from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job, validate_trace


def main() -> None:
    # 1. One month of Venus at 10% of the paper's node count.
    params = SynthParams(months=1, scale=0.1, seed=7)
    generator = HeliosTraceGenerator(params)
    trace = generator.generate_cluster("Venus")
    spec = generator.specs["Venus"]
    validate_trace(trace, spec)
    print(f"generated {len(trace):,} jobs on {spec.num_nodes} nodes "
          f"({spec.num_gpus} GPUs, {spec.num_vcs} VCs)\n")

    # 2. Replay the GPU jobs under FIFO (Helios' production policy).
    gpu_jobs = trace.filter(is_gpu_job(trace))
    result = Simulator(spec, FIFOScheduler()).run(gpu_jobs)
    metrics = compute_metrics("FIFO", result)
    grid = TimeGrid(0.0, 3600.0, params.horizon_hours)
    util = utilization_series(result, grid)

    # 3. Headline numbers.
    print(render_kv(duration_summary(trace), "job characterization"))
    print()
    print(render_kv(gpu_time_by_status(trace), "GPU-time share by status"))
    print()
    print(render_kv(
        {
            "avg_jct_s": metrics.avg_jct,
            "avg_queue_s": metrics.avg_queue_time,
            "queued_jobs": metrics.num_queuing_jobs,
            "mean_utilization": float(util.mean()),
            "peak_utilization": float(util.max()),
        },
        "FIFO replay",
    ))


if __name__ == "__main__":
    main()
