#!/usr/bin/env python
"""Characterization walk-through: the paper's seven implications.

Generates a multi-cluster workload and checks each of the paper's §3
implications against it, printing the supporting statistics — a compact
tour of the analysis API.

Run:  python examples/trace_characterization.py
"""

import numpy as np

from repro.analysis import (
    gpu_time_by_status,
    hourly_submission_profile,
    job_size_cdfs,
    status_distribution,
    user_resource_curve,
)
from repro.frame import Table, top_k_share
from repro.sched import FIFOScheduler
from repro.sim import Simulator
from repro.stats import hourly_profile
from repro.traces import (
    HeliosTraceGenerator,
    SynthParams,
    gpu_time,
    is_cpu_job,
    is_gpu_job,
)


def main() -> None:
    generator = HeliosTraceGenerator(SynthParams(months=2, scale=0.1, seed=5))
    traces = {c: generator.generate_cluster(c) for c in ("Venus", "Earth")}
    helios = Table.concat(list(traces.values()))

    print("Implication #1 — daily patterns are predictable")
    subs = hourly_submission_profile(traces["Venus"], months=2)
    print(f"  submissions/hour: night {subs[2:6].mean():.1f} vs day {subs[10:18].mean():.1f}\n")

    print("Implication #2 — multi-GPU jobs are stable and dominate usage")
    gj = helios.filter(is_gpu_job(helios))
    gt = gpu_time(gj)
    multi_share = gt[gj["gpu_num"] > 1].sum() / gt.sum()
    print(f"  multi-GPU jobs hold {multi_share * 100:.0f}% of GPU time\n")

    print("Implication #3 — imbalanced VCs: queueing co-exists with idling")
    venus_gpu = traces["Venus"].filter(is_gpu_job(traces["Venus"]))
    replay = Simulator(generator.specs["Venus"], FIFOScheduler()).run(venus_gpu)
    from repro.sched import queuing_by_vc

    by_vc = queuing_by_vc(replay)
    delays = by_vc["avg_queue_delay"]
    print(f"  per-VC avg queue delay spans {delays.min():.0f}s .. {delays.max():.0f}s\n")

    print("Implication #4 — single-GPU jobs dominate counts, not GPU time")
    sizes = job_size_cdfs(helios)
    row = sizes.row(0)
    print(f"  size<=1: {row['job_fraction'] * 100:.0f}% of jobs, "
          f"{row['gpu_time_fraction'] * 100:.0f}% of GPU time\n")

    print("Implication #5 — early stopping: canceled jobs burn GPU time")
    shares = gpu_time_by_status(helios)
    print(f"  GPU-time shares: {shares}\n")

    print("Implication #6 — failed jobs are short debugging runs")
    failed = gj.filter(gj["status"] == "failed")
    completed = gj.filter(gj["status"] == "completed")
    print(f"  median failed {np.median(failed['duration']):.0f}s vs "
          f"completed {np.median(completed['duration']):.0f}s\n")

    print("Implication #7 — a few users dominate resources and queueing")
    share = top_k_share(gj["user"], gpu_time(gj), 0.05)
    print(f"  top 5% of users hold {share * 100:.0f}% of GPU time")
    _, cpu_curve = user_resource_curve(helios, "cpu")
    print(f"  top 10% of CPU users hold {cpu_curve[10] * 100:.0f}% of CPU time")
    print()
    print(status_distribution(helios).columns)


if __name__ == "__main__":
    main()
