#!/usr/bin/env python
"""QSSF case study: predict job GPU time, schedule by it, beat FIFO.

Reproduces the §4.2 protocol end to end on one cluster:

1. generate two months of the Venus workload;
2. train the QSSF estimators (rolling history + GBDT) on month 0;
3. replay month 1 under FIFO, SJF (oracle), QSSF and SRTF (oracle);
4. report average JCT / queueing (Table-3 style) and the per-duration-
   group improvements (Table-4 style).

Run:  python examples/qssf_scheduling.py
"""

import numpy as np

from repro.analysis import render_table
from repro.frame import Table
from repro.ml import GBDTParams
from repro.sched import (
    FIFOScheduler,
    QSSFScheduler,
    SJFScheduler,
    SRTFScheduler,
    compute_metrics,
    queue_delay_ratio_by_group,
)
from repro.sim import Simulator
from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job, split_train_eval


def main() -> None:
    generator = HeliosTraceGenerator(SynthParams(months=2, scale=0.1, seed=11))
    spec = generator.specs["Venus"]
    trace = generator.generate_cluster("Venus")
    gpu_jobs = trace.filter(is_gpu_job(trace))
    history, eval_month = split_train_eval(gpu_jobs, eval_month=1)
    print(f"history: {len(history):,} jobs; evaluation month: {len(eval_month):,} jobs")

    qssf = QSSFScheduler(
        history, lam=0.5,
        gbdt_params=GBDTParams(n_estimators=60, max_depth=6, min_samples_leaf=30),
    )
    # How good are the predictions themselves?
    predicted = qssf.predicted_durations(eval_month)
    corr = np.corrcoef(np.log1p(predicted), np.log1p(eval_month["duration"]))[0, 1]
    print(f"duration prediction log-correlation: {corr:.2f}\n")

    results = {}
    rows = []
    for sched in (FIFOScheduler(), SJFScheduler(), qssf, SRTFScheduler()):
        result = Simulator(spec, sched).run(eval_month)
        results[sched.name] = result
        m = compute_metrics(sched.name, result)
        rows.append(
            {
                "scheduler": m.name,
                "avg_jct_s": m.avg_jct,
                "avg_queue_s": m.avg_queue_time,
                "queued_jobs": m.num_queuing_jobs,
                "median_jct_s": m.median_jct,
            }
        )
    print(render_table(Table.from_rows(rows), "scheduler comparison (Table-3 style)"))

    ratios = queue_delay_ratio_by_group(results["FIFO"], results["QSSF"])
    print()
    print(render_table(
        Table.from_rows([{"group": k, "fifo/qssf_queue_ratio": v} for k, v in ratios.items()]),
        "queue-delay improvement by duration group (Table-4 style)",
    ))


if __name__ == "__main__":
    main()
