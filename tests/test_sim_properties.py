"""Property-based tests for the simulator (hypothesis-driven).

These hammer the event loop with random workloads and check the physical
invariants that must hold for *any* trace and *any* policy:

* conservation: every job runs exactly its duration (non-preemptive);
* causality: no job starts before submission;
* exclusivity: per-node GPU usage never exceeds capacity;
* work conservation within a VC: the head job never waits while a
  feasible placement exists (checked via a reference re-execution).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Table
from repro.sched import FIFOScheduler, SJFScheduler, SRTFScheduler
from repro.sim import Simulator
from repro.traces import ClusterSpec, VCSpec


def _spec(nodes: int, gpn: int = 8) -> ClusterSpec:
    return ClusterSpec(
        name="P",
        gpus_per_node=gpn,
        vcs=(VCSpec("vc0", num_nodes=nodes, gpus_per_node=gpn),),
    )


def _trace(jobs) -> Table:
    n = len(jobs)
    return Table(
        {
            "job_id": np.array([f"j{i}" for i in range(n)]),
            "cluster": np.full(n, "P"),
            "vc": np.full(n, "vc0"),
            "user": np.full(n, "u"),
            "name": np.array([f"n{i}" for i in range(n)]),
            "gpu_num": np.array([g for _, g, _ in jobs], dtype=np.int64),
            "cpu_num": np.ones(n, dtype=np.int64),
            "node_num": np.array([max(1, -(-g // 8)) for _, g, _ in jobs], dtype=np.int64),
            "submit_time": np.array([s for s, _, _ in jobs], dtype=np.int64),
            "duration": np.array([float(d) for _, _, d in jobs]),
            "status": np.full(n, "completed"),
        }
    )


job_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),   # submit
        st.sampled_from([1, 2, 4, 8, 16]),          # gpus
        st.integers(min_value=1, max_value=300),    # duration
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(jobs=job_lists)
def test_nonpreemptive_service_conservation(jobs):
    """end - start == duration for every job under FIFO and SJF."""
    trace = _trace(jobs)
    for sched in (FIFOScheduler(), SJFScheduler()):
        res = Simulator(_spec(nodes=3), sched).run(trace)
        np.testing.assert_allclose(
            res.end_times - res.start_times, trace["duration"], atol=1e-9
        )
        assert np.all(res.start_times >= trace["submit_time"])


@settings(max_examples=40, deadline=None)
@given(jobs=job_lists)
def test_srtf_total_service_preserved(jobs):
    """With preemption, executed segment time still sums to gpu time."""
    trace = _trace(jobs)
    res = Simulator(_spec(nodes=3), SRTFScheduler()).run(trace)
    iv = res.node_intervals
    seg = ((iv["end"] - iv["start"]) * iv["gpus"]).sum()
    expect = (trace["duration"] * trace["gpu_num"]).sum()
    assert seg == pytest.approx(expect, rel=1e-9)
    # JCT >= duration always (can only be delayed, never shortened)
    assert np.all(res.jct >= trace["duration"] - 1e-9)


@settings(max_examples=40, deadline=None)
@given(jobs=job_lists, seed=st.integers(min_value=0, max_value=99))
def test_capacity_never_exceeded(jobs, seed):
    """Sweep per-node usage over all recorded segments."""
    trace = _trace(jobs)
    spec = _spec(nodes=2)
    res = Simulator(spec, SJFScheduler()).run(trace)
    iv = res.node_intervals
    for node in np.unique(iv["node"]):
        mask = iv["node"] == node
        events = sorted(
            [(s, g) for s, g in zip(iv["start"][mask], iv["gpus"][mask])]
            + [(e, -g) for e, g in zip(iv["end"][mask], iv["gpus"][mask])]
        )
        level = 0
        for _, delta in events:
            level += delta
            assert level <= spec.gpus_per_node


@settings(max_examples=30, deadline=None)
@given(jobs=job_lists)
def test_fifo_starts_monotone_when_single_server_class(jobs):
    """With identical 8-GPU jobs on one node, FIFO starts are ordered by
    submission (a strict no-overtaking property)."""
    jobs = [(s, 8, d) for s, _, d in jobs]
    trace = _trace(jobs)
    res = Simulator(_spec(nodes=1), FIFOScheduler()).run(trace)
    order = np.argsort(trace["submit_time"], kind="stable")
    starts = res.start_times[order]
    assert np.all(np.diff(starts) >= -1e-9)


@settings(max_examples=30, deadline=None)
@given(jobs=job_lists)
def test_makespan_bounds(jobs):
    """Makespan is at least the critical path and at most serialized work."""
    trace = _trace(jobs)
    res = Simulator(_spec(nodes=2), FIFOScheduler()).run(trace)
    makespan = res.end_times.max()
    lower = max(s + d for s, _, d in jobs)
    upper = max(s for s, _, _ in jobs) + sum(d for _, _, d in jobs)
    assert lower - 1e-9 <= makespan <= upper + 1e-9


@settings(max_examples=40, deadline=None)
@given(jobs=job_lists)
def test_fast_engine_matches_reference(jobs):
    """Property form of the parity contract: for any workload and any
    policy, the array-backed engine's ReplayResult is byte-identical to
    the reference loop's (see tests/test_sim_parity.py for the seeded
    cluster-scale suite)."""
    trace = _trace(jobs)
    for sched in (FIFOScheduler(), SJFScheduler(), SRTFScheduler()):
        ref = Simulator(_spec(nodes=2), sched, mode="reference").run(trace)
        fast = Simulator(_spec(nodes=2), sched).run(trace)
        assert fast.start_times.tobytes() == ref.start_times.tobytes()
        assert fast.end_times.tobytes() == ref.end_times.tobytes()
        assert fast.preemptions.tobytes() == ref.preemptions.tobytes()
        for col in ("node", "start", "end", "gpus"):
            assert (
                fast.node_intervals[col].tobytes()
                == ref.node_intervals[col].tobytes()
            )


@settings(max_examples=25, deadline=None)
@given(jobs=job_lists)
def test_sjf_average_jct_not_worse_than_fifo_much(jobs):
    """SJF's average JCT should essentially never lose badly to FIFO on a
    single-VC workload (it can lose slightly via packing artifacts)."""
    trace = _trace(jobs)
    fifo = Simulator(_spec(nodes=2), FIFOScheduler()).run(trace)
    sjf = Simulator(_spec(nodes=2), SJFScheduler()).run(trace)
    assert sjf.jct.mean() <= fifo.jct.mean() * 1.5 + 10.0
