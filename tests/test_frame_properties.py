"""Property-based laws for the Table container and interval rasterizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Table, group_reduce
from repro.stats import TimeGrid, interval_concurrency, interval_load


def _table(values):
    arr = np.asarray(values, dtype=float)
    return Table({"v": arr, "i": np.arange(len(arr))})


values_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestTableLaws:
    @settings(max_examples=60, deadline=None)
    @given(values=values_lists, seed=st.integers(0, 99))
    def test_filter_then_concat_partition(self, values, seed):
        """filter(m) + filter(~m) is a permutation-free partition."""
        t = _table(values)
        rng = np.random.default_rng(seed)
        mask = rng.random(len(t)) < 0.5
        a, b = t.filter(mask), t.filter(~mask)
        assert len(a) + len(b) == len(t)
        merged = Table.concat([a, b]).sort_by("i")
        assert merged == t.sort_by("i")

    @settings(max_examples=60, deadline=None)
    @given(values=values_lists)
    def test_sort_idempotent(self, values):
        t = _table(values)
        once = t.sort_by("v", "i")
        twice = once.sort_by("v", "i")
        assert once == twice

    @settings(max_examples=60, deadline=None)
    @given(values=values_lists)
    def test_take_inverse(self, values):
        """take(argsort) then take(inverse permutation) is identity."""
        t = _table(values)
        order = np.argsort(t["v"], kind="stable")
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order))
        assert t.take(order).take(inverse) == t

    @settings(max_examples=60, deadline=None)
    @given(values=values_lists)
    def test_group_sum_total_invariant(self, values):
        """Sum of group sums equals the grand total for any grouping."""
        t = _table(values)
        keys = (np.arange(len(t)) % 3).astype(np.int64)
        _, sums = group_reduce(keys, t["v"], "sum")
        assert sums.sum() == pytest.approx(t["v"].sum(), rel=1e-9, abs=1e-6)


intervals = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=900, allow_nan=False),
        st.floats(min_value=0.1, max_value=300, allow_nan=False),
        st.integers(min_value=1, max_value=8),
    ),
    min_size=1,
    max_size=40,
)


class TestIntervalLaws:
    @settings(max_examples=60, deadline=None)
    @given(ivs=intervals)
    def test_load_conserves_weighted_time(self, ivs):
        """Σ load·dt == Σ weight·clipped_duration for any interval set."""
        s = np.array([a for a, _, _ in ivs])
        e = np.array([a + d for a, d, _ in ivs])
        w = np.array([float(g) for _, _, g in ivs])
        grid = TimeGrid(0.0, 10.0, 130)  # covers [0, 1300) > all intervals
        load = interval_load(grid, s, e, w)
        assert load.sum() * grid.dt == pytest.approx((w * (e - s)).sum(), rel=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(ivs=intervals)
    def test_load_additivity(self, ivs):
        """Load of the union equals the sum of per-interval loads."""
        s = np.array([a for a, _, _ in ivs])
        e = np.array([a + d for a, d, _ in ivs])
        w = np.array([float(g) for _, _, g in ivs])
        grid = TimeGrid(0.0, 25.0, 52)
        whole = interval_load(grid, s, e, w)
        parts = sum(
            interval_load(grid, s[i : i + 1], e[i : i + 1], w[i : i + 1])
            for i in range(len(ivs))
        )
        np.testing.assert_allclose(whole, parts, atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(ivs=intervals)
    def test_concurrency_bounded_by_count(self, ivs):
        s = np.array([a for a, _, _ in ivs])
        e = np.array([a + d for a, d, _ in ivs])
        grid = TimeGrid(0.0, 5.0, 260)
        conc = interval_concurrency(grid, s, e)
        assert conc.max() <= len(ivs)
        assert conc.min() >= 0
