"""Unit + property tests for groupby/aggregation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import (
    Table,
    apply_per_group,
    group_reduce,
    groupby_agg,
    quantiles,
    top_k_share,
    value_counts,
    weighted_share,
)


@pytest.fixture
def table():
    return Table(
        {
            "user": np.array(["u1", "u2", "u1", "u3", "u2", "u1"]),
            "vc": np.array(["a", "a", "b", "b", "a", "a"]),
            "gpus": np.array([1, 2, 4, 8, 2, 1], dtype=np.int64),
            "dur": np.array([10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
        }
    )


class TestGroupReduce:
    def test_sum(self, table):
        keys, sums = group_reduce(table["user"], table["dur"], "sum")
        assert list(keys) == ["u1", "u2", "u3"]
        assert sums.tolist() == [100.0, 70.0, 40.0]

    def test_count(self, table):
        keys, counts = group_reduce(table["user"], None, "count")
        assert counts.tolist() == [3, 2, 1]

    def test_mean(self, table):
        _, means = group_reduce(table["user"], table["dur"], "mean")
        np.testing.assert_allclose(means, [100 / 3, 35.0, 40.0])

    def test_min_max(self, table):
        _, mins = group_reduce(table["user"], table["dur"], "min")
        _, maxs = group_reduce(table["user"], table["dur"], "max")
        assert mins.tolist() == [10.0, 20.0, 40.0]
        assert maxs.tolist() == [60.0, 50.0, 40.0]

    def test_median(self, table):
        _, med = group_reduce(table["user"], table["dur"], "median")
        assert med.tolist() == [30.0, 35.0, 40.0]

    def test_std_matches_numpy(self, table):
        _, stds = group_reduce(table["user"], table["dur"], "std")
        expect = [
            np.std([10.0, 30.0, 60.0]),
            np.std([20.0, 50.0]),
            np.std([40.0]),
        ]
        np.testing.assert_allclose(stds, expect, atol=1e-9)

    def test_unknown_agg(self, table):
        with pytest.raises(ValueError, match="unknown aggregation"):
            group_reduce(table["user"], table["dur"], "nope")

    def test_count_needs_no_values_others_do(self, table):
        with pytest.raises(ValueError, match="values required"):
            group_reduce(table["user"], None, "sum")

    def test_multikey(self, table):
        keys, sums = group_reduce(
            [table["user"], table["vc"]], table["dur"], "sum"
        )
        users, vcs = keys
        got = dict(zip(zip(users.tolist(), vcs.tolist()), sums.tolist()))
        assert got[("u1", "a")] == 70.0
        assert got[("u1", "b")] == 30.0
        assert got[("u3", "b")] == 40.0


class TestGroupbyAgg:
    def test_basic(self, table):
        out = groupby_agg(
            table,
            "user",
            {"total": ("dur", "sum"), "n": ("dur", "count")},
        )
        assert out["user"].tolist() == ["u1", "u2", "u3"]
        assert out["total"].tolist() == [100.0, 70.0, 40.0]
        assert out["n"].tolist() == [3, 2, 1]

    def test_multikey(self, table):
        out = groupby_agg(table, ["vc", "user"], {"n": ("dur", "count")})
        assert len(out) == 4  # (a,u1),(a,u2),(b,u1),(b,u3)

    def test_empty_aggs(self, table):
        with pytest.raises(ValueError):
            groupby_agg(table, "user", {})


class TestHelpers:
    def test_value_counts(self, table):
        vc = value_counts(table["user"])
        assert vc["value"][0] == "u1"
        assert vc["count"][0] == 3

    def test_value_counts_normalized(self, table):
        vc = value_counts(table["user"], normalize=True)
        np.testing.assert_allclose(vc["count"].sum(), 1.0)

    def test_weighted_share(self, table):
        ws = weighted_share(table["user"], table["dur"])
        assert ws["value"][0] == "u1"
        np.testing.assert_allclose(ws["share"].sum(), 1.0)

    def test_quantiles(self):
        q = quantiles(np.arange(101, dtype=float), (0.25, 0.5, 0.75))
        np.testing.assert_allclose(q, [25.0, 50.0, 75.0])

    def test_quantiles_empty(self):
        assert np.all(np.isnan(quantiles(np.array([]))))

    def test_top_k_share_all(self, table):
        assert top_k_share(table["user"], table["dur"], 1.0) == pytest.approx(1.0)

    def test_top_k_share_top_third(self, table):
        # top 1 of 3 users (u1 with 100) over total 210
        share = top_k_share(table["user"], table["dur"], 1 / 3)
        assert share == pytest.approx(100.0 / 210.0)

    def test_top_k_share_validates(self, table):
        with pytest.raises(ValueError):
            top_k_share(table["user"], table["dur"], 0.0)

    def test_apply_per_group(self, table):
        out = apply_per_group(
            table, "vc", lambda sub: {"mean_gpus": float(sub["gpus"].mean())}
        )
        assert out["vc"].tolist() == ["a", "b"]
        np.testing.assert_allclose(out["mean_gpus"], [1.5, 6.0])


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_group_sum_matches_python(keys, seed):
    """Property: segment sums equal a reference dict-based accumulation."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=len(keys))
    uniq, sums = group_reduce(np.asarray(keys), values, "sum")
    ref: dict[int, float] = {}
    for k, v in zip(keys, values):
        ref[k] = ref.get(k, 0.0) + v
    assert list(uniq) == sorted(ref)
    np.testing.assert_allclose(sums, [ref[k] for k in sorted(ref)], atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=50),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_group_median_matches_numpy(keys, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=len(keys))
    uniq, med = group_reduce(np.asarray(keys), values, "median")
    for k, m in zip(uniq, med):
        expect = np.median(values[np.asarray(keys) == k])
        assert m == pytest.approx(expect)
