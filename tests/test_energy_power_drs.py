"""Tests for the power model and DRS controllers (Algorithm 2)."""

import numpy as np
import pytest

from repro.energy import (
    DRSOutcome,
    DRSParams,
    PowerModel,
    run_always_on,
    run_drs,
    run_vanilla_drs,
)


class TestPowerModel:
    def test_saved_kwh(self):
        pm = PowerModel(idle_node_watts=800, cooling_multiplier=3.0)
        # 10 nodes for 1 hour: 10 * 800W * 3 = 24 kWh
        assert pm.saved_kwh(10, 1.0) == pytest.approx(24.0)

    def test_annualized(self):
        pm = PowerModel()
        assert pm.annual_saved_kwh(1.0) == pytest.approx(0.8 * 3 * 8760)

    def test_paper_scale_annual_savings(self):
        """§4.3.3: ~80 parked nodes across 4 clusters -> >1.65M kWh/yr."""
        pm = PowerModel()
        parked_total = 5.0 + 20.5 + 20.0 + 34.0  # Table 5 row 1
        assert pm.annual_saved_kwh(parked_total) > 1.65e6

    def test_wake_overhead_positive(self):
        pm = PowerModel()
        assert pm.wake_overhead_kwh(10) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(idle_node_watts=0)
        with pytest.raises(ValueError):
            PowerModel(cooling_multiplier=0.5)
        with pytest.raises(ValueError):
            PowerModel().saved_kwh(1, -1)


class TestDRSParams:
    def test_scaled(self):
        p = DRSParams.scaled(143)
        assert p.buffer_nodes == 6
        assert p.recent_threshold == pytest.approx(0.858)
        assert p.recent_window_bins == 6

    def test_scaled_small_cluster_floors(self):
        p = DRSParams.scaled(10)
        assert p.buffer_nodes >= 1
        assert p.recent_threshold == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DRSParams(buffer_nodes=-1)
        with pytest.raises(ValueError):
            DRSParams.scaled(0)


def _sawtooth_demand(n=720, total=100):
    """Daily sawtooth: rises to ~80, falls to ~40 (144 bins/day)."""
    t = np.arange(n)
    return np.round(60 + 20 * np.sin(2 * np.pi * t / 144.0)).astype(float)


class TestRunDRS:
    def _perfect_forecast(self, demand, horizon=18):
        fc = np.empty_like(demand)
        fc[:-horizon] = demand[horizon:]
        fc[-horizon:] = demand[-1]
        return fc

    def test_parks_on_downtrends(self):
        d = _sawtooth_demand()
        out = run_drs(d, self._perfect_forecast(d), total_nodes=100,
                      params=DRSParams.scaled(100))
        assert out.avg_parked_nodes > 5.0
        assert out.utilization_ces > out.utilization_original

    def test_active_always_covers_demand_after_wake(self):
        d = _sawtooth_demand()
        out = run_drs(d, self._perfect_forecast(d), 100, DRSParams.scaled(100))
        # whenever demand exceeded the pool, the controller woke nodes
        assert np.all(out.active >= out.demand)

    def test_never_exceeds_total(self):
        d = _sawtooth_demand()
        out = run_drs(d, self._perfect_forecast(d), 100, DRSParams.scaled(100))
        assert out.active.max() <= 100

    def test_bad_forecast_more_wakes(self):
        """A constant-low forecast parks too eagerly and wakes more."""
        d = _sawtooth_demand()
        good = run_drs(d, self._perfect_forecast(d), 100, DRSParams.scaled(100))
        bad = run_drs(d, np.full_like(d, d.min()), 100, DRSParams.scaled(100))
        assert bad.wake_events >= good.wake_events

    def test_affected_jobs_counted(self):
        d = np.array([50.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 60.0])
        fc = np.full_like(d, 10.0)
        arrivals = np.full_like(d, 5.0)
        out = run_drs(d, fc, 100, DRSParams(buffer_nodes=1, recent_window_bins=1),
                      arrivals_per_bin=arrivals)
        assert out.wake_events >= 1
        assert out.affected_jobs >= 5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            run_drs(np.zeros(5), np.zeros(4), 10)

    def test_total_nodes_validation(self):
        with pytest.raises(ValueError):
            run_drs(np.zeros(5), np.zeros(5), 0)


class TestVanillaAndAlwaysOn:
    def test_vanilla_tracks_demand(self):
        d = _sawtooth_demand()
        out = run_vanilla_drs(d, 100, DRSParams.scaled(100))
        assert out.avg_parked_nodes > 10.0
        assert np.all(out.active >= out.demand)

    def test_vanilla_wakes_more_than_ces(self):
        """§4.3.3: vanilla DRS incurs far more wake-ups than CES."""
        rng = np.random.default_rng(0)
        d = _sawtooth_demand() + rng.integers(-3, 4, 720)
        fc = np.empty_like(d)
        fc[:-18] = d[18:]
        fc[-18:] = d[-1]
        params = DRSParams.scaled(100)
        ces = run_drs(d, fc, 100, params)
        vanilla = run_vanilla_drs(d, 100, params)
        assert vanilla.wake_events > ces.wake_events

    def test_always_on(self):
        d = _sawtooth_demand()
        out = run_always_on(d, 100)
        assert out.avg_parked_nodes == 0.0
        assert out.wake_events == 0
        assert out.utilization_ces == pytest.approx(out.utilization_original)


class TestOutcomeMetrics:
    def test_daily_wake_ups(self):
        out = DRSOutcome(
            active=np.full(288, 50.0),
            demand=np.full(288, 40.0),
            total_nodes=100,
            wake_events=4,
            nodes_woken=12,
            affected_jobs=2,
            bins_per_day=144.0,
        )
        assert out.daily_wake_ups == pytest.approx(2.0)
        assert out.avg_woken_per_wake == pytest.approx(3.0)
        assert out.avg_parked_nodes == pytest.approx(50.0)
        assert out.utilization_original == pytest.approx(0.4)
        assert out.utilization_ces == pytest.approx(0.8)
