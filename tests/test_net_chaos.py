"""Socket control plane: framing, routing, backpressure, chaos parity.

The headline guarantee extends the in-shard one: kill *or partition*
any shard worker mid-stream and the merged report parity surface stays
byte-identical to a fault-free run.  Alongside it: the framing layer's
deterministic network faults, consistent-hash placement, the bounded
in-flight queue (asserted via the obs queue-depth histogram), the
listen-mode front door with explicit busy/retry-after backpressure,
and the FIFO-passthrough rung when no worker pool exists.
"""

import hashlib
import threading

import pytest

from repro.framework import FaultPlan, FaultSpec, fork_available
from repro.obs import collect as obs
from repro.serve import (
    NetConfig,
    ShardTask,
    build_shard,
    build_stream,
    parity_surface,
    serve_clusters_net,
)
from repro.serve.net import (
    FrontDoor,
    FrontDoorClient,
    HashRing,
    NetFaultFilter,
    pack,
    unpack,
)
from repro.serve.net.framing import TAG_JSON
from repro.serve.server import encode_decisions

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires os.fork")

_TASK = dict(history_days=14, stream_days=1.0, max_jobs=300)

#: tight deadlines/backoff so breaker rungs trip in test time, not
#: production time (mirrors FAST_SUP in test_chaos_recovery)
FAST_NET = dict(
    rpc_deadline_s=1.5, resume_deadline_s=120.0, max_retries=2,
    backoff_base_s=0.01, backoff_cap_s=0.05, poll_interval_s=0.005,
)


@pytest.fixture(autouse=True)
def clean_recorder():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def _config(**overrides):
    from repro.experiments.serving import smoke_serve_config

    cfg = smoke_serve_config()
    if overrides:
        from dataclasses import replace

        cfg = replace(cfg, **overrides)
    return cfg


def _task(cluster):
    return ShardTask(cluster=cluster, config=_config(), checkpoint_every=50,
                     **_TASK)


@pytest.fixture(scope="module")
def baseline():
    """Direct (no-net) reports for Venus and Earth, in that order."""
    reports = []
    for cluster in ("Venus", "Earth"):
        server, stream = build_shard(_task(cluster))
        reports.append(server.run(stream))
    return reports


def _serve_net(clusters, *, workers, fault_plan=None, queue_bound=16,
               **net_overrides):
    net = NetConfig(workers=workers, queue_bound=queue_bound,
                    **{**FAST_NET, **net_overrides})
    return serve_clusters_net(
        clusters, config=_config(), checkpoint_every=50,
        fault_plan=fault_plan, net=net, **_TASK,
    )


class TestFraming:
    def test_pickle_round_trip(self):
        import numpy as np

        msg = {"op": "batch", "refs": np.arange(5), "nested": (1, 2.5)}
        out = unpack(pack(msg)[4:])
        assert out["op"] == "batch"
        assert list(out["refs"]) == [0, 1, 2, 3, 4]

    def test_json_round_trip_and_tag(self):
        frame = pack({"op": "status", "bi": 3}, fmt="json")
        assert frame[4:5] == TAG_JSON
        assert unpack(frame[4:]) == {"op": "status", "bi": 3}

    def test_length_prefix_covers_tag_and_payload(self):
        frame = pack({"a": 1}, fmt="json")
        (length,) = __import__("struct").unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_unknown_format_and_tag_rejected(self):
        with pytest.raises(ValueError, match="format"):
            pack({}, fmt="xml")
        with pytest.raises(ValueError, match="tag"):
            unpack(b"Xjunk")


def _filter(faults, label="link:w0", epoch=0):
    return NetFaultFilter(FaultPlan(faults=tuple(faults)), label, epoch)


class TestNetFaultFilter:
    def test_drop_discards_span_frames(self):
        filt = _filter([FaultSpec(key="link:w0", kind="drop", at=1, span=2)])
        sent = [filt.outgoing(b"f%d" % i, now=0.0) for i in range(4)]
        assert sent == [[b"f0"], [], [], [b"f3"]]
        assert filt.dropped == 2

    def test_duplicate_doubles_one_frame(self):
        filt = _filter([FaultSpec(key="link:w0", kind="duplicate", at=0)])
        assert filt.outgoing(b"x", now=0.0) == [b"x", b"x"]
        assert filt.outgoing(b"y", now=0.0) == [b"y"]

    def test_delay_holds_frame_until_due(self):
        filt = _filter(
            [FaultSpec(key="link:w0", kind="delay", at=0, delay_s=0.5)]
        )
        assert filt.outgoing(b"late", now=10.0) == []
        assert filt.due(now=10.4) == []
        assert filt.due(now=10.6) == [b"late"]
        assert filt.due(now=11.0) == []  # released exactly once

    def test_partition_silences_both_directions(self):
        filt = _filter(
            [FaultSpec(key="link:w0", kind="partition", at=0, span=2)]
        )
        assert filt.outgoing(b"a", now=0.0) == []
        assert filt.outgoing(b"b", now=0.0) == []
        assert filt.outgoing(b"c", now=0.0) == [b"c"]
        assert [filt.incoming() for _ in range(3)] == [False, False, True]
        assert filt.dropped == 4

    def test_rekey_resets_counters_and_selects_epoch(self):
        filt = _filter(
            [FaultSpec(key="link:w0", kind="drop", attempt=1, at=0)]
        )
        assert filt.outgoing(b"ok", now=0.0) == [b"ok"]  # epoch 0: no faults
        filt.rekey(1)
        assert filt.out_seq == 0
        assert filt.outgoing(b"gone", now=0.0) == []  # epoch 1 drops seq 0
        filt.rekey(2)
        assert filt.outgoing(b"ok2", now=0.0) == [b"ok2"]

    def test_other_labels_untouched(self):
        filt = _filter(
            [FaultSpec(key="link:w1", kind="drop", at=0, span=99)],
            label="link:w0",
        )
        assert filt.outgoing(b"mine", now=0.0) == [b"mine"]

    def test_delay_honors_span_beyond_one(self):
        # Regression: delay (and duplicate) used to fire only at ``at``
        # exactly, ignoring span — every kind honors [at, at+span).
        filt = _filter(
            [FaultSpec(key="link:w0", kind="delay", at=1, span=2,
                       delay_s=0.5)]
        )
        assert filt.outgoing(b"f0", now=0.0) == [b"f0"]
        assert filt.outgoing(b"f1", now=0.0) == []
        assert filt.outgoing(b"f2", now=0.0) == []
        assert filt.outgoing(b"f3", now=0.0) == [b"f3"]
        assert sorted(filt.due(now=1.0)) == [b"f1", b"f2"]

    def test_duplicate_honors_span_beyond_one(self):
        filt = _filter(
            [FaultSpec(key="link:w0", kind="duplicate", at=1, span=2)]
        )
        sent = [filt.outgoing(b"f%d" % i, now=0.0) for i in range(4)]
        assert sent == [[b"f0"], [b"f1", b"f1"], [b"f2", b"f2"], [b"f3"]]


class TestHashRing:
    def test_deterministic_and_owner_heads_preference(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # order-insensitive
        for key in ("Venus", "Saturn", "Earth", "Uranus", "Philly"):
            assert a.owner(key) == b.owner(key)
            pref = a.preference(key)
            assert pref[0] == a.owner(key)
            assert sorted(pref) == ["w0", "w1", "w2"]

    def test_two_worker_ring_spreads_helios_clusters(self):
        ring = HashRing(["w0", "w1"])
        owners = {c: ring.owner(c) for c in ("Venus", "Saturn", "Earth",
                                             "Uranus")}
        assert set(owners.values()) == {"w0", "w1"}

    def test_ring_rejects_empty(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_preference_stable_across_restarts(self):
        # Placement is a pure hash of (worker name, vnode): a rebuilt
        # ring — new process, new run — gives every key the identical
        # full preference order, so reroute targets are reproducible.
        workers = ["w0", "w1", "w2", "w3"]
        a = HashRing(workers)
        b = HashRing(list(reversed(workers)))
        keys = [f"shard-{i}" for i in range(50)] + ["Venus@0", "Venus@1"]
        for key in keys:
            assert a.preference(key) == b.preference(key)

    def test_vnode_distribution_is_bounded(self):
        # 64 vnodes per worker keep ownership roughly balanced: across
        # many keys no worker owns a wildly outsized share.
        workers = ["w0", "w1", "w2", "w3"]
        ring = HashRing(workers)
        counts = {w: 0 for w in workers}
        n = 400
        for i in range(n):
            counts[ring.owner(f"cluster-{i}")] += 1
        fair = n / len(workers)
        for w, c in counts.items():
            assert 0.4 * fair <= c <= 2.0 * fair, (w, counts)

    def test_single_surviving_worker_owns_everything(self):
        ring = HashRing(["w0"])
        for key in ("Venus", "Earth", "Venus@0", "Venus@1", "anything"):
            assert ring.owner(key) == "w0"
            assert ring.preference(key) == ["w0"]


class TestNetConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            NetConfig(workers=0)
        with pytest.raises(ValueError, match="queue_bound"):
            NetConfig(queue_bound=0)
        with pytest.raises(ValueError, match="deadlines"):
            NetConfig(rpc_deadline_s=0.0)

    def test_supervision_mirrors_retry_knobs(self):
        sup = NetConfig(max_retries=5, backoff_base_s=0.3,
                        backoff_cap_s=9.0).supervision()
        assert (sup.max_retries, sup.backoff_base_s, sup.backoff_cap_s) == (
            5, 0.3, 9.0)


@needs_fork
class TestNetParity:
    def test_fault_free_parity_and_bounded_queue(self, baseline):
        obs.enable()
        reports, stats = _serve_net(["Venus", "Earth"], workers=2,
                                    queue_bound=8)
        assert parity_surface(reports) == parity_surface(baseline)
        # Acks coalesce per worker drain round: at least one, never
        # more than the batch frames they cover.
        assert 0 < stats.acks <= stats.frames_sent
        assert stats.retries == 0 and stats.reroutes == 0
        # The backpressure contract: in-flight never exceeds the bound —
        # asserted on the obs queue-depth histogram, not just the stat.
        depth = obs.snapshot().histograms["net.queue_depth"]
        assert depth.count > 0
        assert depth.vmax <= 8
        assert stats.max_queue_depth <= 8

    def test_gap_rewind_after_dropped_frames(self, baseline):
        # Drop two group frames on the single link: a later in-flight
        # frame still reaches the worker, which answers its first index
        # with a gap; the router rewinds and the replayed prefix is
        # skipped idempotently.  (The router keeps the group cap at a
        # quarter of the window precisely so drops shorter than the
        # in-flight frame count recover via gap, not the RPC deadline.)
        plan = FaultPlan(seed=7, faults=(
            FaultSpec(key="link:w0", kind="drop", at=10, span=2),
            FaultSpec(key="link:w0", kind="duplicate", at=30),
        ))
        reports, stats = _serve_net(["Venus"], workers=1, fault_plan=plan)
        assert parity_surface(reports) == baseline[0].parity_bytes()
        assert stats.gap_rewinds >= 1
        assert stats.reroutes == 0  # recovered without touching the ladder

    def test_sigkill_and_partition_chaos_parity(self, baseline):
        # The headline: SIGKILL Venus's worker mid-stream AND partition
        # Earth's link indefinitely; both shards reroute/respawn from
        # checkpoints and the merged parity surface is byte-identical.
        # (2-worker ring places Venus on w1, Earth on w0.)
        plan = FaultPlan(seed=11, faults=(
            FaultSpec(key="Venus", kind="crash", attempt=0, at=130),
            FaultSpec(key="link:w0", kind="partition", at=60, span=100_000),
        ))
        reports, stats = _serve_net(["Venus", "Earth"], workers=2,
                                    fault_plan=plan)
        assert parity_surface(reports) == parity_surface(baseline)
        assert stats.link_failures >= 2  # the kill and the partition
        assert stats.respawns >= 1
        assert stats.reroutes >= 2
        assert stats.retries >= 1


@needs_fork
class TestListenMode:
    def test_client_stream_backpressure_and_parity(self, baseline):
        task = _task("Venus")
        net = NetConfig(workers=1, queue_bound=4, **FAST_NET)
        door = FrontDoor([task], net=net)
        ready = threading.Event()
        out = {}

        def _serve():
            out["result"] = door.serve(host="127.0.0.1", port=0, ready=ready)

        server = threading.Thread(target=_serve, daemon=True)
        server.start()
        assert ready.wait(timeout=30.0)
        client = FrontDoorClient("127.0.0.1", door.port)
        try:
            assert client.request({"op": "open", "cluster": "Venus"}) == {
                "op": "opened", "cluster": "Venus"}
            batches = list(build_stream(task).batches(
                task.config.batch_window_s))
            for bi, batch in enumerate(batches):
                reply = client.send_event("Venus", bi, batch)
                assert reply["op"] == "accepted", reply
            reply = client.request({"op": "close", "cluster": "Venus"})
            assert reply["total"] == len(batches)
            status = client.wait_done("Venus", timeout_s=300.0)
            stats = client.request({"op": "stats"})
        finally:
            client.close()
        server.join(timeout=60.0)
        assert not server.is_alive()
        reports, door_stats = out["result"]
        assert parity_surface(reports) == baseline[0].parity_bytes()
        # Direct-run sha published to the client without unpickling.
        assert status["parity_sha"] == hashlib.sha256(
            baseline[0].parity_bytes()).hexdigest()
        # queue_bound=4 against a fast client: admission control fired.
        assert door_stats.busy_rejections > 0
        assert stats["busy_rejections"] == door_stats.busy_rejections

    def test_unknown_cluster_and_out_of_order_rejected(self):
        task = _task("Venus")
        net = NetConfig(workers=1, queue_bound=4, **FAST_NET)
        door = FrontDoor([task], net=net)
        ready = threading.Event()
        out = {}

        def _serve():
            out["result"] = door.serve(host="127.0.0.1", port=0, ready=ready)

        server = threading.Thread(target=_serve, daemon=True)
        server.start()
        assert ready.wait(timeout=30.0)
        client = FrontDoorClient("127.0.0.1", door.port)
        try:
            reply = client.request({"op": "open", "cluster": "Pluto"})
            assert reply["op"] == "error"
            assert client.request({"op": "open", "cluster": "Venus"})[
                "op"] == "opened"
            batches = list(build_stream(task).batches(
                task.config.batch_window_s))
            bad = client.send_event("Venus", 5, batches[5])
            assert bad["op"] == "error" and "out of order" in bad["error"]
            for bi, batch in enumerate(batches):
                client.send_event("Venus", bi, batch)
            client.request({"op": "close", "cluster": "Venus"})
            client.wait_done("Venus", timeout_s=300.0)
        finally:
            client.close()
        server.join(timeout=60.0)
        assert not server.is_alive()


#: refit-heavy policy for the replication tests: the smoke config's
#: 7-day/50k update policy never fires inside a 1-day stream, so refits
#: trigger on a small buffered-observation threshold instead, and
#: decisions are recorded for the byte-level comparison.
_REPL = dict(update_max_buffered=60, record_decisions=True)


@pytest.fixture(scope="module")
def repl_reference():
    """The merged-stream oracle: one Venus shard, refit-heavy config,
    local refits — the run every replicated variant must match."""
    task = ShardTask(cluster="Venus", config=_config(**_REPL),
                     checkpoint_every=50, **_TASK)
    server, stream = build_shard(task)
    return server.run(stream)


def _ref_slices(report):
    """Reference decisions grouped per submit micro-batch, in submit-
    rank order (what ``decision_index`` exists for)."""
    slices, prev = [], 0
    for _bi, cum in report.decision_index:
        slices.append(report.decisions[prev:cum])
        prev = cum
    return slices


def _expected_for(slices, index, count):
    """The decisions replica ``index`` of ``count`` must make: exactly
    the reference's, for the submit ranks ``replica_slice`` assigns it."""
    return [d for r, s in enumerate(slices) if r % count == index for d in s]


def _serve_repl(replicate, *, replicas=2, fault_plan=None):
    cfg = _config(replicate=replicate, **_REPL)
    net = NetConfig(workers=2, queue_bound=16, **FAST_NET)
    return serve_clusters_net(
        ["Venus"], config=cfg, checkpoint_every=50, replicas=replicas,
        fault_plan=fault_plan, net=net, **_TASK,
    )


@needs_fork
class TestReplication:
    def test_central_replicas_byte_identical_to_merged_stream(
            self, repl_reference):
        # The tentpole guarantee: with replication on, each replica's
        # decision stream is byte-identical to the corresponding slice
        # of a single-shard merged-stream run — same decisions, same
        # refit bookkeeping — while every model is trained exactly once
        # at the hub (zero local fits on the replicas).
        reports, stats = _serve_repl("central")
        slices = _ref_slices(repl_reference)
        ref_refits = repl_reference.refits["qssf"]["refits"]
        assert ref_refits >= 2  # the policy actually exercises syncs
        for j, report in enumerate(reports):
            assert report.decisions == _expected_for(slices, j, 2)
            digest = hashlib.sha256(b"".join(
                encode_decisions(s)
                for r, s in enumerate(slices) if r % 2 == j
            )).hexdigest()
            assert report.qssf_digest == digest
            assert report.refits["qssf"] == repl_reference.refits["qssf"]
            assert report.fits["qssf"]["count"] == 0  # delegated
        # One central fit per version, broadcast to the group.
        assert stats.model_syncs == ref_refits
        assert stats.snapshot_frames >= ref_refits
        assert stats.snapshot_bytes > 0

    def test_local_replicas_match_but_multiply_fit_work(
            self, repl_reference):
        # replicate="local" control: decisions still match the merged
        # stream (every replica retrains on the same broadcast finish
        # events), but each replica pays for its own fits — the refit
        # CPU multiplication central mode removes.
        reports, stats = _serve_repl("local")
        slices = _ref_slices(repl_reference)
        ref_fits = repl_reference.fits["qssf"]["count"]
        for j, report in enumerate(reports):
            assert report.decisions == _expected_for(slices, j, 2)
            assert report.fits["qssf"]["count"] == ref_fits
        assert stats.model_syncs == 0 and stats.snapshot_frames == 0
        # Group total: K× the merged-stream fit count.
        assert sum(r.fits["qssf"]["count"] for r in reports) == 2 * ref_fits

    def test_kill_and_partition_mid_broadcast_converges(
            self, repl_reference):
        # The chaos headline: partition the link holding both replicas
        # mid-stream, then SIGKILL the rerouted worker — snapshots in
        # flight are lost both times.  Respawned/rerouted workers re-send
        # their outstanding sync requests (served from the hub's version
        # cache), and the decision streams still match the merged-stream
        # oracle byte for byte.  (Ring places Venus@0 and Venus@1 on w0;
        # the crash is keyed to attempt 1 — after the reroute.)
        plan = FaultPlan(seed=11, faults=(
            FaultSpec(key="Venus@0", kind="crash", attempt=1, at=130),
            FaultSpec(key="link:w0", kind="partition", at=60, span=100_000),
        ))
        reports, stats = _serve_repl("central", fault_plan=plan)
        slices = _ref_slices(repl_reference)
        for j, report in enumerate(reports):
            assert report.decisions == _expected_for(slices, j, 2)
            assert report.refits["qssf"] == repl_reference.refits["qssf"]
            assert report.fits["qssf"]["count"] == 0
        # Both fault kinds fired and were recovered from...
        assert stats.link_failures >= 2
        assert stats.respawns >= 1
        assert stats.reroutes >= 2
        # ...yet the lineage still trained each version exactly once;
        # the recovery path shows up as cached re-requests instead.
        assert stats.model_syncs == repl_reference.refits["qssf"]["refits"]
        assert stats.sync_cached >= 1


class TestPassthrough:
    def test_no_fork_serves_in_process_with_parity(self, baseline,
                                                   monkeypatch):
        # Rung 4 of the breaker ladder doubles as the no-fork platform
        # fallback: without a pool, every route serves in-process and
        # the parity surface is unchanged.
        import repro.serve.net.router as router_mod

        monkeypatch.setattr(router_mod, "fork_available", lambda: False)
        reports, stats = _serve_net(["Venus"], workers=2)
        assert parity_surface(reports) == baseline[0].parity_bytes()
        assert stats.passthroughs == 1
        assert stats.frames_sent == 0
