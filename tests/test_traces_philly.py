"""Calibration tests for the Philly-like generator (Table 2 / Fig 1)."""

import numpy as np
import pytest

from repro.traces import (
    CANCELED,
    COMPLETED,
    FAILED,
    PhillyParams,
    PhillyTraceGenerator,
    gpu_time,
    validate_trace,
)


@pytest.fixture(scope="module")
def gen():
    return PhillyTraceGenerator(PhillyParams(days=30, scale=0.1, seed=5))


@pytest.fixture(scope="module")
def trace(gen):
    return gen.generate()


class TestInvariants:
    def test_validates(self, gen, trace):
        validate_trace(trace, gen.spec)

    def test_no_cpu_jobs(self, trace):
        """Table 2: Philly has 0 CPU jobs."""
        assert trace["gpu_num"].min() >= 1

    def test_deterministic(self):
        p = PhillyParams(days=10, scale=0.05, seed=77)
        a = PhillyTraceGenerator(p).generate()
        b = PhillyTraceGenerator(p).generate()
        assert a == b

    def test_params_validation(self):
        with pytest.raises(ValueError):
            PhillyParams(days=0)
        with pytest.raises(ValueError):
            PhillyParams(scale=0)


class TestCalibration:
    def test_avg_gpus_lower_than_helios(self, trace):
        """Table 2: Philly averages ~1.75 GPUs/job (Helios ~3.7)."""
        assert 1.3 <= trace["gpu_num"].mean() <= 2.6

    def test_durations_longer_than_helios(self, trace):
        """Table 2 / Fig 1a: Philly jobs statistically run longer."""
        assert trace["duration"].mean() > 10_000
        assert np.median(trace["duration"]) > 500

    def test_max_size_bounded(self, trace):
        assert trace["gpu_num"].max() <= 128

    def test_failed_gpu_time_over_one_third(self, trace):
        """Fig 1b: over one-third of Philly GPU time went to failed jobs
        (vs ~9% in Helios)."""
        gt = gpu_time(trace)
        failed_share = gt[trace["status"] == FAILED].sum() / gt.sum()
        assert failed_share > 0.25

    def test_completed_share_below_helios(self, trace):
        gt = gpu_time(trace)
        completed_share = gt[trace["status"] == COMPLETED].sum() / gt.sum()
        assert completed_share < 0.60

    def test_offered_load_near_target(self, gen, trace):
        offered = gpu_time(trace).sum() / (gen.spec.num_gpus * gen.params.horizon_seconds)
        assert offered == pytest.approx(gen.params.target_utilization, abs=0.08)

    def test_all_statuses_present(self, trace):
        present = set(np.unique(trace["status"]))
        assert present == {COMPLETED, CANCELED, FAILED}
