"""Tests for category encoders, time features, and ridge regression."""

import numpy as np
import pytest

from repro.ml import (
    FrequencyEncoder,
    OrdinalEncoder,
    RidgeRegressor,
    TIME_FEATURE_NAMES,
    grid_search,
    time_features,
)


class TestOrdinalEncoder:
    def test_first_seen_order(self):
        enc = OrdinalEncoder().fit(np.array(["b", "a", "b", "c"]))
        out = enc.transform(np.array(["a", "b", "c"]))
        assert out.tolist() == [1, 0, 2]

    def test_unseen_is_minus_one(self):
        enc = OrdinalEncoder().fit(np.array(["x"]))
        assert enc.transform(np.array(["y"])).tolist() == [-1]

    def test_n_categories(self):
        enc = OrdinalEncoder().fit(np.array(["a", "a", "b"]))
        assert enc.n_categories == 2

    def test_fit_transform(self):
        out = OrdinalEncoder().fit_transform(np.array(["p", "q", "p"]))
        assert out.tolist() == [0, 1, 0]


class TestFrequencyEncoder:
    def test_frequencies(self):
        enc = FrequencyEncoder().fit(np.array(["a", "a", "a", "b"]))
        out = enc.transform(np.array(["a", "b", "zzz"]))
        np.testing.assert_allclose(out, [0.75, 0.25, 0.0])

    def test_fit_transform_sums_consistent(self):
        vals = np.array(["x"] * 7 + ["y"] * 3)
        out = FrequencyEncoder().fit_transform(vals)
        np.testing.assert_allclose(np.unique(out), [0.3, 0.7])


class TestTimeFeatures:
    def test_shape_and_names(self):
        out = time_features(np.array([0, 86_400], dtype=np.int64))
        assert out.shape == (2, len(TIME_FEATURE_NAMES))

    def test_midnight_epoch(self):
        out = time_features(np.array([0]))
        month, day, weekday, hour, minute = out[0]
        assert (month, day, weekday, hour, minute) == (0, 0, 0, 0, 0)

    def test_hour_minute(self):
        t = 3 * 3600 + 25 * 60
        out = time_features(np.array([t]))
        assert out[0][3] == 3 and out[0][4] == 25

    def test_weekday_cycles(self):
        days = np.arange(14) * 86_400
        out = time_features(days)
        assert out[:, 2].tolist() == list(range(7)) * 2

    def test_month_convention(self):
        out = time_features(np.array([31 * 86_400]))
        assert out[0][0] == 1  # 30-day months


class TestRidge:
    def test_recovers_linear_model(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 2] + 5.0
        model = RidgeRegressor(alpha=1e-6).fit(X, y)
        pred = model.predict(X)
        np.testing.assert_allclose(pred, y, atol=1e-6)

    def test_regularization_shrinks(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = 3.0 * X[:, 0]
        small = RidgeRegressor(alpha=1e-9).fit(X, y)
        large = RidgeRegressor(alpha=1e4).fit(X, y)
        assert np.abs(large.coef_).sum() < np.abs(small.coef_).sum()

    def test_constant_feature_no_blowup(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = np.arange(20.0)
        pred = RidgeRegressor(alpha=1e-6).fit(X, y).predict(X)
        np.testing.assert_allclose(pred, y, atol=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1.0)
        with pytest.raises(ValueError):
            RidgeRegressor().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            RidgeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(RuntimeError):
            RidgeRegressor().predict(np.zeros((1, 2)))


class TestGridSearch:
    def test_minimizes(self):
        best, score = grid_search(
            lambda a, b: (a, b),
            {"a": [1, 2, 3], "b": [10, 20]},
            score=lambda model: (model[0] - 2) ** 2 + (model[1] - 20) ** 2,
        )
        assert best == {"a": 2, "b": 20}
        assert score == 0

    def test_no_finite_score_raises(self):
        with pytest.raises(ValueError):
            grid_search(lambda a: a, {"a": [1]}, score=lambda m: float("inf"))
