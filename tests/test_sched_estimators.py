"""Tests for the QSSF duration estimators (Algorithm 1)."""

import numpy as np
import pytest

from repro.frame import Table
from repro.sched import MLEstimator, RollingEstimator


def make_history(rows):
    """rows: (user, name, gpus, duration, submit)."""
    n = len(rows)
    return Table(
        {
            "job_id": np.array([f"h{i}" for i in range(n)]),
            "cluster": np.full(n, "T"),
            "vc": np.full(n, "vc0"),
            "user": np.array([r[0] for r in rows]),
            "name": np.array([r[1] for r in rows]),
            "gpu_num": np.array([r[2] for r in rows], dtype=np.int64),
            "cpu_num": np.array([r[2] * 6 for r in rows], dtype=np.int64),
            "node_num": np.ones(n, dtype=np.int64),
            "submit_time": np.array([r[4] for r in rows], dtype=np.int64),
            "duration": np.array([float(r[3]) for r in rows]),
            "status": np.full(n, "completed"),
        }
    )


class TestRollingEstimator:
    def test_exact_name_match_uses_decay(self):
        est = RollingEstimator(decay=0.5).fit(
            make_history(
                [("u1", "train_r_1", 1, 100.0, 0), ("u1", "train_r_2", 1, 200.0, 10)]
            )
        )
        # canonical form matches; newest (200) weighted 1, older 0.5.
        expect = (200 * 1.0 + 100 * 0.5) / 1.5
        assert est.estimate("u1", "train_r_3", 1) == pytest.approx(expect)

    def test_new_user_falls_back_to_gpu_demand(self):
        est = RollingEstimator().fit(
            make_history(
                [("u1", "a", 1, 100.0, 0), ("u2", "b", 8, 5000.0, 1)]
            )
        )
        assert est.estimate("stranger", "anything", 8) == pytest.approx(5000.0)
        assert est.estimate("stranger", "anything", 1) == pytest.approx(100.0)

    def test_new_user_unseen_demand_gets_global_mean(self):
        est = RollingEstimator().fit(make_history([("u1", "a", 1, 100.0, 0)]))
        assert est.estimate("stranger", "x", 64) == pytest.approx(100.0)

    def test_known_user_new_name_uses_same_demand_jobs(self):
        est = RollingEstimator().fit(
            make_history(
                [
                    ("u1", "alpha_job", 1, 100.0, 0),
                    ("u1", "beta_run", 8, 9000.0, 1),
                ]
            )
        )
        # A brand-new name for u1 with 8 GPUs -> u1's 8-GPU average.
        assert est.estimate("u1", "zzz_qqq_www", 8) == pytest.approx(9000.0)

    def test_fuzzy_name_match(self):
        est = RollingEstimator(similarity_threshold=0.6).fit(
            make_history([("u1", "train_resnet_run", 1, 500.0, 0)])
        )
        assert est.estimate("u1", "train_resnet_runx", 1) == pytest.approx(500.0)

    def test_empty_history_ties(self):
        est = RollingEstimator()
        assert est.estimate("u", "n", 4) == 1.0

    def test_online_update(self):
        est = RollingEstimator().fit(make_history([("u1", "a_1", 1, 100.0, 0)]))
        est.update("u1", "a_2", 1, 300.0)
        assert est.estimate("u1", "a_3", 1) > 100.0

    def test_estimate_many_matches_scalar(self):
        hist = make_history(
            [("u1", "j_1", 1, 50.0, 0), ("u2", "k_1", 2, 500.0, 1)]
        )
        est = RollingEstimator().fit(hist)
        batch = est.estimate_many(hist)
        singles = [
            est.estimate("u1", "j_1", 1),
            est.estimate("u2", "k_1", 2),
        ]
        np.testing.assert_allclose(batch, singles)

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            RollingEstimator(decay=0.0)


class TestMLEstimator:
    def _synthetic_history(self, n=800, seed=0):
        """Recurrent jobs whose duration depends on name and gpus."""
        rng = np.random.default_rng(seed)
        base = {"shortjob": 60.0, "mediumjob": 1200.0, "longjob": 30000.0}
        names = rng.choice(list(base), size=n)
        gpus = rng.choice([1, 2, 4, 8], size=n)
        durations = np.array(
            [base[nm] * g**0.5 * rng.lognormal(0, 0.2) for nm, g in zip(names, gpus)]
        )
        users = rng.choice(["ua", "ub", "uc"], size=n)
        rows = [
            (users[i], f"{names[i]}_{i}", int(gpus[i]), float(durations[i]), i * 60)
            for i in range(n)
        ]
        return make_history(rows)

    def test_learns_name_duration_structure(self):
        hist = self._synthetic_history()
        est = MLEstimator().fit(hist)
        pred = est.estimate_many(hist)
        true = hist["duration"]
        # Order-of-magnitude correctness: log-space correlation is high.
        corr = np.corrcoef(np.log(pred), np.log(true))[0, 1]
        assert corr > 0.8

    def test_predictions_positive(self):
        hist = self._synthetic_history(200)
        est = MLEstimator().fit(hist)
        assert est.estimate_many(hist).min() >= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLEstimator().estimate_many(self._synthetic_history(10))

    def test_empty_history_raises(self):
        hist = self._synthetic_history(5).filter(np.zeros(5, dtype=bool))
        with pytest.raises(ValueError):
            MLEstimator().fit(hist)

    def test_generalizes_to_unseen_instances(self):
        hist = self._synthetic_history(600, seed=1)
        est = MLEstimator().fit(hist)
        future = self._synthetic_history(200, seed=2)
        pred = est.estimate_many(future)
        corr = np.corrcoef(np.log(pred), np.log(future["duration"]))[0, 1]
        assert corr > 0.7
