"""Tests for the discrete-event replay engine."""

import numpy as np
import pytest

from repro.sched import FIFOScheduler, SJFScheduler, SRTFScheduler
from repro.sim import Simulator

from helpers import make_spec, make_trace


class TestBasics:
    def test_single_job(self):
        res = Simulator(make_spec(), FIFOScheduler()).run(make_trace([(0, 8, 100)]))
        assert res.start_times.tolist() == [0.0]
        assert res.end_times.tolist() == [100.0]
        assert res.queue_delays.tolist() == [0.0]

    def test_empty_trace(self):
        res = Simulator(make_spec(), FIFOScheduler()).run(make_trace([]))
        assert len(res.start_times) == 0

    def test_cpu_jobs_rejected(self):
        with pytest.raises(ValueError, match="GPU jobs"):
            Simulator(make_spec(), FIFOScheduler()).run(make_trace([(0, 0, 10)]))

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="GPUs"):
            Simulator(make_spec(nodes=1), FIFOScheduler()).run(make_trace([(0, 9, 10)]))

    def test_unknown_vc_rejected(self):
        with pytest.raises(ValueError, match="unknown VC"):
            Simulator(make_spec(), FIFOScheduler()).run(
                make_trace([(0, 1, 10, "vcX")])
            )

    def test_parallel_jobs_no_queueing(self):
        # 2 nodes x 8 GPUs: two 8-GPU jobs run concurrently.
        res = Simulator(make_spec(), FIFOScheduler()).run(
            make_trace([(0, 8, 100), (0, 8, 100)])
        )
        assert res.queue_delays.tolist() == [0.0, 0.0]

    def test_queueing_when_full(self):
        res = Simulator(make_spec(nodes=1), FIFOScheduler()).run(
            make_trace([(0, 8, 100), (10, 8, 50)])
        )
        assert res.start_times.tolist() == [0.0, 100.0]
        assert res.queue_delays.tolist() == [0.0, 90.0]

    def test_replayed_trace_roundtrip(self):
        res = Simulator(make_spec(), FIFOScheduler()).run(make_trace([(5, 4, 20)]))
        rt = res.replayed_trace()
        assert rt["start_time"][0] == 5.0
        assert rt["end_time"][0] == 25.0
        from repro.traces import validate_trace

        validate_trace(rt, replayed=True)


#: both engines run the full policy matrix — same semantics contract
ENGINE_MODES = ("fast", "reference")


@pytest.mark.parametrize("mode", ENGINE_MODES)
class TestPolicies:
    def test_fifo_order(self, mode):
        # One node; three jobs contend: FIFO runs in submit order.
        res = Simulator(make_spec(nodes=1), FIFOScheduler(), mode=mode).run(
            make_trace([(0, 8, 100), (1, 8, 10), (2, 8, 1)])
        )
        assert res.start_times.tolist() == [0.0, 100.0, 110.0]

    def test_sjf_reorders(self, mode):
        res = Simulator(make_spec(nodes=1), SJFScheduler(), mode=mode).run(
            make_trace([(0, 8, 100), (1, 8, 10), (2, 8, 1)])
        )
        # After the head job, the 1s job jumps the 10s job.
        assert res.start_times.tolist() == [0.0, 101.0, 100.0]

    def test_sjf_no_preemption(self, mode):
        res = Simulator(make_spec(nodes=1), SJFScheduler(), mode=mode).run(
            make_trace([(0, 8, 1000), (1, 8, 1)])
        )
        assert res.start_times[1] == 1000.0  # waits despite being shorter
        assert res.preemptions.sum() == 0

    def test_srtf_preempts(self, mode):
        res = Simulator(make_spec(nodes=1), SRTFScheduler(), mode=mode).run(
            make_trace([(0, 8, 1000), (10, 8, 10)])
        )
        # Short job preempts the long one at t=10 and runs immediately.
        assert res.start_times[1] == 10.0
        assert res.preemptions[0] == 1
        # The long job resumes and finishes with its full service time:
        # 10s executed + 990s remaining after resume at t=20.
        assert res.end_times[0] == pytest.approx(1010.0)

    def test_srtf_does_not_preempt_shorter(self, mode):
        res = Simulator(make_spec(nodes=1), SRTFScheduler(), mode=mode).run(
            make_trace([(0, 8, 10), (1, 8, 1000)])
        )
        assert res.start_times[0] == 0.0
        assert res.preemptions.sum() == 0
        assert res.start_times[1] == 10.0

    def test_head_of_line_blocking_no_backfill(self, mode):
        """A big job at the head blocks later small jobs (no backfill)."""
        res = Simulator(make_spec(nodes=2), FIFOScheduler(), mode=mode).run(
            make_trace([(0, 8, 100), (1, 16, 50), (2, 1, 5)])
        )
        # 16-GPU job waits for both nodes; the 1-GPU job waits behind it
        # even though a node is free.
        assert res.start_times[1] == 100.0
        assert res.start_times[2] == 150.0

    def test_vcs_are_independent(self, mode):
        res = Simulator(make_spec(nodes=1, vcs=2), FIFOScheduler(), mode=mode).run(
            make_trace([(0, 8, 100, "vc0"), (1, 8, 50, "vc1"), (2, 8, 10, "vc0")])
        )
        # vc1's job is unaffected by vc0's backlog.
        assert res.start_times[1] == 1.0
        assert res.start_times[2] == 100.0

    def test_same_timestamp_burst_admitted_in_priority_event_order(self, mode):
        """A burst of same-instant arrivals is admitted per event order:
        an earlier-submitted job that fits starts even if a later
        same-instant arrival has better priority."""
        res = Simulator(make_spec(nodes=1), SJFScheduler(), mode=mode).run(
            make_trace([(0, 8, 100), (0, 8, 1), (0, 8, 10)])
        )
        # job 0 is admitted on arrival (cluster idle); the rest queue and
        # run shortest-first.
        assert res.start_times.tolist() == [0.0, 100.0, 101.0]


class TestTelemetryIntervals:
    def test_node_intervals_cover_gpu_time(self):
        trace = make_trace([(0, 8, 100), (0, 4, 50), (60, 12, 40)])
        res = Simulator(make_spec(nodes=4), FIFOScheduler()).run(trace)
        iv = res.node_intervals
        seg_time = ((iv["end"] - iv["start"]) * iv["gpus"]).sum()
        assert seg_time == pytest.approx((trace["duration"] * trace["gpu_num"]).sum())

    def test_srtf_intervals_exclude_queue_gaps(self):
        trace = make_trace([(0, 8, 1000), (10, 8, 10)])
        res = Simulator(make_spec(nodes=1), SRTFScheduler()).run(trace)
        iv = res.node_intervals
        seg_time = ((iv["end"] - iv["start"]) * iv["gpus"]).sum()
        assert seg_time == pytest.approx(1010 * 8)

    def test_determinism(self):
        trace = make_trace([(i, 1 + (i % 8), 10 + i) for i in range(100)])
        r1 = Simulator(make_spec(nodes=4), SJFScheduler()).run(trace)
        r2 = Simulator(make_spec(nodes=4), SJFScheduler()).run(trace)
        np.testing.assert_array_equal(r1.start_times, r2.start_times)


class TestInvariantsOnSynthetic:
    def test_no_capacity_violation_over_time(self):
        """Property: at every instant, per-VC busy GPUs <= capacity."""
        rng = np.random.default_rng(0)
        rows = [
            (int(rng.integers(0, 1000)), int(2 ** rng.integers(0, 4)), float(rng.integers(1, 200)))
            for _ in range(200)
        ]
        spec = make_spec(nodes=3)
        res = Simulator(spec, SJFScheduler()).run(make_trace(rows))
        iv = res.node_intervals
        # per-node GPU usage never exceeds gpus_per_node
        for node in np.unique(iv["node"]):
            mask = iv["node"] == node
            events = []
            for s, e, g in zip(iv["start"][mask], iv["end"][mask], iv["gpus"][mask]):
                events.append((s, g))
                events.append((e, -g))
            events.sort()
            level = 0
            for _, delta in events:
                level += delta
                assert level <= spec.gpus_per_node

    def test_jct_equals_queue_plus_service_nonpreemptive(self):
        rng = np.random.default_rng(1)
        rows = [
            (int(rng.integers(0, 500)), int(2 ** rng.integers(0, 3)), float(rng.integers(1, 100)))
            for _ in range(100)
        ]
        trace = make_trace(rows)
        res = Simulator(make_spec(nodes=2), FIFOScheduler()).run(trace)
        np.testing.assert_allclose(
            res.jct, res.queue_delays + trace["duration"], atol=1e-9
        )
