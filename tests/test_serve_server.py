"""Serving-loop tests: online/batch parity, online updates, telemetry.

The parity tests are the subsystem's acceptance criterion: decisions
produced by the serving loop over a replayed stream must be
byte-identical to the batch path on the same trace — QSSF queue
orderings against the scheduler's batch priorities (what the simulator
pops), CES active-pool control against :func:`repro.energy.drs.run_drs`
with the batch forecast.
"""

import pickle

import numpy as np
import pytest

from helpers import make_trace
from repro.energy.drs import DRSParams, run_drs
from repro.energy.forecaster import ForecastFeatures
from repro.ml.gbdt import GBDTParams
from repro.sched.qssf import QSSFScheduler
from repro.serve import EventStream, PredictionServer, ServeConfig
from repro.serve.stream import SUBMIT


# ----------------------------------------------------------------------
# shared builders
# ----------------------------------------------------------------------

_CES_FEATURES = ForecastFeatures(bin_seconds=600, lags=(1, 2, 3, 6), windows=(3, 6))
_CES_GBDT = GBDTParams(n_estimators=30, max_depth=4, min_samples_leaf=5)


def _qssf_history():
    rows = [(i * 60, 1 + (i % 4) * 2, 30.0 + 50.0 * (i % 7)) for i in range(80)]
    return make_trace(rows)


def _qssf_window(n=48):
    rows = [
        (i * 90, 1 + ((i * 3) % 6), 40.0 + 25.0 * (i % 5), f"vc{i % 2}")
        for i in range(n)
    ]
    return make_trace(rows)


def _frozen_config(**overrides):
    kwargs = dict(
        lam=1.0,
        bin_seconds=600,
        horizon_bins=3,
        ces_features=_CES_FEATURES,
        ces_gbdt=_CES_GBDT,
        online_updates=False,
        record_decisions=True,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def _demand_series(n, seed=3):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return np.round(40 + 12 * np.sin(2 * np.pi * t / 144.0) + rng.normal(0, 1.5, n))


def _batch_qssf_orderings(scheduler, window, stream, window_s):
    """The batch `sched/` side: priorities computed once over the whole
    prefix (exactly what Simulator._build_jobs consumes), then each
    micro-batch's per-VC queues ordered by (priority, arrival)."""
    pri = scheduler.predicted_gpu_time(window)
    expected = []
    for batch in stream.batches(window_s):
        if batch.kind != SUBMIT:
            continue
        groups: dict[str, list[int]] = {}
        for ref in batch.refs:
            groups.setdefault(str(window["vc"][ref]), []).append(int(ref))
        for vc, idx in groups.items():
            idx = np.asarray(idx)
            order = np.argsort(pri[idx], kind="stable")
            expected.append(
                (vc, tuple(str(j) for j in window["job_id"][idx[order]]))
            )
    return expected


# ----------------------------------------------------------------------
# parity
# ----------------------------------------------------------------------


class TestQSSFParity:
    def test_orderings_byte_identical_to_batch(self):
        history = _qssf_history()
        window = _qssf_window()
        server = PredictionServer(_frozen_config())
        server.install_qssf(history)
        stream = EventStream.from_trace(window, "T", t0=0.0, t1=90.0 * 50)
        report = server.run(stream, window_s=300.0)

        oracle = QSSFScheduler(history, lam=1.0)
        expected = _batch_qssf_orderings(oracle, window, stream, 300.0)
        assert report.decisions == expected
        assert pickle.dumps(report.decisions) == pickle.dumps(expected)

    def test_parity_holds_with_gbdt_blend(self):
        """lam=0.5 exercises the ML estimator too: per-row features are
        row-independent, so batch-vs-batched predictions stay equal."""
        gbdt = GBDTParams(n_estimators=40, max_depth=4, min_samples_leaf=5)
        history = _qssf_history()
        window = _qssf_window()
        server = PredictionServer(_frozen_config(lam=0.5, qssf_gbdt=gbdt))
        server.install_qssf(history)
        stream = EventStream.from_trace(window, "T", t0=0.0, t1=90.0 * 50)
        report = server.run(stream, window_s=300.0)

        oracle = QSSFScheduler(history, lam=0.5, gbdt_params=gbdt)
        assert report.decisions == _batch_qssf_orderings(
            oracle, window, stream, 300.0
        )

    def test_frozen_runs_are_deterministic(self):
        history = _qssf_history()
        window = _qssf_window()
        digests = []
        for _ in range(2):
            server = PredictionServer(_frozen_config())
            server.install_qssf(history)
            stream = EventStream.from_trace(window, "T", t0=0.0, t1=90.0 * 50)
            digests.append(server.run(stream, window_s=300.0).qssf_digest)
        assert digests[0] == digests[1]


class TestCESParity:
    def test_control_byte_identical_to_run_drs(self):
        total_nodes = 64
        series = _demand_series(360)
        history, eval_demand = series[:300], series[300:]
        server = PredictionServer(_frozen_config())
        server.install_ces(history, total_nodes)
        stream = EventStream.from_trace(
            make_trace([]),
            "T",
            t0=300 * 600.0,
            t1=360 * 600.0,
            bin_seconds=600,
            demand=eval_demand,
        )
        report = server.run(stream)

        forecaster = server.orchestrator.service("ces").forecaster
        fc = forecaster.predict_at(series, np.arange(300, 360))
        expected = run_drs(
            eval_demand, fc, total_nodes, DRSParams.scaled(total_nodes, 600)
        )
        assert report.ces_active is not None
        assert report.ces_active.tobytes() == expected.active.tobytes()
        assert report.ces_summary["wake_events"] == expected.wake_events
        assert report.ces_summary["affected_jobs"] == expected.affected_jobs


class TestEndToEndParity:
    """Satellite: stream a small real trace through engine + orchestrator
    and assert online QSSF orderings match the batch replay prefix."""

    @pytest.fixture(scope="class")
    def venus(self):
        from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job

        gen = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=13))
        trace = gen.generate_cluster("Venus")
        return trace.filter(is_gpu_job(trace))

    def test_real_trace_prefix_parity(self, venus):
        from repro.traces import SECONDS_PER_DAY, slice_period

        split = 20 * SECONDS_PER_DAY
        history = slice_period(venus, 0, split)
        window = slice_period(venus, split, split + 5 * SECONDS_PER_DAY)
        window = window.sort_by("submit_time").head(300)

        server = PredictionServer(_frozen_config())
        server.install_qssf(history)
        stream = EventStream.from_trace(
            window, "Venus", t0=split, t1=split + 5 * SECONDS_PER_DAY
        )
        report = server.run(stream, window_s=120.0)

        oracle = QSSFScheduler(history, lam=1.0)
        expected = _batch_qssf_orderings(oracle, window, stream, 120.0)
        assert len(expected) > 10
        assert report.decisions == expected


# ----------------------------------------------------------------------
# online updates
# ----------------------------------------------------------------------


class TestOnlineUpdates:
    def test_observes_advance_models(self):
        cfg = _frozen_config(online_updates=True, ces_update_every=10)
        total_nodes = 64
        series = _demand_series(360)
        window = _qssf_window()
        server = PredictionServer(cfg)
        server.install_qssf(_qssf_history())
        server.install_ces(series[:300], total_nodes)
        stream = EventStream.from_trace(
            window,
            "T",
            t0=0.0,
            t1=60 * 600.0,
            bin_seconds=600,
            demand=series[300:360],
        )
        report = server.run(stream, window_s=300.0)
        assert report.finishes > 0 and report.node_samples == 60

        # CES: node samples drove incremental extends between refits
        ces = server.orchestrator.service("ces")
        assert ces.updates_applied >= 1
        assert ces.forecaster._train_end > 300 - 3  # advanced past the fit

        # QSSF: finished jobs reached the rolling estimator
        qssf = server.orchestrator.service("qssf")
        finished = window.row(0)
        est = qssf.scheduler.rolling.estimate(
            str(finished["user"]), str(finished["name"]), int(finished["gpu_num"])
        )
        assert est > 0

    def test_engine_refits_fire_on_interval(self):
        cfg = _frozen_config(
            online_updates=True,
            update_interval_s=4 * 3_600.0,
            ces_update_every=1_000_000,
        )
        series = _demand_series(360)
        # jobs spread over the full 10 h window so finish observations
        # straddle the 4 h refit interval
        window = make_trace(
            [(i * 800, 1 + (i % 4), 120.0, f"vc{i % 2}") for i in range(40)]
        )
        server = PredictionServer(cfg)
        server.install_qssf(_qssf_history())
        server.install_ces(series[:300], 64)
        stream = EventStream.from_trace(
            window, "T", t0=0.0, t1=60 * 600.0, bin_seconds=600,
            demand=series[300:360],
        )
        report = server.run(stream, window_s=300.0)
        # stream spans 10 h -> at least one engine-driven refresh each;
        # both services take the incremental path by default
        assert report.refits["ces"]["incremental"] >= 1
        assert report.refits["qssf"]["refits"] >= 1
        assert report.refits["qssf"]["incremental"] == report.refits["qssf"]["refits"]

    def test_qssf_scratch_refit_mode_forces_full_refits(self):
        cfg = _frozen_config(
            online_updates=True,
            update_interval_s=4 * 3_600.0,
            ces_update_every=1_000_000,
            qssf_refit_mode="scratch",
        )
        series = _demand_series(360)
        window = make_trace(
            [(i * 800, 1 + (i % 4), 120.0, f"vc{i % 2}") for i in range(40)]
        )
        server = PredictionServer(cfg)
        server.install_qssf(_qssf_history())
        server.install_ces(series[:300], 64)
        stream = EventStream.from_trace(
            window, "T", t0=0.0, t1=60 * 600.0, bin_seconds=600,
            demand=series[300:360],
        )
        report = server.run(stream, window_s=300.0)
        assert report.refits["qssf"]["refits"] >= 1
        assert report.refits["qssf"]["incremental"] == 0


class TestGrowingSeries:
    def test_growth_keeps_prefix_sums_aligned(self):
        """Regression: growing past capacity must resize all three
        buffers consistently (the values buffer used to grow alone,
        crashing the next append)."""
        from repro.serve.server import _GrowingSeries

        series = _GrowingSeries(capacity=4)
        xs = [float(i) for i in range(50)]
        for x in xs:
            series.append(x)
        assert series.values.tolist() == xs
        c1, c2 = series.cumsums
        arr = np.asarray(xs)
        assert np.array_equal(c1, np.cumsum(np.insert(arr, 0, 0.0)))
        assert np.array_equal(c2, np.cumsum(np.insert(arr * arr, 0, 0.0)))

    def test_seeded_series_grows(self):
        from repro.serve.server import _GrowingSeries

        series = _GrowingSeries(np.arange(5.0), capacity=1)
        for x in range(100):
            series.append(float(x))
        assert series.n == 105
        assert series.cumsums[0][-1] == np.arange(5.0).sum() + sum(range(100))


# ----------------------------------------------------------------------
# routes & errors
# ----------------------------------------------------------------------


class TestRoutes:
    def test_duration_prediction_route(self):
        cfg = _frozen_config(predict_durations=True)
        server = PredictionServer(cfg)
        server.install_qssf(_qssf_history())
        window = _qssf_window(12)
        stream = EventStream.from_trace(window, "T", t0=0.0, t1=90.0 * 13)
        report = server.run(stream, window_s=300.0)
        assert report.duration_requests == 12

    def test_node_samples_require_ces(self):
        server = PredictionServer(_frozen_config())
        server.install_qssf(_qssf_history())
        stream = EventStream.from_trace(
            make_trace([]), "T", t0=0.0, t1=3_000.0, bin_seconds=600,
            demand=np.zeros(5),
        )
        with pytest.raises(RuntimeError, match="CES not installed"):
            server.run(stream)

    def test_latency_and_throughput_reported(self):
        server = PredictionServer(_frozen_config())
        server.install_qssf(_qssf_history())
        window = _qssf_window()
        stream = EventStream.from_trace(window, "T", t0=0.0, t1=90.0 * 50)
        report = server.run(stream, window_s=300.0)
        assert report.events == len(stream)
        assert report.events_per_s > 0
        assert report.qssf_latency.count == report.qssf_batches > 0
        assert report.qssf_latency.p99_ms >= report.qssf_latency.p50_ms >= 0


# ----------------------------------------------------------------------
# fleet telemetry rollup
# ----------------------------------------------------------------------


class TestAggregateReports:
    @staticmethod
    def _report(cluster, refits, events=10, wall=1.0, decisions=3, samples=2):
        from types import SimpleNamespace

        return SimpleNamespace(
            cluster=cluster,
            refits=refits,
            events=events,
            wall_seconds=wall,
            qssf_decisions=decisions,
            node_samples=samples,
        )

    def test_single_report_serializes_unchanged(self):
        from repro.serve import aggregate_reports

        refits = {"qssf": {"refits": 2, "incremental": 5}}
        agg = aggregate_reports([self._report("Venus", refits)])
        assert agg["refits"] == {"Venus": refits}

    def test_duplicate_cluster_refits_sum_not_overwrite(self):
        """Regression: two shards replaying the same cluster used to
        silently overwrite each other's refit counters in the rollup."""
        from repro.serve import aggregate_reports

        a = self._report("Venus", {"qssf": {"refits": 2, "incremental": 5}})
        b = self._report(
            "Venus",
            {"qssf": {"refits": 1, "incremental": 4}, "ces": {"refits": 3}},
        )
        agg = aggregate_reports([a, b])
        assert agg["refits"] == {
            "Venus": {
                "qssf": {"refits": 3, "incremental": 9},
                "ces": {"refits": 3},
            }
        }
        assert agg["shards"] == 2
        assert agg["events"] == 20

    def test_distinct_clusters_stay_separate(self):
        from repro.serve import aggregate_reports

        a = self._report("Venus", {"qssf": {"refits": 1, "incremental": 0}})
        b = self._report("Earth", {"qssf": {"refits": 2, "incremental": 1}})
        agg = aggregate_reports([a, b])
        assert agg["refits"] == {
            "Venus": {"qssf": {"refits": 1, "incremental": 0}},
            "Earth": {"qssf": {"refits": 2, "incremental": 1}},
        }
